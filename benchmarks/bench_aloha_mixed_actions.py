"""Experiment E14 (extension): ALOHA — mixed actions, independence by physics.

Neither clause of Lemma 4.3 applies (the transmit action is mixed, the
clear-channel condition is not past-based), yet Definition 4.1 holds
because the stations' coins are independent — and Theorem 6.2's
expectation identity is exact.  Swept over station count and
persistence; the closed form is mu(clear @ tx | tx) = (1 - q)^(n-1).
"""

from fractions import Fraction

from conftest import emit

from repro import (
    achieved_probability,
    check_theorem_6_2,
    is_local_state_independent,
    lemma_4_3_applies,
)
from repro.analysis.sweep import format_table, sweep
from repro.apps.aloha import build_aloha, channel_clear_for, transmit_action

ME = "station-0"


def aloha_row(n, q):
    system = build_aloha(n=n, persistence=q)
    phi = channel_clear_for(ME, n)
    action = transmit_action(0)
    check = check_theorem_6_2(system, ME, action, phi)
    applies, _ = lemma_4_3_applies(system, phi, ME, action)
    return {
        "mu(clear|tx)": achieved_probability(system, ME, phi, action),
        "closed form": (1 - Fraction(q)) ** (n - 1),
        "lemma-4.3 applies": applies,
        "independent": is_local_state_independent(system, phi, ME, action),
        "thm-6.2 exact": check.applicable and check.conclusion,
    }


def test_aloha_sweep(benchmark):
    grid = {"n": [2, 3, 4], "q": ["1/10", "1/4", "1/2"]}
    rows = benchmark(sweep, grid, aloha_row)
    emit(
        format_table(
            rows,
            title="E14: ALOHA — (1-q)^(n-1), independence without Lemma 4.3",
        )
    )
    for row in rows:
        assert row["mu(clear|tx)"] == row["closed form"]
        assert not row["lemma-4.3 applies"]
        assert row["independent"]
        assert row["thm-6.2 exact"]
