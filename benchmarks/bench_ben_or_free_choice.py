"""Experiment E15 (extension): the advantage of free choice, measured.

Ben-Or's thesis [9], on the two-agent lossy-channel retry consensus:
randomized coins let mismatched inputs converge, so the probability
that both agents decide grows with the horizon; the deterministic
ablation stalls at the equal-input mass forever.  Agreement among
deciders is 1 throughout (the protocol is safe; only liveness is
probabilistic).
"""

from conftest import emit

from repro import probability, runs_satisfying
from repro.analysis.sweep import format_table, sweep
from repro.apps.ben_or import (
    agreement_among_deciders,
    both_decide,
    build_ben_or,
)


def progress_row(rounds, free_choice):
    system = build_ben_or(rounds=rounds, free_choice=free_choice)
    return {
        "runs": system.run_count(),
        "P(both decide)": probability(
            system, runs_satisfying(system, both_decide())
        ),
        "P(agreement)": probability(
            system, runs_satisfying(system, agreement_among_deciders())
        ),
    }


def test_free_choice_progress(benchmark):
    grid = {"rounds": [3, 4, 5], "free_choice": [True, False]}
    rows = benchmark(sweep, grid, progress_row)
    emit(
        format_table(
            rows,
            title="E15: coins buy liveness (P(both decide)); safety is free",
        )
    )
    for row in rows:
        assert row["P(agreement)"] == 1
    from fractions import Fraction

    with_coins = [r["P(both decide)"] for r in rows if r["free_choice"]]
    without = [r["P(both decide)"] for r in rows if not r["free_choice"]]
    assert with_coins == sorted(with_coins)  # monotone progress
    # The ablation can only ever decide on equal inputs (mass 1/2);
    # coins break through that ceiling.
    assert all(value < Fraction(1, 2) for value in without)
    assert with_coins[-1] > Fraction(1, 2)
