"""Benchmark: compiler scale-up — memoized expansion templates vs. re-enumeration.

PR 1/2 made *analysis* cheap; the binding cost on larger scenario trees
became tree **construction**.  This benchmark times ``compile`` and
index construction with the memoized path (interned states + expansion
templates, the default) against the ``memoize=False`` escape hatch, on
two families:

* **repeated-config workloads** — bounded-memory synchronous "rotor"
  systems where a handful of distinct configurations label an
  exponential tree; one expansion template serves thousands of nodes.
  This family carries the ≥3x speedup gate and pushes run counts far
  past the old ~512-run practical ceiling of the ``bench_scaling``
  family;
* **the ``bench_scaling`` apps** — consensus and coordinated attack,
  compiled through the same machinery (their perfect-recall states
  rarely recur, so the speedup there is modest and *not* gated; the
  rows document that the memoized path never loses).

Every row verifies parity: identical uid sequences (full pre-order
tree comparison) and ``Fraction``-exact run measures across the two
paths.  A parity violation fails the run in every mode; the speedup
bar is advisory in ``--smoke`` (CI wall-clock on tiny workloads is too
noisy for a hard gate) and enforced on the full run.

Usage::

    PYTHONPATH=src python benchmarks/bench_compiler_scaling.py [--smoke]

or under pytest (collected by the benchmark session via the local
``bench_*`` convention).
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Dict, List, Tuple

sys.path.insert(0, "src")  # allow `python benchmarks/bench_compiler_scaling.py`

from repro.analysis.random_systems import rotor_spec, tree_signature
from repro.analysis.sweep import format_table
from repro.apps.consensus import build_consensus
from repro.apps.coordinated_attack import build_coordinated_attack
from repro.core.engine import SystemIndex
from repro.core.pps import PPS
from repro.protocols import compile_system


# ----------------------------------------------------------------------
# Parity and timing helpers
# ----------------------------------------------------------------------


def _best(fn: Callable[[], PPS], repeats: int) -> Tuple[float, PPS]:
    best = float("inf")
    value: PPS = None  # type: ignore[assignment]
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def compare_compile(
    name: str, build: Callable[[bool], PPS], *, repeats: int = 3
) -> Dict[str, object]:
    """Time both compile paths, verify uid + measure parity, time the index."""
    memo_time, memo = _best(lambda: build(True), repeats)
    plain_time, plain = _best(lambda: build(False), repeats)
    assert tree_signature(memo) == tree_signature(plain), f"{name}: uid/tree parity"
    assert [run.prob for run in memo.runs] == [
        run.prob for run in plain.runs
    ], f"{name}: exact measure parity"
    index_start = time.perf_counter()
    SystemIndex.of(memo)
    index_time = time.perf_counter() - index_start
    assert memo.intern is not None and plain.intern is None
    # Raw values throughout; _display rounds for the printed table so
    # the >=3x gate never benefits from rounding (2.95x must not pass).
    return {
        "system": name,
        "runs": memo.run_count(),
        "nodes": memo.node_count(),
        "configs": memo.intern.distinct_configs,
        "plain_s": plain_time,
        "memo_s": memo_time,
        "speedup": plain_time / memo_time,
        "index_s": index_time,
        "exact_match": True,
    }


def _display(rows: List[Dict[str, object]]) -> List[Dict[str, object]]:
    """Rounded copies of benchmark rows for table printing only."""
    rounding = {"plain_s": 4, "memo_s": 4, "index_s": 4, "speedup": 1}
    return [
        {
            key: round(value, rounding[key]) if key in rounding else value
            for key, value in row.items()
        }
        for row in rows
    ]


# ----------------------------------------------------------------------
# The two tables
# ----------------------------------------------------------------------


def repeated_config_rows(*, smoke: bool = False) -> List[Dict[str, object]]:
    """Rotor rows, smallest to largest; the last row carries the gate.

    Even the smoke sizes exceed the old ~512-run ceiling; the full run
    compiles trees two orders of magnitude past it.
    """
    if smoke:
        shapes = [
            ("rotor(n=4,h=5)", dict(n_agents=4, modulus=3, horizon=5)),
            ("rotor(n=6,h=5)", dict(n_agents=6, modulus=3, horizon=5)),
        ]
    else:
        shapes = [
            ("rotor(n=4,h=5)", dict(n_agents=4, modulus=3, horizon=5)),
            ("rotor(n=6,h=6)", dict(n_agents=6, modulus=3, horizon=6)),
            ("rotor(n=6,h=7)", dict(n_agents=6, modulus=3, horizon=7)),
        ]
    return [
        compare_compile(
            name,
            lambda memoize, kwargs=kwargs: compile_system(
                rotor_spec(**kwargs), name="rotor", memoize=memoize
            ),
        )
        for name, kwargs in shapes
    ]


def app_rows(*, smoke: bool = False) -> List[Dict[str, object]]:
    """The bench_scaling apps through both paths (informational)."""
    configurations: List[Tuple[str, Callable[[bool], PPS]]] = [
        (
            "consensus(n=2)",
            lambda memoize: build_consensus(n=2, loss="0.1", memoize=memoize),
        ),
        (
            "attack(acks=5)",
            lambda memoize: build_coordinated_attack(
                loss="0.1", ack_rounds=5, memoize=memoize
            ),
        ),
    ]
    if not smoke:
        configurations.append(
            (
                "consensus(n=3)",
                lambda memoize: build_consensus(n=3, loss="0.1", memoize=memoize),
            )
        )
    return [compare_compile(name, build) for name, build in configurations]


def _gate_speedup(rows: List[Dict[str, object]], *, smoke: bool) -> int:
    """Enforce the ≥3x bar on the largest repeated-config workload."""
    largest = rows[-1]
    if largest["speedup"] < 3:
        message = (
            f"repeated-config workload {largest['system']} speedup "
            f"{largest['speedup']:.2f}x < 3x"
        )
        if smoke:
            print(f"WARNING (smoke, informational): {message}", file=sys.stderr)
            return 0
        print(f"FAIL: {message}", file=sys.stderr)
        return 1
    print(
        f"OK: {largest['system']} compile speedup {largest['speedup']:.1f}x >= 3x "
        f"({largest['runs']} runs, uid-identical, Fraction-exact)"
    )
    return 0


def main(argv: List[str]) -> int:
    smoke = "--smoke" in argv
    mode = "(smoke)" if smoke else "(full)"
    rows = repeated_config_rows(smoke=smoke)
    print(
        format_table(
            _display(rows),
            title=f"compiler scaling: memoized templates vs re-enumeration {mode}",
        )
    )
    status = _gate_speedup(rows, smoke=smoke)
    print(
        format_table(
            _display(app_rows(smoke=smoke)),
            title=f"bench_scaling apps through both compile paths {mode}",
        )
    )
    return status


# ----------------------------------------------------------------------
# pytest-benchmark entry points (collected by the benchmark session)
# ----------------------------------------------------------------------


def test_compiler_scaling_table(benchmark):
    rows = benchmark.pedantic(repeated_config_rows, rounds=1, iterations=1)
    from conftest import emit

    emit(format_table(_display(rows), title="compiler scaling (memoized vs plain)"))
    assert all(row["exact_match"] for row in rows)
    assert rows[-1]["speedup"] >= 3  # unrounded: 2.95x must not pass
    assert rows[-1]["runs"] > 512


def test_compiler_apps_table(benchmark):
    rows = benchmark.pedantic(app_rows, rounds=1, iterations=1)
    from conftest import emit

    emit(format_table(_display(rows), title="compiler scaling (bench_scaling apps)"))
    assert all(row["exact_match"] for row in rows)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
