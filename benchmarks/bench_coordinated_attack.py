"""Experiment E11: coordinated attack — acks refine beliefs, not success.

Fischer–Zuck's observation (the seed of the paper's Theorem 6.2): the
average belief of A in "B is attacking", when A attacks, equals the
success probability.  The bench sweeps acknowledgement rounds and shows
success and expected belief pinned at 1 - loss while the belief
*distribution* spreads toward {0, 1}.
"""

from fractions import Fraction

from conftest import emit

from repro import (
    achieved_probability,
    expected_belief,
    expected_belief_decomposition,
)
from repro.analysis.sweep import format_table, sweep
from repro.apps.coordinated_attack import (
    ATTACK,
    GENERAL_A,
    both_attack,
    build_coordinated_attack,
)


def ack_row(ack_rounds):
    system = build_coordinated_attack(loss="0.1", ack_rounds=ack_rounds)
    cells = expected_belief_decomposition(system, GENERAL_A, both_attack(), ATTACK)
    return {
        "runs": system.run_count(),
        "success": achieved_probability(system, GENERAL_A, both_attack(), ATTACK),
        "E[belief]": expected_belief(system, GENERAL_A, both_attack(), ATTACK),
        "belief states": len(cells),
        "min belief": min(cell.belief for cell in cells.values()),
    }


def test_ack_round_sweep(benchmark):
    rows = benchmark(sweep, {"ack_rounds": [0, 1, 2, 3, 4]}, ack_row)
    emit(format_table(rows, title="E11: acks refine beliefs but not success"))
    for row in rows:
        assert row["success"] == Fraction(9, 10)
        assert row["E[belief]"] == Fraction(9, 10)
    spreads = [row["belief states"] for row in rows]
    assert spreads == sorted(spreads)  # monotone refinement
    assert spreads[-1] > spreads[0]


def test_loss_rate_sweep(benchmark):
    def loss_row(loss):
        system = build_coordinated_attack(loss=loss, ack_rounds=1)
        return {
            "success": achieved_probability(
                system, GENERAL_A, both_attack(), ATTACK
            ),
            "E[belief]": expected_belief(system, GENERAL_A, both_attack(), ATTACK),
        }

    rows = benchmark(sweep, {"loss": ["0.01", "0.1", "0.25", "0.5"]}, loss_row)
    emit(format_table(rows, title="E11: success = 1 - loss at every reliability"))
    for row in rows:
        assert row["success"] == 1 - Fraction(row["loss"])
        assert row["E[belief]"] == row["success"]
