"""Benchmark: the indexed engine vs. the naive evaluation path.

Runs the same exact-analysis workload — achieved probabilities,
expected acting beliefs, threshold-met measures at several levels,
full belief profiles, occurrence events, and per-time knowledge
partitions — over the ``bench_scaling`` tree family (consensus with a
lossy channel, deep coordinated attack), once through the
:class:`~repro.core.engine.SystemIndex`-backed public API and once
through the preserved naive implementations in
:mod:`repro.core.naive`.  Results must be ``Fraction``-equal; the
table reports wall-clock times and the speedup.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine_speedup.py [--smoke]

or under pytest (``bench_engine_speedup.py`` follows the local
``bench_*`` convention and is collected by the benchmark session).
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Dict, List, Tuple

sys.path.insert(0, "src")  # allow `python benchmarks/bench_engine_speedup.py`

from repro.analysis.sweep import format_table
from repro.apps.consensus import agreement, build_consensus, decision_action
from repro.apps.coordinated_attack import (
    ATTACK,
    GENERAL_A,
    both_attack,
    build_coordinated_attack,
)
from repro.core import naive
from repro.core.beliefs import belief, occurrence_event, threshold_met_measure
from repro.core.constraints import achieved_probability
from repro.core.expectation import expected_belief
from repro.core.knowledge import knowledge_partition
from repro.core.pps import PPS

THRESHOLDS = ("1/3", "1/2", "2/3", "9/10")


def _indexed_workload(pps: PPS, agent, action, phi) -> Tuple:
    """The whole analysis surface, through the engine-backed API."""
    results: List[object] = [
        achieved_probability(pps, agent, phi, action),
        expected_belief(pps, agent, phi, action),
    ]
    results.extend(
        threshold_met_measure(pps, agent, phi, action, p) for p in THRESHOLDS
    )
    for local in sorted(pps.local_states(agent), key=repr):
        results.append(occurrence_event(pps, agent, local))
        results.append(belief(pps, agent, phi, local))
    for t in range(pps.max_time() + 1):
        results.append(knowledge_partition(pps, agent, t))
    return tuple(results)


def _naive_workload(pps: PPS, agent, action, phi) -> Tuple:
    """The same workload through the preserved pre-index code path."""
    results: List[object] = [
        naive.naive_achieved_probability(pps, agent, phi, action),
        naive.naive_expected_belief(pps, agent, phi, action),
    ]
    results.extend(
        naive.naive_threshold_met_measure(pps, agent, phi, action, p)
        for p in THRESHOLDS
    )
    locals_seen = sorted(
        {
            run.local(agent, t)
            for run in pps.runs
            for t in run.times()
        },
        key=repr,
    )
    for local in locals_seen:
        results.append(naive.naive_occurrence_event(pps, agent, local))
        results.append(naive.naive_belief(pps, agent, phi, local))
    for t in range(pps.max_time() + 1):
        results.append(naive.naive_knowledge_partition(pps, agent, t))
    return tuple(results)


def _time(fn: Callable[[], Tuple], repeats: int) -> Tuple[float, Tuple]:
    best = float("inf")
    value: Tuple = ()
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def _fresh(build: Callable[[], PPS]) -> PPS:
    """A new system instance, so the naive path cannot inherit caches."""
    return build()


def compare(
    name: str,
    build: Callable[[], PPS],
    agent,
    action,
    phi_of: Callable[[], object],
    *,
    repeats: int = 3,
) -> Dict[str, object]:
    """Time both paths on fresh systems and check exact agreement."""
    naive_system = _fresh(build)
    naive_time, naive_result = _time(
        lambda: _naive_workload(naive_system, agent, action, phi_of()), repeats
    )
    indexed_system = _fresh(build)
    indexed_time, indexed_result = _time(
        lambda: _indexed_workload(indexed_system, agent, action, phi_of()), repeats
    )
    assert indexed_result == naive_result, f"{name}: engine parity violated"
    return {
        "system": name,
        "runs": indexed_system.run_count(),
        "naive_s": round(naive_time, 4),
        "indexed_s": round(indexed_time, 4),
        "speedup": round(naive_time / indexed_time, 1),
        "exact_match": True,
    }


def scaling_rows(*, smoke: bool = False) -> List[Dict[str, object]]:
    """One row per bench_scaling configuration, smallest to largest."""
    configurations = [
        (
            "consensus(n=2)",
            lambda: build_consensus(n=2, loss="0.1"),
            "agent-0",
            decision_action(1),
            lambda: agreement(2),
        ),
        (
            "attack(acks=3)",
            lambda: build_coordinated_attack(loss="0.1", ack_rounds=3),
            GENERAL_A,
            ATTACK,
            both_attack,
        ),
    ]
    if not smoke:
        configurations += [
            (
                "attack(acks=5)",
                lambda: build_coordinated_attack(loss="0.1", ack_rounds=5),
                GENERAL_A,
                ATTACK,
                both_attack,
            ),
            (
                "consensus(n=3)",
                lambda: build_consensus(n=3, loss="0.1"),
                "agent-0",
                decision_action(1),
                lambda: agreement(3),
            ),
        ]
    return [
        compare(name, build, agent, action, phi_of)
        for name, build, agent, action, phi_of in configurations
    ]


def main(argv: List[str]) -> int:
    smoke = "--smoke" in argv
    rows = scaling_rows(smoke=smoke)
    print(
        format_table(
            rows,
            title="engine speedup: indexed SystemIndex vs naive rescan "
            + ("(smoke)" if smoke else "(full)"),
        )
    )
    largest = rows[-1]
    if largest["speedup"] < 3:
        # Exact-match violations abort in compare(); the speedup bar is
        # advisory in smoke mode (CI timings on tiny workloads are too
        # noisy for a hard wall-clock gate) and enforced on the full
        # run, whose largest configuration has a wide margin (~15x).
        message = f"largest configuration speedup {largest['speedup']}x < 3x"
        if smoke:
            print(f"WARNING (smoke, informational): {message}", file=sys.stderr)
            return 0
        print(f"FAIL: {message}", file=sys.stderr)
        return 1
    print(f"OK: largest configuration {largest['speedup']}x >= 3x, exact match")
    return 0


# ----------------------------------------------------------------------
# pytest-benchmark entry points (collected by the benchmark session)
# ----------------------------------------------------------------------


def test_engine_speedup_table(benchmark):
    rows = benchmark.pedantic(scaling_rows, rounds=1, iterations=1)
    from conftest import emit

    emit(format_table(rows, title="engine speedup (indexed vs naive)"))
    assert all(row["exact_match"] for row in rows)
    assert rows[-1]["speedup"] >= 3


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
