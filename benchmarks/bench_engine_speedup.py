"""Benchmark: the indexed engine vs. the naive evaluation path.

Two comparisons over the ``bench_scaling`` tree family (consensus with
a lossy channel, deep coordinated attack):

* **indexed vs naive** — the same exact-analysis workload (achieved
  probabilities, expected acting beliefs, threshold-met measures at
  several levels, full belief profiles, occurrence events, per-time
  knowledge partitions), once through the
  :class:`~repro.core.engine.SystemIndex`-backed public API and once
  through the preserved naive implementations in
  :mod:`repro.core.naive`;
* **batched vs per-fact** — a multi-fact sweep whose rows rebuild
  syntactically identical condition facts, once through the batched
  APIs (``truths_at`` / ``beliefs_batch``) on a structural-key index
  and once through per-fact single queries on an identity-keyed index
  (the pre-batching behavior, where rebuilt facts never hit a cache).

Results must be ``Fraction``-equal in both comparisons; the tables
report wall-clock times and the speedup.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine_speedup.py \
        [--smoke] [--batched-only]

or under pytest (``bench_engine_speedup.py`` follows the local
``bench_*`` convention and is collected by the benchmark session).
"""

from __future__ import annotations

import sys
import time
from fractions import Fraction
from typing import Callable, Dict, List, Tuple

sys.path.insert(0, "src")  # allow `python benchmarks/bench_engine_speedup.py`

from repro.analysis.sweep import format_table, sweep
from repro.apps.consensus import agreement, build_consensus, decision_action
from repro.apps.coordinated_attack import (
    ATTACK,
    GENERAL_A,
    both_attack,
    build_coordinated_attack,
)
from repro.core import naive
from repro.core.atoms import does_, performed
from repro.core.beliefs import belief, occurrence_event, threshold_met_measure
from repro.core.common_belief import believes
from repro.core.constraints import achieved_probability
from repro.core.engine import SystemIndex
from repro.core.expectation import expected_belief
from repro.core.knowledge import knowledge_partition, knows
from repro.core.pps import PPS

THRESHOLDS = ("1/3", "1/2", "2/3", "9/10")


def _indexed_workload(pps: PPS, agent, action, phi) -> Tuple:
    """The whole analysis surface, through the engine-backed API."""
    results: List[object] = [
        achieved_probability(pps, agent, phi, action),
        expected_belief(pps, agent, phi, action),
    ]
    results.extend(
        threshold_met_measure(pps, agent, phi, action, p) for p in THRESHOLDS
    )
    for local in sorted(pps.local_states(agent), key=repr):
        results.append(occurrence_event(pps, agent, local))
        results.append(belief(pps, agent, phi, local))
    for t in range(pps.max_time() + 1):
        results.append(knowledge_partition(pps, agent, t))
    return tuple(results)


def _naive_workload(pps: PPS, agent, action, phi) -> Tuple:
    """The same workload through the preserved pre-index code path."""
    results: List[object] = [
        naive.naive_achieved_probability(pps, agent, phi, action),
        naive.naive_expected_belief(pps, agent, phi, action),
    ]
    results.extend(
        naive.naive_threshold_met_measure(pps, agent, phi, action, p)
        for p in THRESHOLDS
    )
    locals_seen = sorted(
        {
            run.local(agent, t)
            for run in pps.runs
            for t in run.times()
        },
        key=repr,
    )
    for local in locals_seen:
        results.append(naive.naive_occurrence_event(pps, agent, local))
        results.append(naive.naive_belief(pps, agent, phi, local))
    for t in range(pps.max_time() + 1):
        results.append(naive.naive_knowledge_partition(pps, agent, t))
    return tuple(results)


def _time(fn: Callable[[], Tuple], repeats: int) -> Tuple[float, Tuple]:
    best = float("inf")
    value: Tuple = ()
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def _fresh(build: Callable[[], PPS]) -> PPS:
    """A new system instance, so the naive path cannot inherit caches."""
    return build()


def compare(
    name: str,
    build: Callable[[], PPS],
    agent,
    action,
    phi_of: Callable[[], object],
    *,
    repeats: int = 3,
) -> Dict[str, object]:
    """Time both paths on fresh systems and check exact agreement."""
    naive_system = _fresh(build)
    naive_time, naive_result = _time(
        lambda: _naive_workload(naive_system, agent, action, phi_of()), repeats
    )
    indexed_system = _fresh(build)
    indexed_time, indexed_result = _time(
        lambda: _indexed_workload(indexed_system, agent, action, phi_of()), repeats
    )
    assert indexed_result == naive_result, f"{name}: engine parity violated"
    return {
        "system": name,
        "runs": indexed_system.run_count(),
        "naive_s": round(naive_time, 4),
        "indexed_s": round(indexed_time, 4),
        "speedup": round(naive_time / indexed_time, 1),
        "exact_match": True,
    }


def scaling_rows(*, smoke: bool = False) -> List[Dict[str, object]]:
    """One row per bench_scaling configuration, smallest to largest."""
    configurations = [
        (
            "consensus(n=2)",
            lambda: build_consensus(n=2, loss="0.1"),
            "agent-0",
            decision_action(1),
            lambda: agreement(2),
        ),
        (
            "attack(acks=3)",
            lambda: build_coordinated_attack(loss="0.1", ack_rounds=3),
            GENERAL_A,
            ATTACK,
            both_attack,
        ),
    ]
    if not smoke:
        configurations += [
            (
                "attack(acks=5)",
                lambda: build_coordinated_attack(loss="0.1", ack_rounds=5),
                GENERAL_A,
                ATTACK,
                both_attack,
            ),
            (
                "consensus(n=3)",
                lambda: build_consensus(n=3, loss="0.1"),
                "agent-0",
                decision_action(1),
                lambda: agreement(3),
            ),
        ]
    return [
        compare(name, build, agent, action, phi_of)
        for name, build, agent, action, phi_of in configurations
    ]


# ----------------------------------------------------------------------
# Batched sweep vs per-fact loop
# ----------------------------------------------------------------------


def _sweep_facts(agent, action, level):
    """One sweep row's condition facts, built fresh (as sweeps do).

    Every fact is structural, so the batched path's structural-key
    caches recognize the rebuilds; only ``believes`` varies with the
    row's ``level`` parameter, and even it shares its operand's masks.
    """
    alpha = performed(agent, action)
    acting = does_(agent, action)
    return [
        alpha,
        acting,
        knows(agent, alpha),
        believes(agent, alpha, level),
        alpha & ~acting,
        ~alpha | knows(agent, alpha),
    ]


def _sweep_grid(*, smoke: bool) -> Dict[str, Tuple]:
    if smoke:
        return {"level": ("1/2", "9/10"), "rep": (0, 1)}
    return {"level": THRESHOLDS, "rep": (0, 1, 2, 3)}


def _row_quantities(index, agent, locals_sorted, facts, masks_by_t, beliefs_by_local):
    """Fold masks/beliefs into the row's exact scalar columns."""
    out: Dict[str, object] = {}
    for k in range(len(facts)):
        out[f"mu{k}"] = sum(
            (index.probability(masks[k]) for masks in masks_by_t),
            start=Fraction(0),
        )
        out[f"belief{k}"] = sum(
            (beliefs_by_local[local][k] for local in locals_sorted),
            start=Fraction(0),
        )
    return out


def _per_fact_row_fn(pps: PPS, agent, action):
    """The single-query path: one engine call per (fact, slice/state)."""
    index = pps.index()
    locals_sorted = sorted(index.local_states(agent), key=repr)
    times = range(index.max_time + 1)

    def row(level, rep):
        facts = _sweep_facts(agent, action, level)
        masks_by_t = [
            [index.holds_mask_at(fact, t) for fact in facts] for t in times
        ]
        beliefs_by_local = {
            local: [index.belief(agent, fact, local) for fact in facts]
            for local in locals_sorted
        }
        return _row_quantities(
            index, agent, locals_sorted, facts, masks_by_t, beliefs_by_local
        )

    return row


def _batched_rows_fn(pps: PPS, agent, action):
    """The batched path: one engine call per slice/state per *row*."""
    index = pps.index()
    locals_sorted = sorted(index.local_states(agent), key=repr)
    times = range(index.max_time + 1)

    def rows(points):
        results = []
        for point in points:
            facts = _sweep_facts(agent, action, point["level"])
            masks_by_t = [index.truths_at(facts, t) for t in times]
            beliefs_by_local = {
                local: index.beliefs_batch(agent, facts, local)
                for local in locals_sorted
            }
            results.append(
                _row_quantities(
                    index, agent, locals_sorted, facts, masks_by_t, beliefs_by_local
                )
            )
        return results

    return rows


def compare_batched(
    name: str,
    build: Callable[[], PPS],
    agent,
    action,
    *,
    smoke: bool,
) -> Dict[str, object]:
    """Time the per-fact and batched sweeps; require exact agreement.

    The per-fact system gets an identity-keyed index — the pre-batching
    behavior, where each row's rebuilt facts miss every cache — while
    the batched system keeps the structural-key default.
    """
    grid = _sweep_grid(smoke=smoke)
    single_pps = build()
    SystemIndex.of(single_pps, structural_keys=False)
    single_time, single_table = _time(
        lambda: sweep(grid, _per_fact_row_fn(single_pps, agent, action)), 1
    )
    batched_pps = build()
    batched_time, batched_table = _time(
        lambda: sweep(grid, batch_row_fn=_batched_rows_fn(batched_pps, agent, action)),
        1,
    )
    assert batched_table == single_table, f"{name}: batched parity violated"
    return {
        "system": name,
        "runs": batched_pps.run_count(),
        "rows": len(batched_table),
        "per_fact_s": round(single_time, 4),
        "batched_s": round(batched_time, 4),
        "speedup": round(single_time / batched_time, 1),
        "exact_match": True,
    }


def batched_rows(*, smoke: bool = False) -> List[Dict[str, object]]:
    """One row per bench_scaling configuration, smallest to largest."""
    configurations = [
        (
            "consensus(n=2)",
            lambda: build_consensus(n=2, loss="0.1"),
            "agent-0",
            decision_action(1),
        ),
        (
            "attack(acks=3)",
            lambda: build_coordinated_attack(loss="0.1", ack_rounds=3),
            GENERAL_A,
            ATTACK,
        ),
    ]
    if not smoke:
        configurations.append(
            (
                "consensus(n=3)",
                lambda: build_consensus(n=3, loss="0.1"),
                "agent-0",
                decision_action(1),
            )
        )
    return [
        compare_batched(name, build, agent, action, smoke=smoke)
        for name, build, agent, action in configurations
    ]


def _gate_speedup(rows: List[Dict[str, object]], label: str, *, smoke: bool) -> int:
    """Enforce the >=3x bar on the largest configuration (full runs).

    Exact-match violations abort earlier, in the compare functions; the
    speedup bar is advisory in smoke mode (CI timings on tiny workloads
    are too noisy for a hard wall-clock gate) and enforced on the full
    run, whose largest configurations have a wide margin.
    """
    largest = rows[-1]
    if largest["speedup"] < 3:
        message = f"{label}: largest configuration speedup {largest['speedup']}x < 3x"
        if smoke:
            print(f"WARNING (smoke, informational): {message}", file=sys.stderr)
            return 0
        print(f"FAIL: {message}", file=sys.stderr)
        return 1
    print(f"OK: {label} largest configuration {largest['speedup']}x >= 3x, exact match")
    return 0


def main(argv: List[str]) -> int:
    smoke = "--smoke" in argv
    batched_only = "--batched-only" in argv
    mode = "(smoke)" if smoke else "(full)"
    status = 0
    if not batched_only:
        rows = scaling_rows(smoke=smoke)
        print(
            format_table(
                rows,
                title=f"engine speedup: indexed SystemIndex vs naive rescan {mode}",
            )
        )
        status |= _gate_speedup(rows, "indexed-vs-naive", smoke=smoke)
    rows = batched_rows(smoke=smoke)
    print(
        format_table(
            rows,
            title="batched evaluation: truths_at/beliefs_batch sweep vs "
            f"per-fact loop {mode}",
        )
    )
    status |= _gate_speedup(rows, "batched-vs-per-fact", smoke=smoke)
    return status


# ----------------------------------------------------------------------
# pytest-benchmark entry points (collected by the benchmark session)
# ----------------------------------------------------------------------


def test_engine_speedup_table(benchmark):
    rows = benchmark.pedantic(scaling_rows, rounds=1, iterations=1)
    from conftest import emit

    emit(format_table(rows, title="engine speedup (indexed vs naive)"))
    assert all(row["exact_match"] for row in rows)
    assert rows[-1]["speedup"] >= 3


def test_batched_speedup_table(benchmark):
    rows = benchmark.pedantic(batched_rows, rounds=1, iterations=1)
    from conftest import emit

    emit(format_table(rows, title="batched evaluation (batched vs per-fact)"))
    assert all(row["exact_match"] for row in rows)
    assert rows[-1]["speedup"] >= 3


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
