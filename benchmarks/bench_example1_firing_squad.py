"""Experiment E1: Example 1's FS protocol — every number of the paper.

Paper claims reproduced (all exact):

=================================  ==========
mu(both fire | Alice fires)        99/100
threshold (0.95) met when firing   991/1000
threshold missed                   9/1000
Alice's acting beliefs             {1, 0.99, 0}
=================================  ==========

The benchmark times the full pipeline: compile the protocol to a pps
and run the complete PAK analysis.
"""

from fractions import Fraction

from conftest import emit

from repro import analyze
from repro.analysis.report import ExperimentRecord, format_experiments
from repro.apps.firing_squad import (
    ALICE,
    FIRE,
    THRESHOLD,
    both_fire,
    build_firing_squad,
)


def full_pipeline():
    system = build_firing_squad()
    return analyze(system, ALICE, FIRE, both_fire(), THRESHOLD)


def test_example1_pipeline(benchmark):
    report = benchmark(full_pipeline)

    records = [
        ExperimentRecord.of(
            "E1", "mu(both fire | Alice fires)", "99/100", report.achieved
        ),
        ExperimentRecord.of(
            "E1", "expected acting belief", "99/100", report.expected_belief
        ),
        ExperimentRecord.of(
            "E1",
            "mu(belief >= 0.95 | fires)",
            "991/1000",
            report.threshold_met_measure,
        ),
        ExperimentRecord.of(
            "E1",
            "mu(belief < 0.95 | fires)",
            "9/1000",
            1 - report.threshold_met_measure,
        ),
    ]
    emit(format_experiments(records))

    assert all(record.matches for record in records)
    assert sorted(cell.belief for cell in report.belief_profile.values()) == [
        Fraction(0),
        Fraction(99, 100),
        Fraction(1),
    ]
    assert report.all_theorems_verified
