"""Experiment E5: Theorem 6.2 — the expectation identity, at scale.

``mu(phi@alpha | alpha) == E[beta_i(phi)@alpha | alpha]`` is checked as
an exact rational equality on (a) every application system and (b) a
fleet of randomly generated protocol systems with past-based facts.
The benchmark times the random-fleet verification — the library's
heaviest self-check.
"""

from conftest import emit

from repro import check_theorem_6_2
from repro.analysis.random_systems import (
    proper_actions_of,
    random_protocol_system,
    random_state_fact,
)
from repro.analysis.sweep import format_table
from repro.apps.coordinated_attack import ATTACK, GENERAL_A, both_attack, build_coordinated_attack
from repro.apps.firing_squad import ALICE, FIRE, both_fire, build_firing_squad
from repro.apps.judge import CONVICT, JUDGE, build_judge, guilty
from repro.apps.mutex import ENTER, PROC_1, build_mutex, peer_stays_out

FLEET_SEEDS = range(20)


def verify_random_fleet():
    results = []
    for seed in FLEET_SEEDS:
        system = random_protocol_system(seed, mixed_level=0.5)
        phi = random_state_fact(seed + 1000)
        for agent in system.agents:
            action = proper_actions_of(system, agent)[0]
            check = check_theorem_6_2(system, agent, action, phi)
            results.append(check)
    return results


def test_expectation_identity_random_fleet(benchmark):
    checks = benchmark(verify_random_fleet)
    assert all(check.verified for check in checks)
    applicable = [check for check in checks if check.applicable]
    assert applicable  # the premise holds generically for state facts
    assert all(check.conclusion for check in applicable)
    emit(
        f"E5: Theorem 6.2 exact on {len(applicable)} applicable "
        f"constraints across {len(FLEET_SEEDS)} random systems"
    )


def test_expectation_identity_all_apps(benchmark):
    cases = [
        ("firing-squad", build_firing_squad(), ALICE, FIRE, both_fire()),
        (
            "coordinated-attack",
            build_coordinated_attack(ack_rounds=2),
            GENERAL_A,
            ATTACK,
            both_attack(),
        ),
        ("mutex", build_mutex(), PROC_1, ENTER, peer_stays_out(PROC_1)),
        (
            "judge",
            build_judge(signals=3, conviction_threshold=2),
            JUDGE,
            CONVICT,
            guilty(),
        ),
    ]

    def verify_apps():
        return [
            (name, check_theorem_6_2(system, agent, action, phi))
            for name, system, agent, action, phi in cases
        ]

    results = benchmark(verify_apps)
    rows = [
        {
            "system": name,
            "mu(phi@a|a)": check.details["achieved"],
            "E[belief]": check.details["expected-belief"],
            "equal": check.conclusion,
        }
        for name, check in results
    ]
    emit(format_table(rows, title="E5: expectation identity across applications"))
    assert all(check.applicable and check.conclusion for _, check in results)
