"""Benchmark: fault-injection probes must be free when injection is off.

PR 10 threaded deterministic fault-injection probes
(:func:`repro.core.faults.maybe_fire`, ``docs/robustness.md``) through
the hot execution stack: the shared-memory mask transport and worker
tasks in ``core/shard.py``, the lazy NumPy import gate in
``core/arraykernel.py`` (hit on every ``dot_bounds`` call and kernel
build in ``numeric="auto"`` mode), and pool submission in
``analysis/sweep.py``.  The probes buy reproducible chaos testing; the
contract is that with **no plan installed** each probe costs one
module-global read, so production runs do not pay for the test
machinery.

This benchmark measures that contract two ways:

* a **probe microbench** — ``maybe_fire`` called in a tight loop, live
  (no plan) vs replaced by a no-op lambda — reporting nanoseconds per
  call, informational;
* the **workload gate** — the ``bench_shard_scaling`` family's dense
  refrain-threshold sweep in ``numeric="auto"`` (the mode whose kernel
  guards call through the probe on every reduction), timed with the
  live ``maybe_fire`` vs with the probe stubbed out of all three
  consuming modules.  The bar: live must be within **2%** of stubbed
  (ratio <= 1.02) on the largest family member, best-of-5 per leg.

The bar is enforced on a full run and advisory in ``--smoke`` (smoke
grids are too small for a 2% resolution against container noise).
Fraction parity of the two legs' rows is asserted unconditionally —
stubbing the probe may never change an answer.

Usage::

    PYTHONPATH=src python benchmarks/bench_fault_overhead.py [--smoke]
"""

from __future__ import annotations

import sys
import time
from typing import Dict, List, Tuple

sys.path.insert(0, "src")  # allow `python benchmarks/bench_fault_overhead.py`

from bench_numeric_fastpath import fs_chain
from bench_shard_scaling import sweep_workload

from importlib import import_module

from repro.analysis.sweep import format_table
from repro.core import arraykernel
from repro.core import shard as shard_module
from repro.core.faults import maybe_fire, set_fault_plan

# ``repro.analysis`` re-exports the ``sweep`` *function*, shadowing the
# submodule attribute — resolve the module itself for patching.
sweep_module = import_module("repro.analysis.sweep")

#: The enforced bar: live maybe_fire within 2% of a stubbed no-op.
OVERHEAD_BAR = 1.02

#: Modules that imported ``maybe_fire`` at top level; stubbing the
#: probe means patching each module's own binding, not ``faults``'.
_CONSUMERS = (shard_module, arraykernel, sweep_module)


def _noop_probe(site, key=None, attempt=None):
    return False


def _with_probe(stub: bool, fn):
    """Run ``fn`` with the live probe or with it stubbed everywhere."""
    if not stub:
        return fn()
    saved = [(module, module.maybe_fire) for module in _CONSUMERS]
    try:
        for module, _ in saved:
            module.maybe_fire = _noop_probe
        return fn()
    finally:
        for module, original in saved:
            module.maybe_fire = original


def probe_microbench(calls: int) -> Dict[str, float]:
    """Nanoseconds per ``maybe_fire`` call, live (no plan) vs no-op."""
    def timed(fn) -> float:
        best = float("inf")
        for _ in range(5):
            start = time.perf_counter()
            for pos in range(calls):
                fn("shm-alloc", pos, 0)
            best = min(best, time.perf_counter() - start)
        return best / calls * 1e9

    return {
        "live_ns": timed(maybe_fire),
        "noop_ns": timed(_noop_probe),
    }


def _timed_leg(
    rounds: int, t_refrain: int, *, stub: bool, repetitions: int
) -> Tuple[float, List[Tuple[object, object, object]]]:
    """Best-of wall seconds + rows for one (live|stubbed) sweep leg."""
    best = float("inf")
    rows = None
    for _ in range(repetitions):
        base = fs_chain(rounds=rounds)
        start = time.perf_counter()
        rows = _with_probe(
            stub, lambda: sweep_workload(base, None, "auto", t_refrain)
        )
        best = min(best, time.perf_counter() - start)
    return best, rows


def overhead_rows(*, smoke: bool = False) -> List[Dict[str, object]]:
    """One row per FS-family member; the last (largest) carries the gate."""
    if smoke:
        members: List[Tuple[int, int]] = [(2, 11)]
        repetitions = 2
    else:
        members = [(2, 41), (4, 41), (6, 41)]
        repetitions = 5
    previous_plan = set_fault_plan(None)  # the disabled-injection contract
    out: List[Dict[str, object]] = []
    try:
        for rounds, t_refrain in members:
            live_s, live_rows = _timed_leg(
                rounds, t_refrain, stub=False, repetitions=repetitions
            )
            stub_s, stub_rows = _timed_leg(
                rounds, t_refrain, stub=True, repetitions=repetitions
            )
            assert live_rows == stub_rows, (
                f"fs-chain[{rounds}]: stubbing maybe_fire changed the rows"
            )
            out.append(
                {
                    "family": f"fs-chain[{rounds}]",
                    "rows": t_refrain,
                    "live_s": live_s,
                    "stub_s": stub_s,
                    "overhead": live_s / stub_s,
                }
            )
    finally:
        set_fault_plan(previous_plan)
    return out


def _display(rows: List[Dict[str, object]]) -> List[Dict[str, object]]:
    rounding = {"live_s": 4, "stub_s": 4, "overhead": 3}
    return [
        {
            key: round(value, rounding[key]) if key in rounding else value
            for key, value in row.items()
        }
        for row in rows
    ]


def _gate_overhead(rows: List[Dict[str, object]], *, smoke: bool) -> int:
    """Enforce live/stub <= 1.02 on the largest member (advisory in smoke)."""
    largest = rows[-1]
    ratio = float(largest["overhead"])
    if ratio <= OVERHEAD_BAR:
        print(
            f"OK: {largest['family']} disabled-injection overhead "
            f"{(ratio - 1) * 100:+.2f}% <= {(OVERHEAD_BAR - 1) * 100:.0f}%"
        )
        return 0
    message = (
        f"{largest['family']} disabled-injection overhead "
        f"{(ratio - 1) * 100:+.2f}% > {(OVERHEAD_BAR - 1) * 100:.0f}%"
    )
    if smoke:
        print(
            f"WARNING (informational): {message} (smoke grids are too "
            "small for a 2% resolution)",
            file=sys.stderr,
        )
        return 0
    print(f"FAIL: {message}", file=sys.stderr)
    return 1


def main(argv: List[str]) -> int:
    smoke = "--smoke" in argv
    mode = "(smoke)" if smoke else "(full)"
    micro = probe_microbench(calls=10_000 if smoke else 200_000)
    print(
        f"maybe_fire probe: {micro['live_ns']:.0f} ns/call live (no plan), "
        f"{micro['noop_ns']:.0f} ns/call no-op stub"
    )
    rows = overhead_rows(smoke=smoke)
    print(
        format_table(
            _display(rows),
            title=f"fault probes: live vs stubbed maybe_fire {mode}",
        )
    )
    return _gate_overhead(rows, smoke=smoke)


# ----------------------------------------------------------------------
# pytest-benchmark entry points (collected by the benchmark session)
# ----------------------------------------------------------------------


def test_fault_overhead_table(benchmark):
    rows = benchmark.pedantic(overhead_rows, rounds=1, iterations=1)
    from conftest import emit

    emit(
        format_table(
            _display(rows), title="fault probes (live vs stubbed)"
        )
    )
    # Parity is asserted inside overhead_rows; the 2% bar stays a
    # script-mode gate (pytest-benchmark containers are too noisy).
    assert rows


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
