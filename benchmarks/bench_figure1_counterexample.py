"""Experiments E2/E3: the Figure 1 mixed-action counterexamples.

E2 (Section 4): for psi = ~does(alpha), belief 1/2 at every acting
point yet mu(psi@alpha | alpha) = 0 — meeting the threshold is not
sufficient without independence.

E3 (Section 6): for phi = does(alpha), mu(phi@alpha | alpha) = 1 but
E[beta@alpha | alpha] = 1/2 — the expectation identity also needs
independence.

The benchmark times the counterexample detection (independence check +
both sides of each claim) and a sweep over mixing probabilities.
"""

from fractions import Fraction

from conftest import emit

from repro import (
    achieved_probability,
    belief_at_action,
    expected_belief,
    is_local_state_independent,
)
from repro.analysis.report import ExperimentRecord, format_experiments
from repro.analysis.sweep import format_table, sweep
from repro.apps.figure1 import AGENT, ALPHA, build_figure1, phi_alpha, psi_not_alpha


def detect_counterexamples():
    system = build_figure1()
    psi, phi = psi_not_alpha(), phi_alpha()
    performing = next(r for r in system.runs if r.performs(AGENT, ALPHA))
    return {
        "psi-belief": belief_at_action(system, AGENT, psi, ALPHA, performing),
        "psi-mu": achieved_probability(system, AGENT, psi, ALPHA),
        "psi-independent": is_local_state_independent(system, psi, AGENT, ALPHA),
        "phi-mu": achieved_probability(system, AGENT, phi, ALPHA),
        "phi-expected": expected_belief(system, AGENT, phi, ALPHA),
    }


def test_figure1_counterexamples(benchmark):
    values = benchmark(detect_counterexamples)

    records = [
        ExperimentRecord.of(
            "E2", "beta_i(psi) when performing alpha", "1/2", values["psi-belief"]
        ),
        ExperimentRecord.of("E2", "mu(psi@alpha | alpha)", 0, values["psi-mu"]),
        ExperimentRecord.of("E3", "mu(phi@alpha | alpha)", 1, values["phi-mu"]),
        ExperimentRecord.of(
            "E3", "E[beta_i(phi)@alpha | alpha]", "1/2", values["phi-expected"]
        ),
    ]
    emit(format_experiments(records))

    assert all(record.matches for record in records)
    assert values["psi-independent"] is False


def mixing_row(mix):
    system = build_figure1(mix=mix)
    phi = phi_alpha()
    return {
        "mu(phi@a|a)": achieved_probability(system, AGENT, phi, ALPHA),
        "E[belief]": expected_belief(system, AGENT, phi, ALPHA),
        "gap": achieved_probability(system, AGENT, phi, ALPHA)
        - expected_belief(system, AGENT, phi, ALPHA),
    }


def test_figure1_mixing_sweep(benchmark):
    rows = benchmark(
        sweep, {"mix": ["1/10", "1/4", "1/2", "3/4", "9/10"]}, mixing_row
    )
    emit(format_table(rows, title="E3 sweep: expectation gap vs mixing probability"))
    # The gap 1 - mix closes only as the action becomes pure.
    for row in rows:
        assert row["gap"] == 1 - Fraction(row["mix"])
