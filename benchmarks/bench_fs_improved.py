"""Experiment E7: the Section 8 improvement FS -> FS'.

Alice refrains from firing after a 'No', raising
mu(both fire | Alice fires) from 99/100 to 990/991 (~0.99899, the
paper's number).  Reproduced two ways — the directly programmed FS'
protocol and the mechanical ``refrain_below_threshold`` transform — and
both must agree exactly.
"""

from fractions import Fraction

from conftest import emit

from repro import achieved_probability
from repro.analysis.report import ExperimentRecord, format_experiments
from repro.analysis.sweep import format_table
from repro.apps.firing_squad import (
    ALICE,
    FIRE,
    THRESHOLD,
    both_fire,
    build_firing_squad,
)
from repro.protocols import refrain_below_threshold


def improvement_pipeline():
    base = build_firing_squad()
    direct = build_firing_squad(improved=True)
    transformed = refrain_below_threshold(base, ALICE, FIRE, both_fire(), THRESHOLD)
    return (
        achieved_probability(base, ALICE, both_fire(), FIRE),
        achieved_probability(direct, ALICE, both_fire(), FIRE),
        achieved_probability(transformed, ALICE, both_fire(), FIRE),
    )


def test_section8_improvement(benchmark):
    base, direct, transformed = benchmark(improvement_pipeline)
    records = [
        ExperimentRecord.of("E7", "FS success", "99/100", base),
        ExperimentRecord.of("E7", "FS' success (direct)", "990/991", direct),
        ExperimentRecord.of("E7", "FS' success (transform)", "990/991", transformed),
    ]
    emit(format_experiments(records))
    assert all(record.matches for record in records)
    assert abs(float(direct) - 0.99899) < 1e-5  # the paper's decimal


def test_improvement_across_loss_rates(benchmark):
    def sweep_loss():
        rows = []
        for loss in ("0.05", "0.1", "0.2", "0.3"):
            base = build_firing_squad(loss=loss)
            improved = refrain_below_threshold(
                base, ALICE, FIRE, both_fire(), THRESHOLD
            )
            rows.append(
                {
                    "loss": loss,
                    "FS": achieved_probability(base, ALICE, both_fire(), FIRE),
                    "FS'": achieved_probability(improved, ALICE, both_fire(), FIRE),
                }
            )
        return rows

    rows = benchmark(sweep_loss)
    emit(format_table(rows, title="E7: refraining helps at every loss rate"))
    for row in rows:
        assert row["FS'"] >= row["FS"]
