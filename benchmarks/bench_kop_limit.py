"""Experiment E10: the p = 1 limit — Lemma F.1 recovers the classical KoP.

When a condition surely holds at an action (mu = 1), the agent must
*know* it when acting: belief 1 with probability 1.  Verified on a
lossless firing squad (where coordination is certain) and on the judge
with a certain prior, and cross-checked against the classical-KoP
checker (knowledge formulation), which must agree.
"""

from conftest import emit

from repro import (
    achieved_probability,
    check_kop,
    check_lemma_f_1,
    threshold_met_measure,
)
from repro.analysis.sweep import format_table
from repro.apps.firing_squad import ALICE, FIRE, both_fire, build_firing_squad
from repro.apps.judge import CONVICT, JUDGE, build_judge, guilty


def kop_limit_cases():
    lossless = build_firing_squad(loss=0)
    certain_judge = build_judge(guilt_prior=1, signals=2, conviction_threshold=0)
    return [
        ("lossless firing squad", lossless, ALICE, FIRE, both_fire()),
        ("certain-prior judge", certain_judge, JUDGE, CONVICT, guilty()),
    ]


def run_kop_limit():
    results = []
    for name, system, agent, action, phi in kop_limit_cases():
        lemma = check_lemma_f_1(system, agent, action, phi)
        kop = check_kop(system, agent, action, phi)
        results.append((name, system, agent, action, phi, lemma, kop))
    return results


def test_kop_limit(benchmark):
    results = benchmark(run_kop_limit)
    rows = []
    for name, system, agent, action, phi, lemma, kop in results:
        rows.append(
            {
                "system": name,
                "mu(phi@a|a)": achieved_probability(system, agent, phi, action),
                "mu(belief=1|a)": threshold_met_measure(
                    system, agent, phi, action, 1
                ),
                "KoP knows": kop.known_when_acting,
            }
        )
        assert lemma.applicable and lemma.conclusion
        assert kop.necessary and kop.verified
        assert kop.known_when_acting and kop.belief_one_when_acting
    emit(format_table(rows, title="E10: p = 1 forces knowledge (KoP recovered)"))


def test_kop_fails_gracefully_below_one(benchmark):
    def below_one():
        system = build_firing_squad()  # lossy: mu = 0.99 < 1
        return (
            check_lemma_f_1(system, ALICE, FIRE, both_fire()),
            check_kop(system, ALICE, FIRE, both_fire()),
        )

    lemma, kop = benchmark(below_one)
    # Premises fail; both checkers are vacuous, neither reports a bug.
    assert not lemma.premises["certain-constraint"]
    assert lemma.verified
    assert not kop.necessary
    assert kop.verified
