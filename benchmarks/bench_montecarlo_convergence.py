"""Experiment E12: Monte-Carlo estimates converge to the exact engine.

For every headline quantity of the firing squad, the sampling
estimators must land within their own Hoeffding intervals of the exact
rational values, with error shrinking as the sample budget grows.  The
benchmark times the sampling throughput.
"""

from conftest import emit

from repro import achieved_probability, expected_belief, threshold_met_measure
from repro.analysis import (
    estimate_achieved,
    estimate_expected_belief,
    estimate_threshold_met,
)
from repro.analysis.sweep import format_table
from repro.apps.firing_squad import (
    ALICE,
    FIRE,
    THRESHOLD,
    both_fire,
    build_firing_squad,
)

SYSTEM = build_firing_squad()
PHI = both_fire()


def test_achieved_estimator_converges(benchmark):
    exact = float(achieved_probability(SYSTEM, ALICE, PHI, FIRE))

    def estimate():
        return estimate_achieved(SYSTEM, ALICE, PHI, FIRE, samples=3000, seed=21)

    est = benchmark(estimate)
    assert est.consistent_with(exact)


def test_expected_belief_estimator_converges(benchmark):
    exact = float(expected_belief(SYSTEM, ALICE, PHI, FIRE))

    def estimate():
        return estimate_expected_belief(
            SYSTEM, ALICE, PHI, FIRE, samples=3000, seed=22
        )

    est = benchmark(estimate)
    assert est.consistent_with(exact)


def test_error_shrinks_with_budget(benchmark):
    exact = float(threshold_met_measure(SYSTEM, ALICE, PHI, FIRE, THRESHOLD))

    def ladder():
        return [
            (
                samples,
                estimate_threshold_met(
                    SYSTEM, ALICE, PHI, FIRE, THRESHOLD, samples=samples, seed=23
                ),
            )
            for samples in (250, 1000, 4000)
        ]

    results = benchmark(ladder)
    rows = [
        {
            "samples": samples,
            "estimate": est.value,
            "abs error": abs(est.value - exact),
            "hoeffding": est.hoeffding,
        }
        for samples, est in results
    ]
    emit(format_table(rows, title=f"E12: convergence to exact {exact}"))
    for samples, est in results:
        assert est.consistent_with(exact)
    # The certified interval tightens monotonically with the budget.
    widths = [est.hoeffding for _, est in results]
    assert widths == sorted(widths, reverse=True)
