"""Benchmark: the two-tier numeric kernel on dense threshold sweeps.

PR 5 added a float fast path with exact-on-demand escalation
(``core/lazyprob.py``, the ``numeric=`` knob; see ``docs/numerics.md``):
threshold verdicts are decided in float whenever a conservative error
bound certifies them, and escalate to exact integer/rational
arithmetic only inside the round-off uncertainty window.  The workload
it exists for is the dense-grid regime, where thousands of exact
rationals are computed only to be compared against thresholds.

This benchmark runs that regime over the **FS family** — the paper's
Example 1 generalized to ``rounds`` acknowledgement rounds, so the
number of Alice's acting local states (and with it the belief spectrum
a threshold grid must separate) grows with the member:

* a dense **refrain-threshold sweep** (Section 8): one derived system
  per threshold, belief guards and achieved/coverage measures per row;
* a dense **belief-threshold verdict grid** (Sections 5/7):
  ``mu(beta >= p | alpha)`` for thousands of bounds, on the base
  protocol and on refrained variants (`threshold_met_measures`);
* **theorem-5.1 / 7.1 checks** over an epsilon grid on each of those
  systems.

Both modes run the identical code path; only ``numeric=`` differs.
**Parity is enforced in every mode**: every verdict, premise, and
measure of the auto run must equal the exact run's bit-for-bit (lazy
values are forced through ``exact_value``).  Escalation counters must
be positive — the grids deliberately include bounds *exactly equal* to
acting beliefs and bounds a hair (1e-17-scale) away, which float alone
cannot separate — proving the fallback fires.

On top of the exact-vs-auto sweep, each row times the **dense verdict
grid in isolation**, warm-cached, under both auto-mode kernels: the
PR 5 scalar filter (``kernel="scalar"``, one ``LazyProb`` comparison
per bound per acting state) against the sorted/bisected array kernel
(``kernel="sorted"``, the default — one batched bracket per grid).
That ratio (``grid_speedup``) carries the >=3x acceptance bar;
rows also report the batched certification counters
(``cells_certified``/``cells_escalated``/``array_batches``) from
:func:`repro.core.lazyprob.numeric_stats`.

The historic whole-workload exact-vs-auto ratio (``speedup``) is still
printed but is informational only: the bisected kernel and the
per-met-mask measure memo accelerate *exact* mode just as much (both
modes share them), so the modes now converge on grid-heavy workloads
— exactly the point.  The grid bar is enforced on the full run with
NumPy and advisory in ``--smoke`` or on the pure-Python fallback (CI
wall-clock on tiny workloads is too noisy for a hard gate, and the
acceptance target is the array backend).

Usage::

    PYTHONPATH=src python benchmarks/bench_numeric_fastpath.py [--smoke]

or under pytest (collected by the benchmark session via the local
``bench_*`` convention).
"""

from __future__ import annotations

import sys
import time
from fractions import Fraction
from typing import Dict, List, Tuple

sys.path.insert(0, "src")  # allow `python benchmarks/bench_numeric_fastpath.py`

from repro.analysis.sweep import format_table, refrain_threshold_sweep
from repro.core.arraykernel import using_numpy
from repro.core.atoms import does_
from repro.core.beliefs import threshold_met_measures
from repro.core.engine import SystemIndex
from repro.core.facts import Fact
from repro.core.lazyprob import exact_value, numeric_stats, reset_numeric_stats
from repro.core.pps import PPS
from repro.core.theorems import check_lemma_5_1, check_theorem_7_1
from repro.messaging.channels import LossyChannel
from repro.messaging.messages import Message, Move
from repro.messaging.network import RecordingState, RoundProtocol
from repro.messaging.system import MessagePassingSystem
from repro.protocols.distribution import Distribution
from repro.protocols.strategies import refrain_below_threshold

ALICE = "alice"
BOB = "bob"
FIRE = "fire"


# ----------------------------------------------------------------------
# The FS family: Example 1 with a configurable acknowledgement chain.
# rounds=2 is the paper's shape (one ack round); each extra round gives
# Bob another lossy acknowledgement, multiplying Alice's distinct
# information states at fire time (L ~ 2^rounds acting states).
# ----------------------------------------------------------------------


class ChainAlice(RoundProtocol):
    """Alice: send two messages in round 0 (if go), fire at the horizon."""

    def __init__(self, rounds: int) -> None:
        self.rounds = rounds

    def step(self, local: RecordingState) -> Move:
        go = local.payload
        t = local.rounds_elapsed
        if t == 0 and go == 1:
            return Move.sending(
                Message(ALICE, BOB, "m1"), Message(ALICE, BOB, "m2")
            )
        if t == self.rounds and go == 1:
            return Move.acting(FIRE)
        return Move()

    def update(self, local, move, delivered):
        return local.observe(move.action, delivered)


class ChainBob(RoundProtocol):
    """Bob: acknowledge every round, fire at the horizon iff round 0 arrived."""

    def __init__(self, rounds: int) -> None:
        self.rounds = rounds

    def step(self, local: RecordingState) -> Move:
        t = local.rounds_elapsed
        if 1 <= t < self.rounds:
            reply = "Yes" if local.received(0) else "No"
            return Move.sending(Message(BOB, ALICE, reply))
        if t == self.rounds and local.received(0):
            return Move.acting(FIRE)
        return Move()

    def update(self, local, move, delivered):
        return local.observe(move.action, delivered)


def fs_chain(loss: str = "0.1", rounds: int = 2) -> PPS:
    """Compile one FS-family member."""
    initial = {
        (RecordingState(0), RecordingState(None)): Fraction(1, 2),
        (RecordingState(1), RecordingState(None)): Fraction(1, 2),
    }
    return MessagePassingSystem(
        agents=[ALICE, BOB],
        protocols={ALICE: ChainAlice(rounds), BOB: ChainBob(rounds)},
        channel=LossyChannel(loss),
        initial=Distribution(initial),
        horizon=rounds + 1,
        name=f"fs-chain[{rounds}]",
    ).compile()


def both_fire() -> Fact:
    return does_(ALICE, FIRE) & does_(BOB, FIRE)


# ----------------------------------------------------------------------
# The dense workload, identical in every mode.
# ----------------------------------------------------------------------


def _boundary_bounds(pps: PPS, phi: Fact) -> List[Fraction]:
    """Engineered escalation cases: bounds the float tier cannot decide.

    For two acting beliefs ``b``: the bound ``b`` itself (equality —
    only exact arithmetic can prove ``belief >= b``) and ``b + 1e-17``
    (within double round-off of ``b``, so the filter must escalate to
    see that the belief now misses the bound).
    """
    index = SystemIndex.of(pps)
    beliefs = sorted(
        {index.belief(ALICE, phi, local) for local in index.state_cells(ALICE, FIRE)}
    )
    picked = [b for b in beliefs if 0 < b < 1][:2]
    out: List[Fraction] = []
    for b in picked:
        out.append(b)
        out.append(b + Fraction(1, 10**17))
    return out


def run_workload(
    base: PPS, numeric: str, *, t_refrain: int, t_bounds: int, n_eps: int
) -> List[object]:
    """The dense sweep in one mode; returns every verdict and measure.

    All returned quantities are normalized through ``exact_value`` so
    the two modes' outputs are comparable with plain ``==``.
    """
    phi = both_fire()
    out: List[object] = []
    thresholds = [Fraction(k, t_refrain - 1) for k in range(t_refrain)]
    rows = refrain_threshold_sweep(
        base, ALICE, phi, FIRE, thresholds, numeric=numeric
    )
    out.append(
        [
            (row["threshold"], exact_value(row["achieved"]), exact_value(row["coverage"]))
            for row in rows
        ]
    )
    bounds = [Fraction(k, t_bounds - 1) for k in range(t_bounds)]
    bounds += _boundary_bounds(base, phi)
    # The verdict grid runs on the base protocol and on every 8th
    # refrained variant of the sweep.
    systems: List[PPS] = [base]
    for k in range(4, t_refrain, 8):
        systems.append(
            refrain_below_threshold(
                base, ALICE, FIRE, phi, thresholds[k], numeric=numeric
            )
        )
    eps_grid = [Fraction(k, n_eps) for k in range(1, n_eps)]
    for system in systems:
        measures = threshold_met_measures(
            system, ALICE, phi, FIRE, bounds, numeric=numeric
        )
        out.append([exact_value(m) for m in measures])
        for eps in eps_grid:
            c1 = check_lemma_5_1(system, ALICE, FIRE, phi, 1 - eps, numeric=numeric)
            c2 = check_theorem_7_1(system, ALICE, FIRE, phi, eps, eps, numeric=numeric)
            out.append(
                (
                    c1.verified,
                    dict(c1.premises),
                    exact_value(c1.details["achieved"]),
                    c2.verified,
                    dict(c2.premises),
                    exact_value(c2.details["strong-belief-measure"]),
                )
            )
    return out


def _grid_phase(
    base: PPS, bounds: List[Fraction], repetitions: int
) -> Tuple[float, float]:
    """Time the dense verdict grid alone: scalar filter vs sorted kernel.

    Both runs are auto mode on the same warm system — posteriors,
    weight bounds, and the sorted threshold kernel are cached before
    the timed region — so the measurement isolates the per-grid cost
    the bisected kernel removes: O(G*L) filtered comparisons down to
    O(G log L) bracketed lookups.  Elementwise exact parity between
    the two kernels is asserted on the warm-up pass.
    """
    phi = both_fire()
    scalar_warm = threshold_met_measures(
        base, ALICE, phi, FIRE, bounds, numeric="auto", kernel="scalar"
    )
    sorted_warm = threshold_met_measures(
        base, ALICE, phi, FIRE, bounds, numeric="auto"
    )
    assert (
        [exact_value(m) for m in scalar_warm]
        == [exact_value(m) for m in sorted_warm]
    ), "scalar and sorted kernels disagree on the dense grid"
    scalar_s = sorted_s = float("inf")
    for _ in range(max(repetitions, 2)):
        start = time.perf_counter()
        threshold_met_measures(
            base, ALICE, phi, FIRE, bounds, numeric="auto", kernel="scalar"
        )
        scalar_s = min(scalar_s, time.perf_counter() - start)
        start = time.perf_counter()
        threshold_met_measures(base, ALICE, phi, FIRE, bounds, numeric="auto")
        sorted_s = min(sorted_s, time.perf_counter() - start)
    return scalar_s, sorted_s


def sweep_rows(*, smoke: bool = False) -> List[Dict[str, object]]:
    """One row per FS-family member; the last (largest) carries the gate."""
    if smoke:
        members: List[Tuple[int, int, int, int]] = [(2, 21, 257, 6)]
    else:
        members = [(2, 41, 1025, 8), (4, 41, 2049, 8), (6, 41, 4097, 8)]
    out: List[Dict[str, object]] = []
    for rounds, t_refrain, t_bounds, n_eps in members:
        grid = dict(t_refrain=t_refrain, t_bounds=t_bounds, n_eps=n_eps)
        # Fresh systems per mode and per repetition: no cross-mode or
        # cross-repetition cache sharing, and compile time stays
        # outside the timed region.  Best-of-2 damps scheduler noise.
        repetitions = 1 if smoke else 2
        exact_s = auto_s = float("inf")
        for _ in range(repetitions):
            base_exact = fs_chain(rounds=rounds)
            start = time.perf_counter()
            results_exact = run_workload(base_exact, "exact", **grid)
            exact_s = min(exact_s, time.perf_counter() - start)

            base_auto = fs_chain(rounds=rounds)
            reset_numeric_stats()
            start = time.perf_counter()
            results_auto = run_workload(base_auto, "auto", **grid)
            auto_s = min(auto_s, time.perf_counter() - start)
            stats = numeric_stats()

            # Bit-exact parity of every verdict, premise, and measure
            # — enforced in every mode and repetition, smoke included.
            assert results_exact == results_auto, (
                f"fs-chain[{rounds}]: auto-mode results diverged from exact"
            )
            # Engineered boundary bounds force the fallback to fire.
            assert stats.escalations > 0, (
                f"fs-chain[{rounds}]: no escalations — the boundary "
                "cases did not reach exact arithmetic"
            )
        # The dense-grid phase in isolation, on the warm auto system.
        grid_bounds = [Fraction(k, t_bounds - 1) for k in range(t_bounds)]
        grid_bounds += _boundary_bounds(base_auto, both_fire())
        grid_scalar_s, grid_sorted_s = _grid_phase(
            base_auto, grid_bounds, repetitions
        )
        index = SystemIndex.of(base_exact)
        out.append(
            {
                "family": f"fs-chain[{rounds}]",
                "runs": index.run_count,
                "acting_states": len(index.state_cells(ALICE, FIRE)),
                "grid": f"{t_refrain}x{t_bounds}",
                "exact_s": exact_s,
                "auto_s": auto_s,
                "speedup": exact_s / auto_s,
                "grid_scalar_s": grid_scalar_s,
                "grid_sorted_s": grid_sorted_s,
                "grid_speedup": grid_scalar_s / grid_sorted_s,
                "cells_certified": stats.cells_certified,
                "cells_escalated": stats.cells_escalated,
                "array_batches": stats.array_batches,
                "escalations": stats.escalations,
                "comparisons": stats.comparisons,
                "exact_match": True,
            }
        )
    return out


def _display(rows: List[Dict[str, object]]) -> List[Dict[str, object]]:
    """Rounded copies of benchmark rows for table printing only."""
    rounding = {
        "exact_s": 4,
        "auto_s": 4,
        "speedup": 1,
        "grid_scalar_s": 4,
        "grid_sorted_s": 4,
        "grid_speedup": 1,
    }
    return [
        {
            key: round(value, rounding[key]) if key in rounding else value
            for key, value in row.items()
        }
        for row in rows
    ]


def _gate_speedup(rows: List[Dict[str, object]], *, smoke: bool) -> int:
    """Enforce the >=3x bars on the largest (densest) family member.

    The enforced bar is the dense-grid sorted-vs-scalar speedup: the
    bisected array kernel against the historic per-state scalar
    filter, both auto mode, warm caches.  It is advisory in smoke and
    on the pure-Python fallback (the acceptance target is the
    NumPy-backed kernel).  The whole-workload exact-vs-auto ratio is
    always informational — the kernel and the measure memo accelerate
    exact mode too, so the modes converge there by design.
    """
    largest = rows[-1]
    bars = [
        ("two-tier sweep", float(largest["speedup"]), True),
        (
            "dense-grid sorted-vs-scalar",
            float(largest["grid_speedup"]),
            smoke or not using_numpy(),
        ),
    ]
    status = 0
    for name, value, advisory in bars:
        if value < 3:
            message = (
                f"numeric fast path {largest['family']} {name} speedup "
                f"{value:.2f}x < 3x"
            )
            if advisory:
                print(f"WARNING (informational): {message}", file=sys.stderr)
            else:
                print(f"FAIL: {message}", file=sys.stderr)
                status = 1
        else:
            print(
                f"OK: {largest['family']} {name} speedup {value:.1f}x >= 3x"
            )
    print(
        f"({largest['grid']} grid, {largest['cells_certified']} cells "
        f"certified / {largest['cells_escalated']} escalated over "
        f"{largest['array_batches']} batches, {largest['escalations']} "
        "escalations, verdicts and measures bit-identical to exact)"
    )
    return status


def main(argv: List[str]) -> int:
    smoke = "--smoke" in argv
    mode = "(smoke)" if smoke else "(full)"
    rows = sweep_rows(smoke=smoke)
    print(
        format_table(
            _display(rows),
            title=f"numeric fast path: exact vs auto on dense threshold sweeps {mode}",
        )
    )
    return _gate_speedup(rows, smoke=smoke)


# ----------------------------------------------------------------------
# pytest-benchmark entry points (collected by the benchmark session)
# ----------------------------------------------------------------------


def test_numeric_fastpath_table(benchmark):
    rows = benchmark.pedantic(sweep_rows, rounds=1, iterations=1)
    from conftest import emit

    emit(
        format_table(
            _display(rows), title="numeric fast path (exact vs auto)"
        )
    )
    assert all(row["exact_match"] for row in rows)
    assert all(row["escalations"] > 0 for row in rows)
    assert all(row["array_batches"] > 0 for row in rows)
    assert all(row["cells_escalated"] > 0 for row in rows)
    if using_numpy():
        # unrounded: 2.95x must not pass
        assert rows[-1]["grid_speedup"] >= 3


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
