"""Ablation: the refrain-threshold design choice of Section 8.

DESIGN.md calls out "refrain when under-confident" as the paper's one
design knob.  This bench sweeps the knob — the belief threshold below
which the agent refrains — and compares against the computed optimum
(act only at the top-belief states):

* threshold 0 is the original FS protocol (99/100);
* any threshold in (0, 0.99] yields FS' (990/991);
* any threshold in (0.99, 1] yields the Yes-only protocol (value 1);
* the frontier/optimum analysis finds these plateaus directly.

The trade-off is coverage: raising the value shrinks the probability
that the squad ever fires.  The table makes the whole trade explicit.
"""

from fractions import Fraction

from conftest import emit

from repro import achievable_frontier, optimal_acting_states
from repro.analysis.sweep import format_table, refrain_threshold_sweep
from repro.apps.firing_squad import ALICE, FIRE, both_fire, build_firing_squad

SYSTEM = build_firing_squad()
PHI = both_fire()


def test_refrain_threshold_ablation(benchmark):
    # Every row is a derived system over SYSTEM's tree: one shared
    # parent index, O(overridden edges) per threshold.
    def ablation():
        return refrain_threshold_sweep(
            SYSTEM, ALICE, PHI, FIRE,
            ("0", "1/2", "0.95", "0.99", "0.995", "1"),
        )

    rows = benchmark(ablation)
    emit(
        format_table(
            rows, title="Ablation: refrain threshold vs value vs coverage"
        )
    )
    values = [row["achieved"] for row in rows]
    assert values[0] == Fraction(99, 100)
    assert Fraction(990, 991) in values
    assert values[-1] == 1
    # Value is monotone in the threshold; coverage is antitone.
    assert values == sorted(values)
    coverage = [row["coverage"] for row in rows]
    assert coverage == sorted(coverage, reverse=True)


def test_frontier_matches_threshold_plateaus(benchmark):
    frontier = benchmark(achievable_frontier, SYSTEM, ALICE, PHI, FIRE)
    assert [point.value for point in frontier] == [
        1,
        Fraction(990, 991),
        Fraction(99, 100),
    ]
    best = optimal_acting_states(SYSTEM, ALICE, PHI, FIRE)
    assert best.value == 1
    emit(
        "Ablation: optimum acts only on 'Yes' "
        f"(mass {best.acting_mass}, value {best.value})"
    )
