"""Ablation: the refrain-threshold design choice of Section 8.

DESIGN.md calls out "refrain when under-confident" as the paper's one
design knob.  This bench sweeps the knob — the belief threshold below
which the agent refrains — and compares against the computed optimum
(act only at the top-belief states):

* threshold 0 is the original FS protocol (99/100);
* any threshold in (0, 0.99] yields FS' (990/991);
* any threshold in (0.99, 1] yields the Yes-only protocol (value 1);
* the frontier/optimum analysis finds these plateaus directly.

The trade-off is coverage: raising the value shrinks the probability
that the squad ever fires.  The table makes the whole trade explicit.
"""

from fractions import Fraction

from conftest import emit

from repro import (
    achievable_frontier,
    achieved_probability,
    optimal_acting_states,
    performing_runs,
)
from repro.analysis.sweep import format_table
from repro.apps.firing_squad import ALICE, FIRE, both_fire, build_firing_squad
from repro.core.measure import probability
from repro.protocols import refrain_below_threshold

SYSTEM = build_firing_squad()
PHI = both_fire()


def threshold_row(threshold):
    if Fraction(threshold) == 0:
        modified = SYSTEM
    else:
        modified = refrain_below_threshold(SYSTEM, ALICE, FIRE, PHI, threshold)
    return {
        "mu(both|fireA)": achieved_probability(modified, ALICE, PHI, FIRE),
        "P(fireA)": probability(
            modified, performing_runs(modified, ALICE, FIRE)
        ),
    }


def test_refrain_threshold_ablation(benchmark):
    def ablation():
        return [
            {"threshold": threshold, **threshold_row(threshold)}
            for threshold in ("0", "1/2", "0.95", "0.99", "0.995", "1")
        ]

    rows = benchmark(ablation)
    emit(
        format_table(
            rows, title="Ablation: refrain threshold vs value vs coverage"
        )
    )
    values = [row["mu(both|fireA)"] for row in rows]
    assert values[0] == Fraction(99, 100)
    assert Fraction(990, 991) in values
    assert values[-1] == 1
    # Value is monotone in the threshold; coverage is antitone.
    assert values == sorted(values)
    coverage = [row["P(fireA)"] for row in rows]
    assert coverage == sorted(coverage, reverse=True)


def test_frontier_matches_threshold_plateaus(benchmark):
    frontier = benchmark(achievable_frontier, SYSTEM, ALICE, PHI, FIRE)
    assert [point.value for point in frontier] == [
        1,
        Fraction(990, 991),
        Fraction(99, 100),
    ]
    best = optimal_acting_states(SYSTEM, ALICE, PHI, FIRE)
    assert best.value == 1
    emit(
        "Ablation: optimum acts only on 'Yes' "
        f"(mass {best.acting_mass}, value {best.value})"
    )
