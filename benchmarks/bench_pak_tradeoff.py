"""Experiments E6/E8: the PAK bound (Theorem 7.1 / Corollary 7.2).

E6 sweeps the (delta, epsilon) surface of Theorem 7.1 on the firing
squad: whenever mu >= 1 - delta*eps the measured strong-belief mass
clears 1 - delta.  E8 is the paper's Section 7 reading: FS satisfies
mu >= 0.99 = 1 - 0.1^2, so Alice must believe to degree >= 0.9 with
probability >= 0.9 (measured: 0.991).
"""

from fractions import Fraction

from conftest import emit

from repro import (
    achieved_probability,
    check_corollary_7_2,
    check_theorem_7_1,
    pak_level,
    threshold_met_measure,
)
from repro.analysis.report import ExperimentRecord, format_experiments
from repro.analysis.sweep import format_table, sweep
from repro.apps.firing_squad import ALICE, FIRE, both_fire, build_firing_squad

SYSTEM = build_firing_squad()
PHI = both_fire()


def surface_row(delta, epsilon):
    check = check_theorem_7_1(SYSTEM, ALICE, FIRE, PHI, delta, epsilon)
    return {
        "premise mu>=1-d*e": check.premises["high-probability-constraint"],
        "mu(belief>=1-e)": check.details["strong-belief-measure"],
        "bound 1-d": 1 - Fraction(delta),
        "verified": check.verified,
    }


def test_theorem_71_surface(benchmark):
    grid = {
        "delta": ["1/20", "1/10", "1/4", "1/2"],
        "epsilon": ["1/20", "1/10", "1/4", "1/2"],
    }
    rows = benchmark(sweep, grid, surface_row)
    emit(format_table(rows, title="E6: Theorem 7.1 (delta, epsilon) surface on FS"))
    assert all(row["verified"] for row in rows)
    # The paper's binding point: delta = eps = 0.1 has a true premise
    # and the conclusion must hold.
    binding = next(
        row for row in rows if row["delta"] == "1/10" and row["epsilon"] == "1/10"
    )
    assert binding["premise mu>=1-d*e"]
    assert binding["mu(belief>=1-e)"] >= binding["bound 1-d"]


def test_corollary_72_pak_reading(benchmark):
    def pak_reading():
        check = check_corollary_7_2(SYSTEM, ALICE, FIRE, PHI, "0.1")
        return check

    check = benchmark(pak_reading)
    records = [
        ExperimentRecord.of(
            "E8",
            "mu(both | fireA) >= 1 - 0.1^2",
            "99/100",
            achieved_probability(SYSTEM, ALICE, PHI, FIRE),
        ),
        ExperimentRecord.of(
            "E8",
            "mu(belief >= 0.9 | fireA)",
            None,
            check.details["strong-belief-measure"],
            note="paper: must be >= 0.9; measured 0.991",
        ),
    ]
    emit(format_experiments(records))
    assert check.applicable and check.conclusion
    assert check.details["strong-belief-measure"] >= Fraction(9, 10)


def test_pak_level_frontier(benchmark):
    """PAK levels across constraint qualities (the p' = 1-sqrt(1-p) curve)."""

    def frontier():
        rows = []
        for loss in ("0.05", "0.1", "0.2", "0.3"):
            system = build_firing_squad(loss=loss)
            quality = achieved_probability(system, ALICE, PHI, FIRE)
            level = pak_level(quality)
            rows.append(
                {
                    "loss": loss,
                    "quality": quality,
                    "pak level": level,
                    "mu(belief>=level)": threshold_met_measure(
                        system, ALICE, PHI, FIRE, level
                    ),
                }
            )
        return rows

    rows = benchmark(frontier)
    emit(format_table(rows, title="E6: PAK frontier — level met with measure >= level"))
    for row in rows:
        assert row["mu(belief>=level)"] >= row["pak level"]
