"""Benchmark: reweighted-system sweeps vs full per-row recompiles.

PR 9 split the engine index by *dependency class*: reweighting an edge
probability changes neither tree shape, states, nor action labels, so
a ``ReweightedPPS`` (``drift_loss``, ``scale_adversary``,
``condition_on``) inherits every shape-dependent table of the parent's
``SystemIndex`` by reference and rebuilds only the integer weight
vector, prefix table, and array kernels.  The motivating workload is
the adversary-parameter sweep: hundreds of rows that differ from one
parent system only in the channel loss rate.

This benchmark sweeps the FS loss rate densely through both paths:

* **derived** (the default): every row is ``drift_loss(base, p)`` — a
  ``ReweightedPPS`` over the shared tree, measured through the
  weight-split index (``reweight_sweep``);
* **recompiled** (the baseline): every row pays the historic
  ``build_firing_squad(loss=p)`` protocol compile plus a cold index
  build.

Every row pair must agree ``Fraction``-exactly on the achieved
probability and retained coverage — parity is enforced in **every**
numeric mode (exact, auto with ``LazyProb`` cells normalized through
``exact()``, and float compared bitwise) and for the fork-parallel
sweep path.  The ≥3x speedup bar on the largest (densest) family
member is enforced on the full run and advisory in ``--smoke`` (CI
wall-clock on tiny workloads is too noisy for a hard gate).

Usage::

    PYTHONPATH=src python benchmarks/bench_reweight_sweep.py [--smoke]

or under pytest (collected by the benchmark session via the local
``bench_*`` convention).
"""

from __future__ import annotations

import sys
import time
from fractions import Fraction
from typing import Dict, List, Sequence

sys.path.insert(0, "src")  # allow `python benchmarks/bench_reweight_sweep.py`

from repro import achieved_probability, performing_runs, probability
from repro.analysis.sweep import format_table, reweight_sweep
from repro.apps.firing_squad import (
    ALICE,
    FIRE,
    both_fire,
    build_firing_squad,
    drift_loss,
)
from repro.core.lazyprob import LazyProb

Row = Dict[str, object]


def _measure(system, *, numeric: str = "exact") -> Row:
    """The per-row quantities: achieved probability and coverage."""
    return {
        "achieved": achieved_probability(
            system, ALICE, both_fire(), FIRE, numeric=numeric
        ),
        # repro: allow[RP007] coverage stays exact in every mode: the
        # module-level probability() takes no numeric= knob, and the
        # parity assertions compare the cell Fraction-exactly.
        "coverage": probability(system, performing_runs(system, ALICE, FIRE)),
    }


def _interior_grid(steps: int) -> List[Fraction]:
    """``steps - 1`` loss rates strictly inside (0, 1).

    The boundaries are excluded deliberately: at loss 0/1 a recompile
    prunes the impossible branches while the derived system keeps their
    zero-weight run slots — the measures still agree (asserted by
    ``tests/test_reweight.py``), but the independence premises divide
    by dead-cell occupancy, so the swept quantities stay interior.
    """
    return [Fraction(k, steps) for k in range(1, steps)]


def _recompiled_rows(
    go_probability, values: Sequence[Fraction], *, numeric: str = "exact"
) -> List[Row]:
    """The baseline: one full protocol compile + cold index per row."""
    return [
        {
            "loss": value,
            **_measure(
                build_firing_squad(loss=value, go_probability=go_probability),
                numeric=numeric,
            ),
        }
        for value in values
    ]


def _norm(cell: object) -> object:
    """Normalize auto-mode cells: LazyProb compares by its exact value."""
    return cell.exact() if isinstance(cell, LazyProb) else cell


def _norm_rows(rows: Sequence[Row]) -> List[Row]:
    return [{key: _norm(value) for key, value in row.items()} for row in rows]


def assert_all_mode_parity(go_probability, values: Sequence[Fraction]) -> None:
    """Derived rows equal recompiled rows in every numeric mode."""
    base = build_firing_squad(go_probability=go_probability)
    for numeric in ("exact", "auto", "float"):
        derived = reweight_sweep(
            base, drift_loss, values, _measure, param="loss", numeric=numeric
        )
        recompiled = _recompiled_rows(go_probability, values, numeric=numeric)
        assert _norm_rows(derived) == _norm_rows(recompiled), (
            f"reweight sweep parity broken in numeric={numeric!r}"
        )


def sweep_rows(*, smoke: bool = False) -> List[Row]:
    """One row per FS family member; the last (largest) carries the gate."""
    if smoke:
        members = [("fs(go=0.5)", "0.5", 40)]
    else:
        members = [
            ("fs(go=0.3)", "0.3", 80),
            ("fs(go=0.7)", "0.7", 160),
            ("fs(go=0.5)", "0.5", 240),
        ]
    out: List[Row] = []
    for name, go, steps in members:
        values = _interior_grid(steps)
        # Parity in every numeric mode on a sub-grid (every 8th value):
        # the full grids below re-assert exact parity row-for-row.
        assert_all_mode_parity(go, values[::8])

        base = build_firing_squad(go_probability=go)
        start = time.perf_counter()
        derived_rows = reweight_sweep(
            base, drift_loss, values, _measure, param="loss"
        )
        derived_s = time.perf_counter() - start

        start = time.perf_counter()
        recompiled_rows = _recompiled_rows(go, values)
        recompiled_s = time.perf_counter() - start

        # Fraction-exact parity of every swept quantity, every row —
        # serial, recompiled, and the fork-parallel sweep path.
        assert derived_rows == recompiled_rows, f"{name}: sweep parity"
        parallel_rows = reweight_sweep(
            base, drift_loss, values, _measure, param="loss", parallel=2
        )
        assert parallel_rows == derived_rows, f"{name}: parallel parity"

        system = build_firing_squad(go_probability=go)
        out.append(
            {
                "family": name,
                "rows": len(values),
                "runs": system.run_count(),
                "nodes": system.node_count(),
                "derived_s": derived_s,
                "recompiled_s": recompiled_s,
                "speedup": recompiled_s / derived_s,
                "exact_match": True,
            }
        )
    return out


def _display(rows: List[Row]) -> List[Row]:
    """Rounded copies of benchmark rows for table printing only."""
    rounding = {"derived_s": 4, "recompiled_s": 4, "speedup": 1}
    return [
        {
            key: round(value, rounding[key]) if key in rounding else value
            for key, value in row.items()
        }
        for row in rows
    ]


def _gate_speedup(rows: List[Row], *, smoke: bool) -> int:
    """Enforce the ≥3x bar on the largest (densest) family member."""
    largest = rows[-1]
    if largest["speedup"] < 3:
        message = (
            f"reweight sweep {largest['family']} speedup "
            f"{largest['speedup']:.2f}x < 3x"
        )
        if smoke:
            print(f"WARNING (smoke, informational): {message}", file=sys.stderr)
            return 0
        print(f"FAIL: {message}", file=sys.stderr)
        return 1
    print(
        f"OK: {largest['family']} reweight-sweep speedup "
        f"{largest['speedup']:.1f}x >= 3x "
        f"({largest['rows']} loss rates, Fraction-exact in every "
        "numeric mode, parallel path identical)"
    )
    return 0


def main(argv: List[str]) -> int:
    smoke = "--smoke" in argv
    mode = "(smoke)" if smoke else "(full)"
    rows = sweep_rows(smoke=smoke)
    print(
        format_table(
            _display(rows),
            title=f"reweight sweep: weight-split indices vs full recompiles {mode}",
        )
    )
    return _gate_speedup(rows, smoke=smoke)


# ----------------------------------------------------------------------
# pytest-benchmark entry points (collected by the benchmark session)
# ----------------------------------------------------------------------


def test_reweight_sweep_table(benchmark):
    rows = benchmark.pedantic(sweep_rows, rounds=1, iterations=1)
    from conftest import emit

    emit(
        format_table(
            _display(rows), title="reweight sweep (derived vs recompiled)"
        )
    )
    assert all(row["exact_match"] for row in rows)
    assert rows[-1]["speedup"] >= 3  # unrounded: 2.95x must not pass


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
