"""Experiment E13: compiler and model-checker scaling with tree size.

Times the two heavy paths — protocol compilation and the full PAK
analysis — as the system grows (consensus agent count, coordinated
attack depth).  There is no paper number to match; this bench
characterizes the exact engine so users know what sizes are practical.
"""

from conftest import emit

from repro import analyze
from repro.analysis.sweep import format_table
from repro.apps.consensus import agreement, build_consensus, decision_action
from repro.apps.coordinated_attack import (
    ATTACK,
    GENERAL_A,
    both_attack,
    build_coordinated_attack,
)


def test_compile_consensus_n2(benchmark):
    system = benchmark(build_consensus, n=2, loss="0.1")
    assert system.run_count() == 16


def test_compile_consensus_n3(benchmark):
    system = benchmark(build_consensus, n=3, loss="0.1")
    assert system.run_count() == 512


def test_compile_deep_coordinated_attack(benchmark):
    system = benchmark(build_coordinated_attack, loss="0.1", ack_rounds=5)
    # Attacks are performed at time ack_rounds + 1; the tree extends one
    # more level to record them.
    assert system.max_time() == 7


def test_analyze_consensus_n3(benchmark):
    system = build_consensus(n=3, loss="0.1")
    report = benchmark(
        analyze, system, "agent-0", decision_action(1), agreement(3), "0.9"
    )
    assert report.all_theorems_verified


def test_analyze_deep_attack(benchmark):
    system = build_coordinated_attack(loss="0.1", ack_rounds=4)
    report = benchmark(
        analyze, system, GENERAL_A, ATTACK, both_attack(), "0.85"
    )
    assert report.all_theorems_verified


def test_scaling_profile(benchmark):
    """One consolidated size table for the docs."""

    def profile():
        rows = []
        for n, loss in ((2, "0.1"), (3, "0.1")):
            system = build_consensus(n=n, loss=loss)
            rows.append(
                {
                    "system": f"consensus(n={n})",
                    "nodes": system.node_count(),
                    "runs": system.run_count(),
                }
            )
        for acks in (1, 3, 5):
            system = build_coordinated_attack(ack_rounds=acks)
            rows.append(
                {
                    "system": f"attack(acks={acks})",
                    "nodes": system.node_count(),
                    "runs": system.run_count(),
                }
            )
        return rows

    rows = benchmark(profile)
    emit(format_table(rows, title="E13: system sizes"))
    assert rows[-1]["runs"] >= rows[2]["runs"]
