"""Benchmark: sharded run spaces — multicore sweep evaluation.

PR 8 added ``core/shard.py`` (see ``docs/sharding.md``): the leaf
universe of a compiled tree is split along a tree frontier into K
contiguous shards, per-shard partial results are evaluated in worker
processes, and the partials are recombined **in ascending shard
order** so every answer is bit-identical to the serial engine path.
Two consumers ride on it:

* ``refrain_threshold_sweep(..., parallel=K)`` builds its derived
  system + measure rows in a fork pool, one chunk of the threshold
  grid per worker, ``NumericStats`` deltas absorbed in chunk order;
* :class:`repro.core.shard.ShardedExecutor` runs batched scan queries
  (``events_of`` / ``truths_at`` / measures) per shard against one
  amortized pool.

This benchmark times the dense **exact** refrain-threshold sweep of
the FS family (the same workload as ``bench_numeric_fastpath``, mode
pinned to exact so every row is real rational work) serially and
under ``parallel=2`` / ``parallel=4``, and asserts **Fraction parity
in every mode**: the exact rows must be ``==`` across all worker
counts, and dedicated auto/float legs must match their serial
counterparts bit-for-bit (auto values forced through ``exact_value``,
float values compared bitwise).  A scan phase checks the
``ShardedExecutor`` mask parity on the same systems and reports its
wall time, informational.

The acceptance bar — ``parallel=4`` at least **2.5x** faster than
serial on the largest family member — is enforced only on a full run
with at least 4 CPU cores; in ``--smoke`` mode, or on machines with
fewer cores (CI containers are routinely 1-2 cores, where a fork pool
cannot beat serial), the bar is advisory and printed as a warning.
Parity is enforced everywhere, always.

Usage::

    PYTHONPATH=src python benchmarks/bench_shard_scaling.py [--smoke]

or under pytest (collected by the benchmark session via the local
``bench_*`` convention).
"""

from __future__ import annotations

import os
import sys
import time
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

sys.path.insert(0, "src")  # allow `python benchmarks/bench_shard_scaling.py`

from bench_numeric_fastpath import ALICE, FIRE, both_fire, fs_chain

from repro.analysis.sweep import format_table, refrain_threshold_sweep
from repro.core.atoms import does_
from repro.core.engine import SystemIndex
from repro.core.lazyprob import exact_value
from repro.core.pps import PPS
from repro.core.shard import ShardedExecutor

#: Worker counts timed against the serial baseline.
WORKER_COUNTS = (2, 4)

#: The enforced bar: parallel=4 vs serial on the largest member.
SPEEDUP_BAR = 2.5


def _thresholds(t_refrain: int) -> List[Fraction]:
    return [Fraction(k, t_refrain - 1) for k in range(t_refrain)]


def sweep_workload(
    base: PPS, parallel: Optional[int], numeric: str, t_refrain: int
) -> List[Tuple[object, object, object]]:
    """One dense sweep; rows normalized so modes compare with ``==``."""
    rows = refrain_threshold_sweep(
        base,
        ALICE,
        both_fire(),
        FIRE,
        _thresholds(t_refrain),
        numeric=numeric,
        parallel=parallel,
    )
    if numeric == "float":
        # float legs compare bitwise: reproducible, not exact.
        return [
            (row["threshold"], row["achieved"], row["coverage"]) for row in rows
        ]
    return [
        (
            row["threshold"],
            exact_value(row["achieved"]),
            exact_value(row["coverage"]),
        )
        for row in rows
    ]


def _scan_phase(base: PPS, shards: int) -> Tuple[float, bool]:
    """ShardedExecutor mask parity + wall time on a fresh index.

    Informational only: FS-family scans are far too cheap to amortize
    a pool, the point here is exercising the executor end to end on
    the bench workload and pinning its bit-identity.
    """
    facts = [both_fire(), does_(ALICE, FIRE), ~does_(ALICE, FIRE)]
    serial = SystemIndex.of(fs_chain(rounds=base_rounds(base))).events_of(facts)
    index = SystemIndex.of(base)
    start = time.perf_counter()
    with ShardedExecutor(index, shards=shards, payload=facts) as executor:
        sharded = executor.events_of(facts)
        repeat = executor.events_of(facts)  # warm-cache path
    seconds = time.perf_counter() - start
    return seconds, sharded == serial and repeat == serial


def base_rounds(base: PPS) -> int:
    """Recover the ``rounds`` parameter from the family member's name."""
    return int(base.name.split("[")[1].rstrip("]"))


def sweep_rows(*, smoke: bool = False) -> List[Dict[str, object]]:
    """One row per FS-family member; the last (largest) carries the gate."""
    if smoke:
        members: List[Tuple[int, int]] = [(2, 11)]
    else:
        members = [(2, 41), (4, 41), (6, 41)]
    repetitions = 1 if smoke else 2
    out: List[Dict[str, object]] = []
    for rounds, t_refrain in members:
        # Fresh systems per leg and per repetition: no cache sharing
        # between the serial and parallel timings, and compile time
        # stays outside the timed region.  Best-of damps noise.
        serial_s = float("inf")
        parallel_s = {workers: float("inf") for workers in WORKER_COUNTS}
        serial_rows = None
        parity = True
        for _ in range(repetitions):
            base = fs_chain(rounds=rounds)
            start = time.perf_counter()
            serial_rows = sweep_workload(base, None, "exact", t_refrain)
            serial_s = min(serial_s, time.perf_counter() - start)
            for workers in WORKER_COUNTS:
                base = fs_chain(rounds=rounds)
                start = time.perf_counter()
                rows = sweep_workload(base, workers, "exact", t_refrain)
                parallel_s[workers] = min(
                    parallel_s[workers], time.perf_counter() - start
                )
                # Fraction-exact parity: enforced in every repetition.
                assert rows == serial_rows, (
                    f"fs-chain[{rounds}]: parallel={workers} exact sweep "
                    "diverged from serial"
                )
        # Auto and float legs: untimed, one pass, serial vs widest pool.
        for numeric in ("auto", "float"):
            reference = sweep_workload(
                fs_chain(rounds=rounds), None, numeric, t_refrain
            )
            candidate = sweep_workload(
                fs_chain(rounds=rounds), WORKER_COUNTS[-1], numeric, t_refrain
            )
            assert candidate == reference, (
                f"fs-chain[{rounds}]: parallel {numeric} sweep diverged "
                "from serial"
            )
        scan_s, scan_parity = _scan_phase(fs_chain(rounds=rounds), 4)
        parity = parity and scan_parity
        assert scan_parity, f"fs-chain[{rounds}]: ShardedExecutor masks diverged"
        index = SystemIndex.of(fs_chain(rounds=rounds))
        row: Dict[str, object] = {
            "family": f"fs-chain[{rounds}]",
            "runs": index.run_count,
            "rows": t_refrain,
            "serial_s": serial_s,
        }
        for workers in WORKER_COUNTS:
            row[f"par{workers}_s"] = parallel_s[workers]
            row[f"speedup{workers}"] = serial_s / parallel_s[workers]
        row["scan_s"] = scan_s
        row["parity"] = parity
        out.append(row)
    return out


def _display(rows: List[Dict[str, object]]) -> List[Dict[str, object]]:
    """Rounded copies of benchmark rows for table printing only."""
    rounding = {"serial_s": 4, "scan_s": 4}
    for workers in WORKER_COUNTS:
        rounding[f"par{workers}_s"] = 4
        rounding[f"speedup{workers}"] = 2
    return [
        {
            key: round(value, rounding[key]) if key in rounding else value
            for key, value in row.items()
        }
        for row in rows
    ]


def _gate_speedup(rows: List[Dict[str, object]], *, smoke: bool) -> int:
    """Enforce the >=2.5x bar on the largest member, 4 workers.

    The bar binds only on a full run with >=4 cores: a fork pool
    cannot beat serial on the 1-2 core containers CI hands out, and
    smoke grids are too small to amortize the fork.  Parity has
    already been asserted unconditionally by :func:`sweep_rows` —
    the gate is purely about scaling.
    """
    largest = rows[-1]
    cores = os.cpu_count() or 1
    value = float(largest[f"speedup{WORKER_COUNTS[-1]}"])
    advisory = smoke or cores < 4
    status = 0
    if value < SPEEDUP_BAR:
        message = (
            f"sharded sweep {largest['family']} parallel={WORKER_COUNTS[-1]} "
            f"speedup {value:.2f}x < {SPEEDUP_BAR}x"
        )
        if advisory:
            print(
                f"WARNING (informational): {message} "
                f"(smoke={smoke}, cores={cores})",
                file=sys.stderr,
            )
        else:
            print(f"FAIL: {message}", file=sys.stderr)
            status = 1
    else:
        print(
            f"OK: {largest['family']} parallel={WORKER_COUNTS[-1]} speedup "
            f"{value:.1f}x >= {SPEEDUP_BAR}x"
        )
    print(
        f"({largest['rows']} sweep rows over {largest['runs']} runs, "
        "exact/auto/float rows bit-identical to serial, executor masks "
        "bit-identical to the serial index)"
    )
    return status


def main(argv: List[str]) -> int:
    smoke = "--smoke" in argv
    mode = "(smoke)" if smoke else "(full)"
    rows = sweep_rows(smoke=smoke)
    print(
        format_table(
            _display(rows),
            title=f"sharded sweep: serial vs parallel worker pools {mode}",
        )
    )
    return _gate_speedup(rows, smoke=smoke)


# ----------------------------------------------------------------------
# pytest-benchmark entry points (collected by the benchmark session)
# ----------------------------------------------------------------------


def test_shard_scaling_table(benchmark):
    rows = benchmark.pedantic(sweep_rows, rounds=1, iterations=1)
    from conftest import emit

    emit(
        format_table(
            _display(rows), title="sharded sweep (serial vs parallel)"
        )
    )
    assert all(row["parity"] for row in rows)
    if (os.cpu_count() or 1) >= 4:
        # unrounded: 2.45x must not pass
        assert rows[-1][f"speedup{WORKER_COUNTS[-1]}"] >= SPEEDUP_BAR


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
