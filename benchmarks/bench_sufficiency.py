"""Experiment E9: sufficiency (Theorem 4.2) and Lemma 4.3 premises.

On systems where the agent only acts above the threshold, the
constraint must hold — provided independence does.  The benchmark
verifies Theorem 4.2 and Lemma 4.3 over the random fleet, split by
premise route (deterministic action vs past-based fact), and shows the
Figure 1 failure alongside for contrast.
"""

from conftest import emit

from repro import check_lemma_4_3, check_theorem_4_2
from repro.analysis.random_systems import (
    proper_actions_of,
    random_protocol_system,
    random_run_fact,
    random_state_fact,
)
from repro.analysis.sweep import format_table
from repro.apps.figure1 import AGENT, ALPHA, build_figure1, psi_not_alpha


def verify_sufficiency_fleet():
    outcomes = []
    for seed in range(15):
        # Deterministic-protocol systems: Lemma 4.3(a) route.
        det = random_protocol_system(seed, mixed_level=0.0)
        # Mixed systems with past-based facts: Lemma 4.3(b) route.
        mix = random_protocol_system(seed, mixed_level=1.0)
        for system, fact in (
            (det, random_run_fact(seed + 50)),
            (mix, random_state_fact(seed + 60)),
        ):
            agent = system.agents[0]
            action = proper_actions_of(system, agent)[0]
            outcomes.append(check_lemma_4_3(system, agent, action, fact))
            outcomes.append(
                check_theorem_4_2(system, agent, action, fact, "1/4")
            )
    return outcomes


def test_sufficiency_fleet(benchmark):
    outcomes = benchmark(verify_sufficiency_fleet)
    assert all(check.verified for check in outcomes)
    lemma_checks = [c for c in outcomes if c.theorem == "Lemma 4.3"]
    applicable = [c for c in lemma_checks if c.applicable]
    emit(
        f"E9: Lemma 4.3 verified on {len(lemma_checks)} inputs "
        f"({len(applicable)} with premises; all conclude independence)"
    )
    assert all(c.conclusion for c in applicable)


def test_sufficiency_contrast_with_figure1(benchmark):
    def contrast():
        figure1 = build_figure1()
        return check_theorem_4_2(figure1, AGENT, ALPHA, psi_not_alpha(), "1/2")

    check = benchmark(contrast)
    rows = [
        {
            "premise": name,
            "holds": value,
        }
        for name, value in check.premises.items()
    ]
    emit(
        format_table(
            rows,
            title="E9 contrast: Figure 1 — threshold met, constraint broken, "
            "independence premise false",
        )
    )
    assert check.premises["belief-meets-threshold-always"]
    assert not check.premises["local-state-independent"]
    assert not check.conclusion
    assert check.verified
