"""Experiment E4: the Theorem 5.2 construction, swept over (p, epsilon).

For every 0 < eps < p < 1 the construction must give *exactly*:

* mu(phi@alpha | alpha) = p,
* mu(beta >= p | alpha) = eps (no lower bound on meeting the threshold),
* off-threshold belief (p - eps)/(1 - eps),
* expected belief p (Theorem 6.2 pinning the average).

The benchmark times the grid build + verification.
"""

from fractions import Fraction

from conftest import emit

from repro import (
    achieved_probability,
    expected_belief,
    threshold_met_measure,
)
from repro.analysis.sweep import format_table, sweep
from repro.apps.theorem52 import (
    AGENT_I,
    ALPHA,
    bit_is_one,
    build_theorem52,
    expected_off_threshold_belief,
)


def grid_row(p, epsilon):
    system = build_theorem52(p, epsilon)
    phi = bit_is_one()
    return {
        "mu": achieved_probability(system, AGENT_I, phi, ALPHA),
        "met": threshold_met_measure(system, AGENT_I, phi, ALPHA, p),
        "off-belief": expected_off_threshold_belief(p, epsilon),
        "E[belief]": expected_belief(system, AGENT_I, phi, ALPHA),
    }


GRID = {
    "p": ["1/2", "3/4", "0.9", "0.99"],
    "epsilon": ["1/100", "1/10", "1/4"],
}


def run_grid():
    rows = []
    for p in GRID["p"]:
        for epsilon in GRID["epsilon"]:
            if Fraction(epsilon) < Fraction(p):
                rows.append({"p": p, "epsilon": epsilon, **grid_row(p, epsilon)})
    return rows


def test_theorem52_grid(benchmark):
    rows = benchmark(run_grid)
    emit(
        format_table(
            rows,
            title="E4: T_hat(p, eps) — mu = p, met-measure = eps, exactly",
        )
    )
    for row in rows:
        assert row["mu"] == Fraction(row["p"])
        assert row["met"] == Fraction(row["epsilon"])
        assert row["E[belief]"] == Fraction(row["p"])


def test_theorem52_vanishing_epsilon(benchmark):
    """The headline of Theorem 5.2: met-measure -> 0 while mu stays p."""

    def vanishing():
        return [
            threshold_met_measure(
                build_theorem52("0.9", eps), AGENT_I, bit_is_one(), ALPHA, "0.9"
            )
            for eps in ("1/10", "1/100", "1/1000", "1/10000")
        ]

    measures = benchmark(vanishing)
    assert measures == [
        Fraction(1, 10),
        Fraction(1, 100),
        Fraction(1, 1000),
        Fraction(1, 10000),
    ]
