"""Benchmark: derived-system transforms vs materialize-and-rebuild.

PR 4 turned the Section 8 transforms (``relabel_actions``,
``refrain_below_threshold``) into a *derived-system layer*: a
transform returns an ``ActionOverlay`` over the shared parent tree and
its engine index inherits every label-independent table from the
parent's (``SystemIndex.derived``), instead of deep-copying the tree
and rebuilding the index cold.  The workload that motivates it is the
repo's main scenario-diversity pattern — dense refrain-threshold
sweeps and optimality ablations, where hundreds of rows differ from
one parent system by a handful of relabelled edges.

This benchmark sweeps the refrain threshold densely over the FS
family (Example 1 at several loss rates) through both paths:

* **derived** (the default): every row is a ``DerivedPPS`` sharing the
  parent's tree, probability kernel, partitions, and belief caches;
* **materialized** (``materialize=True``): every row pays the historic
  copy + validation + cold index build.

Every row pair must agree ``Fraction``-exactly on the achieved
probability and the retained coverage — parity is enforced in every
mode.  The ≥3x speedup bar on the largest family member is enforced on
the full run and advisory in ``--smoke`` (CI wall-clock on tiny
workloads is too noisy for a hard gate).  The benchmark also checks
the escape hatch's bit-identity contract: ``materialize=True`` must
reproduce the pre-derived-layer implementation's tree exactly — uid
sequence, leaf order, probabilities — which is asserted against an
inlined copy of that legacy path.

Usage::

    PYTHONPATH=src python benchmarks/bench_transform_sweep.py [--smoke]

or under pytest (collected by the benchmark session via the local
``bench_*`` convention).
"""

from __future__ import annotations

import sys
import time
from fractions import Fraction
from typing import Callable, Dict, List, Optional, Tuple

sys.path.insert(0, "src")  # allow `python benchmarks/bench_transform_sweep.py`

from repro.analysis.random_systems import tree_signature
from repro.analysis.sweep import format_table, refrain_threshold_sweep
from repro.apps.firing_squad import (
    ALICE,
    FIRE,
    THRESHOLD,
    both_fire,
    build_firing_squad,
)
from repro.core.beliefs import belief
from repro.core.numeric import as_fraction
from repro.core.pps import PPS, Node
from repro.protocols import refrain_below_threshold


# ----------------------------------------------------------------------
# The legacy (pre-derived-layer) transform, inlined for the bit-identity
# contract: recursive pre-order copy, then in-place relabel.
# ----------------------------------------------------------------------


def _legacy_copy_tree(root: Node) -> Node:
    counter = [0]

    def clone(node: Node, parent: Optional[Node]) -> Node:
        copy = Node(
            uid=counter[0],
            depth=node.depth,
            state=node.state,
            prob_from_parent=node.prob_from_parent,
            via_action=dict(node.via_action) if node.via_action is not None else None,
            parent=parent,
        )
        counter[0] += 1
        # repro: allow[RP003] legacy inlined oracle: mutates its own
        # deep copy during construction, never a live tree.
        copy.children = [clone(child, copy) for child in node.children]
        return copy

    return clone(root, None)


def legacy_refrain(
    pps: PPS, agent, action, phi, threshold, *, replacement="skip"
) -> PPS:
    """Byte-for-byte the PR 3 refrain_below_threshold semantics."""
    bound = as_fraction(threshold)
    idx = pps.agent_index(agent)
    cache: Dict[object, bool] = {}

    def low_belief(local: object) -> bool:
        if local not in cache:
            cache[local] = belief(pps, agent, phi, local) < bound
        return cache[local]

    root = _legacy_copy_tree(pps.root)
    stack = [root]
    while stack:
        node = stack.pop()
        if node.via_action is not None:
            via = dict(node.via_action)
            if via.get(agent) == action and low_belief(
                node.parent.state.local(idx)
            ):
                via[agent] = replacement
            # repro: allow[RP003] legacy inlined oracle: mutates its
            # own deep copy during construction, never a live tree.
            node.via_action = via
        stack.extend(node.children)
    return PPS(pps.agents, root, name=f"{pps.name}-refrain[{action}]")


def assert_materialize_bit_identity(base: PPS) -> None:
    """materialize=True must reproduce the legacy tree exactly."""
    phi = both_fire()
    legacy = legacy_refrain(base, ALICE, FIRE, phi, THRESHOLD)
    hatch = refrain_below_threshold(
        base, ALICE, FIRE, phi, THRESHOLD, materialize=True
    )
    assert tree_signature(hatch) == tree_signature(legacy), (
        "materialize=True diverged from the legacy deep-copy path"
    )
    assert [run.prob for run in hatch.runs] == [
        run.prob for run in legacy.runs
    ], "materialize=True: leaf order / probability divergence"


# ----------------------------------------------------------------------
# The sweep table
# ----------------------------------------------------------------------


def _time_sweep(
    build: Callable[[], PPS], thresholds, *, materialize: bool
) -> Tuple[float, List[Dict[str, object]]]:
    """Time one full sweep from a *fresh* parent (no cross-path cache)."""
    base = build()
    phi = both_fire()
    start = time.perf_counter()
    rows = refrain_threshold_sweep(
        base, ALICE, phi, FIRE, thresholds, materialize=materialize
    )
    return time.perf_counter() - start, rows


def sweep_rows(*, smoke: bool = False) -> List[Dict[str, object]]:
    """One row per FS family member; the last (largest) carries the gate."""
    if smoke:
        members = [("fs(loss=0.1)", "0.1", 41)]
    else:
        members = [
            ("fs(loss=0.05)", "0.05", 81),
            ("fs(loss=0.1)", "0.1", 161),
            ("fs(loss=0.2)", "0.2", 241),
        ]
    out: List[Dict[str, object]] = []
    for name, loss, steps in members:
        build = lambda loss=loss: build_firing_squad(loss=loss)
        assert_materialize_bit_identity(build())
        thresholds = [Fraction(k, steps - 1) for k in range(steps)]
        derived_s, derived_rows = _time_sweep(
            build, thresholds, materialize=False
        )
        materialized_s, materialized_rows = _time_sweep(
            build, thresholds, materialize=True
        )
        # Fraction-exact parity of every swept quantity, every row.
        assert derived_rows == materialized_rows, f"{name}: sweep parity"
        system = build()
        out.append(
            {
                "family": name,
                "rows": steps,
                "runs": system.run_count(),
                "nodes": system.node_count(),
                "derived_s": derived_s,
                "materialized_s": materialized_s,
                "speedup": materialized_s / derived_s,
                "exact_match": True,
            }
        )
    return out


def _display(rows: List[Dict[str, object]]) -> List[Dict[str, object]]:
    """Rounded copies of benchmark rows for table printing only."""
    rounding = {"derived_s": 4, "materialized_s": 4, "speedup": 1}
    return [
        {
            key: round(value, rounding[key]) if key in rounding else value
            for key, value in row.items()
        }
        for row in rows
    ]


def _gate_speedup(rows: List[Dict[str, object]], *, smoke: bool) -> int:
    """Enforce the ≥3x bar on the largest (densest) family member."""
    largest = rows[-1]
    if largest["speedup"] < 3:
        message = (
            f"transform sweep {largest['family']} speedup "
            f"{largest['speedup']:.2f}x < 3x"
        )
        if smoke:
            print(f"WARNING (smoke, informational): {message}", file=sys.stderr)
            return 0
        print(f"FAIL: {message}", file=sys.stderr)
        return 1
    print(
        f"OK: {largest['family']} derived-sweep speedup "
        f"{largest['speedup']:.1f}x >= 3x "
        f"({largest['rows']} thresholds, Fraction-exact, "
        "materialize bit-identical to legacy)"
    )
    return 0


def main(argv: List[str]) -> int:
    smoke = "--smoke" in argv
    mode = "(smoke)" if smoke else "(full)"
    rows = sweep_rows(smoke=smoke)
    print(
        format_table(
            _display(rows),
            title=f"transform sweep: derived indices vs materialize-and-rebuild {mode}",
        )
    )
    return _gate_speedup(rows, smoke=smoke)


# ----------------------------------------------------------------------
# pytest-benchmark entry points (collected by the benchmark session)
# ----------------------------------------------------------------------


def test_transform_sweep_table(benchmark):
    rows = benchmark.pedantic(sweep_rows, rounds=1, iterations=1)
    from conftest import emit

    emit(
        format_table(
            _display(rows), title="transform sweep (derived vs materialized)"
        )
    )
    assert all(row["exact_match"] for row in rows)
    assert rows[-1]["speedup"] >= 3  # unrounded: 2.95x must not pass


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
