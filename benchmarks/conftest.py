"""Benchmark-session helpers: table printing that survives pytest capture."""

from __future__ import annotations

import sys


def emit(text: str) -> None:
    """Print a reproduced table so it lands in the benchmark log."""
    sys.stderr.write("\n" + text + "\n")
