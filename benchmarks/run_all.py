"""Run every benchmark in smoke mode and emit a consolidated JSON report.

The repo's benchmarks come in two flavours:

* **script benches** (``def main(argv)`` + ``--smoke``): the engine /
  compiler / transform / numeric speedup tables, whose smoke mode
  enforces exactness parity and keeps speedup bars advisory;
* **pytest benches** (pytest-benchmark entry points only): the
  paper-table reproductions, run through pytest directly.

``run_all.py`` discovers every ``benchmarks/bench_*.py``, runs each in
its own subprocess, and writes ``BENCH_PR10.json`` next to the repo
root: per-bench status (``pass``/``fail``/``timeout``), wall seconds,
and every speedup ratio the bench printed (best-effort: any ``<x.y>x``
figure on a line mentioning "speedup").  When a baseline report from
the previous PR exists (``--baseline``, default ``BENCH_PR9.json``),
a wall-seconds delta table is printed and embedded in the output
JSON, flagging every bench that got more than 20% slower — the
cross-PR perf tripwire without re-deriving each bench's own output
format.

Usage::

    PYTHONPATH=src python benchmarks/run_all.py [--out BENCH_PR10.json]
                                                [--baseline BENCH_PR9.json]
                                                [--timeout SECONDS]
                                                [--only SUBSTRING]

Exit status is non-zero when any bench fails (regressions are flagged
but do not fail the run: smoke-mode subprocess wall-clock is too noisy
for a hard gate).
"""

from __future__ import annotations

import argparse
import json
import re
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent

_SPEEDUP = re.compile(r"(\d+(?:\.\d+)?)x\b")


def discover() -> List[Path]:
    return sorted(BENCH_DIR.glob("bench_*.py"))


def is_script_bench(path: Path) -> bool:
    text = path.read_text(encoding="utf-8")
    return "def main(" in text and "__main__" in text


def parse_speedups(output: str) -> List[float]:
    """The first ``<number>x`` of every line that talks about a speedup.

    First-only: gate lines read "speedup 4.2x >= 3x", and the bar is
    not a measurement.
    """
    found: List[float] = []
    for line in output.splitlines():
        if "speedup" not in line.lower():
            continue
        match = _SPEEDUP.search(line)
        if match:
            found.append(float(match.group(1)))
    return found


def run_bench(path: Path, timeout: float) -> Dict[str, object]:
    if is_script_bench(path):
        command = [sys.executable, str(path), "--smoke"]
    else:
        command = [sys.executable, "-m", "pytest", str(path), "-q"]
    start = time.perf_counter()
    try:
        proc = subprocess.run(
            command,
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=timeout,
        )
        status = "pass" if proc.returncode == 0 else "fail"
        output = proc.stdout + proc.stderr
    except subprocess.TimeoutExpired as exc:
        status = "timeout"
        output = (exc.stdout or "") + (exc.stderr or "")
        if isinstance(output, bytes):  # pragma: no cover - platform quirk
            output = output.decode("utf-8", "replace")
    seconds = time.perf_counter() - start
    return {
        "status": status,
        "seconds": round(seconds, 2),
        "mode": "smoke" if "--smoke" in command else "pytest",
        "speedups": parse_speedups(output),
        "tail": output.strip().splitlines()[-3:],
    }


def delta_rows(
    report: Dict[str, object], baseline_path: Path
) -> List[Dict[str, object]]:
    """Wall-seconds deltas against a previous PR's consolidated report.

    One row per bench present in both reports; ``regression`` marks a
    bench whose smoke run got more than 20% slower than the baseline.
    Returns an empty list (and stays silent in the JSON) when the
    baseline file is absent.
    """
    if not baseline_path.exists():
        return []
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    prior_benches = baseline.get("benches", {})
    rows: List[Dict[str, object]] = []
    for name, result in report.items():
        prior = prior_benches.get(name)
        if not isinstance(prior, dict):
            continue
        before = prior.get("seconds")
        after = result["seconds"]
        if not before:
            continue
        ratio = float(after) / float(before)
        rows.append(
            {
                "bench": name,
                "baseline_s": before,
                "current_s": after,
                "ratio": round(ratio, 2),
                "regression": ratio > 1.2,
            }
        )
    return rows


def print_delta_table(rows: List[Dict[str, object]], baseline_path: Path) -> None:
    if not rows:
        print(f"[run_all] no baseline at {baseline_path}; skipping delta table")
        return
    print(f"[run_all] wall-seconds delta vs {baseline_path.name}:")
    width = max(len(row["bench"]) for row in rows)
    for row in rows:
        flag = "  <-- REGRESSION >20%" if row["regression"] else ""
        print(
            f"[run_all]   {row['bench']:<{width}}  "
            f"{row['baseline_s']:>7}s -> {row['current_s']:>7}s  "
            f"x{row['ratio']}{flag}"
        )
    slower = sum(1 for row in rows if row["regression"])
    if slower:
        print(f"[run_all] WARNING: {slower} bench(es) regressed >20% vs baseline")


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_PR10.json"))
    parser.add_argument("--baseline", default=str(REPO_ROOT / "BENCH_PR9.json"))
    parser.add_argument("--timeout", type=float, default=600.0)
    parser.add_argument(
        "--only", default="", help="run only benches whose name contains this"
    )
    args = parser.parse_args(argv)

    report: Dict[str, object] = {}
    failures = 0
    for path in discover():
        if args.only and args.only not in path.name:
            continue
        print(f"[run_all] {path.name} ...", flush=True)
        result = run_bench(path, args.timeout)
        report[path.stem] = result
        if result["status"] != "pass":
            failures += 1
        speedups = result["speedups"]
        extra = f" speedups={speedups}" if speedups else ""
        print(
            f"[run_all]   {result['status']} in {result['seconds']}s{extra}",
            flush=True,
        )

    # PYTHONPATH for subprocesses comes from the caller's environment
    # (the usual `PYTHONPATH=src` invocation), which subprocess.run
    # inherits; nothing to thread through explicitly.
    baseline_path = Path(args.baseline)
    deltas = delta_rows(report, baseline_path)
    print_delta_table(deltas, baseline_path)

    consolidated = {
        "suite": "benchmarks (smoke)",
        "benches": report,
        "all_passed": failures == 0,
    }
    if deltas:
        consolidated["baseline"] = baseline_path.name
        consolidated["deltas"] = deltas
    out_path = Path(args.out)
    out_path.write_text(json.dumps(consolidated, indent=2) + "\n", encoding="utf-8")
    print(f"[run_all] wrote {out_path} ({len(report)} benches, {failures} failures)")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
