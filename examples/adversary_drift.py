#!/usr/bin/env python3
"""Adversary drift: Theorem 5.1 / PAK verdicts as the loss rate moves.

The paper's guarantees are most interesting under *drift*: FS is
calibrated for a channel that loses each message with probability 0.1,
but how far can the adversary degrade the channel before the spec
breaks?  Each sweep row here is a ``ReweightedPPS`` built by
``drift_loss`` — the shared tree and every shape-dependent index table
come from the one parent compile, and only the weight vector is
rebuilt per row (``docs/transforms.md``), so a dense drift sweep costs
a fraction of recompiling per rate.

1. the Spec frontier: ``mu(both fire | Alice fires)`` is
   ``1 - loss^2``, so the 0.95-threshold verdict flips between loss
   0.22 and 0.23 — the sweep brackets the flip exactly.  Lemma 5.1's
   conclusion (some acting cell believes the condition to degree
   >= 0.95) survives the whole drift range: Alice's
   received-'Yes' cell keeps belief 1 no matter how lossy the
   channel, which is exactly why the lemma is a *necessary*
   condition rather than a spec check;
2. the Corollary 7.2 (PAK) frontier under drift: at every loss rate
   ``eps``, the constraint quality is ``1 - eps^2`` and the measured
   ``mu(belief >= 1 - eps | act)`` must clear the PAK level
   ``1 - eps`` — the bound tracks the drifting adversary;
3. conditioning as reweighting: the same machinery answers "given that
   Bob fired" — ``condition_on`` zeroes the non-satisfying leaf
   weights over the shared tree.

Run:  PYTHONPATH=src python examples/adversary_drift.py
"""

from repro import (
    achieved_probability,
    check_lemma_5_1,
    pak_level,
    threshold_met_measure,
)
from repro.analysis.sweep import format_table, reweight_sweep
from repro.apps.firing_squad import (
    ALICE,
    BOB,
    FIRE,
    THRESHOLD,
    both_fire,
    build_firing_squad,
    drift_loss,
)
from repro.core.atoms import performed
from repro.core.numeric import as_fraction
from repro.core.reweight import condition_on


def lemma_row(system, *, numeric="exact"):
    check = check_lemma_5_1(
        system, ALICE, FIRE, both_fire(), THRESHOLD, numeric=numeric
    )
    achieved = achieved_probability(
        system, ALICE, both_fire(), FIRE, numeric=numeric
    )
    return {
        "mu(both|fireA)": achieved,
        "spec @0.95": "met" if check.premises["constraint-satisfied"] else "BROKEN",
        "5.1 witness": "yes" if check.conclusion else "no",
    }


def pak_row(system, *, numeric="exact"):
    # At loss rate eps the achieved quality is 1 - eps^2, a perfect
    # square, so the PAK level 1 - sqrt(1 - quality) = 1 - eps is
    # exact; Corollary 7.2 promises belief >= level with measure
    # >= level at the moment of acting.
    achieved = achieved_probability(
        system, ALICE, both_fire(), FIRE, numeric=numeric
    )
    level = pak_level(achieved, exact_required=True)
    met = threshold_met_measure(
        system, ALICE, both_fire(), FIRE, level, numeric=numeric
    )
    return {
        "quality": achieved,
        "pak level": level,
        "mu(belief>=level)": met,
        "bound holds": met >= level,
    }


def main() -> None:
    base = build_firing_squad()

    print("== Lemma 5.1 under channel drift (one compile, reweighted rows) ==")
    losses = ["0.05", "0.1", "0.2", "0.22", "0.23", "0.3", "0.5"]
    rows = reweight_sweep(base, drift_loss, losses, lemma_row, param="loss")
    print(format_table(rows))
    print()

    print("== PAK (Corollary 7.2) frontier under drift ==")
    rows = reweight_sweep(
        base, drift_loss, ["0.05", "0.1", "0.2", "0.3", "0.5"], pak_row,
        param="loss",
    )
    print(format_table(rows))
    print()

    print("== Conditioning as reweighting ==")
    conditioned = condition_on(base, performed(BOB, FIRE))
    print(
        "   mu(both fire | Alice fires), given Bob fired: "
        f"{achieved_probability(conditioned, ALICE, both_fire(), FIRE)}"
    )
    print(
        "   unconditioned:                                "
        f"{achieved_probability(base, ALICE, both_fire(), FIRE)}"
    )
    flip = as_fraction("0.23")
    drifted = drift_loss(base, flip)
    print(
        f"   after drifting the loss rate to {flip}: "
        f"{achieved_probability(drifted, ALICE, both_fire(), FIRE)} "
        f"(threshold {THRESHOLD})"
    )


if __name__ == "__main__":
    main()
