#!/usr/bin/env python3
"""Watch beliefs evolve round by round (and verify the martingale).

For Alice in the firing squad, prints the complete belief landscape for
the condition "Bob eventually fires": at each time, every information
state she can occupy, its probability, and the posterior she holds
there.  The *expected* belief per round never moves — conditional
expectations form a martingale — even as the belief distribution
spreads from the prior to near-certainty either way.

Paper claim: the belief-martingale view behind Section 6 — conditional
expectations of a fixed condition form a martingale over time, so
Theorem 6.2's expectation identity pins the per-round average — shown
on the Example 1 firing squad.

Run:  python examples/belief_evolution.py
"""

from repro import eventually
from repro.analysis import belief_timeline, expected_belief_by_time
from repro.apps.firing_squad import ALICE, build_firing_squad, fire_bob


def describe(local) -> str:
    """Human-readable label for Alice's stamped RecordingState."""
    t, state = local
    go = state.payload
    parts = [f"go={go}"]
    for round_index, (_, received) in enumerate(state.observations):
        contents = [m.content for m in received]
        parts.append(f"r{round_index}:{contents or '-'}")
    return " ".join(parts)


def main() -> None:
    system = build_firing_squad()
    condition = eventually(fire_bob())

    print("== Alice's belief landscape for 'Bob eventually fires' ==")
    for t, cells in belief_timeline(system, ALICE, condition).items():
        print(f"time {t}:")
        for cell in cells:
            print(
                f"   P={str(cell.mass):9}  belief={str(cell.belief):8} "
                f"(~{float(cell.belief):.4f})  {describe(cell.local)}"
            )
    print()

    print("== Expected belief per round (the martingale) ==")
    for t, value in expected_belief_by_time(system, ALICE, condition).items():
        print(f"time {t}: {value} (~{float(value):.4f})")
    print()
    print(
        "Information reshuffles mass between optimism and pessimism but "
        "cannot move the average — the same mechanism that makes "
        "Theorem 6.2 pin the expected acting belief to mu(phi@alpha|alpha)."
    )


if __name__ == "__main__":
    main()
