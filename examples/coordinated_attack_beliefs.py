#!/usr/bin/env python3
"""How acknowledgements refine beliefs but cannot buy success.

The coordinated-attack folklore, measured: general A's probability of a
coordinated attack is pinned at the channel reliability no matter how
many acknowledgement rounds the generals exchange — but each ack round
*reshapes A's beliefs* at the moment of attack.  Theorem 6.2 explains
why the average cannot move: the expected acting belief equals the
success probability, always.

Also demonstrates common p-belief (Monderer–Samet): the generals never
attain common knowledge of the attack, but they do attain common
0.9-belief.

Paper claim: the Fischer–Zuck observation the paper builds on
(Section 1) and Theorem 6.2's expectation identity, on the
coordinated-attack scenario; the common p-belief finale is the
Monderer–Samet notion the paper's Section 7 discussion invokes.

Run:  python examples/coordinated_attack_beliefs.py
"""

from repro import (
    achieved_probability,
    common_belief_points,
    common_knowledge,
    eventually,
    expected_belief,
    expected_belief_decomposition,
    points_satisfying,
)
from repro.analysis.sweep import format_table, sweep
from repro.apps.coordinated_attack import (
    ATTACK,
    GENERAL_A,
    GENERAL_B,
    attack_b,
    both_attack,
    build_coordinated_attack,
)


def row(ack_rounds: int):
    system = build_coordinated_attack(loss="0.1", ack_rounds=ack_rounds)
    cells = expected_belief_decomposition(system, GENERAL_A, both_attack(), ATTACK)
    return {
        "success": achieved_probability(system, GENERAL_A, both_attack(), ATTACK),
        "E[belief]": expected_belief(system, GENERAL_A, both_attack(), ATTACK),
        "belief states": len(cells),
        "min belief": min(cell.belief for cell in cells.values()),
        "max belief": max(cell.belief for cell in cells.values()),
    }


def main() -> None:
    print("== Success vs. belief structure, by acknowledgement rounds ==")
    rows = sweep({"ack_rounds": [0, 1, 2, 3]}, row)
    print(format_table(rows))
    print()
    print(
        "Success and expected belief never move (Theorem 6.2); the "
        "belief *distribution* spreads toward certainty instead."
    )
    print()

    print("== Common knowledge vs. common p-belief ==")
    system = build_coordinated_attack(loss="0.1", ack_rounds=2)
    b_attacks = eventually(attack_b())
    ck = common_knowledge([GENERAL_A, GENERAL_B], b_attacks)
    ck_points = points_satisfying(system, ck)
    print(f"points with common knowledge of B attacking: {len(ck_points)}")
    for level in ("1/2", "0.9", "0.99"):
        cb_points = common_belief_points(
            system, [GENERAL_A, GENERAL_B], b_attacks, level
        )
        print(f"points with common {level}-belief:            {len(cb_points)}")


if __name__ == "__main__":
    main()
