#!/usr/bin/env python3
"""Build your own protocol: the full substrate in one file.

Shows the three construction routes the library offers, on one toy
problem (a worker and a monitor over a lossy link):

1. the generic protocol compiler (``repro.protocols``),
2. the message-passing substrate (``repro.messaging``),
3. adversary enumeration for a nondeterministic parameter.

The worker crashes during round 0 with probability 1/5 and otherwise
reports "ok" to the monitor over a channel that loses messages with
probability 1/10.  At time 1 the monitor pages the operator iff it
heard nothing.  Question: when the monitor pages, how strongly does it
believe the worker actually crashed?

Paper claim: the Section 2.2 construction itself — protocols plus an
initial distribution compile into a purely probabilistic system — via
all three construction routes, with Theorem 6.2 certifying the pager's
acting belief on each.

Run:  python examples/custom_protocol.py
"""

from repro import analyze, as_fraction, local_fact
from repro.messaging import (
    FunctionRoundProtocol,
    LossyChannel,
    Message,
    MessagePassingSystem,
    Move,
)
from repro.protocols import Distribution, enumerate_adversaries

WORKER, MONITOR = "worker", "monitor"


def build(loss="0.1", crash_prob="1/5"):
    crash = as_fraction(crash_prob)

    def worker_step(local):
        if local != "fresh":
            return Move()
        return Distribution(
            {
                Move.acting("crash"): crash,
                Move.sending(
                    Message(WORKER, MONITOR, "ok"), action="report"
                ): 1 - crash,
            }
        )

    def worker_update(local, move, delivered):
        return "dead" if move.action == "crash" else "alive"

    def monitor_step(local):
        if isinstance(local, tuple) and local[0] == "silence":
            return Move.acting("page")
        if isinstance(local, tuple) and local[0] == "heard":
            return Move.acting("relax")
        return Move()

    def monitor_update(local, move, delivered):
        if local == "boot":
            return ("heard",) if delivered else ("silence",)
        return local + ("done",)

    return MessagePassingSystem(
        agents=[WORKER, MONITOR],
        protocols={
            WORKER: FunctionRoundProtocol(worker_step, worker_update),
            MONITOR: FunctionRoundProtocol(monitor_step, monitor_update),
        },
        channel=LossyChannel(loss),
        initial=Distribution.point(("fresh", "boot")),
        horizon=2,
        name="worker-monitor",
    ).compile()


def main() -> None:
    system = build()
    print(system)
    crashed = local_fact(WORKER, lambda l: l[1] == "dead", label="crashed")

    report = analyze(system, MONITOR, "page", crashed, "2/3")
    print(report.summary())
    print()
    # Silence = crash (1/5) or report lost (4/5 * 1/10 = 2/25):
    # belief in crash when paging = (1/5) / (1/5 + 2/25) = 5/7.
    print(f"Bayes by hand: 5/7 ~ {5/7:.4f}; library: {report.achieved}")
    print()

    print("== The same question under enumerated adversaries ==")
    for adversary in enumerate_adversaries({"crash_prob": ["1/10", "1/5", "1/2"]}):
        crash_prob = adversary.get("crash_prob")
        world = build(crash_prob=crash_prob)
        page_report = analyze(world, MONITOR, "page", crashed, "2/3")
        print(
            f"  {adversary}: belief in crash when paging = "
            f"{page_report.achieved} (~{float(page_report.achieved):.4f})"
        )


if __name__ == "__main__":
    main()
