#!/usr/bin/env python3
"""Example 1 of the paper, end to end: FS, its beliefs, and FS'.

Walks through everything the paper derives about the relaxed firing
squad: the Spec check, Alice's three information states when firing,
the 0.991 / 0.009 threshold split, the expectation identity, the PAK
reading of Corollary 7.2, and the Section 8 improvement — both built
directly and obtained mechanically with the refrain transform.

Paper claim: Example 1 in full — the FS specification, Alice's belief
profile, Theorem 6.2's expectation identity, the Corollary 7.2 PAK
bound, and the Section 8 protocol improvement FS'.

Run:  python examples/firing_squad_walkthrough.py
"""

from fractions import Fraction

from repro import (
    achieved_probability,
    analyze,
    check_corollary_7_2,
    expected_belief_decomposition,
    threshold_met_measure,
)
from repro.analysis.report import render_tree
from repro.apps.firing_squad import (
    ALICE,
    FIRE,
    THRESHOLD,
    both_fire,
    build_firing_squad,
)
from repro.protocols import refrain_below_threshold


def main() -> None:
    system = build_firing_squad()
    print("== The FS system ==")
    print(system)
    print()

    print("== Execution tree (one screen's worth) ==")
    print(render_tree(system, max_nodes=18))
    print()

    phi = both_fire()
    print("== Spec check ==")
    achieved = achieved_probability(system, ALICE, phi, FIRE)
    print(f"mu(both fire | Alice fires) = {achieved} = {float(achieved)}")
    print(f"Spec threshold 0.95: {'SATISFIED' if achieved >= THRESHOLD else 'VIOLATED'}")
    print()

    print("== Alice's information states when she fires ==")
    for local, cell in expected_belief_decomposition(system, ALICE, phi, FIRE).items():
        _, raw = local
        received = raw.received_contents(1)
        label = received[0] if received else "(nothing)"
        print(
            f"  received {label!r:12} weight {cell.weight!s:10} "
            f"belief {cell.belief!s:8} (~{float(cell.belief):.4g})"
        )
    print()

    met = threshold_met_measure(system, ALICE, phi, FIRE, THRESHOLD)
    print(f"threshold met when firing: {met} (paper: 991/1000)")
    print(f"threshold missed:          {1 - met} (paper: 0.009)")
    print()

    print("== The PAK reading (Corollary 7.2) ==")
    check = check_corollary_7_2(system, ALICE, FIRE, phi, "0.1")
    print(
        "mu >= 0.99 = 1 - 0.1^2, so Alice must believe 'both fire' to "
        "degree >= 0.9 with probability >= 0.9 when firing:"
    )
    print(f"  measured mu(belief >= 0.9 | fires) = "
          f"{check.details['strong-belief-measure']}")
    print()

    print("== Section 8: refrain when under-confident ==")
    improved = refrain_below_threshold(system, ALICE, FIRE, phi, THRESHOLD)
    better = achieved_probability(improved, ALICE, phi, FIRE)
    print(f"FS' success: {better} (~{float(better):.6f}; paper: 0.99899)")
    direct = build_firing_squad(improved=True)
    assert achieved_probability(direct, ALICE, phi, FIRE) == better
    print("(the direct FS' protocol gives the identical value)")
    print()

    print("== Full PAK report ==")
    print(analyze(system, ALICE, FIRE, phi, THRESHOLD).summary())


if __name__ == "__main__":
    main()
