#!/usr/bin/env python3
"""Verdicts beyond reasonable doubt, quantified.

The paper's legal motivation: a guilty verdict should be delivered only
under a very strong belief in guilt.  We sweep the judge's conviction
rule (how many of k noisy witness signals must say "guilty") and show
the trade-off the PAK theorems govern:

* stricter rules raise mu(guilty | convict) — the conviction quality;
* Theorem 6.2: the judge's *expected* belief at conviction equals that
  quality exactly;
* Corollary 7.2: quality 1 - eps^2 forces belief >= 1 - eps with
  probability >= 1 - eps at the moment of conviction.

Paper claim: the paper's legal motivation (Section 1) made
quantitative — Theorem 6.2 and Corollary 7.2 on a witness-counting
conviction protocol.

Run:  python examples/judge_reasonable_doubt.py
"""

from repro import (
    achieved_probability,
    expected_belief,
    pak_level,
    threshold_met_measure,
)
from repro.analysis.sweep import format_table, sweep
from repro.apps.judge import CONVICT, JUDGE, build_judge, guilty


def row(threshold: int):
    system = build_judge(
        guilt_prior="1/2",
        signal_accuracy="0.9",
        signals=3,
        conviction_threshold=threshold,
    )
    quality = achieved_probability(system, JUDGE, guilty(), CONVICT)
    level = pak_level(quality)
    return {
        "quality mu(G|convict)": quality,
        "E[belief at convict]": expected_belief(system, JUDGE, guilty(), CONVICT),
        "PAK level 1-sqrt(1-q)": level,
        "mu(belief>=level)": threshold_met_measure(
            system, JUDGE, guilty(), CONVICT, level
        ),
    }


def main() -> None:
    print("== Conviction rules over 3 witness signals (accuracy 0.9) ==")
    rows = sweep({"threshold": [1, 2, 3]}, row)
    print(format_table(rows))
    print()
    print(
        "threshold=1 is conviction on any guilty signal ('balance of\n"
        "probabilities' would be threshold 2 of 3); threshold=3 is the\n"
        "unanimous, beyond-reasonable-doubt rule.  The PAK column shows\n"
        "Corollary 7.2 holding with room to spare at every rule."
    )


if __name__ == "__main__":
    main()
