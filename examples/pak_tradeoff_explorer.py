#!/usr/bin/env python3
"""Explore the PAK trade-off (Theorems 5.2, 6.2, 7.1, Corollary 7.2).

Two sweeps over the Theorem 5.2 construction T_hat(p, epsilon):

1. fixing p and shrinking epsilon shows there is *no* lower bound on
   how often the constraint's threshold must be met when acting
   (Theorem 5.2) — while the expected belief stays pinned at p
   (Theorem 6.2);
2. the Corollary 7.2 frontier: for constraints of quality 1 - eps^2,
   the measured mu(belief >= 1 - eps | act) always clears 1 - eps.

Paper claim: Theorem 5.2's no-lower-bound construction, Theorem 6.2's
expectation identity, and the Theorem 7.1 / Corollary 7.2 PAK
frontier, swept over their parameters.

Run:  python examples/pak_tradeoff_explorer.py
"""

from fractions import Fraction

from repro import (
    achieved_probability,
    expected_belief,
    threshold_met_measure,
)
from repro.analysis.sweep import format_table, sweep
from repro.apps.firing_squad import ALICE, FIRE, both_fire, build_firing_squad
from repro.apps.theorem52 import AGENT_I, ALPHA, bit_is_one, build_theorem52


def theorem52_row(epsilon):
    p = "0.9"
    system = build_theorem52(p, epsilon)
    return {
        "mu(phi@a|a)": achieved_probability(system, AGENT_I, bit_is_one(), ALPHA),
        "E[belief]": expected_belief(system, AGENT_I, bit_is_one(), ALPHA),
        "mu(belief>=p)": threshold_met_measure(
            system, AGENT_I, bit_is_one(), ALPHA, p
        ),
    }


def corollary_row(loss):
    # The FS success probability is 1 - loss^2; Corollary 7.2 promises
    # belief >= 1 - loss with probability >= 1 - loss.
    system = build_firing_squad(loss=loss)
    eps = Fraction(loss)
    return {
        "mu(both|fireA)": achieved_probability(system, ALICE, both_fire(), FIRE),
        "1-eps": 1 - eps,
        "mu(belief>=1-eps)": threshold_met_measure(
            system, ALICE, both_fire(), FIRE, 1 - eps
        ),
        "bound holds": threshold_met_measure(
            system, ALICE, both_fire(), FIRE, 1 - eps
        )
        >= 1 - eps,
    }


def main() -> None:
    print("== Theorem 5.2: the threshold-met measure can be anything ==")
    print("   (T_hat with p = 0.9; expected belief pinned at 0.9)")
    rows = sweep(
        {"epsilon": ["1/2", "1/4", "1/10", "1/100", "1/1000"]}, theorem52_row
    )
    print(format_table(rows))
    print()

    print("== Corollary 7.2 frontier on the firing squad ==")
    print("   (success = 1 - loss^2, so eps = loss)")
    rows = sweep({"loss": ["0.05", "0.1", "0.2", "0.3", "0.5"]}, corollary_row)
    print(format_table(rows))


if __name__ == "__main__":
    main()
