#!/usr/bin/env python3
"""Quickstart: build a tiny probabilistic system and run the PAK analysis.

We model a sensor agent that sometimes raises an alarm based on a noisy
reading of the weather, and ask the paper's central question: what must
the agent *believe* about a storm when it raises the alarm, given that
the protocol guarantees "a storm is underway with probability >= 0.8
when the alarm sounds"?

Paper claim: the Section 1 reading of probabilistic constraints as
belief guarantees, certified by Theorem 6.2 (the expected acting
belief equals the constraint's achieved probability) on a minimal
hand-built pps.

Run:  python examples/quickstart.py
"""

from repro import PPSBuilder, analyze, env_fact

AGENT = "sensor"


def build_system():
    """Storm w.p. 1/2; the sensor reads it correctly w.p. 9/10.

    The sensor raises the alarm at time 1 iff its reading said "storm".
    """
    builder = PPSBuilder([AGENT], name="storm-alarm")

    storm = builder.initial("1/2", {AGENT: (0, "boot")}, env=("storm", True))
    calm = builder.initial("1/2", {AGENT: (0, "boot")}, env=("storm", False))

    # Round 0: the sensor takes its (noisy) reading.
    storm_read_hit = storm.child(
        "9/10", {AGENT: (1, "read-storm")}, env=("storm", True)
    )
    storm_read_miss = storm.child(
        "1/10", {AGENT: (1, "read-calm")}, env=("storm", True)
    )
    calm_read_hit = calm.child(
        "9/10", {AGENT: (1, "read-calm")}, env=("storm", False)
    )
    calm_read_miss = calm.child(
        "1/10", {AGENT: (1, "read-storm")}, env=("storm", False)
    )

    # Round 1: alarm iff the reading said storm.
    for handle, env in (
        (storm_read_hit, ("storm", True)),
        (calm_read_miss, ("storm", False)),
    ):
        handle.chain({AGENT: (2, "alarmed")}, env=env, actions={AGENT: "alarm"})
    for handle, env in (
        (storm_read_miss, ("storm", True)),
        (calm_read_hit, ("storm", False)),
    ):
        handle.chain({AGENT: (2, "quiet")}, env=env, actions={AGENT: "stand-down"})

    return builder.build()


def main() -> None:
    system = build_system()
    print(system)
    print()

    # The condition: a storm is underway.  We express it as a predicate
    # of the current global state (the environment carries the truth).
    storm_now = env_fact(lambda e: e == ("storm", True), label="storm")

    report = analyze(system, AGENT, "alarm", storm_now, "0.8")
    print(report.summary())
    print()

    if report.satisfied:
        print(
            "The constraint holds, and Theorem 6.2 says the sensor's "
            "expected belief in the storm when alarming equals "
            f"{report.achieved} — probably approximately knowing it."
        )


if __name__ == "__main__":
    main()
