#!/usr/bin/env python3
"""Reproduce every quantitative claim of the paper in one run.

Prints the paper-vs-measured table (the machine-checked core of
EXPERIMENTS.md) and exits non-zero if any row mismatches — suitable as
a reproduction smoke test in CI.

Paper claim: all of them — every quantitative number the paper states
(Example 1, Figure 1, Theorems 4.2–7.1, Corollary 7.2, Section 8) is
recomputed exactly and compared against the stated value.

Run:  python examples/reproduce_paper.py
"""

import sys

from repro.analysis.experiments import paper_experiments
from repro.analysis.report import format_experiments


def main() -> int:
    records = paper_experiments()
    print(format_experiments(records))
    mismatches = [record for record in records if not record.matches]
    print()
    if mismatches:
        print(f"{len(mismatches)} MISMATCHES — reproduction broken")
        return 1
    print(f"all {len(records)} paper claims reproduced exactly")
    return 0


if __name__ == "__main__":
    sys.exit(main())
