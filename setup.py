"""Legacy setup shim.

Allows ``pip install -e . --no-build-isolation`` to fall back to
``setup.py develop`` on environments that lack the ``wheel`` package
(PEP 660 editable installs require it).  All real metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
