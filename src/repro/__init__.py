"""repro — Probably Approximately Knowing.

A production-quality reproduction of *Probably Approximately Knowing*
(Nitzan Zamir and Yoram Moses, PODC 2020): an exact model-checking
library for probabilistic beliefs, probabilistic constraints, and the
probabilistic Knowledge-of-Preconditions principle in finite purely
probabilistic systems, together with the protocol / message-passing
substrates needed to generate such systems and every example and
construction the paper analyzes.

Quickstart::

    from repro import PPSBuilder, analyze, performed

    builder = PPSBuilder(["alice", "bob"], name="demo")
    ...
    system = builder.build()
    report = analyze(system, "alice", "fire", performed("bob", "fire"), "0.95")
    print(report.summary())

See ``examples/`` and README.md for complete walkthroughs.
"""

from .core import *  # noqa: F401,F403 — the core API is the package API
from .core import __all__ as _core_all

__version__ = "1.0.0"

__all__ = list(_core_all) + ["__version__"]
