"""Analysis tooling: Monte Carlo, random systems, sweeps, verification."""

from .experiments import paper_experiments
from .montecarlo import (
    RunSampler,
    estimate_achieved,
    estimate_conditional,
    estimate_expected_belief,
    estimate_probability,
    estimate_threshold_met,
)
from .random_systems import (
    proper_actions_of,
    random_protocol_system,
    random_run_fact,
    random_state_fact,
)
from .report import ExperimentRecord, format_experiments, render_tree
from .stats import Estimate, hoeffding_halfwidth, mean, normal_halfwidth, variance
from .timeline import TimelineCell, belief_timeline, expected_belief_by_time
from .sweep import (
    format_table,
    format_value,
    refrain_threshold_sweep,
    reweight_sweep,
    sweep,
)
from .verify import (
    SystemVerification,
    assert_theorems,
    verify_constraint,
    verify_system,
)

__all__ = [
    "Estimate",
    "ExperimentRecord",
    "RunSampler",
    "SystemVerification",
    "TimelineCell",
    "assert_theorems",
    "belief_timeline",
    "estimate_achieved",
    "estimate_conditional",
    "estimate_expected_belief",
    "estimate_probability",
    "estimate_threshold_met",
    "expected_belief_by_time",
    "format_experiments",
    "format_table",
    "format_value",
    "hoeffding_halfwidth",
    "mean",
    "normal_halfwidth",
    "paper_experiments",
    "proper_actions_of",
    "random_protocol_system",
    "random_run_fact",
    "random_state_fact",
    "refrain_threshold_sweep",
    "render_tree",
    "reweight_sweep",
    "sweep",
    "variance",
    "verify_constraint",
    "verify_system",
]
