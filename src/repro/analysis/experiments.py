"""The paper's complete claim registry, evaluated programmatically.

:func:`paper_experiments` rebuilds every system and computes every
quantitative claim of the paper, returning
:class:`~repro.analysis.report.ExperimentRecord` rows (paper value,
measured value, match flag).  ``examples/reproduce_paper.py`` prints
the table; ``tests/test_experiments_registry.py`` asserts every row
matches.  This is the one-call answer to "does the reproduction agree
with the paper?".
"""

from __future__ import annotations

from fractions import Fraction
from typing import List

from ..apps.coordinated_attack import (
    ATTACK,
    GENERAL_A,
    both_attack,
    build_coordinated_attack,
)
from ..apps.figure1 import AGENT as FIG1_AGENT
from ..apps.figure1 import ALPHA as FIG1_ALPHA
from ..apps.figure1 import build_figure1, phi_alpha, psi_not_alpha
from ..apps.firing_squad import ALICE, FIRE, THRESHOLD, both_fire, build_firing_squad
from ..apps.theorem52 import (
    AGENT_I,
    ALPHA,
    bit_is_one,
    build_theorem52,
    expected_off_threshold_belief,
)
from ..core.beliefs import belief_at_action, threshold_met_measure
from ..core.constraints import achieved_probability
from ..core.engine import SystemIndex
from ..core.expectation import expected_belief
from ..core.facts import Fact
from ..core.pps import PPS
from ..core.theorems import pak_level
from .report import ExperimentRecord

__all__ = ["paper_experiments"]


def _submit_batch(pps: PPS, agent, action, *facts: Fact) -> None:
    """Batch-evaluate a system's condition facts before the records.

    One engine pass over the runs covers the run facts, and one pass
    per *acting* time slice covers the whole fact list — exactly the
    slices the achieved/belief/threshold records below read — so every
    record that revisits these conditions answers from the
    structural-key caches instead of re-deriving events per quantity.
    """
    index = SystemIndex.of(pps)
    run_facts = [fact for fact in facts if fact.is_run_fact]
    if run_facts:
        index.events_of(run_facts)
    acting_times = sorted(
        {t for times in index.performance_times(agent, action).values() for t in times}
    )
    for t in acting_times:
        index.truths_at(list(facts), t)


def paper_experiments() -> List[ExperimentRecord]:
    """Compute every paper claim; see EXPERIMENTS.md for the narrative."""
    records: List[ExperimentRecord] = []

    # ------------------------------------------------------------- E1
    # Each system is built once; its SystemIndex (and therefore every
    # event/belief computed below) is cached on the instance, so later
    # experiment rows that revisit the same quantities are O(1).
    fs = build_firing_squad()
    phi = both_fire()
    _submit_batch(fs, ALICE, FIRE, phi)
    fs_achieved = achieved_probability(fs, ALICE, phi, FIRE)
    records.append(
        ExperimentRecord.of(
            "E1",
            "FS: mu(both fire | Alice fires)",
            "0.99",
            fs_achieved,
            note="Example 1",
        )
    )
    met = threshold_met_measure(fs, ALICE, phi, FIRE, THRESHOLD)
    records.append(
        ExperimentRecord.of("E1", "FS: threshold 0.95 met when firing", "0.991", met)
    )
    records.append(
        ExperimentRecord.of("E1", "FS: threshold missed when firing", "0.009", 1 - met)
    )
    records.append(
        ExperimentRecord.of(
            "E1",
            "FS: expected acting belief",
            "0.99",
            expected_belief(fs, ALICE, phi, FIRE),
            note="Theorem 6.2 instance",
        )
    )

    # ---------------------------------------------------------- E2/E3
    figure1 = build_figure1()
    psi = psi_not_alpha()
    fig1_phi = phi_alpha()
    _submit_batch(figure1, FIG1_AGENT, FIG1_ALPHA, psi, fig1_phi)
    performing = next(
        run for run in figure1.runs if run.performs(FIG1_AGENT, FIG1_ALPHA)
    )
    records.append(
        ExperimentRecord.of(
            "E2",
            "Fig1: beta(psi) when performing alpha",
            "1/2",
            belief_at_action(figure1, FIG1_AGENT, psi, FIG1_ALPHA, performing),
        )
    )
    records.append(
        ExperimentRecord.of(
            "E2",
            "Fig1: mu(psi@alpha | alpha)",
            0,
            achieved_probability(figure1, FIG1_AGENT, psi, FIG1_ALPHA),
        )
    )
    records.append(
        ExperimentRecord.of(
            "E3",
            "Fig1: mu(does(alpha)@alpha | alpha)",
            1,
            achieved_probability(figure1, FIG1_AGENT, fig1_phi, FIG1_ALPHA),
        )
    )
    records.append(
        ExperimentRecord.of(
            "E3",
            "Fig1: E[beta(does(alpha))@alpha | alpha]",
            "1/2",
            expected_belief(figure1, FIG1_AGENT, fig1_phi, FIG1_ALPHA),
        )
    )

    # ------------------------------------------------------------- E4
    t52 = build_theorem52("0.9", "0.1")
    bit = bit_is_one()
    _submit_batch(t52, AGENT_I, ALPHA, bit)
    records.append(
        ExperimentRecord.of(
            "E4",
            "T_hat(0.9, 0.1): mu(phi@alpha | alpha)",
            "0.9",
            achieved_probability(t52, AGENT_I, bit, ALPHA),
        )
    )
    records.append(
        ExperimentRecord.of(
            "E4",
            "T_hat: mu(belief >= p | alpha)",
            "0.1",
            threshold_met_measure(t52, AGENT_I, bit, ALPHA, "0.9"),
        )
    )
    records.append(
        ExperimentRecord.of(
            "E4",
            "T_hat: off-threshold belief (p-eps)/(1-eps)",
            "8/9",
            expected_off_threshold_belief("0.9", "0.1"),
        )
    )

    # ------------------------------------------------------------- E5
    records.append(
        ExperimentRecord.of(
            "E5",
            "Thm 6.2 on FS: achieved == expected",
            fs_achieved,
            expected_belief(fs, ALICE, phi, FIRE),
            note="equality is the claim",
        )
    )

    # ---------------------------------------------------------- E6/E8
    records.append(
        ExperimentRecord.of(
            "E8",
            "Cor 7.2 on FS: mu(belief >= 0.9 | fires)",
            None,
            threshold_met_measure(fs, ALICE, phi, FIRE, "0.9"),
            note="paper: must be >= 0.9; measured 0.991",
        )
    )
    records.append(
        ExperimentRecord.of(
            "E8",
            "PAK level for threshold 0.99",
            "0.9",
            pak_level("0.99"),
            note="Section 7 reading",
        )
    )

    # ------------------------------------------------------------- E7
    fs_improved = build_firing_squad(improved=True)
    fs_improved_phi = both_fire()
    _submit_batch(fs_improved, ALICE, FIRE, fs_improved_phi)
    records.append(
        ExperimentRecord.of(
            "E7",
            "FS': mu(both fire | Alice fires)",
            "990/991",
            achieved_probability(fs_improved, ALICE, fs_improved_phi, FIRE),
            note="paper prints the rounding 0.99899",
        )
    )

    # ------------------------------------------------------------ E11
    attack = build_coordinated_attack(loss="0.1", ack_rounds=1)
    attack_phi = both_attack()
    _submit_batch(attack, GENERAL_A, ATTACK, attack_phi)
    records.append(
        ExperimentRecord.of(
            "E11",
            "attack: expected belief = success (Fischer-Zuck)",
            achieved_probability(attack, GENERAL_A, attack_phi, ATTACK),
            expected_belief(attack, GENERAL_A, attack_phi, ATTACK),
        )
    )

    return records
