"""Monte-Carlo sampling of runs, cross-validating the exact engine.

The library computes every quantity exactly, so sampling is not needed
for correctness — it exists because (a) it validates the exact engine
end-to-end (an estimator converging to a different number would expose
a modelling bug), and (b) it demonstrates how the same analyses scale
to systems too large to enumerate.

:class:`RunSampler` draws runs by walking the tree from the root,
choosing children according to the edge probabilities — i.e. it
*simulates* the protocol rather than sampling the precomputed run list,
exercising the tree structure itself.

Estimators mirror the exact API:

* :func:`estimate_probability` — ``mu(event)``;
* :func:`estimate_conditional` — ``mu(target | given)``;
* :func:`estimate_achieved` — ``mu(phi@alpha | alpha)``;
* :func:`estimate_expected_belief` — ``E[beta@alpha | alpha]``
  (hybrid: runs sampled, per-run beliefs computed exactly);
* :func:`estimate_threshold_met` — ``mu(beta@alpha >= p | alpha)``.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from fractions import Fraction
from typing import Callable, Dict, List

from ..core.beliefs import belief_random_variable
from ..core.engine import SystemIndex
from ..core.errors import ConditioningOnNullEventError
from ..core.facts import Fact
from ..core.at_operators import at_action
from ..core.numeric import ProbabilityLike, as_fraction
from ..core.pps import PPS, Action, AgentId, Node, Run
from .stats import Estimate

__all__ = [
    "RunSampler",
    "estimate_probability",
    "estimate_conditional",
    "estimate_achieved",
    "estimate_expected_belief",
    "estimate_threshold_met",
]


class RunSampler:
    """Samples runs of a pps by simulating root-to-leaf walks.

    Child selection is exact: the RNG draw (a double in ``[0, 1)``) is
    interpreted as the rational it exactly represents and compared
    against exact ``Fraction`` cumulative edge weights, so round-off
    can neither skew the sampled distribution at cell boundaries nor
    require a fall-back child.  Seeds remain fully reproducible — the
    draw sequence is unchanged, only the (measure-theoretically
    correct) mapping from draw to child differs.

    Args:
        pps: the system to sample.
        seed: RNG seed (sampling is fully reproducible).
    """

    def __init__(self, pps: PPS, *, seed: int = 0) -> None:
        self.pps = pps
        self._rng = random.Random(seed)
        self._leaf_to_run: Dict[int, Run] = {
            run.nodes[-1].uid: run for run in pps.runs
        }
        self._cumulative: Dict[int, List[Fraction]] = {}

    def sample_run(self) -> Run:
        """One run, drawn from the prior ``mu_T``."""
        node = self.pps.root
        while node.children:
            node = self._choose_child(node)
        return self._leaf_to_run[node.uid]

    def sample_runs(self, n: int) -> List[Run]:
        """``n`` iid runs."""
        return [self.sample_run() for _ in range(n)]

    def _cumulative_weights(self, node: Node) -> List[Fraction]:
        cumulative = self._cumulative.get(node.uid)
        if cumulative is None:
            cumulative = []
            acc = Fraction(0)
            for child in node.children:
                acc += child.prob_from_parent
                cumulative.append(acc)
            self._cumulative[node.uid] = cumulative
        return cumulative

    def _choose_child(self, node: Node) -> Node:
        # Fraction(float) is the float's exact binary value; validated
        # trees have edge probabilities summing to exactly 1 > pick, so
        # the bisect always lands on a child.  The clamp only matters
        # for unvalidated (validate=False) trees whose weights sum
        # below 1: draws past the total degrade to the last child.
        pick = Fraction(self._rng.random())
        cumulative = self._cumulative_weights(node)
        choice = bisect_right(cumulative, pick)
        if choice == len(node.children):
            choice -= 1
        return node.children[choice]


def estimate_probability(
    pps: PPS,
    event: Callable[[Run], bool],
    *,
    samples: int = 10_000,
    seed: int = 0,
) -> Estimate:
    """Estimate ``mu(event)`` for a run predicate."""
    sampler = RunSampler(pps, seed=seed)
    hits = [1.0 if event(run) else 0.0 for run in sampler.sample_runs(samples)]
    return Estimate.from_samples(hits)


def estimate_conditional(
    pps: PPS,
    target: Callable[[Run], bool],
    given: Callable[[Run], bool],
    *,
    samples: int = 10_000,
    seed: int = 0,
) -> Estimate:
    """Estimate ``mu(target | given)`` by rejection sampling.

    ``samples`` counts *accepted* runs, so the precision is controlled
    regardless of how rare the conditioning event is.

    Raises:
        ConditioningOnNullEventError: when no run satisfies ``given``
            within a generous rejection budget.
    """
    sampler = RunSampler(pps, seed=seed)
    hits: List[float] = []
    budget = samples * 1000
    drawn = 0
    while len(hits) < samples and drawn < budget:
        run = sampler.sample_run()
        drawn += 1
        if given(run):
            hits.append(1.0 if target(run) else 0.0)
    if not hits:
        raise ConditioningOnNullEventError(
            "conditioning event never sampled; is it satisfiable?"
        )
    return Estimate.from_samples(hits)


def _performs(pps: PPS, agent: AgentId, action: Action) -> Callable[[Run], bool]:
    mask = SystemIndex.of(pps).performing_mask(agent, action)
    return lambda run: bool((mask >> run.index) & 1)


def estimate_achieved(
    pps: PPS,
    agent: AgentId,
    phi: Fact,
    action: Action,
    *,
    samples: int = 10_000,
    seed: int = 0,
) -> Estimate:
    """Estimate the achieved probability ``mu(phi@alpha | alpha)``.

    The target predicate is resolved to a run mask up front through the
    engine's batched evaluation, so the per-sample tally is a bit test
    rather than a fact evaluation per drawn run.  What the estimator
    cross-validates is therefore the *sampler and the probability
    kernel* (sampled frequencies vs. exact measures); mask correctness
    itself is cross-checked independently, against naive per-point
    evaluation, by the engine-parity and batched-parity test suites.
    """
    phi_at = at_action(phi, agent, action)
    [target_mask] = SystemIndex.of(pps).events_of([phi_at])
    return estimate_conditional(
        pps,
        lambda run: bool((target_mask >> run.index) & 1),
        _performs(pps, agent, action),
        samples=samples,
        seed=seed,
    )


def estimate_expected_belief(
    pps: PPS,
    agent: AgentId,
    phi: Fact,
    action: Action,
    *,
    samples: int = 10_000,
    seed: int = 0,
) -> Estimate:
    """Estimate ``E[beta_i(phi)@alpha | alpha]`` (beliefs exact per run)."""
    variable = belief_random_variable(pps, agent, phi, action)
    sampler = RunSampler(pps, seed=seed)
    values: List[float] = []
    budget = samples * 1000
    drawn = 0
    performs = _performs(pps, agent, action)
    while len(values) < samples and drawn < budget:
        run = sampler.sample_run()
        drawn += 1
        if performs(run):
            values.append(float(variable(run)))
    if not values:
        raise ConditioningOnNullEventError(
            "the action was never sampled; is it ever performed?"
        )
    return Estimate.from_samples(values)


def estimate_threshold_met(
    pps: PPS,
    agent: AgentId,
    phi: Fact,
    action: Action,
    threshold: ProbabilityLike,
    *,
    samples: int = 10_000,
    seed: int = 0,
) -> Estimate:
    """Estimate ``mu(beta_i(phi)@alpha >= threshold | alpha)``."""
    bound = as_fraction(threshold)
    variable = belief_random_variable(pps, agent, phi, action)
    sampler = RunSampler(pps, seed=seed)
    hits: List[float] = []
    budget = samples * 1000
    drawn = 0
    performs = _performs(pps, agent, action)
    while len(hits) < samples and drawn < budget:
        run = sampler.sample_run()
        drawn += 1
        if performs(run):
            hits.append(1.0 if variable(run) >= bound else 0.0)
    if not hits:
        raise ConditioningOnNullEventError(
            "the action was never sampled; is it ever performed?"
        )
    return Estimate.from_samples(hits)
