"""Seeded random system generators for property-based testing.

The paper's theorems quantify over *all* pps; the test-suite
approximates that universal claim by hammering the theorem checkers on
randomly generated systems.  Soundness of the generators matters: the
theorems' premises (protocol structure, properness, synchrony) must
hold *by construction*, so that a failed check indicates a library bug
rather than a malformed input.

:func:`random_protocol_system` therefore generates systems through the
real protocol compiler, with protocols drawn from seed-derived hash
streams:

* every agent's raw local state is ``(t, payload)``; the transition
  advances ``t``, so every action label ``(t, k)`` is performed at most
  once per run — all performed actions are automatically *proper*;
* action distributions depend only on ``(agent, local state)`` — the
  protocol-structure premise of Lemma 4.3(b) holds by construction;
* ``mixed_level`` controls how often steps are mixed, covering both
  Lemma 4.3(a) (deterministic) and genuinely mixed regimes.

Fact generators:

* :func:`random_state_fact` — a predicate of the current global state
  (always past-based, hence local-state independent of every proper
  action by Lemma 4.3(b));
* :func:`random_run_fact` — a predicate of the whole run (may be
  *dependent* on actions, exercising the theorems' vacuous branches).
"""

from __future__ import annotations

import random
from typing import List, Tuple

from ..core.atoms import state_fact
from ..core.facts import Fact, LambdaRunFact
from ..core.pps import PPS, Action, AgentId, GlobalState, Run
from ..protocols.compiler import Config, ProtocolSystem, compile_system
from ..protocols.distribution import Distribution
from ..protocols.environment import FunctionEnvironment

__all__ = [
    "random_protocol_spec",
    "random_protocol_system",
    "random_state_fact",
    "random_run_fact",
    "rotor_spec",
    "tree_signature",
    "proper_actions_of",
]


def _derived_rng(*parts: object) -> random.Random:
    """A deterministic RNG derived from structured keys (not ``hash``,
    which is salted per interpreter run)."""
    return random.Random(":".join(repr(part) for part in parts))


def _random_weights(rng: random.Random, n: int) -> List[object]:
    """``n`` positive rational weights summing to one."""
    from fractions import Fraction

    raw = [rng.randint(1, 5) for _ in range(n)]
    total = sum(raw)
    return [Fraction(value, total) for value in raw]


def random_protocol_spec(
    seed: int,
    *,
    n_agents: int = 2,
    horizon: int = 2,
    n_payloads: int = 3,
    n_actions: int = 2,
    mixed_level: float = 0.5,
    n_initials: int = 2,
) -> ProtocolSystem:
    """The uncompiled :class:`ProtocolSystem` behind
    :func:`random_protocol_system`.

    Exposed separately so callers can compile the same specification
    more than once — e.g. the compiler parity suite compiles each spec
    with and without expansion-template memoization and asserts the
    trees are identical.

    Args:
        seed: generator seed (same seed, same system).
        n_agents: number of agents.
        horizon: number of rounds.
        n_payloads: size of each agent's raw payload alphabet.
        n_actions: size of the per-round action alphabet.
        mixed_level: probability that a local state's step is a mixed
            action (0 = fully deterministic protocols).
        n_initials: number of initial configurations.
    """
    agents = tuple(f"a{k}" for k in range(n_agents))

    def protocol_for(agent: AgentId):
        def act(local: object) -> Distribution:
            t, payload = local
            rng = _derived_rng(seed, "P", agent, t, payload)
            labels = [(t, k) for k in range(n_actions)]
            if rng.random() >= mixed_level or n_actions == 1:
                return Distribution.point(rng.choice(labels))
            count = rng.randint(2, n_actions)
            chosen = rng.sample(labels, count)
            weights = _random_weights(rng, count)
            return Distribution(dict(zip(chosen, weights)))

        return act

    def environment(env_state: object, joint: object) -> Distribution:
        rng = _derived_rng(seed, "E", env_state, tuple(sorted(joint.items())))
        if rng.random() < 0.5:
            return Distribution.point(0)
        weights = _random_weights(rng, 2)
        return Distribution(dict(zip((0, 1), weights)))

    def transition(env_state, locals_map, joint_actions, env_action):
        t = env_state
        new_locals = {}
        for agent in agents:
            _, payload = locals_map[agent]
            rng = _derived_rng(
                seed, "T", agent, t, payload, joint_actions[agent], env_action
            )
            new_locals[agent] = (t + 1, rng.randrange(n_payloads))
        return t + 1, new_locals

    init_rng = _derived_rng(seed, "I")
    configs = []
    seen = set()
    for _ in range(n_initials):
        payloads = tuple(init_rng.randrange(n_payloads) for _ in agents)
        if payloads in seen:
            continue
        seen.add(payloads)
        configs.append(Config(env=0, locals=tuple((0, p) for p in payloads)))
    weights = _random_weights(init_rng, len(configs))

    return ProtocolSystem(
        agents=agents,
        protocols={agent: protocol_for(agent) for agent in agents},
        transition=transition,
        initial=Distribution(dict(zip(configs, weights))),
        environment=FunctionEnvironment(environment),
        horizon=horizon,
    )


def random_protocol_system(seed: int, **kwargs: object) -> PPS:
    """A random pps generated through the protocol compiler.

    Accepts the same keyword arguments as :func:`random_protocol_spec`
    and compiles the resulting specification.
    """
    system = random_protocol_spec(seed, **kwargs)  # type: ignore[arg-type]
    return compile_system(system, name=f"random-{seed}")


def rotor_spec(
    *, n_agents: int = 4, modulus: int = 3, horizon: int = 4, coins: int = 2
) -> ProtocolSystem:
    """A bounded-memory synchronous system with massive config reuse.

    Each agent's raw local state is an integer mod ``modulus``; the
    first ``coins`` agents flip fair coins, the rest always act 1, and
    every agent advances its own state by its action.  The reachable
    configuration set has at most ``modulus ** n_agents`` elements
    while the tree has ``(2 ** coins) ** horizon`` runs — the
    repeated-configuration regime of synchronous protocols, where one
    expansion template serves thousands of nodes.  Shared by the
    compile-parity tests and ``benchmarks/bench_compiler_scaling.py``.
    """
    agents = tuple(f"w{i}" for i in range(n_agents))

    def protocol_for(i: int):
        if i < coins:
            return lambda local: Distribution.uniform([0, 1])
        return lambda local: Distribution.point(1)

    def transition(env, locals_map, joint_actions, env_action):
        return env, {a: (locals_map[a] + joint_actions[a]) % modulus for a in agents}

    return ProtocolSystem(
        agents=agents,
        protocols={a: protocol_for(i) for i, a in enumerate(agents)},
        transition=transition,
        initial=Distribution.point(Config(env=None, locals=(0,) * n_agents)),
        horizon=horizon,
    )


def tree_signature(pps: PPS) -> List[Tuple]:
    """Every observable of every node, in pre-order.

    The compile-parity contract in one value: two systems whose
    signatures are equal have identical uid sequences, depths, states,
    edge probabilities, and via-actions — the benchmark and the parity
    suite both compare trees through this.  Edge labels are resolved
    through :meth:`~repro.core.pps.PPS.edge_action`, so a derived
    system's signature shows its overlay, not the parent's raw labels.
    """
    out: List[Tuple] = []
    stack = [pps.root]
    while stack:
        node = stack.pop()
        via = pps.edge_action(node)
        out.append(
            (
                node.uid,
                node.depth,
                node.state,
                node.prob_from_parent,
                dict(via) if via is not None else None,
            )
        )
        stack.extend(reversed(node.children))
    return out


def random_state_fact(seed: int, *, density: float = 0.5) -> Fact:
    """A random past-based fact: a seeded predicate of the global state."""

    def predicate(state: GlobalState) -> bool:
        return _derived_rng(seed, "SF", state.env, state.locals).random() < density

    return state_fact(predicate, label=f"random-state-fact({seed})")


def random_run_fact(seed: int, *, density: float = 0.5) -> Fact:
    """A random fact about runs: a seeded predicate of the run's path.

    Depends on the *entire* run (future included), so it is generally
    neither past-based nor local-state independent — useful for
    exercising the theorems' premise-failure branches.
    """

    def predicate(pps: PPS, run: Run) -> bool:
        shape = tuple(
            (node.state.env, node.state.locals) for node in run.nodes
        )
        return _derived_rng(seed, "RF", shape).random() < density

    return LambdaRunFact(predicate, label=f"random-run-fact({seed})")


def proper_actions_of(pps: PPS, agent: AgentId) -> List[Action]:
    """All proper actions of ``agent`` in ``pps``, deterministically ordered.

    Served from the system index's action tables (one edge scan per
    system, regardless of how many actions are interrogated).
    """
    from ..core.actions import is_proper
    from ..core.engine import SystemIndex

    index = SystemIndex.of(pps)
    return sorted(
        (
            action
            for action in index.actions_of(agent)
            if is_proper(pps, agent, action)
        ),
        key=repr,
    )
