"""Rendering helpers: trees, experiment records, paper-vs-measured tables.

:func:`render_tree` draws a pps as indented ASCII (the shape of the
paper's Figures 1 and 2 as printed by ``examples/``).
:class:`ExperimentRecord` is the unit of EXPERIMENTS.md: a paper claim
(exact expected value) next to the measured value, with a match flag.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Sequence

from ..core.lazyprob import exact_value
from ..core.numeric import ProbabilityLike, as_fraction
from ..core.pps import PPS, Node

__all__ = ["render_tree", "ExperimentRecord", "format_experiments"]


def _node_line(pps: PPS, node: Node) -> str:
    if node.is_root:
        return "(root)"
    # repro: allow[RP006] internal invariant: non-root nodes always
    # carry a state (type-narrowing after the root check above).
    assert node.state is not None
    locals_repr = ", ".join(
        f"{agent}={local!r}" for agent, local in zip(pps.agents, node.state.locals)
    )
    action = ""
    # Resolve through the system so derived overlays render correctly.
    via = pps.edge_action(node)
    if via:
        inner = ", ".join(f"{k}:{v!r}" for k, v in sorted(via.items(), key=lambda kv: str(kv[0])))
        action = f" via {{{inner}}}"
    return f"p={node.prob_from_parent} t={node.time} [{locals_repr}]{action}"


def render_tree(pps: PPS, *, max_nodes: int = 500) -> str:
    """An indented ASCII rendering of the execution tree.

    Args:
        pps: the system to draw.
        max_nodes: safety cap; larger trees are truncated with a note.
    """
    lines: List[str] = [f"pps {pps.name!r} agents={pps.agents}"]
    count = 0

    def visit(node: Node, depth: int) -> None:
        nonlocal count
        if count >= max_nodes:
            return
        count += 1
        lines.append("  " * depth + _node_line(pps, node))
        for child in node.children:
            visit(child, depth + 1)

    visit(pps.root, 0)
    if count >= max_nodes:
        lines.append(f"... truncated at {max_nodes} nodes ...")
    return "\n".join(lines)


@dataclass(frozen=True)
class ExperimentRecord:
    """One paper-claim-versus-measured comparison.

    Attributes:
        experiment: experiment id (e.g. ``"E1"``).
        quantity: what is being compared.
        paper: the value the paper states (exact rational, or None when
            the paper gives only a qualitative claim).
        measured: the value this library computes.
        note: provenance or derivation notes.
    """

    experiment: str
    quantity: str
    paper: Optional[Fraction]
    measured: Fraction
    note: str = ""

    @property
    def matches(self) -> bool:
        """Exact agreement with the paper (vacuously true if no claim)."""
        return self.paper is None or self.paper == self.measured

    @classmethod
    def of(
        cls,
        experiment: str,
        quantity: str,
        paper: Optional[ProbabilityLike],
        measured: ProbabilityLike,
        note: str = "",
    ) -> "ExperimentRecord":
        """Build a record, coercing inputs to exact rationals.

        Auto-mode results (:class:`~repro.core.lazyprob.LazyProb`) are
        accepted for ``measured``/``paper``: the record stores their
        forced exact value, so a paper-vs-measured comparison is always
        an exact rational equality regardless of which numeric tier
        produced the measurement.
        """
        return cls(
            experiment=experiment,
            quantity=quantity,
            paper=None if paper is None else as_fraction(exact_value(paper)),
            measured=as_fraction(exact_value(measured)),
            note=note,
        )


def format_experiments(records: Sequence[ExperimentRecord]) -> str:
    """A paper-vs-measured table (also pasted into EXPERIMENTS.md)."""
    header = f"{'exp':4}  {'quantity':42}  {'paper':22}  {'measured':22}  match"
    lines = [header, "-" * len(header)]
    for record in records:
        paper = "—" if record.paper is None else f"{record.paper} (~{float(record.paper):.6g})"
        measured = f"{record.measured} (~{float(record.measured):.6g})"
        lines.append(
            f"{record.experiment:4}  {record.quantity:42.42}  {paper:22}  "
            f"{measured:22}  {'OK' if record.matches else 'MISMATCH'}"
        )
    return "\n".join(lines)
