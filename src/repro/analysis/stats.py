"""Small statistics helpers shared by the Monte-Carlo and sweep tooling.

Pure Python (no numpy dependency in the library core): sample mean,
unbiased variance, normal-approximation confidence intervals and the
distribution-free Hoeffding bound for [0, 1]-valued variables — the
right tool for probability estimates, which is what every Monte-Carlo
quantity in this library is.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = ["mean", "variance", "normal_halfwidth", "hoeffding_halfwidth", "Estimate"]

_Z_95 = 1.959963984540054  # two-sided 95% normal quantile


def mean(values: Sequence[float]) -> float:
    """The sample mean.

    Raises:
        ValueError: on an empty sample.
    """
    if not values:
        raise ValueError("mean of an empty sample")
    return sum(values) / len(values)


def variance(values: Sequence[float]) -> float:
    """The unbiased sample variance (0 for samples of size < 2)."""
    n = len(values)
    if n < 2:
        return 0.0
    m = mean(values)
    return sum((v - m) ** 2 for v in values) / (n - 1)


def normal_halfwidth(values: Sequence[float], *, z: float = _Z_95) -> float:
    """Half-width of the normal-approximation confidence interval."""
    n = len(values)
    if n == 0:
        raise ValueError("confidence interval of an empty sample")
    return z * math.sqrt(variance(values) / n)


def hoeffding_halfwidth(n: int, *, delta: float = 0.05, range_width: float = 1.0) -> float:
    """Hoeffding half-width: |estimate - truth| <= this w.p. >= 1 - delta.

    Valid for iid samples of a variable bounded in an interval of width
    ``range_width`` — distribution-free, hence conservative.
    """
    if n <= 0:
        raise ValueError("sample size must be positive")
    if not (0 < delta < 1):
        raise ValueError("delta must be in (0, 1)")
    return range_width * math.sqrt(math.log(2.0 / delta) / (2.0 * n))


@dataclass(frozen=True)
class Estimate:
    """A Monte-Carlo estimate with its uncertainty.

    Attributes:
        value: the point estimate (sample mean).
        n: sample size.
        halfwidth: 95% normal-approximation half-width.
        hoeffding: distribution-free 95% half-width.
    """

    value: float
    n: int
    halfwidth: float
    hoeffding: float

    @classmethod
    def from_samples(cls, values: Sequence[float]) -> "Estimate":
        return cls(
            value=mean(values),
            n=len(values),
            halfwidth=normal_halfwidth(values),
            hoeffding=hoeffding_halfwidth(len(values)),
        )

    def consistent_with(self, truth: float, *, slack: float = 0.0) -> bool:
        """Whether ``truth`` lies within the Hoeffding interval (+ slack)."""
        return abs(self.value - truth) <= self.hoeffding + slack

    def __str__(self) -> str:
        return f"{self.value:.6g} ± {self.halfwidth:.2g} (n={self.n})"
