"""Parameter-sweep harness for the benchmark tables.

Every benchmark regenerates a "table" of the reproduction — a grid of
parameter combinations with derived exact quantities.  :func:`sweep`
runs a row function over the cartesian product of a parameter grid and
collects the rows; :func:`format_table` renders them for terminal
output (benchmarks print these so the reproduced tables are visible in
the benchmark logs).
"""

from __future__ import annotations

from fractions import Fraction
from itertools import product as iter_product
from typing import Callable, Dict, List, Mapping, Optional, Sequence

__all__ = ["sweep", "format_table", "format_value"]

Row = Dict[str, object]


def sweep(
    grid: Mapping[str, Sequence[object]],
    row_fn: Callable[..., Mapping[str, object]],
) -> List[Row]:
    """Evaluate ``row_fn`` on every point of the parameter grid.

    Args:
        grid: parameter name -> values; the cartesian product is
            traversed in a deterministic order.
        row_fn: called with the grid point as keyword arguments; its
            result is merged (after) the parameters into the row.

    Returns:
        one merged row dict per grid point.
    """
    names = list(grid)
    rows: List[Row] = []
    for combo in iter_product(*(grid[name] for name in names)):
        params = dict(zip(names, combo))
        result = row_fn(**params)
        row: Row = dict(params)
        row.update(result)
        rows.append(row)
    return rows


def format_value(value: object) -> str:
    """Render a cell: Fractions as ``p/q (~float)``, floats compactly."""
    if isinstance(value, Fraction):
        if value.denominator == 1:
            return str(value.numerator)
        return f"{value} (~{float(value):.6g})"
    if isinstance(value, float):
        return f"{value:.6g}"
    if isinstance(value, bool):
        return "yes" if value else "no"
    return str(value)


def format_table(
    rows: Sequence[Row],
    *,
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    cols = list(columns) if columns is not None else list(rows[0])
    cells = [[format_value(row.get(col, "")) for col in cols] for row in rows]
    widths = [
        max(len(col), *(len(row[k]) for row in cells))
        for k, col in enumerate(cols)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[k]) for k, col in enumerate(cols))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[k]) for k, cell in enumerate(row)))
    return "\n".join(lines)
