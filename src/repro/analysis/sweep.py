"""Parameter-sweep harness for the benchmark tables.

Every benchmark regenerates a "table" of the reproduction — a grid of
parameter combinations with derived exact quantities.  :func:`sweep`
runs a row function over the cartesian product of a parameter grid and
collects the rows; :func:`format_table` renders them for terminal
output (benchmarks print these so the reproduced tables are visible in
the benchmark logs).

:func:`refrain_threshold_sweep` is the transform-aware sweep: one
parent system, one row per refrain threshold, every row a derived
system (:class:`~repro.core.pps.DerivedPPS`) sharing the parent's tree
and engine index — the workload the derived-system layer exists for.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import product as iter_product
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from ..core.constraints import achieved_probability
from ..core.engine import SystemIndex
from ..core.facts import Fact
from ..core.lazyprob import LazyProb, check_numeric_mode
from ..core.numeric import ProbabilityLike, as_fraction
from ..core.pps import PPS, Action, ActionOverlay, AgentId, DerivedPPS

__all__ = [
    "sweep",
    "refrain_threshold_sweep",
    "format_table",
    "format_value",
]

Row = Dict[str, object]


def sweep(
    grid: Mapping[str, Sequence[object]],
    row_fn: Optional[Callable[..., Mapping[str, object]]] = None,
    *,
    batch_row_fn: Optional[
        Callable[[Sequence[Dict[str, object]]], Sequence[Mapping[str, object]]]
    ] = None,
    numeric: Optional[str] = None,
) -> List[Row]:
    """Evaluate a row function on every point of the parameter grid.

    Exactly one of ``row_fn`` and ``batch_row_fn`` must be given.

    Args:
        grid: parameter name -> values; the cartesian product is
            traversed in a deterministic order.
        row_fn: called with each grid point as keyword arguments; its
            result is merged (after) the parameters into the row.
        batch_row_fn: called once with the full list of grid points
            (as dicts) and must return one result mapping per point,
            in order.  Use this to submit the whole sweep's facts to
            the engine's batched evaluation (one run-slice pass per
            batch instead of per fact) and to share structural-key
            cache hits across rows.
        numeric: when given (``"exact"``/``"auto"``/``"float"``), the
            mode is validated and forwarded to ``row_fn`` as an extra
            ``numeric=`` keyword (or to ``batch_row_fn`` as a second
            positional argument), so a whole table can be flipped onto
            the two-tier kernel from one knob.  ``None`` (default)
            forwards nothing — existing row functions are untouched.

    Returns:
        one merged row dict per grid point.

    Raises:
        TypeError: unless exactly one of ``row_fn``/``batch_row_fn`` is
            supplied.
        ValueError: when a result mapping's keys collide with a grid
            parameter name (the result would silently overwrite the
            parameter column), when ``batch_row_fn`` returns the wrong
            number of results, or for an unknown ``numeric`` mode.
    """
    if (row_fn is None) == (batch_row_fn is None):
        raise TypeError("sweep() takes exactly one of row_fn or batch_row_fn")
    if numeric is not None:
        check_numeric_mode(numeric)
    names = list(grid)
    points = [
        dict(zip(names, combo))
        for combo in iter_product(*(grid[name] for name in names))
    ]
    if batch_row_fn is not None:
        if numeric is None:
            results = list(batch_row_fn([dict(point) for point in points]))
        else:
            results = list(batch_row_fn([dict(point) for point in points], numeric))
        if len(results) != len(points):
            raise ValueError(
                f"batch_row_fn returned {len(results)} results "
                f"for {len(points)} grid points"
            )
    else:
        # repro: allow[RP006] internal invariant: the explicit TypeError
        # validation above guarantees one of the two (type-narrowing).
        assert row_fn is not None
        if numeric is None:
            results = [row_fn(**point) for point in points]
        else:
            results = [row_fn(**point, numeric=numeric) for point in points]
    rows: List[Row] = []
    for params, result in zip(points, results):
        collisions = sorted(set(params) & set(result))
        if collisions:
            raise ValueError(
                f"row result would overwrite grid parameter(s) {collisions}; "
                "rename the result keys"
            )
        row: Row = dict(params)
        row.update(result)
        rows.append(row)
    return rows


def refrain_threshold_sweep(
    pps: PPS,
    agent: AgentId,
    phi: Fact,
    action: Action,
    thresholds: Sequence[ProbabilityLike],
    *,
    replacement: Action = "skip",
    materialize: bool = False,
    numeric: str = "exact",
) -> List[Row]:
    """One row per refrain threshold, sharing one parent index.

    For each threshold the system is transformed with
    :func:`~repro.protocols.strategies.refrain_below_threshold` and the
    row records the modified protocol's achieved probability
    ``mu(phi@alpha | alpha)`` and retained coverage ``mu(alpha)`` —
    the value-vs-coverage trade of the paper's Section 8, made dense.

    Every row is a derived system over the *same* parent: the acting
    beliefs that decide the relabelling are memoized once on the
    parent's index and shared across all rows, and each row's index
    inherits everything label-independent from the parent's.  Pass
    ``materialize=True`` to force the historic deep-copy-and-rebuild
    path instead (each row then pays a full copy, validation, and cold
    index build — the benchmark's baseline).

    A threshold of 0 never strips an edge (beliefs are never negative),
    so the first row of the usual ``0 .. 1`` grid reports the original
    protocol's numbers.

    Repeated threshold values are deduplicated before any system is
    built and the computed rows fanned back out in input order (each
    duplicate gets its own row dict), so degenerate grids pay
    per-*distinct*-threshold work only.

    ``numeric="auto"`` runs the whole sweep — the belief guards inside
    the transform and both reported measures — through the two-tier
    kernel: every row's relabelled edge set is identical to exact
    mode's, and the reported ``LazyProb`` cells carry identical exact
    values on demand.  This is the dense-sweep fast path the kernel
    exists for: O(rows) float work, exact work only at boundary hits.

    Returns:
        one row dict per threshold:
        ``{"threshold", "achieved", "coverage"}``, exact rationals
        (``LazyProb``/float cells in the non-default modes).
    """
    from ..protocols.strategies import refrain_below_threshold

    check_numeric_mode(numeric)
    make_row = _candidate_edge_transform(
        pps, agent, action, phi, replacement=replacement, numeric=numeric
    ) if not materialize else None
    bounds = [as_fraction(threshold) for threshold in thresholds]
    computed: Dict[Fraction, Row] = {}
    for bound in bounds:
        if bound in computed:
            continue
        if make_row is not None:
            modified = make_row(bound)
        else:
            modified = refrain_below_threshold(
                pps,
                agent,
                action,
                phi,
                bound,
                replacement=replacement,
                materialize=materialize,
                numeric=numeric,
            )
        index = SystemIndex.of(modified)
        computed[bound] = {
            "threshold": bound,
            "achieved": achieved_probability(
                modified, agent, phi, action, numeric=numeric
            ),
            "coverage": index.probability(
                index.performing_mask(agent, action), numeric=numeric
            ),
        }
    return [dict(computed[bound]) for bound in bounds]


def _candidate_edge_transform(
    pps: PPS,
    agent: AgentId,
    action: Action,
    phi: Fact,
    *,
    replacement: Action,
    numeric: str,
):
    """A per-threshold builder of refrain-derived systems for one sweep.

    :func:`~repro.protocols.strategies.refrain_below_threshold` walks
    the whole tree per call; across a dense sweep every row repeats
    that walk only to rediscover the same handful of matching edges.
    This helper enumerates them once
    (:func:`~repro.protocols.strategies.refrain_candidates`, the
    transform's own candidate semantics), hoists each acting state's
    posterior, and returns a closure that builds the row's
    :class:`~repro.core.pps.DerivedPPS` from O(candidate edges) belief
    guards.  The produced system is identical to the transform's (same
    overrides, discovered in the same breadth-first order).
    """
    from ..protocols.strategies import refrain_candidates

    index = SystemIndex.of(pps)
    candidates = refrain_candidates(pps, agent, action)
    guard_numeric = "auto" if numeric == "float" else numeric
    beliefs = {
        local: index.belief(agent, phi, local, numeric=guard_numeric)
        for _, _, local in candidates
    }

    def make_row(bound: Fraction) -> PPS:
        if numeric == "auto":
            comparand: object = LazyProb.from_exact(bound)
        elif numeric == "float":
            comparand = bound.numerator / bound.denominator
        else:
            comparand = bound
        overrides = []
        for node, via, local in candidates:
            b = beliefs[local]
            low = (b.approx < comparand) if numeric == "float" else (b < comparand)
            if low and replacement != action:
                overrides.append((node, {**via, agent: replacement}))
        return DerivedPPS(
            pps,
            ActionOverlay(overrides),
            name=f"{pps.name}-refrain[{action}]",
        )

    return make_row


def format_value(value: object) -> str:
    """Render a cell, marking exact values apart from approximations.

    * ``Fraction`` — exact: ``p/q (~float)`` (integral ones bare);
    * ``LazyProb`` — exact value available on demand: rendered from
      :meth:`~repro.core.lazyprob.LazyProb.exact` as ``p/q (~float)=``,
      the trailing ``=`` marking "exact, lazily materialized";
    * ``float`` — approximate: ``~x`` at 12 significant digits (stable
      fixed precision, so float-mode tables diff cleanly across runs).
    """
    if isinstance(value, LazyProb):
        exact = value.exact()
        if exact.denominator == 1:
            return f"{exact.numerator}="
        return f"{exact} (~{float(exact):.6g})="
    if isinstance(value, Fraction):
        if value.denominator == 1:
            return str(value.numerator)
        return f"{value} (~{float(value):.6g})"
    if isinstance(value, float):
        return f"~{value:.12g}"
    if isinstance(value, bool):
        return "yes" if value else "no"
    return str(value)


def format_table(
    rows: Sequence[Row],
    *,
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    cols = list(columns) if columns is not None else list(rows[0])
    cells = [[format_value(row.get(col, "")) for col in cols] for row in rows]
    widths = [
        max(len(col), *(len(row[k]) for row in cells))
        for k, col in enumerate(cols)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[k]) for k, col in enumerate(cols))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[k]) for k, cell in enumerate(row)))
    return "\n".join(lines)
