"""Parameter-sweep harness for the benchmark tables.

Every benchmark regenerates a "table" of the reproduction — a grid of
parameter combinations with derived exact quantities.  :func:`sweep`
runs a row function over the cartesian product of a parameter grid and
collects the rows; :func:`format_table` renders them for terminal
output (benchmarks print these so the reproduced tables are visible in
the benchmark logs).

:func:`refrain_threshold_sweep` is the transform-aware sweep: one
parent system, one row per refrain threshold, every row a derived
system (:class:`~repro.core.pps.DerivedPPS`) sharing the parent's tree
and engine index — the workload the derived-system layer exists for.
:func:`reweight_sweep` is its weight-side sibling: one row per
probability-parameter value, every row a
:class:`~repro.core.pps.ReweightedPPS` child inheriting the parent
index's shape-dependent tables and rebuilding only weights
(``docs/transforms.md``) — the adversary-drift workload of ISSUE 9.
"""

from __future__ import annotations

import time
from fractions import Fraction
from itertools import product as iter_product
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from ..core.constraints import achieved_probability
from ..core.engine import SystemIndex
from ..core.facts import Fact
from ..core.faults import (
    absorb_events,
    maybe_fire,
    record_degradation,
    record_retry,
)
from ..core.lazyprob import LazyProb, check_numeric_mode
from ..core.numeric import ProbabilityLike, as_fraction
from ..core.pps import PPS, Action, ActionOverlay, AgentId, DerivedPPS

__all__ = [
    "sweep",
    "refrain_threshold_sweep",
    "reweight_sweep",
    "format_table",
    "format_value",
]

Row = Dict[str, object]


def sweep(
    grid: Mapping[str, Sequence[object]],
    row_fn: Optional[Callable[..., Mapping[str, object]]] = None,
    *,
    batch_row_fn: Optional[
        Callable[[Sequence[Dict[str, object]]], Sequence[Mapping[str, object]]]
    ] = None,
    numeric: Optional[str] = None,
) -> List[Row]:
    """Evaluate a row function on every point of the parameter grid.

    Exactly one of ``row_fn`` and ``batch_row_fn`` must be given.

    Args:
        grid: parameter name -> values; the cartesian product is
            traversed in a deterministic order.
        row_fn: called with each grid point as keyword arguments; its
            result is merged (after) the parameters into the row.
        batch_row_fn: called once with the full list of grid points
            (as dicts) and must return one result mapping per point,
            in order.  Use this to submit the whole sweep's facts to
            the engine's batched evaluation (one run-slice pass per
            batch instead of per fact) and to share structural-key
            cache hits across rows.
        numeric: when given (``"exact"``/``"auto"``/``"float"``), the
            mode is validated and forwarded to ``row_fn`` as an extra
            ``numeric=`` keyword (or to ``batch_row_fn`` as a second
            positional argument), so a whole table can be flipped onto
            the two-tier kernel from one knob.  ``None`` (default)
            forwards nothing — existing row functions are untouched.

    Returns:
        one merged row dict per grid point.

    Raises:
        TypeError: unless exactly one of ``row_fn``/``batch_row_fn`` is
            supplied.
        ValueError: when a result mapping's keys collide with a grid
            parameter name (the result would silently overwrite the
            parameter column), when ``batch_row_fn`` returns the wrong
            number of results, or for an unknown ``numeric`` mode.
    """
    if (row_fn is None) == (batch_row_fn is None):
        raise TypeError("sweep() takes exactly one of row_fn or batch_row_fn")
    if numeric is not None:
        check_numeric_mode(numeric)
    names = list(grid)
    points = [
        dict(zip(names, combo))
        for combo in iter_product(*(grid[name] for name in names))
    ]
    if batch_row_fn is not None:
        if numeric is None:
            results = list(batch_row_fn([dict(point) for point in points]))
        else:
            results = list(batch_row_fn([dict(point) for point in points], numeric))
        if len(results) != len(points):
            raise ValueError(
                f"batch_row_fn returned {len(results)} results "
                f"for {len(points)} grid points"
            )
    else:
        # repro: allow[RP006] internal invariant: the explicit TypeError
        # validation above guarantees one of the two (type-narrowing).
        assert row_fn is not None
        if numeric is None:
            results = [row_fn(**point) for point in points]
        else:
            results = [row_fn(**point, numeric=numeric) for point in points]
    rows: List[Row] = []
    for params, result in zip(points, results):
        collisions = sorted(set(params) & set(result))
        if collisions:
            raise ValueError(
                f"row result would overwrite grid parameter(s) {collisions}; "
                "rename the result keys"
            )
        row: Row = dict(params)
        row.update(result)
        rows.append(row)
    return rows


def refrain_threshold_sweep(
    pps: PPS,
    agent: AgentId,
    phi: Fact,
    action: Action,
    thresholds: Sequence[ProbabilityLike],
    *,
    replacement: Action = "skip",
    materialize: bool = False,
    numeric: str = "exact",
    parallel: Optional[int] = None,
) -> List[Row]:
    """One row per refrain threshold, sharing one parent index.

    For each threshold the system is transformed with
    :func:`~repro.protocols.strategies.refrain_below_threshold` and the
    row records the modified protocol's achieved probability
    ``mu(phi@alpha | alpha)`` and retained coverage ``mu(alpha)`` —
    the value-vs-coverage trade of the paper's Section 8, made dense.

    Every row is a derived system over the *same* parent: the acting
    beliefs that decide the relabelling are memoized once on the
    parent's index and shared across all rows, and each row's index
    inherits everything label-independent from the parent's.  Pass
    ``materialize=True`` to force the historic deep-copy-and-rebuild
    path instead (each row then pays a full copy, validation, and cold
    index build — the benchmark's baseline).

    A threshold of 0 never strips an edge (beliefs are never negative),
    so the first row of the usual ``0 .. 1`` grid reports the original
    protocol's numbers.

    Repeated threshold values are deduplicated before any system is
    built and the computed rows fanned back out in input order (each
    duplicate gets its own row dict), so degenerate grids pay
    per-*distinct*-threshold work only.

    ``numeric="auto"`` runs the whole sweep — the belief guards inside
    the transform and both reported measures — through the two-tier
    kernel: every row's relabelled edge set is identical to exact
    mode's, and the reported ``LazyProb`` cells carry identical exact
    values on demand.  This is the dense-sweep fast path the kernel
    exists for: O(rows) float work, exact work only at boundary hits.

    ``parallel=N`` (N > 1) distributes the distinct-threshold rows over
    ``N`` forked worker processes (``docs/sharding.md``): the acting
    beliefs are hoisted on the parent index *before* the fork exactly
    as in serial mode, each worker builds a contiguous chunk of the
    deduplicated threshold list, and the parent reassembles rows — and
    absorbs each worker's ``numeric_stats()`` delta — in chunk order,
    so rows, exact values, and counter totals are identical to the
    serial sweep.  Any transport failure (no ``fork`` on the platform,
    an unpicklable row cell) falls back to the serial path silently;
    ``parallel=None``/``0``/``1`` never forks at all.

    Returns:
        one row dict per threshold:
        ``{"threshold", "achieved", "coverage"}``, exact rationals
        (``LazyProb``/float cells in the non-default modes).
    """
    check_numeric_mode(numeric)
    make_row = _candidate_edge_transform(
        pps, agent, action, phi, replacement=replacement, numeric=numeric
    ) if not materialize else None
    bounds = [as_fraction(threshold) for threshold in thresholds]
    distinct: List[Fraction] = []
    seen = set()
    for bound in bounds:
        if bound not in seen:
            seen.add(bound)
            distinct.append(bound)
    computed: Optional[Dict[Fraction, Row]] = None
    if parallel is not None and parallel > 1 and len(distinct) > 1:
        computed = _parallel_rows(
            pps,
            agent,
            phi,
            action,
            distinct,
            replacement=replacement,
            materialize=materialize,
            numeric=numeric,
            make_row=make_row,
            parallel=parallel,
        )
    if computed is None:
        computed = {
            bound: _threshold_row(
                pps,
                agent,
                phi,
                action,
                bound,
                replacement=replacement,
                materialize=materialize,
                numeric=numeric,
                make_row=make_row,
            )
            for bound in distinct
        }
    return [dict(computed[bound]) for bound in bounds]


def _threshold_row(
    pps: PPS,
    agent: AgentId,
    phi: Fact,
    action: Action,
    bound: Fraction,
    *,
    replacement: Action,
    materialize: bool,
    numeric: str,
    make_row,
) -> Row:
    """One sweep row: build the refrain-derived system and measure it.

    The shared row builder of the serial loop and the parallel workers
    — one code path, so a forked row is the serial row by construction.
    """
    from ..protocols.strategies import refrain_below_threshold

    if make_row is not None:
        modified = make_row(bound)
    else:
        modified = refrain_below_threshold(
            pps,
            agent,
            action,
            phi,
            bound,
            replacement=replacement,
            materialize=materialize,
            numeric=numeric,
        )
    index = SystemIndex.of(modified)
    return {
        "threshold": bound,
        "achieved": achieved_probability(
            modified, agent, phi, action, numeric=numeric
        ),
        "coverage": index.probability(
            index.performing_mask(agent, action), numeric=numeric
        ),
    }


def reweight_sweep(
    pps: PPS,
    transform: Callable[..., PPS],
    values: Sequence[ProbabilityLike],
    measure: Callable[..., Mapping[str, object]],
    *,
    param: str = "value",
    materialize: bool = False,
    numeric: str = "exact",
    parallel: Optional[int] = None,
) -> List[Row]:
    """One row per probability-parameter value, sharing one parent index.

    The weight-side sibling of :func:`refrain_threshold_sweep`: for
    each value the system is reweighted with
    ``transform(pps, value, materialize=...)`` — e.g.
    :func:`repro.apps.firing_squad.drift_loss`, or a lambda over
    :func:`repro.core.reweight.scale_adversary` — and the row records
    ``measure(system, numeric=...)``, a mapping of named cells (achieved
    probabilities, theorem verdicts, PAK levels, ...).

    The parent's index is built (and registry-cached) once before any
    row; every row is then a :class:`~repro.core.pps.ReweightedPPS`
    child whose index inherits all shape-dependent tables by reference
    and rebuilds only the weight vector, prefix table, and array
    kernels.  Rows compose with the action-side transforms — ``measure``
    may itself refrain/relabel the reweighted child, and a reweighted
    child may feed :func:`refrain_threshold_sweep` — since overlays
    flatten under chaining.  Pass ``materialize=True`` to force the
    deep-copy-and-rebuild baseline per row (the benchmark's cold path).

    Repeated values are deduplicated before any system is built and the
    computed rows fanned back out in input order, and ``parallel=N``
    (N > 1) distributes the distinct values over ``N`` forked workers
    exactly as in :func:`refrain_threshold_sweep`: the parent index is
    hoisted before the fork, workers build contiguous chunks, and rows
    and ``numeric_stats()`` deltas are reassembled in chunk order —
    serial results by construction, with silent serial fallback on any
    transport failure.

    Returns:
        one row dict per value: ``{param: value, **measure_cells}``.

    Raises:
        ValueError: for an unknown ``numeric`` mode, or when ``measure``
            returns a cell named ``param``.
    """
    check_numeric_mode(numeric)
    SystemIndex.of(pps)  # hoist: one shared parent index, built pre-fork
    bounds = [as_fraction(value) for value in values]
    distinct: List[Fraction] = []
    seen = set()
    for bound in bounds:
        if bound not in seen:
            seen.add(bound)
            distinct.append(bound)
    computed: Optional[Dict[Fraction, Row]] = None
    if parallel is not None and parallel > 1 and len(distinct) > 1:
        computed = _parallel_reweight_rows(
            pps,
            transform,
            measure,
            distinct,
            param=param,
            materialize=materialize,
            numeric=numeric,
            parallel=parallel,
        )
    if computed is None:
        computed = {
            bound: _reweight_row(
                pps,
                transform,
                measure,
                bound,
                param=param,
                materialize=materialize,
                numeric=numeric,
            )
            for bound in distinct
        }
    return [dict(computed[bound]) for bound in bounds]


def _reweight_row(
    pps: PPS,
    transform: Callable[..., PPS],
    measure: Callable[..., Mapping[str, object]],
    value: Fraction,
    *,
    param: str,
    materialize: bool,
    numeric: str,
) -> Row:
    """One sweep row: build the reweighted child and measure it.

    The shared row builder of the serial loop and the parallel workers
    — one code path, so a forked row is the serial row by construction.
    """
    system = transform(pps, value, materialize=materialize)
    result = measure(system, numeric=numeric)
    if param in result:
        raise ValueError(
            f"measure() returned a cell named {param!r}, which would "
            "overwrite the parameter column; rename one of them"
        )
    row: Row = {param: value}
    row.update(result)
    return row


# Fork-inherited sweep state for _sweep_chunk_task: the parent system,
# query, and hoisted row builder cannot (and need not) cross the pipe —
# workers are forked after this global is set and read it directly.
_SWEEP_STATE: Optional[tuple] = None

# Fork-inherited state for _reweight_chunk_task, mirroring _SWEEP_STATE.
_REWEIGHT_STATE: Optional[tuple] = None


def _encode_cell(value: object):
    """A picklable wire form of one row cell.

    ``LazyProb`` cells carry closures, so they travel as their
    ``(approx, err)`` envelope plus the materialized exact integer pair
    — the parent rebuilds an equivalent value whose ``exact()`` is
    bit-identical.  Everything else (Fractions, floats) pickles as-is.
    """
    if isinstance(value, LazyProb):
        pair = value._pair()
        if pair is None:
            exact = value.exact()
            pair = (exact.numerator, exact.denominator)
        return ("lazy", value.approx, value.err, pair[0], pair[1])
    return ("raw", value)


def _decode_cell(encoded) -> object:
    if encoded[0] == "lazy":
        _, approx, err, num, den = encoded
        return LazyProb(approx, err, pair_thunk=lambda: (num, den))
    return encoded[1]


def _submit_with_retry(
    pool, task, chunk, *, key: int, retries: int = 2, backoff: float = 0.02
):
    """Submit one chunk to the pool, retrying transient submission errors.

    Task submission can fail transiently (saturated pipe, fd pressure)
    with ``OSError``; the ``task-submit`` fault site simulates exactly
    that, keyed by chunk index and attempt so a spec like
    ``task-submit:2`` fails the first two attempts and succeeds on the
    third.  Every retry is recorded on the resilience report; an
    exhausted budget re-raises, which the caller turns into the
    recorded serial fallback.
    """
    attempt = 0
    while True:
        try:
            if maybe_fire("task-submit", key=key, attempt=attempt):
                raise OSError("injected task-submit fault")
            return pool.submit(task, chunk)
        except (OSError, RuntimeError) as error:
            record_retry("submit", key, attempt, error)
            attempt += 1
            if attempt > retries:
                raise
            time.sleep(backoff * (2 ** (attempt - 1)))


def _sweep_chunk_task(chunk: Sequence[int]):
    """Worker task: build the rows for one contiguous chunk of bounds.

    Returns encoded rows in chunk order plus this task's
    ``numeric_stats()`` and resilience-report deltas (both are reset on
    entry — the forked copies of the parent's counters and events must
    not be re-counted on absorb).
    """
    from ..core.faults import report_delta, reset_resilience_report
    from ..core.lazyprob import numeric_stats, reset_numeric_stats

    state = _SWEEP_STATE
    if state is None:  # pragma: no cover - defensive: task outside a pool
        raise RuntimeError("sweep worker has no inherited state")
    (pps, agent, phi, action, distinct, replacement, materialize,
     numeric, make_row) = state
    reset_numeric_stats()
    reset_resilience_report()
    rows = []
    for pos in chunk:
        row = _threshold_row(
            pps,
            agent,
            phi,
            action,
            distinct[pos],
            replacement=replacement,
            materialize=materialize,
            numeric=numeric,
            make_row=make_row,
        )
        rows.append({key: _encode_cell(value) for key, value in row.items()})
    return rows, numeric_stats(), report_delta()


def _parallel_rows(
    pps: PPS,
    agent: AgentId,
    phi: Fact,
    action: Action,
    distinct: Sequence[Fraction],
    *,
    replacement: Action,
    materialize: bool,
    numeric: str,
    make_row,
    parallel: int,
) -> Optional[Dict[Fraction, Row]]:
    """The distinct-threshold rows via a forked pool, or ``None``.

    ``None`` means "could not run parallel" (no ``fork`` context, pool
    creation refused, or a result failed to cross the pipe) and sends
    the caller down the serial path — never a changed result.  The pool
    is created once for the whole sweep and the chunks are contiguous
    in threshold order, so reassembly — rows *and* stats absorption —
    is deterministic regardless of which worker finished first.
    """
    import multiprocessing

    from ..core.lazyprob import absorb_stats

    global _SWEEP_STATE
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        record_degradation(
            "execution", "parallel", "serial", "no-fork",
            "fork start method unavailable on this platform",
        )
        return None
    workers = min(parallel, len(distinct))
    chunks: List[List[int]] = [[] for _ in range(workers)]
    for pos in range(len(distinct)):
        chunks[pos * workers // len(distinct)].append(pos)
    from concurrent.futures import ProcessPoolExecutor

    saved = _SWEEP_STATE
    _SWEEP_STATE = (pps, agent, phi, action, tuple(distinct), replacement,
                    materialize, numeric, make_row)
    try:
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=context
        ) as pool:
            futures = [
                _submit_with_retry(pool, _sweep_chunk_task, chunk, key=pos)
                for pos, chunk in enumerate(chunks)
            ]
            try:
                parts = [future.result() for future in futures]
            except Exception as error:
                # Workers run arbitrary row functions; any result that
                # cannot be computed or shipped degrades the whole
                # sweep to the serial path (identical rows).
                record_degradation(
                    "execution", "parallel", "serial", "worker-failed",
                    repr(error),
                )
                return None
    except (OSError, ValueError) as error:
        record_degradation(
            "execution", "parallel", "serial", "pool-or-submit-failed",
            repr(error),
        )
        return None
    finally:
        _SWEEP_STATE = saved
    computed: Dict[Fraction, Row] = {}
    for chunk, (rows, delta, events) in zip(chunks, parts):
        absorb_stats(delta)
        absorb_events(events)
        for pos, encoded in zip(chunk, rows):
            computed[distinct[pos]] = {
                key: _decode_cell(value) for key, value in encoded.items()
            }
    return computed


def _reweight_chunk_task(chunk: Sequence[int]):
    """Worker task: build the reweight rows for one contiguous chunk.

    Returns encoded rows in chunk order plus this task's
    ``numeric_stats()`` and resilience-report deltas (both are reset on
    entry — the forked copies of the parent's counters and events must
    not be re-counted on absorb).
    """
    from ..core.faults import report_delta, reset_resilience_report
    from ..core.lazyprob import numeric_stats, reset_numeric_stats

    state = _REWEIGHT_STATE
    if state is None:  # pragma: no cover - defensive: task outside a pool
        raise RuntimeError("reweight sweep worker has no inherited state")
    pps, transform, measure, distinct, param, materialize, numeric = state
    reset_numeric_stats()
    reset_resilience_report()
    rows = []
    for pos in chunk:
        row = _reweight_row(
            pps,
            transform,
            measure,
            distinct[pos],
            param=param,
            materialize=materialize,
            numeric=numeric,
        )
        rows.append({key: _encode_cell(value) for key, value in row.items()})
    return rows, numeric_stats(), report_delta()


def _parallel_reweight_rows(
    pps: PPS,
    transform: Callable[..., PPS],
    measure: Callable[..., Mapping[str, object]],
    distinct: Sequence[Fraction],
    *,
    param: str,
    materialize: bool,
    numeric: str,
    parallel: int,
) -> Optional[Dict[Fraction, Row]]:
    """The distinct-value reweight rows via a forked pool, or ``None``.

    ``None`` means "could not run parallel" and sends the caller down
    the serial path — never a changed result.  Chunks are contiguous in
    value order and reassembly (rows *and* stats absorption) happens in
    chunk order, exactly as in :func:`_parallel_rows`.
    """
    import multiprocessing

    from ..core.lazyprob import absorb_stats

    global _REWEIGHT_STATE
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        record_degradation(
            "execution", "parallel", "serial", "no-fork",
            "fork start method unavailable on this platform",
        )
        return None
    workers = min(parallel, len(distinct))
    chunks: List[List[int]] = [[] for _ in range(workers)]
    for pos in range(len(distinct)):
        chunks[pos * workers // len(distinct)].append(pos)
    from concurrent.futures import ProcessPoolExecutor

    saved = _REWEIGHT_STATE
    _REWEIGHT_STATE = (pps, transform, measure, tuple(distinct), param,
                       materialize, numeric)
    try:
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=context
        ) as pool:
            futures = [
                _submit_with_retry(pool, _reweight_chunk_task, chunk, key=pos)
                for pos, chunk in enumerate(chunks)
            ]
            try:
                parts = [future.result() for future in futures]
            except Exception as error:
                # Same contract as _parallel_rows: any worker failure
                # degrades to the serial path with identical rows.
                record_degradation(
                    "execution", "parallel", "serial", "worker-failed",
                    repr(error),
                )
                return None
    except (OSError, ValueError) as error:
        record_degradation(
            "execution", "parallel", "serial", "pool-or-submit-failed",
            repr(error),
        )
        return None
    finally:
        _REWEIGHT_STATE = saved
    computed: Dict[Fraction, Row] = {}
    for chunk, (rows, delta, events) in zip(chunks, parts):
        absorb_stats(delta)
        absorb_events(events)
        for pos, encoded in zip(chunk, rows):
            computed[distinct[pos]] = {
                key: _decode_cell(value) for key, value in encoded.items()
            }
    return computed


def _candidate_edge_transform(
    pps: PPS,
    agent: AgentId,
    action: Action,
    phi: Fact,
    *,
    replacement: Action,
    numeric: str,
):
    """A per-threshold builder of refrain-derived systems for one sweep.

    :func:`~repro.protocols.strategies.refrain_below_threshold` walks
    the whole tree per call; across a dense sweep every row repeats
    that walk only to rediscover the same handful of matching edges.
    This helper enumerates them once
    (:func:`~repro.protocols.strategies.refrain_candidates`, the
    transform's own candidate semantics), hoists each acting state's
    posterior, and returns a closure that builds the row's
    :class:`~repro.core.pps.DerivedPPS` from O(candidate edges) belief
    guards.  The produced system is identical to the transform's (same
    overrides, discovered in the same breadth-first order).
    """
    from ..protocols.strategies import refrain_candidates

    index = SystemIndex.of(pps)
    candidates = refrain_candidates(pps, agent, action)
    guard_numeric = "auto" if numeric == "float" else numeric
    beliefs = {
        local: index.belief(agent, phi, local, numeric=guard_numeric)
        for _, _, local in candidates
    }

    def make_row(bound: Fraction) -> PPS:
        if numeric == "auto":
            comparand: object = LazyProb.from_exact(bound)
        elif numeric == "float":
            comparand = bound.numerator / bound.denominator
        else:
            comparand = bound
        overrides = []
        for node, via, local in candidates:
            b = beliefs[local]
            low = (b.approx < comparand) if numeric == "float" else (b < comparand)
            if low and replacement != action:
                overrides.append((node, {**via, agent: replacement}))
        return DerivedPPS(
            pps,
            ActionOverlay(overrides),
            name=f"{pps.name}-refrain[{action}]",
        )

    return make_row


def format_value(value: object) -> str:
    """Render a cell, marking exact values apart from approximations.

    * ``Fraction`` — exact: ``p/q (~float)`` (integral ones bare);
    * ``LazyProb`` — exact value available on demand: rendered from
      :meth:`~repro.core.lazyprob.LazyProb.exact` as ``p/q (~float)=``,
      the trailing ``=`` marking "exact, lazily materialized";
    * ``float`` — approximate: ``~x`` at 12 significant digits (stable
      fixed precision, so float-mode tables diff cleanly across runs).
    """
    if isinstance(value, LazyProb):
        exact = value.exact()
        if exact.denominator == 1:
            return f"{exact.numerator}="
        return f"{exact} (~{float(exact):.6g})="
    if isinstance(value, Fraction):
        if value.denominator == 1:
            return str(value.numerator)
        return f"{value} (~{float(value):.6g})"
    if isinstance(value, float):
        return f"~{value:.12g}"
    if isinstance(value, bool):
        return "yes" if value else "no"
    return str(value)


def format_table(
    rows: Sequence[Row],
    *,
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    cols = list(columns) if columns is not None else list(rows[0])
    cells = [[format_value(row.get(col, "")) for col in cols] for row in rows]
    widths = [
        max(len(col), *(len(row[k]) for row in cells))
        for k, col in enumerate(cols)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[k]) for k, col in enumerate(cols))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[k]) for k, cell in enumerate(row)))
    return "\n".join(lines)
