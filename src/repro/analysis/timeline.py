"""Belief evolution over time.

The paper's systems all share a temporal story — beliefs sharpen round
by round as messages arrive (or fail to).  :func:`belief_timeline`
computes, for one agent and condition, the complete belief landscape:
for every time ``t``, every information state the agent can be in, the
probability of being there and the belief held there.

:func:`expected_belief_by_time` collapses the landscape to the expected
belief per round — which, for a fact about runs, is a *martingale*
under the agent's information filtration (conditional expectations with
respect to a growing information partition).  The property tests check
exactly that, giving an independent probabilistic sanity check of the
posterior computation.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List

from ..core.beliefs import belief, occurrence_event
from ..core.facts import Fact
from ..core.measure import probability
from ..core.numeric import Probability
from ..core.pps import PPS, AgentId, LocalState

__all__ = ["TimelineCell", "belief_timeline", "expected_belief_by_time"]


@dataclass(frozen=True)
class TimelineCell:
    """One information state at one time.

    Attributes:
        time: the time ``t``.
        local: the agent's local state.
        mass: ``mu(runs passing through this state)``.
        belief: the belief in the condition held at this state.
    """

    time: int
    local: LocalState
    mass: Probability
    belief: Probability


def belief_timeline(
    pps: PPS, agent: AgentId, phi: Fact
) -> Dict[int, List[TimelineCell]]:
    """The full belief landscape: time -> cells sorted by belief.

    Only times at which the agent is alive (some run is long enough)
    appear.  Within each time the cell masses sum to the probability of
    reaching that time at all.
    """
    by_time: Dict[int, Dict[LocalState, TimelineCell]] = {}
    for run in pps.runs:
        for t in run.times():
            local = run.local(agent, t)
            slot = by_time.setdefault(t, {})
            if local not in slot:
                slot[local] = TimelineCell(
                    time=t,
                    local=local,
                    mass=probability(pps, occurrence_event(pps, agent, local)),
                    belief=belief(pps, agent, phi, local),
                )
    return {
        t: sorted(cells.values(), key=lambda cell: (cell.belief, str(cell.local)))
        for t, cells in sorted(by_time.items())
    }


def expected_belief_by_time(
    pps: PPS, agent: AgentId, phi: Fact
) -> Dict[int, Probability]:
    """The expected belief per round, weighted by state mass.

    For a fact about runs evaluated over a common horizon this sequence
    is constant (the martingale property of conditional expectation);
    for transient facts it tracks the fact's truth-mass at each time.
    Times reached by only part of the run space are normalized by the
    surviving mass.
    """
    result: Dict[int, Probability] = {}
    for t, cells in belief_timeline(pps, agent, phi).items():
        total = sum((cell.mass for cell in cells), start=Fraction(0))
        weighted = sum(
            (cell.mass * cell.belief for cell in cells), start=Fraction(0)
        )
        result[t] = weighted / total
    return result
