"""Whole-system verification: run every theorem checker at once.

:func:`verify_constraint` evaluates all seven checkers for a single
(agent, action, condition, threshold) and returns them keyed by name;
:func:`assert_theorems` raises if any applicable theorem's conclusion
fails — the library's strongest self-check, used by the property-based
tests (a failure means the implementation contradicts the paper).
:func:`verify_system` sweeps the checkers over every proper action of
every agent against a supplied family of conditions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from ..core.engine import SystemIndex
from ..core.facts import Fact
from ..core.numeric import ProbabilityLike, as_fraction
from ..core.pps import PPS, Action, AgentId
from ..core.theorems import (
    TheoremCheck,
    check_corollary_7_2,
    check_lemma_4_3,
    check_lemma_5_1,
    check_lemma_f_1,
    check_theorem_4_2,
    check_theorem_6_2,
    check_theorem_7_1,
)
from .random_systems import proper_actions_of

__all__ = ["verify_constraint", "assert_theorems", "verify_system", "SystemVerification"]


def verify_constraint(
    pps: PPS,
    agent: AgentId,
    action: Action,
    phi: Fact,
    threshold: ProbabilityLike = "1/2",
    *,
    delta: ProbabilityLike = "1/10",
    epsilon: ProbabilityLike = "1/10",
    numeric: str = "exact",
) -> Dict[str, TheoremCheck]:
    """All theorem checks for one constraint.

    ``numeric="auto"`` runs every checker through the two-tier kernel
    (identical verdicts, exact values on demand); the default is fully
    exact arithmetic.
    """
    p = as_fraction(threshold)
    return {
        "theorem-4.2": check_theorem_4_2(pps, agent, action, phi, p, numeric=numeric),
        "lemma-4.3": check_lemma_4_3(pps, agent, action, phi, numeric=numeric),
        "lemma-5.1": check_lemma_5_1(pps, agent, action, phi, p, numeric=numeric),
        "theorem-6.2": check_theorem_6_2(pps, agent, action, phi, numeric=numeric),
        "lemma-F.1": check_lemma_f_1(pps, agent, action, phi, numeric=numeric),
        "theorem-7.1": check_theorem_7_1(
            pps, agent, action, phi, delta, epsilon, numeric=numeric
        ),
        "corollary-7.2": check_corollary_7_2(
            pps, agent, action, phi, epsilon, numeric=numeric
        ),
    }


def assert_theorems(
    pps: PPS,
    agent: AgentId,
    action: Action,
    phi: Fact,
    threshold: ProbabilityLike = "1/2",
    *,
    numeric: str = "exact",
) -> None:
    """Raise ``AssertionError`` if any applicable theorem fails.

    Because the theorems are proved for every pps, a failure here means
    a bug in the library (or a malformed system that escaped
    validation), never a property of the inputs.
    """
    for name, check in verify_constraint(
        pps, agent, action, phi, threshold, numeric=numeric
    ).items():
        if not check.verified:
            raise AssertionError(
                f"{name} FAILED on {pps.name}: {check} details={check.details}"
            )


@dataclass
class SystemVerification:
    """Aggregated verification results over a whole system.

    Attributes:
        system_name: the system checked.
        results: (agent, action, fact label, theorem) -> check.
        failures: the subset of checks whose implication failed.
    """

    system_name: str
    results: Dict[Tuple[AgentId, Action, str, str], TheoremCheck] = field(
        default_factory=dict
    )

    @property
    def failures(self) -> Dict[Tuple[AgentId, Action, str, str], TheoremCheck]:
        return {
            key: check for key, check in self.results.items() if not check.verified
        }

    @property
    def all_verified(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        total = len(self.results)
        applicable = sum(1 for c in self.results.values() if c.applicable)
        lines = [
            f"verification of {self.system_name}: {total} checks, "
            f"{applicable} with premises satisfied, "
            f"{len(self.failures)} failures"
        ]
        for key, check in self.failures.items():
            lines.append(f"  FAIL {key}: {check}")
        return "\n".join(lines)


def verify_system(
    pps: PPS,
    conditions: Mapping[str, Fact],
    *,
    agents: Sequence[AgentId] = (),
    thresholds: Sequence[ProbabilityLike] = ("1/2",),
    numeric: str = "exact",
) -> SystemVerification:
    """Run every checker over every proper action against ``conditions``.

    Args:
        pps: the system.
        conditions: label -> fact, the conditions to pair with actions.
        agents: which agents to scan (default: all).
        thresholds: thresholds for the threshold-parameterized theorems.
        numeric: numeric tier for every checker (``"auto"`` gives
            identical verdicts with float-filtered comparisons).
    """
    verification = SystemVerification(system_name=pps.name)
    # One SystemIndex serves the entire sweep: every checker below
    # shares the same bitmask tables and fact/belief caches instead of
    # re-deriving events per (agent, action, condition, threshold).
    # The whole condition family is submitted as one batch per time
    # slice up front, so each slice is traversed once for all
    # conditions rather than once per (condition, checker).  The
    # prefetch must stay tolerant of partial conditions (facts whose
    # ``holds`` raises somewhere): a condition the checker loop below
    # never evaluates — e.g. when an agent has no proper actions —
    # must not abort the verification it could not have affected.
    index = SystemIndex.of(pps)
    fact_list = list(conditions.values())
    if fact_list:
        for t in range(index.max_time + 1):
            try:
                index.truths_at(fact_list, t)
            except Exception:
                # The batch pass already cached every clean leaf; retry
                # per fact so only the partial ones go unprefetched
                # (the checkers surface their errors if actually used).
                for fact in fact_list:
                    try:
                        index.truths_at([fact], t)
                    except Exception:
                        pass
    scan = tuple(agents) or pps.agents
    for agent in scan:
        for action in proper_actions_of(pps, agent):
            for label, phi in conditions.items():
                for threshold in thresholds:
                    checks = verify_constraint(
                        pps, agent, action, phi, threshold, numeric=numeric
                    )
                    for name, check in checks.items():
                        key = (agent, action, f"{label}@p={threshold}", name)
                        verification.results[key] = check
    return verification
