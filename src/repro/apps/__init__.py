"""Application systems: every scenario the paper analyzes or motivates.

* :mod:`repro.apps.firing_squad` — Example 1's FS protocol and the
  Section 8 improvement FS'.
* :mod:`repro.apps.figure1` — the mixed-action counterexample.
* :mod:`repro.apps.theorem52` — the parametric Figure 2 construction.
* :mod:`repro.apps.coordinated_attack` — Fischer–Zuck coordinated
  attack with configurable acknowledgement rounds.
* :mod:`repro.apps.mutex` — relaxed probabilistic mutual exclusion.
* :mod:`repro.apps.consensus` — one-shot lossy-broadcast consensus.
* :mod:`repro.apps.judge` — verdicts beyond reasonable doubt.
"""

from . import (
    aloha,
    ben_or,
    consensus,
    coordinated_attack,
    figure1,
    firing_squad,
    judge,
    mutex,
    theorem52,
)

__all__ = [
    "aloha",
    "ben_or",
    "consensus",
    "coordinated_attack",
    "figure1",
    "firing_squad",
    "judge",
    "mutex",
    "theorem52",
]
