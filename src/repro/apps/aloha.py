"""Slotted ALOHA: mixed actions with independence beyond Lemma 4.3.

The paper motivates probabilistic protocols with symmetry breaking and
random access (Abramson's ALOHA is its reference [1]).  This module
implements single-slot-window slotted ALOHA: ``n`` stations each hold a
pending packet and independently transmit in each slot with probability
``persistence``; a transmission succeeds iff no other station transmits
in the same slot.

Epistemically this system is the library's most interesting mixed-action
case.  The transmit action is *mixed* (a coin flipped at the local
state) and the success condition "no other station is transmitting"
is *not* past-based (it depends on the current round's actions), so
**neither clause of Lemma 4.3 applies** — yet the condition *is*
local-state independent of the action, because the other stations'
coins are independent of mine.  Definition 4.1 holds "by physics", and
Theorem 6.2's expectation identity is exact.  Tests and the bench
verify precisely this.

The constraint studied: ``mu(channel clear @ transmit | transmit) >= p``
— when a station transmits, the slot should be collision-free whp.
For ``n`` stations with persistence ``q`` the exact value is
``(1 - q)^(n-1)``.
"""

from __future__ import annotations

from typing import Tuple

from ..core.atoms import does_
from ..core.facts import And, Fact, Not
from ..core.numeric import ProbabilityLike, as_fraction
from ..core.pps import PPS, AgentId
from ..messaging.channels import ReliableChannel
from ..messaging.messages import Move
from ..messaging.network import RoundProtocol
from ..messaging.system import MessagePassingSystem
from ..protocols.distribution import Distribution

__all__ = [
    "station_names",
    "transmit_action",
    "build_aloha",
    "transmits",
    "channel_clear_for",
    "slot_success",
]


def station_names(n: int) -> Tuple[AgentId, ...]:
    """The canonical station names."""
    return tuple(f"station-{k}" for k in range(n))


def transmit_action(slot: int) -> Tuple[str, int]:
    """The (slot-tagged, hence proper) transmit action label."""
    return ("tx", slot)


class _Station(RoundProtocol):
    """Transmit with probability ``persistence`` in every slot."""

    def __init__(self, persistence: ProbabilityLike, slots: int) -> None:
        self._persistence = as_fraction(persistence)
        self._slots = slots

    def step(self, local: object):
        slot = local  # the raw local state is simply the slot counter
        if not isinstance(slot, int) or slot >= self._slots:
            return Move()
        send = Move.acting(transmit_action(slot))
        hold = Move.acting(("idle", slot))
        if self._persistence == 1:
            return send
        if self._persistence == 0:
            return hold
        return Distribution({send: self._persistence, hold: 1 - self._persistence})

    def update(self, local: object, move: Move, delivered: tuple) -> object:
        return (local + 1) if isinstance(local, int) else local


def build_aloha(
    *,
    n: int = 3,
    persistence: ProbabilityLike = "1/4",
    slots: int = 1,
) -> PPS:
    """Compile the slotted-ALOHA system.

    Args:
        n: number of stations (tree has ``2^(n*slots)`` runs).
        persistence: per-slot transmit probability of each station.
        slots: number of slots to model.
    """
    if n < 2:
        raise ValueError("ALOHA needs at least two stations")
    if slots < 1:
        raise ValueError("at least one slot is required")
    names = station_names(n)
    system = MessagePassingSystem(
        agents=names,
        protocols={name: _Station(persistence, slots) for name in names},
        channel=ReliableChannel(),
        initial=Distribution.point(tuple(0 for _ in names)),
        horizon=slots,
        name=f"aloha(n={n},q={as_fraction(persistence)})",
    )
    return system.compile()


def transmits(station: AgentId, slot: int = 0) -> Fact:
    """The transient fact that ``station`` is transmitting in ``slot``."""
    return does_(station, transmit_action(slot))


def channel_clear_for(station: AgentId, n: int, slot: int = 0) -> Fact:
    """No *other* station is transmitting in the slot."""
    others = [name for name in station_names(n) if name != station]
    return And(*[Not(transmits(other, slot)) for other in others])


def slot_success(station: AgentId, n: int, slot: int = 0) -> Fact:
    """``station`` transmits and owns the slot alone."""
    return transmits(station, slot) & channel_clear_for(station, n, slot)
