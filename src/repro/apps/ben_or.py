"""Ben-Or-style binary consensus: the advantage of free choice.

The paper's first citation for probabilistic protocols is Ben-Or's
"Another advantage of free choice" [9]: randomization lets agents
escape the symmetric deadlocks that doom deterministic consensus.  This
module implements the two-agent, lossy-channel core of that idea:

* each *exchange* round, an undecided agent sends its current value to
  its peer;
* on receiving an equal value it becomes ready and **decides** next
  round; on receiving a differing value it schedules a *coin* round;
* in a coin round the agent replaces its value with a fair coin flip
  (a mixed action step) and returns to exchanging;
* message loss simply means retrying next round.

With ``free_choice=False`` the coin round keeps the old value — the
deterministic ablation — and agents holding different inputs **never**
decide: the runs oscillate forever (up to the horizon).  With coins,
they converge with probability approaching 1 in the number of rounds.
This is exactly the qualitative content of [9], measured.

Decisions are performed at most once per run, so ``("decide", v)`` is a
proper action and the full PAK machinery applies to constraints such as
``mu(peer decides v too @ decide(v) | decide(v))``.
"""

from __future__ import annotations

from typing import Tuple

from ..core.atoms import does_
from ..core.facts import Fact, LambdaRunFact
from ..core.numeric import ProbabilityLike, as_fraction
from ..core.pps import PPS, AgentId, Run
from ..messaging.channels import LossyChannel
from ..messaging.messages import Message, Move
from ..messaging.network import RoundProtocol
from ..messaging.system import MessagePassingSystem
from ..protocols.distribution import Distribution, product

__all__ = [
    "AGENT_A",
    "AGENT_B",
    "decide_action",
    "build_ben_or",
    "decides",
    "decided_value",
    "agreement_among_deciders",
    "both_decide",
]

AGENT_A = "proc-a"
AGENT_B = "proc-b"


def decide_action(value: int) -> Tuple[str, int]:
    """The proper action label for deciding ``value``."""
    return ("decide", value)


class _BenOrAgent(RoundProtocol):
    """Exchange / coin / ready / done state machine (see module docs)."""

    def __init__(self, me: AgentId, peer: AgentId, *, free_choice: bool) -> None:
        self._me = me
        self._peer = peer
        self._free_choice = free_choice

    def step(self, local: Tuple):
        mode, value = local
        if mode == "active":
            return Move(
                action=("send", value),
                sends=(Message(self._me, self._peer, value),),
            )
        if mode == "coin":
            if not self._free_choice:
                return Move.acting(("keep", value))
            return Distribution(
                {
                    Move.acting(("flip", 0)): "1/2",
                    Move.acting(("flip", 1)): "1/2",
                }
            )
        if mode == "ready":
            return Move.acting(decide_action(value))
        return Move()  # done

    def update(self, local: Tuple, move: Move, delivered: Tuple[Message, ...]):
        mode, value = local
        if mode == "active":
            if delivered:
                peer_value = delivered[0].content
                return ("ready", value) if peer_value == value else ("coin", value)
            return local
        if mode == "coin":
            if move.action[0] == "flip":
                return ("active", move.action[1])
            return ("active", value)  # deterministic ablation keeps v
        if mode == "ready":
            return ("done", value)
        return local


def build_ben_or(
    *,
    loss: ProbabilityLike = "0.1",
    rounds: int = 4,
    free_choice: bool = True,
    one_probability: ProbabilityLike = "1/2",
) -> PPS:
    """Compile the retry-consensus system.

    Args:
        loss: per-message loss probability.
        rounds: horizon in rounds (each exchange or coin step is one).
        free_choice: coins enabled (the Ben-Or mechanism); ``False``
            gives the deterministic ablation.
        one_probability: probability each initial value is 1.
    """
    if rounds < 2:
        raise ValueError("need at least two rounds (exchange + decide)")
    bit = Distribution.bernoulli(as_fraction(one_probability), true=1, false=0)
    initial = product([bit, bit]).map(
        lambda bits: (("active", bits[0]), ("active", bits[1]))
    )
    system = MessagePassingSystem(
        agents=[AGENT_A, AGENT_B],
        protocols={
            AGENT_A: _BenOrAgent(AGENT_A, AGENT_B, free_choice=free_choice),
            AGENT_B: _BenOrAgent(AGENT_B, AGENT_A, free_choice=free_choice),
        },
        channel=LossyChannel(loss),
        initial=initial,
        horizon=rounds,
        name=f"ben-or(rounds={rounds},free_choice={free_choice})",
    )
    return system.compile()


def decides(agent: AgentId, value: int) -> Fact:
    """The transient fact that ``agent`` is deciding ``value`` now."""
    return does_(agent, decide_action(value))


def decided_value(pps: PPS, run: Run, agent: AgentId):
    """The value ``agent`` decides in ``run`` (None when undecided)."""
    for value in (0, 1):
        if run.performs(agent, decide_action(value)):
            return value
    return None


def agreement_among_deciders() -> Fact:
    """The run fact "no two agents decide different values"."""

    def check(pps: PPS, run: Run) -> bool:
        values = {
            decided_value(pps, run, agent)
            for agent in (AGENT_A, AGENT_B)
        } - {None}
        return len(values) <= 1

    return LambdaRunFact(check, label="agreement-among-deciders")


def both_decide() -> Fact:
    """The run fact "both agents decide (some value) in the run"."""

    def check(pps: PPS, run: Run) -> bool:
        return all(
            decided_value(pps, run, agent) is not None
            for agent in (AGENT_A, AGENT_B)
        )

    return LambdaRunFact(check, label="both-decide")
