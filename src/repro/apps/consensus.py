"""One-shot probabilistic consensus over lossy broadcast.

Probabilistic consensus protocols that may disagree with small
probability (Rabin; Feldman–Micali) are among the paper's motivating
examples of probabilistic constraints.  This module implements the
minimal such protocol so that agreement can be studied as a
probabilistic constraint:

``n`` agents hold independent uniform binary inputs.  In round 0 every
agent broadcasts its input over the lossy channel.  At time 1 each
agent decides: the OR of its own input and every input it received
(i.e. decide 1 iff any known input is 1).  The decision is performed
as the action ``("decide", v)``.

Facts provided: per-agent decisions, the run fact
:func:`agreement` ("all agents decide the same value"), and
:func:`validity` ("some agent held the decided value initially" — here
trivially true, included for completeness of the consensus spec).
The constraint of interest is ``mu(agreement@decide_i(v) | decide_i(v))``
— exactly a paper-style probabilistic constraint, with the decision a
deterministic action.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..core.atoms import does_, performed
from ..core.facts import Fact, LambdaRunFact
from ..core.numeric import ProbabilityLike, as_fraction
from ..core.pps import PPS, AgentId, Run
from ..messaging.channels import LossyChannel
from ..messaging.messages import Message, Move
from ..messaging.network import RecordingState, RoundProtocol
from ..messaging.system import MessagePassingSystem
from ..protocols.distribution import Distribution, product

__all__ = [
    "agent_names",
    "build_consensus",
    "decides",
    "decision_action",
    "agreement",
    "validity",
]


def agent_names(n: int) -> Tuple[AgentId, ...]:
    """The canonical names of the ``n`` consensus agents."""
    return tuple(f"agent-{k}" for k in range(n))


def decision_action(value: int) -> Tuple[str, int]:
    """The action label for deciding ``value``."""
    return ("decide", value)


class _ConsensusAgent(RoundProtocol):
    """Broadcast the input, then decide the OR of everything seen."""

    def __init__(self, me: AgentId, others: Sequence[AgentId]) -> None:
        self._me = me
        self._others = tuple(others)

    def step(self, local: RecordingState) -> Move:
        t = local.rounds_elapsed
        if t == 0:
            return Move.sending(
                *(Message(self._me, other, local.payload) for other in self._others)
            )
        if t == 1:
            known = {local.payload} | set(local.received_contents(0))
            return Move.acting(decision_action(1 if 1 in known else 0))
        return Move()

    def update(
        self, local: RecordingState, move: Move, delivered: Tuple[Message, ...]
    ) -> RecordingState:
        return local.observe(move.action, delivered)


def build_consensus(
    *,
    n: int = 2,
    loss: ProbabilityLike = "0.1",
    one_probability: ProbabilityLike = "1/2",
    memoize: bool = True,
) -> PPS:
    """Compile the ``n``-agent one-shot consensus system.

    Args:
        n: number of agents (the tree grows as ``2^n * 2^(n(n-1))``;
            2 or 3 keeps everything instantaneous).
        loss: per-message loss probability.
        one_probability: probability each input bit is 1.
        memoize: compile with interning and memoized expansion
            templates (the default); ``False`` is the unmemoized
            escape hatch used by the compiler-scaling benchmark.
    """
    if n < 2:
        raise ValueError("consensus needs at least two agents")
    names = agent_names(n)
    bit = Distribution.bernoulli(as_fraction(one_probability), true=1, false=0)
    initial = product([bit] * n).map(
        lambda bits: tuple(RecordingState(b) for b in bits)
    )
    system = MessagePassingSystem(
        agents=names,
        protocols={
            name: _ConsensusAgent(name, [o for o in names if o != name])
            for name in names
        },
        channel=LossyChannel(loss),
        initial=initial,
        horizon=2,
        name=f"consensus(n={n})",
    )
    return system.compile(memoize=memoize)


def decides(agent: AgentId, value: int) -> Fact:
    """The transient fact that ``agent`` is currently deciding ``value``."""
    return does_(agent, decision_action(value))


def agreement(n: int = 2) -> Fact:
    """The run fact "all agents decide the same value"."""
    names = agent_names(n)

    def check(pps: PPS, run: Run) -> bool:
        values = set()
        for name in names:
            for value in (0, 1):
                if run.performs(name, decision_action(value)):
                    values.add(value)
        return len(values) == 1

    return LambdaRunFact(check, label=f"agreement(n={n})")


def validity(n: int = 2) -> Fact:
    """The run fact "every decided value was some agent's input"."""
    names = agent_names(n)

    def check(pps: PPS, run: Run) -> bool:
        inputs = {run.local(name, 0)[1].payload for name in names}
        for name in names:
            for value in (0, 1):
                if run.performs(name, decision_action(value)) and value not in inputs:
                    return False
        return True

    return LambdaRunFact(check, label=f"validity(n={n})")
