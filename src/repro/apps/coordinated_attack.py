"""Probabilistic coordinated attack (Fischer–Zuck style).

The scenario behind both the paper's Example 1 and the classical
coordinated-attack impossibility: general A receives (with probability
``order_probability``) an order to attack; she dispatches a messenger
to general B over a lossy channel, after which the two exchange
acknowledgements for a configurable number of rounds.  At the deadline
A attacks iff she has the order, and B attacks iff the original order
message reached him.

Quantities of interest, all exact:

* the constraint ``mu(both attack | A attacks) = 1 - loss``
  irrespective of the number of acknowledgement rounds (acks carry no
  additional success probability — the well-known futility of the
  generals' conversation);
* A's *belief* that B will attack, by contrast, is refined by each
  acknowledgement: with more ack rounds the belief profile spreads
  toward 0/1 while its expectation stays exactly ``1 - loss``
  (Theorem 6.2 in action);
* Fischer and Zuck's observation — the expected acting belief equals
  the success probability — is :func:`repro.core.expectation.expected_belief`
  applied to this system.

The number of rounds is ``ack_rounds + 1`` message rounds followed by
one action round.
"""

from __future__ import annotations

from typing import Tuple

from ..core.atoms import does_
from ..core.facts import Fact
from ..core.numeric import ProbabilityLike, as_fraction
from ..core.pps import PPS
from ..messaging.channels import LossyChannel
from ..messaging.messages import Message, Move
from ..messaging.network import RecordingState, RoundProtocol
from ..messaging.system import MessagePassingSystem
from ..protocols.distribution import Distribution

__all__ = [
    "GENERAL_A",
    "GENERAL_B",
    "ATTACK",
    "build_coordinated_attack",
    "attack_a",
    "attack_b",
    "both_attack",
]

GENERAL_A = "general-a"
GENERAL_B = "general-b"
ATTACK = "attack"
ORDER = "attack-at-dawn"
ACK = "ack"


class _GeneralA(RoundProtocol):
    """A: send the order in round 0, ack B's acks, attack at the deadline."""

    def __init__(self, deadline: int) -> None:
        self._deadline = deadline

    def step(self, local: RecordingState) -> Move:
        has_order = local.payload == 1
        t = local.rounds_elapsed
        if not has_order:
            return Move()
        if t == 0:
            return Move.sending(Message(GENERAL_A, GENERAL_B, ORDER))
        if t == self._deadline:
            return Move.acting(ATTACK)
        # Even ack rounds (2, 4, ...) are A's: reply if B's ack arrived.
        if t < self._deadline and t % 2 == 0 and local.received(t - 1):
            return Move.sending(Message(GENERAL_A, GENERAL_B, (ACK, t)))
        return Move()

    def update(
        self, local: RecordingState, move: Move, delivered: Tuple[Message, ...]
    ) -> RecordingState:
        return local.observe(move.action, delivered)


class _GeneralB(RoundProtocol):
    """B: ack anything received, attack at the deadline iff ordered."""

    def __init__(self, deadline: int) -> None:
        self._deadline = deadline

    def _got_order(self, local: RecordingState) -> bool:
        return any(
            message.content == ORDER
            for _, messages in local.observations
            for message in messages
        )

    def step(self, local: RecordingState) -> Move:
        t = local.rounds_elapsed
        if t == self._deadline:
            if self._got_order(local):
                return Move.acting(ATTACK)
            return Move()
        # Odd ack rounds (1, 3, ...) are B's: reply if A's message arrived.
        if 0 < t < self._deadline and t % 2 == 1 and local.received(t - 1):
            return Move.sending(Message(GENERAL_B, GENERAL_A, (ACK, t)))
        return Move()

    def update(
        self, local: RecordingState, move: Move, delivered: Tuple[Message, ...]
    ) -> RecordingState:
        return local.observe(move.action, delivered)


def build_coordinated_attack(
    *,
    loss: ProbabilityLike = "0.1",
    order_probability: ProbabilityLike = "0.5",
    ack_rounds: int = 1,
    memoize: bool = True,
) -> PPS:
    """Compile the coordinated-attack system.

    Args:
        loss: per-message loss probability.
        order_probability: probability A receives the attack order.
        ack_rounds: number of acknowledgement rounds after the order
            round (0 = no conversation; 1 = B acks; 2 = B acks, A acks
            back; ...).
        memoize: compile with interning and memoized expansion
            templates (the default); ``False`` is the unmemoized
            escape hatch used by the compiler-scaling benchmark.

    The attack actions are performed at time ``ack_rounds + 1``.
    """
    if ack_rounds < 0:
        raise ValueError("ack_rounds must be non-negative")
    order_p = as_fraction(order_probability)
    deadline = ack_rounds + 1
    initial: dict = {}
    if order_p < 1:
        initial[(RecordingState(0), RecordingState(None))] = 1 - order_p
    if order_p > 0:
        initial[(RecordingState(1), RecordingState(None))] = order_p
    system = MessagePassingSystem(
        agents=[GENERAL_A, GENERAL_B],
        protocols={
            GENERAL_A: _GeneralA(deadline),
            GENERAL_B: _GeneralB(deadline),
        },
        channel=LossyChannel(loss),
        initial=Distribution(initial),
        horizon=deadline + 1,
        name=f"coordinated-attack(acks={ack_rounds})",
    )
    return system.compile(memoize=memoize)


def attack_a() -> Fact:
    """The transient fact that general A is currently attacking."""
    return does_(GENERAL_A, ATTACK)


def attack_b() -> Fact:
    """The transient fact that general B is currently attacking."""
    return does_(GENERAL_B, ATTACK)


def both_attack() -> Fact:
    """The transient fact that both generals are currently attacking."""
    return attack_a() & attack_b()
