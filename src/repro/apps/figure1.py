"""The paper's Figure 1: the mixed-action counterexample system.

A single agent ``i`` and a single initial global state ``g0``.  At time
0 the agent performs ``alpha`` or ``alpha'``, each with probability
1/2 — a mixed action step.  The resulting pps has two runs.

The system defeats two natural conjectures (both rescued by local-state
independence):

* **Section 4** (sufficiency fails): for ``psi = ~does_i(alpha)``,
  ``beta_i(psi) = 1/2`` whenever ``i`` performs ``alpha`` — the belief
  meets the threshold 1/2 — yet ``mu(psi@alpha | alpha) = 0``.
* **Section 6** (the expectation identity fails): for
  ``phi = does_i(alpha)``, ``mu(phi@alpha | alpha) = 1`` while
  ``E[beta_i(phi)@alpha | alpha] = 1/2``.

Build the system with :func:`build_figure1`; the two facts are
:func:`psi_not_alpha` and :func:`phi_alpha`.
"""

from __future__ import annotations

from ..core.atoms import does_
from ..core.builder import PPSBuilder
from ..core.facts import Fact
from ..core.numeric import ProbabilityLike, as_fraction
from ..core.pps import PPS

__all__ = [
    "AGENT",
    "ALPHA",
    "ALPHA_PRIME",
    "build_figure1",
    "psi_not_alpha",
    "phi_alpha",
]

AGENT = "i"
ALPHA = "alpha"
ALPHA_PRIME = "alpha'"


def build_figure1(*, mix: ProbabilityLike = "1/2") -> PPS:
    """The Figure 1 pps, with a configurable mixing probability.

    Args:
        mix: the probability of ``alpha`` in the mixed step (the paper
            uses 1/2; benchmarks sweep it).

    Both successor states carry the *same* agent local state: the agent
    does not learn which action was realized, which is what keeps its
    belief pinned at the prior.
    """
    builder = PPSBuilder([AGENT], name="figure-1")
    g0 = builder.initial(1, {AGENT: (0, "g0")})
    g0.child(mix, {AGENT: (1, "g1")}, actions={AGENT: ALPHA})
    rest = 1 - as_fraction(mix)
    if rest > 0:
        g0.child(rest, {AGENT: (1, "g1")}, actions={AGENT: ALPHA_PRIME})
    return builder.build()


def psi_not_alpha() -> Fact:
    """``psi = ~does_i(alpha)`` — the Section 4 counterexample condition."""
    return ~does_(AGENT, ALPHA)


def phi_alpha() -> Fact:
    """``phi = does_i(alpha)`` — the Section 6 counterexample condition."""
    return does_(AGENT, ALPHA)
