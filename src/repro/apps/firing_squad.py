"""The relaxed firing squad (the paper's Example 1) and its improvement.

Setting: a synchronous network of Alice and Bob in which every message
is lost independently with probability 0.1.  Alice holds a binary flag
``go`` (1 with probability 0.5).

**Spec.** If ``go = 0`` neither agent ever fires; if ``go = 1``,
``mu(both fire | Alice fires) >= 0.95``.

**Protocol FS.** When ``go = 1`` Alice sends two messages to Bob in the
first round and fires at time 2.  Bob replies 'Yes' in the second round
and fires at time 2 if he received at least one message; otherwise he
replies 'No' and never fires.

Paper-derived exact quantities (all reproduced by this module and
asserted in tests and benchmarks):

=============================================  =============
``mu(both@fireA | fireA)``                     99/100 = 0.99
measure of fireA-runs meeting threshold 0.95   991/1000
measure of fireA-runs missing it               9/1000
Alice's acting beliefs                         1, 0, 99/100
improved FS' success                           990/991 ~ 0.99899
=============================================  =============

**Protocol FS'** (Section 8): identical except that Alice does *not*
fire after receiving 'No'.  Build it with ``improved=True``; it is also
the output of :func:`repro.protocols.strategies.refrain_below_threshold`
applied to FS — tests confirm the two coincide.
:func:`derive_improved_firing_squad` takes that second route and
returns FS' as a derived system over FS's own tree (shared nodes and
engine index, one relabelled edge), which is the cheap way to get FS'
when FS is already in hand.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple
from weakref import WeakKeyDictionary

from ..core.atoms import does_
from ..core.facts import Fact
from ..core.numeric import Probability, ProbabilityLike, as_fraction
from ..core.pps import PPS, Node
from ..messaging.channels import LossyChannel
from ..messaging.messages import Message, Move
from ..messaging.network import RecordingState, RoundProtocol
from ..messaging.system import MessagePassingSystem
from ..protocols.distribution import Distribution

__all__ = [
    "ALICE",
    "BOB",
    "FIRE",
    "THRESHOLD",
    "build_firing_squad",
    "derive_improved_firing_squad",
    "drift_loss",
    "fire_alice",
    "fire_bob",
    "both_fire",
]

ALICE = "alice"
BOB = "bob"
FIRE = "fire"
YES = "Yes"
NO = "No"
THRESHOLD = as_fraction("0.95")
"""The Spec's required probability that both fire, given Alice fires."""


class AliceProtocol(RoundProtocol):
    """Alice: send two messages in round 0 (if ``go = 1``), fire at time 2.

    With ``improved=True`` she refrains from firing after a 'No'
    (the Section 8 variant FS').
    """

    def __init__(self, *, improved: bool = False) -> None:
        self.improved = improved

    def step(self, local: RecordingState) -> Move:
        go = local.payload
        t = local.rounds_elapsed
        if t == 0 and go == 1:
            return Move.sending(
                Message(ALICE, BOB, "m1"), Message(ALICE, BOB, "m2")
            )
        if t == 2 and go == 1:
            if self.improved and NO in local.received_contents(1):
                return Move()
            return Move.acting(FIRE)
        return Move()

    def update(
        self, local: RecordingState, move: Move, delivered: Tuple[Message, ...]
    ) -> RecordingState:
        return local.observe(move.action, delivered)


class BobProtocol(RoundProtocol):
    """Bob: acknowledge in round 1, fire at time 2 iff round 0 delivered."""

    def step(self, local: RecordingState) -> Move:
        t = local.rounds_elapsed
        if t == 1:
            reply = YES if local.received(0) else NO
            return Move.sending(Message(BOB, ALICE, reply))
        if t == 2 and local.received(0):
            return Move.acting(FIRE)
        return Move()

    def update(
        self, local: RecordingState, move: Move, delivered: Tuple[Message, ...]
    ) -> RecordingState:
        return local.observe(move.action, delivered)


def build_firing_squad(
    *,
    loss: ProbabilityLike = "0.1",
    go_probability: ProbabilityLike = "0.5",
    improved: bool = False,
) -> PPS:
    """Compile the FS (or FS') system.

    Args:
        loss: per-message loss probability (paper: 0.1).
        go_probability: probability that Alice's flag is 1 (paper: 0.5).
        improved: build FS' (Alice refrains on 'No') instead of FS.
    """
    go_p = as_fraction(go_probability)
    initial: dict = {}
    if go_p < 1:
        initial[(RecordingState(0), RecordingState(None))] = 1 - go_p
    if go_p > 0:
        initial[(RecordingState(1), RecordingState(None))] = go_p
    system = MessagePassingSystem(
        agents=[ALICE, BOB],
        protocols={
            ALICE: AliceProtocol(improved=improved),
            BOB: BobProtocol(),
        },
        channel=LossyChannel(loss),
        initial=Distribution(initial),
        horizon=3,
        name="firing-squad" + ("-improved" if improved else ""),
    )
    return system.compile()


def derive_improved_firing_squad(
    base: Optional[PPS] = None, *, materialize: bool = False
) -> PPS:
    """FS' derived from FS by the Section 8 transform, sharing FS's tree.

    The mechanical route to the improved protocol: apply
    :func:`~repro.protocols.strategies.refrain_below_threshold` to FS
    at the Spec threshold.  The result is a
    :class:`~repro.core.pps.DerivedPPS` — same nodes, same
    probabilities, one relabelled edge (Alice's fire-on-'No') — whose
    engine index is derived from FS's, so building FS' on top of an
    already-analyzed FS is near-free.  It agrees exactly with
    ``build_firing_squad(improved=True)`` on every measure, belief, and
    achieved probability (tests assert this); pass ``materialize=True``
    for a standalone deep copy instead.

    Args:
        base: an existing FS system to derive from (compiled fresh when
            omitted).  Passing the system you are already analyzing
            shares its index caches with the derived FS'.
        materialize: forwarded to the transform's escape hatch.
    """
    from ..protocols.strategies import refrain_below_threshold

    if base is None:
        base = build_firing_squad()
    return refrain_below_threshold(
        base,
        ALICE,
        FIRE,
        both_fire(),
        THRESHOLD,
        name=base.name + "-improved",
        materialize=materialize,
    )


#: Channel edges carry at most two independent loss events per round
#: (Alice's round-0 pair); exponents are searched up to this total.
_MAX_LOSS_EVENTS = 4


def drift_loss(
    pps: PPS,
    new_loss: ProbabilityLike,
    *,
    old_loss: ProbabilityLike = "0.1",
    name: Optional[str] = None,
    materialize: bool = False,
) -> PPS:
    """The firing squad with the channel loss probability moved to ``new_loss``.

    The app-level drift knob: every channel edge of a compiled FS/FS'
    system has probability ``old^k * (1-old)^j`` — ``k`` messages lost,
    ``j`` delivered that round — so sweeping the loss rate only
    reweights edges.  This recovers ``(k, j)`` exactly from each edge's
    current probability and overrides it to ``new^k * (1-new)^j``,
    returning a tree-sharing derived system that is bit-identical to
    ``build_firing_squad(loss=new_loss)`` on every measure (tests and
    the reweight benchmark assert this) at a fraction of the compile
    cost.  Depth-1 edges (Alice's ``go`` flag) are left untouched.  At
    the boundary rates 0 and 1 the derived system keeps the now
    impossible runs with zero weight (tree shape is shared, never
    pruned), so it agrees with the cold build on every measure but has
    more run slots.

    Args:
        pps: a compiled FS or FS' system (derived/reweighted children
            are fine; probabilities resolve through their overlays).
        new_loss: the new per-message loss probability, in ``[0, 1]``.
        old_loss: the loss probability ``pps`` was compiled with.  Must
            make the exponents identifiable — e.g. ``old_loss=1/2``
            collapses ``(2,0)``, ``(1,1)`` and ``(0,2)`` onto 1/4 and
            is rejected.
        name: label of the result (default ``"<parent>-loss(<new>)"``).
        materialize: forwarded to the transform's escape hatch.

    Raises:
        ValueError: when ``new_loss`` is outside ``[0, 1]``, when some
            channel edge's probability matches no ``old^k * (1-old)^j``,
            or when a match is ambiguous.
    """
    from ..core.reweight import reweight_edges

    old = as_fraction(old_loss)
    new = as_fraction(new_loss)
    if not 0 <= new <= 1:
        raise ValueError(f"new_loss must lie in [0, 1], got {new}")
    overrides: List[Tuple[Node, Probability]] = []
    if new != old:
        powers = {
            (k, j): new**k * (1 - new) ** j
            for k in range(_MAX_LOSS_EVENTS + 1)
            for j in range(_MAX_LOSS_EVENTS + 1 - k)
        }
        for node, current, pair in _loss_profile(pps, old):
            updated = powers[pair]
            if updated != current:
                overrides.append((node, updated))
    return reweight_edges(
        pps,
        overrides,
        name=name or f"{pps.name}-loss({new})",
        materialize=materialize,
    )


#: Memoized channel-edge classifications, keyed weakly per system then
#: by the old loss rate: trees (and the flattened probability overlays
#: of derived systems) are immutable, so the exponent recovery depends
#: only on ``(pps, old)`` — a dense sweep drifting hundreds of rows
#: from one parent pays the edge scan once, not once per row.
_LOSS_PROFILES: "WeakKeyDictionary[PPS, Dict[Probability, Tuple[Tuple[Node, Probability, Tuple[int, int]], ...]]]" = (
    WeakKeyDictionary()
)


def _loss_profile(
    pps: PPS, old: Probability
) -> Tuple[Tuple[Node, Probability, Tuple[int, int]], ...]:
    """``(node, current_probability, (k, j))`` per reweightable channel edge."""
    per_system = _LOSS_PROFILES.setdefault(pps, {})
    profile = per_system.get(old)
    if profile is None:
        exponents: Dict[Probability, Tuple[int, int]] = {}
        ambiguous = set()
        for k in range(_MAX_LOSS_EVENTS + 1):
            for j in range(_MAX_LOSS_EVENTS + 1 - k):
                value = old**k * (1 - old) ** j
                if exponents.setdefault(value, (k, j)) != (k, j):
                    ambiguous.add(value)
        entries: List[Tuple[Node, Probability, Tuple[int, int]]] = []
        for node in pps.nodes():
            if node.depth < 2:
                continue
            current = pps.edge_probability(node)
            if current == 1:
                continue
            if current in ambiguous:
                raise ValueError(
                    f"drift_loss: edge into node {node.uid} has probability "
                    f"{current}, which several loss/delivery exponent pairs "
                    f"produce at old_loss={old}; recompile from a loss rate "
                    "with identifiable exponents"
                )
            pair = exponents.get(current)
            if pair is None:
                raise ValueError(
                    f"drift_loss: edge into node {node.uid} has probability "
                    f"{current}, not of the form old^k*(1-old)^j for "
                    f"old_loss={old}"
                )
            entries.append((node, current, pair))
        profile = tuple(entries)
        per_system[old] = profile
    return profile


def fire_alice() -> Fact:
    """The transient fact that Alice is currently firing."""
    return does_(ALICE, FIRE)


def fire_bob() -> Fact:
    """The transient fact that Bob is currently firing."""
    return does_(BOB, FIRE)


def both_fire() -> Fact:
    """``phi_both``: both agents are currently firing."""
    return fire_alice() & fire_bob()
