"""The judge: verdicts beyond reasonable doubt.

The paper's introduction invokes the legal standard: "a guilty verdict
is allowed only if the judge very strongly believes in the defendant's
guilt."  This module models the situation so the PAK machinery can
quantify it:

* the world holds a guilt bit ``G`` (prior ``guilt_prior``);
* over ``signals`` rounds, a witness reports one signal per round;
  each signal independently equals ``G`` with probability
  ``signal_accuracy`` (a mixed action step of the witness);
* at the deadline the judge *convicts* iff at least
  ``conviction_threshold`` of the received signals said "guilty".

The condition of interest is ``phi = "the defendant is guilty"`` — a
fact about runs — and the constraint is
``mu(guilty | convict) >= p``.  The judge's belief at the moment of
conviction is the true Bayesian posterior given the observed signal
sequence (Definition 3.1 computes it for free), and Corollary 7.2's
trade-off between conviction quality ``p`` and the strength of the
judge's conviction-time belief is directly observable.

"Balance of probabilities" (the UK civil standard mentioned in the
paper) corresponds to ``conviction_threshold`` just above half the
signals; "beyond reasonable doubt" to a threshold near all of them.
"""

from __future__ import annotations

from typing import Tuple

from ..core.atoms import local_fact
from ..core.facts import Fact
from ..core.numeric import ProbabilityLike, as_fraction
from ..core.pps import PPS
from ..messaging.channels import ReliableChannel
from ..messaging.messages import Message, Move
from ..messaging.network import RecordingState, RoundProtocol
from ..messaging.system import MessagePassingSystem
from ..protocols.distribution import Distribution

__all__ = [
    "JUDGE",
    "WITNESS",
    "CONVICT",
    "ACQUIT",
    "build_judge",
    "guilty",
    "convicts",
]

JUDGE = "judge"
WITNESS = "witness"
CONVICT = "convict"
ACQUIT = "acquit"
GUILTY_SIGNAL = "guilty"
INNOCENT_SIGNAL = "innocent"


class _Witness(RoundProtocol):
    """Reports a noisy signal of the guilt bit each round."""

    def __init__(self, accuracy: ProbabilityLike, rounds: int) -> None:
        self._accuracy = as_fraction(accuracy)
        self._rounds = rounds

    def step(self, local: RecordingState):
        t = local.rounds_elapsed
        if t >= self._rounds:
            return Move()
        guilt = local.payload
        truthful = GUILTY_SIGNAL if guilt == 1 else INNOCENT_SIGNAL
        lying = INNOCENT_SIGNAL if guilt == 1 else GUILTY_SIGNAL
        honest = Move.sending(
            Message(WITNESS, JUDGE, truthful), action=("report", truthful)
        )
        if self._accuracy == 1:
            return honest
        noisy = Move.sending(
            Message(WITNESS, JUDGE, lying), action=("report", lying)
        )
        return Distribution({honest: self._accuracy, noisy: 1 - self._accuracy})

    def update(
        self, local: RecordingState, move: Move, delivered: Tuple[Message, ...]
    ) -> RecordingState:
        return local.observe(move.action, delivered)


class _Judge(RoundProtocol):
    """Counts guilty signals; convicts at the deadline on a threshold."""

    def __init__(self, rounds: int, conviction_threshold: int) -> None:
        self._rounds = rounds
        self._threshold = conviction_threshold

    def step(self, local: RecordingState) -> Move:
        t = local.rounds_elapsed
        if t != self._rounds:
            return Move()
        guilty_count = sum(
            1
            for round_index in range(self._rounds)
            for content in local.received_contents(round_index)
            if content == GUILTY_SIGNAL
        )
        if guilty_count >= self._threshold:
            return Move.acting(CONVICT)
        return Move.acting(ACQUIT)

    def update(
        self, local: RecordingState, move: Move, delivered: Tuple[Message, ...]
    ) -> RecordingState:
        return local.observe(move.action, delivered)


def build_judge(
    *,
    guilt_prior: ProbabilityLike = "1/2",
    signal_accuracy: ProbabilityLike = "0.9",
    signals: int = 3,
    conviction_threshold: int = 3,
) -> PPS:
    """Compile the judge system.

    Args:
        guilt_prior: prior probability the defendant is guilty.
        signal_accuracy: per-signal probability of matching the truth.
        signals: how many signals the judge hears.
        conviction_threshold: minimum guilty signals for a conviction.
    """
    if signals < 1:
        raise ValueError("the judge needs at least one signal")
    if not (0 <= conviction_threshold <= signals):
        raise ValueError("conviction threshold outside [0, signals]")
    prior = as_fraction(guilt_prior)
    initial: dict = {}
    if prior < 1:
        initial[(RecordingState(None), RecordingState(0))] = 1 - prior
    if prior > 0:
        initial[(RecordingState(None), RecordingState(1))] = prior
    system = MessagePassingSystem(
        agents=[JUDGE, WITNESS],
        protocols={
            JUDGE: _Judge(signals, conviction_threshold),
            WITNESS: _Witness(signal_accuracy, signals),
        },
        channel=ReliableChannel(),
        initial=Distribution(initial),
        horizon=signals + 1,
        name=f"judge(k={signals},m={conviction_threshold})",
    )
    return system.compile()


def guilty() -> Fact:
    """The fact that the defendant is guilty (a fact about runs)."""
    return local_fact(
        WITNESS, lambda local: local[1].payload == 1, label="guilty"
    )


def convicts() -> Fact:
    """The transient fact that the judge is currently convicting."""
    from ..core.atoms import does_

    return does_(JUDGE, CONVICT)
