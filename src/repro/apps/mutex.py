"""Relaxed probabilistic mutual exclusion.

The paper's introduction motivates probabilistic constraints with a
relaxed ME property: "upon entry to the critical section, it should be
empty with very high probability, rather than in all cases."  This
module builds the smallest interesting such system:

Two symmetric processes.  Each wants the critical section with
probability ``contention`` (independently).  A process that wants the
CS announces its request to its peer over a lossy channel in round 0.
At time 1 a process *enters* the CS iff it wants the CS and heard no
request from the peer (a request it failed to hear is exactly how an
exclusion violation can arise).

With contention ``w`` and loss ``l`` the exact exclusion quality is::

    mu(peer not entering @ enter | enter)
        = 1 - w*l*(w*l + (1-w) + w*(1-l)*l ... )   -- computed exactly
          by the library rather than by hand; benchmarks sweep w and l.

The condition "the CS is empty of the peer" is a *transient* fact about
the current joint action, and entering is a deterministic function of
the local state, so Lemma 4.3(a) yields local-state independence and
the whole PAK machinery applies.
"""

from __future__ import annotations

from typing import Tuple

from ..core.atoms import does_
from ..core.facts import Fact
from ..core.numeric import ProbabilityLike, as_fraction
from ..core.pps import PPS, AgentId
from ..messaging.channels import LossyChannel
from ..messaging.messages import Message, Move
from ..messaging.network import RecordingState, RoundProtocol
from ..messaging.system import MessagePassingSystem
from ..protocols.distribution import Distribution, product

__all__ = [
    "PROC_1",
    "PROC_2",
    "ENTER",
    "build_mutex",
    "enters",
    "peer_stays_out",
    "exclusion_holds",
]

PROC_1 = "p1"
PROC_2 = "p2"
ENTER = "enter"
REQUEST = "request"


class _Contender(RoundProtocol):
    """Request in round 0 if contending; enter at time 1 if unopposed."""

    def __init__(self, me: AgentId, peer: AgentId) -> None:
        self._me = me
        self._peer = peer

    def step(self, local: RecordingState) -> Move:
        wants = local.payload == 1
        t = local.rounds_elapsed
        if t == 0 and wants:
            return Move.sending(Message(self._me, self._peer, REQUEST))
        if t == 1 and wants and not local.received(0):
            return Move.acting(ENTER)
        return Move()

    def update(
        self, local: RecordingState, move: Move, delivered: Tuple[Message, ...]
    ) -> RecordingState:
        return local.observe(move.action, delivered)


def build_mutex(
    *,
    contention: ProbabilityLike = "0.5",
    loss: ProbabilityLike = "0.1",
) -> PPS:
    """Compile the two-process relaxed-ME system.

    Args:
        contention: probability each process wants the CS.
        loss: per-message loss probability.
    """
    w = as_fraction(contention)
    want = Distribution.bernoulli(w, true=1, false=0)
    initial_pairs = product([want, want]).map(
        lambda bits: (RecordingState(bits[0]), RecordingState(bits[1]))
    )
    system = MessagePassingSystem(
        agents=[PROC_1, PROC_2],
        protocols={
            PROC_1: _Contender(PROC_1, PROC_2),
            PROC_2: _Contender(PROC_2, PROC_1),
        },
        channel=LossyChannel(loss),
        initial=initial_pairs,
        horizon=2,
        name=f"mutex(w={w})",
    )
    return system.compile()


def enters(process: AgentId) -> Fact:
    """The transient fact that ``process`` is currently entering the CS."""
    return does_(process, ENTER)


def peer_stays_out(process: AgentId) -> Fact:
    """The exclusion condition for ``process``: the peer is not entering."""
    peer = PROC_2 if process == PROC_1 else PROC_1
    return ~does_(peer, ENTER)


def exclusion_holds() -> Fact:
    """The transient fact that at most one process is entering now."""
    return ~(does_(PROC_1, ENTER) & does_(PROC_2, ENTER))
