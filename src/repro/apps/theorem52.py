"""The Theorem 5.2 construction (the paper's Figure 2).

For any ``0 < epsilon < p < 1`` the construction produces a pps
``T_hat(p, epsilon)`` with agents ``i`` and ``j`` in which:

* agent ``j`` holds a bit: ``bit = 1`` with probability ``p``;
* in the first round, ``j`` sends ``m_j`` when ``bit = 0``; when
  ``bit = 1`` it sends ``m_j`` with probability ``1 - epsilon/p`` and a
  distinct message ``m'_j`` with probability ``epsilon/p`` (a mixed
  action step);
* the channel is reliable; ``i`` receives the message and then
  unconditionally performs ``alpha`` at time 1.

With ``phi = "bit = 1"`` one gets *exactly*:

* ``mu(phi@alpha | alpha) = p`` — the constraint holds with equality;
* the acting belief is ``(p - epsilon)/(1 - epsilon) < p`` in the runs
  where ``m_j`` arrives, and ``1`` in the single run where ``m'_j``
  arrives;
* hence ``mu(beta_i(phi)@alpha >= p | alpha) = epsilon`` — the
  threshold-met measure can be made arbitrarily small.

``alpha`` is deterministic for ``i``, so ``phi`` is local-state
independent by Lemma 4.3(a), and Theorem 6.2's expectation identity is
exactly satisfied: ``(1-eps) * (p-eps)/(1-eps) + eps * 1 = p``.

The module provides both a direct :class:`~repro.core.builder.PPSBuilder`
construction (:func:`build_theorem52`) and a protocol-level one through
the messaging substrate (:func:`build_theorem52_protocol`), which
compile to probabilistically identical systems — tests assert the
agreement.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Tuple

from ..core.atoms import local_fact
from ..core.builder import PPSBuilder
from ..core.errors import UnknownLocalStateError
from ..core.facts import Fact
from ..core.numeric import ProbabilityLike, as_fraction
from ..core.pps import PPS
from ..messaging.channels import ReliableChannel
from ..messaging.messages import SKIP, Message, Move
from ..messaging.network import RoundProtocol
from ..messaging.system import MessagePassingSystem
from ..protocols.distribution import Distribution

__all__ = [
    "AGENT_I",
    "AGENT_J",
    "ALPHA",
    "build_theorem52",
    "build_theorem52_protocol",
    "bit_is_one",
    "expected_off_threshold_belief",
]

AGENT_I = "i"
AGENT_J = "j"
ALPHA = "alpha"
M_GOOD = "m_j"
M_RARE = "m'_j"


def _check_parameters(p: Fraction, epsilon: Fraction) -> None:
    if not (0 < epsilon < p < 1):
        raise ValueError(
            f"the construction requires 0 < epsilon < p < 1, got "
            f"epsilon={epsilon}, p={p}"
        )


def expected_off_threshold_belief(
    p: ProbabilityLike, epsilon: ProbabilityLike
) -> Fraction:
    """The belief ``(p - eps)/(1 - eps)`` held in the common runs."""
    p_, e_ = as_fraction(p), as_fraction(epsilon)
    _check_parameters(p_, e_)
    return (p_ - e_) / (1 - e_)


def bit_is_one() -> Fact:
    """``phi``: agent ``j``'s bit equals 1.

    Works on both constructions: ``j``'s raw local state always carries
    the bit as its first element.
    """

    def predicate(local: object) -> bool:
        t, raw = local  # stamped (time, raw)
        return _bit_of(raw) == 1

    return local_fact(AGENT_J, predicate, label="bit=1")


def _bit_of(raw: object) -> int:
    # Raw j-states are ("bit", b) in the direct construction and
    # ("bit", b, sent_marker) tuples in the protocol construction.
    # Reachable from outside: phi_bit_is_one() can be applied to any
    # system, so a foreign local state needs a typed error.
    if not (isinstance(raw, tuple) and len(raw) >= 2 and raw[0] == "bit"):
        raise UnknownLocalStateError(
            f"agent {AGENT_J!r} local state {raw!r} does not carry a "
            "('bit', b) payload; bit_is_one() applies only to "
            "theorem-5.2 systems"
        )
    return raw[1]


def build_theorem52(
    p: ProbabilityLike = "0.9", epsilon: ProbabilityLike = "0.1"
) -> PPS:
    """The Figure 2 tree, built directly.

    Args:
        p: the probability of ``bit = 1`` (and the constraint level).
        epsilon: the target threshold-met measure.
    """
    p_, e_ = as_fraction(p), as_fraction(epsilon)
    _check_parameters(p_, e_)
    builder = PPSBuilder([AGENT_I, AGENT_J], name=f"theorem-5.2(p={p_},eps={e_})")

    s0 = builder.initial(
        1 - p_, {AGENT_I: (0, "init"), AGENT_J: (0, ("bit", 0))}
    )
    s1 = builder.initial(p_, {AGENT_I: (0, "init"), AGENT_J: (0, ("bit", 1))})

    # Round 1: j sends its message; i observes it at time 1.
    r_mid = s0.chain(
        {AGENT_I: (1, ("got", M_GOOD)), AGENT_J: (1, ("bit", 0))},
        actions={AGENT_J: f"send-{M_GOOD}"},
    )
    r1_mid = s1.child(
        1 - e_ / p_,
        {AGENT_I: (1, ("got", M_GOOD)), AGENT_J: (1, ("bit", 1))},
        actions={AGENT_J: f"send-{M_GOOD}"},
    )
    r2_mid = s1.child(
        e_ / p_,
        {AGENT_I: (1, ("got", M_RARE)), AGENT_J: (1, ("bit", 1))},
        actions={AGENT_J: f"send-{M_RARE}"},
    )

    # Round 2: i performs alpha unconditionally.
    r_mid.chain(
        {AGENT_I: (2, ("done", M_GOOD)), AGENT_J: (2, ("bit", 0))},
        actions={AGENT_I: ALPHA},
    )
    r1_mid.chain(
        {AGENT_I: (2, ("done", M_GOOD)), AGENT_J: (2, ("bit", 1))},
        actions={AGENT_I: ALPHA},
    )
    r2_mid.chain(
        {AGENT_I: (2, ("done", M_RARE)), AGENT_J: (2, ("bit", 1))},
        actions={AGENT_I: ALPHA},
    )
    return builder.build()


class _SenderJ(RoundProtocol):
    """Agent ``j``: announce the bit, honestly or with the rare tell."""

    def __init__(self, epsilon_over_p: Fraction) -> None:
        self._rare_prob = epsilon_over_p

    def step(self, local: object):
        bit = _bit_of(local)
        if len(local) > 2:  # already sent; nothing left to do
            return Move()
        good = Move.sending(
            Message(AGENT_J, AGENT_I, M_GOOD), action=f"send-{M_GOOD}"
        )
        if bit == 0:
            return good
        rare = Move.sending(
            Message(AGENT_J, AGENT_I, M_RARE), action=f"send-{M_RARE}"
        )
        if self._rare_prob == 1:
            return rare
        return Distribution({good: 1 - self._rare_prob, rare: self._rare_prob})

    def update(self, local: object, move: Move, delivered: Tuple[Message, ...]):
        if len(local) > 2:
            return local
        return local + ("sent",)


class _ReceiverI(RoundProtocol):
    """Agent ``i``: receive, then perform ``alpha`` unconditionally."""

    def step(self, local: object):
        phase = local[0]
        if phase == "init":
            return Move()
        if phase == "got":
            return Move.acting(ALPHA)
        return Move()

    def update(self, local: object, move: Move, delivered: Tuple[Message, ...]):
        if local[0] == "init" and delivered:
            return ("got", delivered[0].content)
        if local[0] == "got":
            return ("done", local[1])
        return local


def build_theorem52_protocol(
    p: ProbabilityLike = "0.9", epsilon: ProbabilityLike = "0.1"
) -> PPS:
    """The same construction expressed as a message-passing protocol."""
    p_, e_ = as_fraction(p), as_fraction(epsilon)
    _check_parameters(p_, e_)
    system = MessagePassingSystem(
        agents=[AGENT_I, AGENT_J],
        protocols={
            AGENT_I: _ReceiverI(),
            AGENT_J: _SenderJ(e_ / p_),
        },
        channel=ReliableChannel(),
        initial=Distribution(
            {
                (("init",), ("bit", 0)): 1 - p_,
                (("init",), ("bit", 1)): p_,
            }
        ),
        horizon=2,
        name=f"theorem-5.2-protocol(p={p_},eps={e_})",
    )
    return system.compile()
