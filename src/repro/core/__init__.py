"""Core machinery: pps trees, facts, beliefs, constraints, and the theorems.

This subpackage is a faithful executable rendering of the paper's
Sections 2–7: purely probabilistic systems as finite labelled trees,
facts as point sets, posterior beliefs, proper actions, local-state
independence, probabilistic constraints, and exact checkers for every
theorem.
"""

from .actions import (
    action_state_partition,
    action_states,
    ensure_proper,
    is_deterministic_action,
    is_proper,
    performance_state,
    performance_time,
    performance_times,
    performing_runs,
    runs_performing_at_state,
)
from .at_operators import action_at_local_state, at_action, at_local_state
from .atoms import (
    FALSE,
    TRUE,
    at_time,
    does_,
    env_fact,
    local_fact,
    local_state_occurs,
    performed,
    state_fact,
)
from .beliefs import (
    belief,
    belief_at,
    belief_at_action,
    belief_profile,
    belief_random_variable,
    occurrence_event,
    threshold_met_event,
    threshold_met_measure,
    threshold_met_measures,
)
from .builder import NodeHandle, PPSBuilder
from .common_belief import (
    Believes,
    CommonBelief,
    EveryoneBelieves,
    believes,
    common_belief,
    common_belief_points,
    everyone_believes,
)
from .constraints import ProbabilisticConstraint, achieved_probability
from .engine import SystemIndex
from .errors import (
    CompilationError,
    ConditioningOnNullEventError,
    FaultExhaustedError,
    FaultSpecError,
    FormulaError,
    ImproperActionError,
    IndependenceError,
    InvalidSystemError,
    NotStochasticError,
    ReproError,
    ShmIntegrityError,
    SynchronyViolationError,
    UnknownAgentError,
    UnknownLocalStateError,
    ZeroProbabilityError,
)
from .faults import (
    DegradationEvent,
    FaultPlan,
    ResilienceReport,
    RetryEvent,
    fault_plan,
    record_degradation,
    reset_resilience_report,
    resilience_report,
    set_fault_plan,
)
from .expectation import (
    BeliefCell,
    expected_belief,
    expected_belief_decomposition,
    jeffrey_conditional,
)
from .facts import (
    And,
    Fact,
    LambdaFact,
    LambdaRunFact,
    Not,
    Or,
    RunFact,
    always,
    eventually,
    fact_equivalent,
    points_satisfying,
    runs_satisfying,
)
from .independence import (
    IndependenceWitness,
    independence_report,
    is_local_state_independent,
    is_past_based,
    is_run_based,
    lemma_4_3_applies,
)
from .knowledge import (
    CommonKnowledge,
    EveryoneKnows,
    Knows,
    common_knowledge,
    everyone_knows,
    indistinguishable_points,
    knowledge_partition,
    knows,
)
from .kop import KoPReport, check_kop, is_necessary_condition
from .measure import (
    Event,
    all_runs,
    complement,
    conditional,
    empty_event,
    event_where,
    expectation,
    intersect,
    is_partition,
    probability,
    total_probability,
    union,
)
from .lazyprob import (
    NUMERIC_MODES,
    LazyProb,
    NumericStats,
    approx_value,
    check_numeric_mode,
    escalation_count,
    exact_value,
    numeric_stats,
    reset_numeric_stats,
)
from .numeric import (
    ONE,
    ZERO,
    InexactSqrtError,
    Probability,
    ProbabilityLike,
    as_fraction,
    as_probability,
    exact_sqrt,
    sqrt_fraction,
    sqrt_fraction_with_exactness,
)
from .optimality import (
    FrontierPoint,
    achievable_frontier,
    is_belief_optimal,
    optimal_acting_states,
)
from .pak import PAKReport, analyze
from .pps import (
    PPS,
    Action,
    ActionOverlay,
    AgentId,
    DerivedPPS,
    GlobalState,
    LocalState,
    Node,
    OverlayRun,
    ProbabilityOverlay,
    ReweightedPPS,
    Run,
)
from .reweight import condition_on, reweight_edges
from .theorems import (
    TheoremCheck,
    check_corollary_7_2,
    check_lemma_4_3,
    check_lemma_5_1,
    check_lemma_f_1,
    check_theorem_4_2,
    check_theorem_6_2,
    check_theorem_7_1,
    pak_level,
    pak_level_with_exactness,
)

__all__ = [name for name in dir() if not name.startswith("_")]
