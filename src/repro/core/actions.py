"""Proper actions and their bookkeeping.

An action ``alpha`` is *proper* for agent ``i`` in a pps ``T``
(paper, Section 3.1) when

* ``i`` performs ``alpha`` at least once somewhere in ``T``, and
* in every run, ``i`` performs ``alpha`` at most once.

Properness makes the run fact "``alpha`` is performed" and the
performance time within a run well defined, and lets the analysis
partition the performing runs ``R_alpha`` by the local state at which
the action is taken (the sets ``Q^{l_i}`` of the appendix).

This module provides the predicates and the standard decompositions:

* :func:`performing_runs` — the event ``R_alpha``;
* :func:`action_states` — the set ``L_i[alpha]`` of local states at
  which ``i`` ever performs ``alpha``;
* :func:`runs_performing_at_state` — the cell ``Q^{l_i}`` of runs where
  ``alpha`` is performed at local state ``l_i``;
* :func:`is_deterministic_action` — whether performing ``alpha`` is a
  deterministic function of the local state (Lemma 4.3(a) premise).

All queries are answered from the per-system
:class:`~repro.core.engine.SystemIndex` action tables, which are built
in a single pass over the tree's edges on first use; nothing here
rescans the run list per call.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Tuple

from .engine import SystemIndex
from .errors import ImproperActionError
from .measure import Event
from .pps import PPS, Action, AgentId, LocalState, Run

__all__ = [
    "performance_times",
    "performance_time",
    "performing_runs",
    "is_proper",
    "ensure_proper",
    "action_states",
    "runs_performing_at_state",
    "action_state_partition",
    "is_deterministic_action",
    "performance_state",
]


def performance_times(pps: PPS, agent: AgentId, action: Action) -> Dict[int, Tuple[int, ...]]:
    """Map run index to the times at which ``agent`` performs ``action``.

    Runs in which the action is not performed are omitted.
    """
    return dict(SystemIndex.of(pps).performance_times(agent, action))


def performing_runs(pps: PPS, agent: AgentId, action: Action) -> Event:
    """The event ``R_alpha`` of runs in which the action is performed."""
    index = SystemIndex.of(pps)
    return index.event_of(index.performing_mask(agent, action))


def is_proper(pps: PPS, agent: AgentId, action: Action) -> bool:
    """Whether ``action`` is a proper action for ``agent`` in ``pps``.

    Memoized per (agent, action) on the system index — every checker
    and threshold query re-asserts properness on its way in.
    """
    return SystemIndex.of(pps).is_proper_action(agent, action)


def ensure_proper(pps: PPS, agent: AgentId, action: Action) -> None:
    """Raise :class:`ImproperActionError` unless the action is proper."""
    index = SystemIndex.of(pps)
    if index.is_proper_action(agent, action):
        return
    # Cold path: re-derive the precise reason for the error message.
    table = index.performance_times(agent, action)
    if not table:
        raise ImproperActionError(
            f"action {action!r} is never performed by {agent!r} in {pps.name}"
        )
    for run_index, times in table.items():
        if len(times) > 1:
            raise ImproperActionError(
                f"action {action!r} is performed by {agent!r} more than once "
                f"(at times {times}) in run {run_index} of {pps.name}; "
                "tag occurrences (e.g. with the time) to make it proper"
            )


def performance_time(pps: PPS, agent: AgentId, action: Action, run: Run) -> Optional[int]:
    """The unique time at which the proper action occurs in ``run``.

    Returns ``None`` when the action is not performed in the run.

    Raises:
        ImproperActionError: if the action occurs more than once in the
            run (i.e. the action is not proper).
    """
    times = SystemIndex.of(pps).performance_times(agent, action).get(run.index)
    if times is None:
        return None
    if len(times) > 1:
        raise ImproperActionError(
            f"action {action!r} occurs {len(times)} times in run {run.index}"
        )
    return times[0]


def performance_state(
    pps: PPS, agent: AgentId, action: Action, run: Run
) -> Optional[LocalState]:
    """The local state at which the proper action is performed in ``run``."""
    t = performance_time(pps, agent, action, run)
    if t is None:
        return None
    return run.local(agent, t)


def action_states(pps: PPS, agent: AgentId, action: Action) -> FrozenSet[LocalState]:
    """The set ``L_i[alpha]`` of local states at which the action occurs."""
    return frozenset(SystemIndex.of(pps).state_cells(agent, action))


def runs_performing_at_state(
    pps: PPS, agent: AgentId, action: Action, local: LocalState
) -> Event:
    """The cell ``Q^{l_i}``: runs where the action occurs at ``local``."""
    index = SystemIndex.of(pps)
    return index.event_of(index.state_cells(agent, action).get(local, 0))


def action_state_partition(
    pps: PPS, agent: AgentId, action: Action
) -> Dict[LocalState, Event]:
    """The partition ``Pi = {Q^{l_i} : l_i in L_i[alpha]}`` of ``R_alpha``.

    Raises:
        ImproperActionError: when the action is not proper (the cells
            would then fail to be disjoint).
    """
    ensure_proper(pps, agent, action)
    index = SystemIndex.of(pps)
    return {
        local: index.event_of(mask)
        for local, mask in index.state_cells(agent, action).items()
    }


def is_deterministic_action(pps: PPS, agent: AgentId, action: Action) -> bool:
    """Whether performing the action is determined by the local state.

    Following Section 4: for any two points with the same agent local
    state, the agent performs the action at both or at neither.  (The
    points necessarily share the time, by synchrony.)  With the index
    this is per-local-state mask equality: the cell ``Q^{l}`` must be
    empty or the full occurrence set of ``l``.
    """
    index = SystemIndex.of(pps)
    cells = index.state_cells(agent, action)
    for local in index.local_states(agent):
        performed = cells.get(local, 0)
        if performed and performed != index.occurrence_mask(agent, local):
            return False
    return True
