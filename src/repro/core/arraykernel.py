"""The array numeric backend: vectorized reductions and bisected thresholds.

PR 5's two-tier kernel (:mod:`repro.core.lazyprob`) made every
threshold verdict float-fast and exact-on-demand — but the *filter
itself* still ran as a Python loop: a ``T x L`` threshold grid paid
``O(T * L)`` interpreted comparisons, and every scattered-mask measure
paid a per-bit Python sum.  This module moves those hot reductions
onto arrays (NumPy when available) under the exact same
conservative-error discipline:

* :func:`float_with_err` — the float view of an exact integer plus a
  bound on its conversion error (zero when the integer is exactly
  representable; big-int weights beyond 2**53 get a relative
  rounding-error term, and integers beyond float range get ``inf`` —
  every comparison on such a value escalates rather than mis-certifies);
* :class:`WeightKernel` — the engine's integer weight vector as
  ``float64`` approximation + per-entry error arrays, with
  mask-restricted sums as vectorized reductions (bitmask ->
  ``np.unpackbits`` -> fancy-indexed sum) and a summation error bound
  covering both the per-entry conversion errors and the accumulated
  rounding of the reduction itself;
* :class:`ThresholdKernel` — the bisected threshold kernel: acting
  posteriors exactly sorted once (distinct values, suffix-union met
  masks), monotone float certification envelopes, and per-bound
  location by :meth:`ThresholdKernel.locate_batch` — two vectorized
  ``searchsorted`` passes bracket every bound's exact insertion point,
  and only bounds whose bracket is ambiguous escalate to exact integer
  bisection.  A grid of ``G`` bounds over ``L`` acting states costs
  ``O(L log L)`` once plus ``O(G log L)`` float work, instead of the
  scalar filter's ``O(G * L)``;
* :func:`div_bounds` / :func:`dot_bounds` — forward-error propagation
  for the ratio and weighted-sum shapes the engine needs
  (conditionals, ``beliefs_batch`` posteriors, expectation dot
  products).

**NumPy is optional.**  ``pip install .[fast]`` enables the vectorized
paths; without it (or with ``REPRO_PURE_PYTHON=1`` in the environment)
every function here falls back to pure-Python loops with the *same
API and the same verdicts* — the error bounds are conservative in both
backends, and every certified verdict is certified against the same
exact oracle, so which backend ran is unobservable except in speed.
Tests flip backends via :func:`set_backend` to prove exactly that.

See ``docs/numerics.md`` for the error-bound derivation and how the
engine threads these kernels through its hot paths.
"""

from __future__ import annotations

import math
import os
from bisect import bisect_left, bisect_right
from fractions import Fraction
from typing import List, Optional, Sequence, Tuple

from .faults import maybe_fire, record_degradation
from .lazyprob import ABS_EPS, REL_EPS

__all__ = [
    "HAVE_NUMPY",
    "backend",
    "set_backend",
    "using_numpy",
    "float_with_err",
    "div_bounds",
    "sum_bounds",
    "dot_bounds",
    "WeightKernel",
    "ThresholdKernel",
]

def _detect_numpy() -> bool:  # pragma: no cover - both CI matrix legs
    if os.environ.get("REPRO_PURE_PYTHON"):
        return False
    try:
        from importlib.util import find_spec

        return find_spec("numpy") is not None
    except (ImportError, ValueError):
        return False


HAVE_NUMPY = _detect_numpy()

# Availability is probed without importing (find_spec); the ~100ms
# numpy import is paid only when the first vectorized kernel is built,
# so exact-only workloads never load it.  Methods on a vectorized
# kernel may use the ``_np`` global directly: their constructor went
# through :func:`_numpy` first.
_np = None


def _numpy():
    global _np
    # The fault site fires even when numpy is already cached: a chaos
    # spec must be able to exercise the degradation path on any query,
    # not only the process's very first vectorized kernel.
    if maybe_fire("backend-import"):
        raise ImportError("injected backend-import fault")
    if _np is None:
        import numpy

        _np = numpy
    return _np


def _numpy_or_degrade():
    """:func:`_numpy`, degrading to the pure-Python backend on failure.

    A NumPy import that raises (broken installation, or the
    ``backend-import`` fault site) flips the active backend to
    ``"python"`` for every *subsequently built* kernel, records the
    numpy→python downgrade on the resilience report, and returns
    ``None`` — the caller takes the pure-Python path, whose verdicts
    are identical by construction.
    """
    global _backend
    try:
        return _numpy()
    except ImportError as error:
        _backend = "python"
        record_degradation(
            "backend", "numpy", "python", "numpy-import-failed", repr(error)
        )
        return None

# The active backend: "numpy" when available, else "python".  Kernels
# consult this at *construction* time, so tests can build one kernel
# per backend and compare; already-built kernels keep their backend.
_backend = "numpy" if HAVE_NUMPY else "python"


def backend() -> str:
    """The active backend name: ``"numpy"`` or ``"python"``."""
    return _backend


def using_numpy() -> bool:
    """Whether newly built kernels will use vectorized NumPy paths."""
    return _backend == "numpy"


def set_backend(name: str) -> str:
    """Select the backend for subsequently built kernels (tests only).

    Returns the previous backend name so callers can restore it.

    Raises:
        ValueError: for names other than ``"numpy"``/``"python"``, or
            when ``"numpy"`` is requested but NumPy is not installed.
    """
    global _backend
    if name not in ("numpy", "python"):
        raise ValueError(f"backend must be 'numpy' or 'python', got {name!r}")
    if name == "numpy" and not HAVE_NUMPY:
        raise ValueError("NumPy backend requested but numpy is not installed")
    previous = _backend
    _backend = name
    return previous


# ----------------------------------------------------------------------
# Scalar conversions and error propagation
# ----------------------------------------------------------------------

# One correctly rounded float step is within half an ulp; every bound
# here budgets a full ulp per step (REL_EPS = 2^-52) plus the subnormal
# cushion ABS_EPS, matching lazyprob's discipline.  Bounds only ever
# over-estimate: a loose bound costs a spurious escalation, never a
# wrong certification.

# Integers up to 2**53 convert to float exactly.
_EXACT_INT_LIMIT = 1 << 53


def float_with_err(value: int) -> Tuple[float, float]:
    """The float view of an exact integer and a bound on its error.

    * ``|value| <= 2**53``: exactly representable — error 0.
    * larger: ``int.__float__`` is correctly rounded, so the error is
      at most one ulp of the result — ``|approx| * 2**-52``.  This is
      the rounding-error term that keeps big-integer weights honest:
      a comparison that the term does not certify escalates to exact
      integer arithmetic instead of trusting the rounded float.
    * beyond float range entirely: ``(±inf, inf)`` — nothing certifies,
      everything escalates.
    """
    try:
        approx = float(value)
    except OverflowError:
        return (math.inf if value > 0 else -math.inf), math.inf
    if -_EXACT_INT_LIMIT <= value <= _EXACT_INT_LIMIT:
        return approx, 0.0
    return approx, abs(approx) * REL_EPS


def div_bounds(
    num_approx: float, num_err: float, den_approx: float, den_err: float
) -> Tuple[float, float]:
    """``(approx, err)`` of a ratio from its operands' bounds.

    Mirrors ``LazyProb``'s division propagation: when the divisor's
    interval is not bounded away from zero (or anything is non-finite)
    the error is ``inf`` — comparisons on the result always escalate.
    """
    approx = num_approx / den_approx if den_approx != 0.0 else math.nan
    lo = abs(den_approx) - den_err
    # nan/inf operands (overflowed totals) land here too: a bound that
    # cannot be certified must always escalate.
    if not (lo > 0.0 and math.isfinite(lo) and math.isfinite(approx)):
        return approx, math.inf
    err = (
        2.0 * (num_err + abs(approx) * den_err) / lo
        + abs(approx) * REL_EPS
        + ABS_EPS
    )
    return approx, err


def sum_bounds(terms: Sequence[Tuple[float, float]]) -> Tuple[float, float]:
    """``(approx, err)`` of ``sum_i t_i`` from per-term bounds.

    The order-insensitive combine behind shard recombination
    (``core/shard.py``): per-term errors add, and the accumulated
    rounding of the reduction is covered by an ``n * REL_EPS *
    sum |t_i|`` term valid for *any* summation order — so a bound
    combined from per-shard bounds is conservative no matter how the
    underlying total was split, and a bound is never tightened by
    resharding.  Non-finite terms propagate to an ``inf`` error:
    comparisons on the result always escalate.
    """
    n = len(terms)
    if n == 0:
        return 0.0, 0.0
    approx = 0.0
    term_err = 0.0
    abs_sum = 0.0
    for ta, te in terms:
        approx += ta
        abs_sum += abs(ta)
        term_err += te
    if not (math.isfinite(approx) and math.isfinite(term_err)):
        return approx, math.inf
    return approx, term_err + n * REL_EPS * abs_sum + ABS_EPS


def dot_bounds(
    xs: Sequence[Tuple[float, float]], ys: Sequence[Tuple[float, float]]
) -> Tuple[float, float]:
    """``(approx, err)`` of ``sum_i x_i * y_i`` from per-term bounds.

    Per-term error is the product rule (``|x| e_y + |y| e_x + e_x
    e_y``); the accumulated rounding of the reduction is covered by an
    ``n * REL_EPS * sum |x_i y_i|`` term, valid for any summation
    order (NumPy's pairwise reduction is strictly tighter).
    """
    n = len(xs)
    if n == 0:
        return 0.0, 0.0
    if _backend == "numpy" and n >= 2 and _numpy_or_degrade() is not None:
        xa = _np.array([x[0] for x in xs], dtype=_np.float64)
        xe = _np.array([x[1] for x in xs], dtype=_np.float64)
        ya = _np.array([y[0] for y in ys], dtype=_np.float64)
        ye = _np.array([y[1] for y in ys], dtype=_np.float64)
        prods = xa * ya
        abs_prods = _np.abs(prods)
        approx = float(prods.sum())
        term_err = float(
            (_np.abs(xa) * ye + _np.abs(ya) * xe + xe * ye).sum()
        )
        err = term_err + n * REL_EPS * float(abs_prods.sum()) + ABS_EPS
        return approx, err
    approx = 0.0
    term_err = 0.0
    abs_sum = 0.0
    for (xa, xe), (ya, ye) in zip(xs, ys):
        prod = xa * ya
        approx += prod
        abs_sum += abs(prod)
        term_err += abs(xa) * ye + abs(ya) * xe + xe * ye
    return approx, term_err + n * REL_EPS * abs_sum + ABS_EPS


# ----------------------------------------------------------------------
# The weight kernel: mask-restricted sums as array reductions
# ----------------------------------------------------------------------


class WeightKernel:
    """The integer weight vector as float arrays with error bounds.

    Built once per system index from the engine's exact integer
    weights (numerators over the common denominator).  ``vectorized``
    tells the engine whether :meth:`mask_bounds` is an array reduction
    (NumPy backend) or whether the engine should prefer its memoized
    exact integer totals (pure-Python backend — summing floats in a
    Python loop would cost the same as summing the exact ints, so the
    fallback simply isn't built).
    """

    __slots__ = ("size", "vectorized", "_approx", "_err", "_any_err")

    def __init__(self, weights: Sequence[int]) -> None:
        self.size = len(weights)
        pairs = [float_with_err(w) for w in weights]
        self.vectorized = _backend == "numpy" and _numpy_or_degrade() is not None
        if self.vectorized:
            self._approx = _np.array([p[0] for p in pairs], dtype=_np.float64)
            self._err = _np.array([p[1] for p in pairs], dtype=_np.float64)
        else:
            self._approx = [p[0] for p in pairs]
            self._err = [p[1] for p in pairs]
        self._any_err = any(p[1] != 0.0 for p in pairs)

    def _selector(self, mask: int):
        """The boolean selection array of a bitmask (NumPy backend)."""
        nbytes = (self.size + 7) // 8
        raw = _np.frombuffer(
            mask.to_bytes(nbytes, "little"), dtype=_np.uint8
        )
        return _np.unpackbits(raw, bitorder="little", count=self.size).view(
            _np.bool_
        )

    def mask_bounds(self, mask: int) -> Tuple[float, float]:
        """``(approx, err)`` of the weight total over the mask's entries.

        The error bound is the sum of the selected entries' conversion
        errors plus ``k * REL_EPS * sum |w_i|`` for the ``k``-term
        reduction (any summation order), plus the subnormal cushion.
        """
        if mask == 0:
            return 0.0, 0.0
        if self.vectorized:
            sel = self._selector(mask)
            chosen = self._approx[sel]
            k = chosen.shape[0]
            total = float(chosen.sum())
            abs_total = float(_np.abs(chosen).sum())
            conv = float(self._err[sel].sum()) if self._any_err else 0.0
            return total, conv + k * REL_EPS * abs_total + ABS_EPS
        total = 0.0
        abs_total = 0.0
        conv = 0.0
        k = 0
        approx = self._approx
        err = self._err
        m = mask
        while m:
            lsb = m & -m
            i = lsb.bit_length() - 1
            total += approx[i]
            abs_total += abs(approx[i])
            conv += err[i]
            k += 1
            m ^= lsb
        return total, conv + k * REL_EPS * abs_total + ABS_EPS


# ----------------------------------------------------------------------
# The bisected threshold kernel
# ----------------------------------------------------------------------

# Certification envelopes inflate each side's error window by 8x (vs
# the scalar filter's 4x): the envelope arithmetic itself — gap sums,
# the ± that builds lo/hi, the running min/max — rounds, and the extra
# factor absorbs every such step with room to spare.  Looser windows
# only cost spurious exact refinements at the bracket edges.
_ENV = 8.0


def _gap(approx: float) -> float:
    return _ENV * (abs(approx) * REL_EPS + ABS_EPS)


class ThresholdKernel:
    """Sorted acting-posterior structure answering threshold grids.

    Built from ``(exact posterior, cell mask)`` rows — one per acting
    local state.  Holds the *distinct* exact posteriors ascending
    (``values``), the suffix-union met masks (``suffix_masks[j]`` is
    the union of cells whose posterior is ``>= values[j]``;
    ``suffix_masks[m]`` is 0), and two monotone float envelopes:

    * ``hi_env[j]`` — a running max of ``float(v_j) + gap_j``: every
      bound strictly above it is certifiably above ``v_0..v_j``;
    * ``lo_env[j]`` — a suffix running min of ``float(v_j) - gap_j``:
      every bound strictly below it is certifiably below
      ``v_j..v_{m-1}``.

    For a bound ``p`` the exact insertion point ``j*`` (first ``j``
    with ``v_j >= p``, so the met mask is exactly
    ``suffix_masks[j*]``) is bracketed by two envelope lookups; when
    the bracket is a single point the verdict is certified in float,
    otherwise the kernel bisects the bracket with exact ``Fraction``
    comparisons — each counted as an escalation.  The met mask is
    *always* the one exact mode computes.
    """

    __slots__ = ("values", "suffix_masks", "lo_env", "hi_env", "_numpy")

    def __init__(self, rows: Sequence[Tuple[Fraction, int]]) -> None:
        groups: dict = {}
        for value, cell in rows:
            groups[value] = groups.get(value, 0) | cell
        values: List[Fraction] = sorted(groups)
        m = len(values)
        suffix = [0] * (m + 1)
        for j in range(m - 1, -1, -1):
            suffix[j] = suffix[j + 1] | groups[values[j]]
        self.values = values
        self.suffix_masks = suffix
        approx = [float(v) for v in values]
        lo = [a - _gap(a) for a in approx]
        hi = [a + _gap(a) for a in approx]
        # Monotone envelopes: prefix-max of hi, suffix-min of lo.
        for j in range(1, m):
            if hi[j] < hi[j - 1]:
                hi[j] = hi[j - 1]
        for j in range(m - 2, -1, -1):
            if lo[j] > lo[j + 1]:
                lo[j] = lo[j + 1]
        self._numpy = _backend == "numpy" and _numpy_or_degrade() is not None
        if self._numpy:
            self.lo_env = _np.array(lo, dtype=_np.float64)
            self.hi_env = _np.array(hi, dtype=_np.float64)
        else:
            self.lo_env = lo
            self.hi_env = hi

    def __len__(self) -> int:
        return len(self.values)

    # -- exact location (the oracle) -----------------------------------

    def locate_exact(self, bound: Fraction) -> int:
        """The insertion point by pure exact bisection (no stats)."""
        return bisect_left(self.values, bound)

    def _refine(self, bound: Fraction, a: int, b: int) -> Tuple[int, int]:
        """Exact bisection of ``values[a:b]``; returns (point, compares)."""
        compares = 0
        while a < b:
            mid = (a + b) // 2
            compares += 1
            if self.values[mid] < bound:
                a = mid + 1
            else:
                b = mid
        return a, compares

    # -- float-certified location --------------------------------------

    def _needles(self, bound: Fraction) -> Tuple[float, float]:
        """The bound's certification window ``[bf - gap, bf + gap]``.

        A bound whose float view overflows gets an infinite window —
        the whole kernel range becomes the bracket and exact bisection
        decides (probability-scale bounds never hit this; it guards
        adversarial Fractions).
        """
        try:
            bf = bound.numerator / bound.denominator
        except OverflowError:
            return -math.inf, math.inf
        gap = _gap(bf)
        return bf - gap, bf + gap

    def bracket(self, bound: Fraction) -> Tuple[int, int]:
        """``(a, b)`` with the exact insertion point certifiably in it.

        ``a`` counts the values certifiably below the bound; values at
        ``b`` and beyond are certifiably above it.  ``a == b`` means
        the insertion point is certified without exact arithmetic.
        """
        needle_lo, needle_hi = self._needles(bound)
        a = bisect_left(self.hi_env, needle_lo)
        b = bisect_right(self.lo_env, needle_hi)
        # Envelope crossings can make the bracket degenerate (b < a)
        # only through conservative overlap; widen to keep the exact
        # refinement sound.
        return (a, b) if b >= a else (min(a, b), max(a, b))

    def locate(self, bound: Fraction) -> Tuple[int, int]:
        """``(insertion point, exact compares)`` for one bound."""
        a, b = self.bracket(bound)
        if a == b:
            return a, 0
        return self._refine(bound, a, b)

    def locate_batch(
        self, bounds: Sequence[Fraction]
    ) -> Tuple[List[int], int, int, int]:
        """Insertion points for a whole grid of bounds in one pass.

        Returns ``(points, certified, escalated, exact_compares)``:
        how many bounds resolved purely from the float envelopes, how
        many needed exact refinement, and how many exact comparisons
        the refinements performed.  NumPy backend: both envelope
        lookups for *all* bounds are two vectorized ``searchsorted``
        calls; pure-Python backend: two ``bisect`` calls per bound.
        Verdicts are identical either way.
        """
        m = len(self.values)
        points: List[int] = []
        certified = 0
        escalated = 0
        compares = 0
        if self._numpy and m and len(bounds) > 1:
            # The per-bound float views stay a Python loop (exact int
            # division), but the certification windows are array ops —
            # the same IEEE operations as _needles, so identical
            # windows either way.
            floats: List[float] = []
            overflowed: List[int] = []
            for bound in bounds:
                try:
                    floats.append(bound.numerator / bound.denominator)
                except OverflowError:
                    overflowed.append(len(floats))
                    floats.append(0.0)
            bfs = _np.array(floats, dtype=_np.float64)
            gaps = _ENV * (_np.abs(bfs) * REL_EPS + ABS_EPS)
            los = bfs - gaps
            his = bfs + gaps
            for i in overflowed:
                los[i] = -math.inf
                his[i] = math.inf
            a_arr = _np.searchsorted(self.hi_env, los, side="left")
            b_arr = _np.searchsorted(self.lo_env, his, side="right")
            for bound, a, b in zip(bounds, a_arr.tolist(), b_arr.tolist()):
                if b < a:
                    a, b = min(a, b), max(a, b)
                if a == b:
                    certified += 1
                    points.append(a)
                else:
                    escalated += 1
                    point, n = self._refine(bound, a, b)
                    compares += n
                    points.append(point)
            return points, certified, escalated, compares
        for bound in bounds:
            point, n = self.locate(bound)
            if n:
                escalated += 1
                compares += n
            else:
                certified += 1
            points.append(point)
        return points, certified, escalated, compares

    def met_mask(self, point: int) -> int:
        """The met mask of an insertion point (suffix union)."""
        return self.suffix_masks[point]
