"""The ``@`` operators: ``phi@l_i`` and ``phi@alpha``.

Because the current time is part of every local state (synchrony), a
local state ``l_i`` occurs at most once per run; and because the
actions we analyse are proper, an action ``alpha`` occurs at most once
per run.  This makes the following two *run facts* well defined
(paper, Sections 3 and 3.1):

* ``phi@l_i`` — true in run ``r`` iff ``l_i`` occurs in ``r`` and
  ``phi`` holds at the (unique) point of ``r`` where ``r_i(t) = l_i``;
* ``phi@alpha`` — true in run ``r`` iff ``alpha`` is performed in
  ``r`` and ``phi`` holds at the (unique) point of performance.

The shorthand ``alpha@l_i`` used throughout the paper's appendix is
``at_local_state(does_(i, alpha), i, l_i)`` and is provided directly as
:func:`action_at_local_state`.
"""

from __future__ import annotations

from .engine import SystemIndex
from .errors import ImproperActionError
from .facts import Fact, RunFact
from .pps import PPS, Action, AgentId, LocalState, Run

__all__ = [
    "AtLocalState",
    "AtAction",
    "at_local_state",
    "at_action",
    "action_at_local_state",
]


class AtLocalState(RunFact):
    """The run fact ``phi@l_i``."""

    def __init__(self, phi: Fact, agent: AgentId, local: LocalState) -> None:
        self.phi = phi
        self.agent = agent
        self.local = local
        self.label = f"({phi.label})@[{agent}:{local}]"

    def _structure(self):
        return (self.phi.structural_key(), self.agent, self.local)

    def _action_dependence(self) -> bool:
        # The @l_i anchor is a state condition; only phi can look at
        # actions.  (AtAction, by contrast, is inherently action-bound
        # and keeps the base-class True.)
        return self.phi.mentions_actions()

    def holds(self, pps: PPS, run: Run, t: int) -> bool:
        # Synchrony: the local state has one possible occurrence time
        # system-wide, so a single point check replaces the time scan.
        time = SystemIndex.of(pps).occurrence_time(self.agent, self.local)
        if time is None or time >= run.length:
            return False
        if run.local(self.agent, time) != self.local:
            return False
        return self.phi.holds(pps, run, time)


# repro: allow[RP002] names an action by construction: the conservative
# mentions_actions default (True) is exactly right.
class AtAction(RunFact):
    """The run fact ``phi@alpha`` for a proper action ``alpha``."""

    def __init__(self, phi: Fact, agent: AgentId, action: Action) -> None:
        self.phi = phi
        self.agent = agent
        self.action = action
        self.label = f"({phi.label})@[{agent} does {action}]"

    def _structure(self):
        return (self.phi.structural_key(), self.agent, self.action)

    def holds(self, pps: PPS, run: Run, t: int) -> bool:
        times = SystemIndex.of(pps).performance_times(
            self.agent, self.action
        ).get(run.index)
        if not times:
            return False
        if len(times) > 1:
            raise ImproperActionError(
                f"phi@alpha is undefined: {self.action!r} occurs "
                f"{len(times)} times in run {run.index}"
            )
        return self.phi.holds(pps, run, times[0])


def at_local_state(phi: Fact, agent: AgentId, local: LocalState) -> AtLocalState:
    """The run fact that ``phi`` holds when ``agent`` is in ``local``."""
    return AtLocalState(phi, agent, local)


def at_action(phi: Fact, agent: AgentId, action: Action) -> AtAction:
    """The run fact that ``phi`` holds when ``agent`` performs ``action``."""
    return AtAction(phi, agent, action)


def action_at_local_state(agent: AgentId, action: Action, local: LocalState) -> AtLocalState:
    """The run fact ``alpha@l_i``: the action is performed at ``local``.

    This is the paper's shorthand for ``does_i(alpha)@l_i`` and equals
    (as an event) the cell ``Q^{l_i}`` of the action-state partition.
    """
    from .atoms import does_  # local import to avoid a cycle

    return AtLocalState(does_(agent, action), agent, local)
