"""Atomic facts.

These are the primitive predicates from which conditions of interest
are assembled:

* :func:`does_` — agent ``i`` is currently performing action ``alpha``
  (the paper's ``does_i(alpha)``; transient);
* :func:`performed` — the run fact ``alpha``: "``alpha`` is performed
  at some point of the current run";
* :func:`local_state_occurs` — the run fact ``l_i``: "agent ``i`` is in
  local state ``l_i`` at some point of the current run";
* :func:`state_fact` / :func:`local_fact` / :func:`env_fact` —
  transient facts determined by the current global state (these are
  automatically *past-based* in the sense of Section 4, since runs that
  agree up to time ``t`` share the time-``t`` global state);
* :data:`TRUE` and :data:`FALSE`.
"""

from __future__ import annotations

from typing import Callable, Hashable

from .engine import SystemIndex
from .facts import Fact, RunFact
from .pps import PPS, Action, AgentId, GlobalState, LocalState, Run

__all__ = [
    "TRUE",
    "FALSE",
    "does_",
    "performed",
    "local_state_occurs",
    "state_fact",
    "local_fact",
    "env_fact",
    "at_time",
]


class _Constant(RunFact):
    def __init__(self, value: bool) -> None:
        self._value = value
        self.label = "true" if value else "false"

    def _structure(self):
        return (self._value,)

    def _action_dependence(self) -> bool:
        return False

    def holds(self, pps: PPS, run: Run, t: int) -> bool:
        return self._value


TRUE: RunFact = _Constant(True)
"""The fact that holds at every point of every system."""

FALSE: RunFact = _Constant(False)
"""The fact that holds at no point of any system."""


# repro: allow[RP002] action atom: the conservative mentions_actions
# default (True) is exactly right for does_i(alpha).
class Does(Fact):
    """The transient fact ``does_i(alpha)``.

    True at ``(r, t)`` exactly when the action recorded on the edge
    from ``r(t)`` to ``r(t + 1)`` for agent ``i`` is ``alpha``
    (equivalently, when the environment history at ``r_e(t + 1)``
    records the performance — see the paper's Section 2.3).
    """

    def __init__(self, agent: AgentId, action: Action) -> None:
        self.agent = agent
        self.action = action
        self.label = f"does[{agent}]({action})"

    def _structure(self):
        return (self.agent, self.action)

    def holds(self, pps: PPS, run: Run, t: int) -> bool:
        return run.action_of(self.agent, t) == self.action

    def engine_mask(self, index, t):
        # The (agent, action) tables already hold the performing runs
        # per time: no per-point scan needed.  The run-mask universe
        # (t is None) evaluates transient facts at time 0.
        return index.performing_at(self.agent, self.action, 0 if t is None else t)


def does_(agent: AgentId, action: Action) -> Does:
    """The transient fact that ``agent`` is currently performing ``action``."""
    return Does(agent, action)


# repro: allow[RP002] action atom: the conservative mentions_actions
# default (True) is exactly right for a performed-action fact.
class Performed(RunFact):
    """The run fact ``alpha``: the action occurs somewhere in the run."""

    def __init__(self, agent: AgentId, action: Action) -> None:
        self.agent = agent
        self.action = action
        self.label = f"performed[{agent}]({action})"

    def _structure(self):
        return (self.agent, self.action)

    def holds(self, pps: PPS, run: Run, t: int) -> bool:
        mask = SystemIndex.of(pps).performing_mask(self.agent, self.action)
        return bool((mask >> run.index) & 1)

    def engine_mask(self, index, t):
        # A run fact: the same performing mask at every slice,
        # restricted to the alive runs of the slice.
        mask = index.performing_mask(self.agent, self.action)
        if t is None:
            return mask
        return mask & index.alive_mask(t)


def performed(agent: AgentId, action: Action) -> Performed:
    """The run fact that ``agent`` performs ``action`` in the current run."""
    return Performed(agent, action)


class LocalStateOccurs(RunFact):
    """The run fact ``l_i``: agent ``i`` passes through local state ``l_i``."""

    def __init__(self, agent: AgentId, local: LocalState) -> None:
        self.agent = agent
        self.local = local
        self.label = f"occurs[{agent}]({local})"

    def _structure(self):
        return (self.agent, self.local)

    def _action_dependence(self) -> bool:
        return False

    def holds(self, pps: PPS, run: Run, t: int) -> bool:
        # Synchrony: one possible occurrence time system-wide.
        time = SystemIndex.of(pps).occurrence_time(self.agent, self.local)
        if time is None or time >= run.length:
            return False
        return run.local(self.agent, time) == self.local


def local_state_occurs(agent: AgentId, local: LocalState) -> LocalStateOccurs:
    """The run fact that ``agent`` is in ``local`` at some point of the run."""
    return LocalStateOccurs(agent, local)


class StateFact(Fact):
    """A transient fact determined by the current global state.

    Such facts are always past-based (runs agreeing up to ``t`` agree
    on ``r(t)``), so by the paper's Lemma 4.3(b) they are local-state
    independent of every proper action.
    """

    def __init__(
        self, predicate: Callable[[GlobalState], bool], label: str = "state-fact"
    ) -> None:
        self._predicate = predicate
        self.label = label

    def _structure(self):
        # Keyed on the predicate object: the same callable wrapped
        # twice is the same fact; distinct closures stay distinct.
        return (self._predicate,)

    def _action_dependence(self) -> bool:
        # The predicate only ever sees the current global state.
        return False

    def holds(self, pps: PPS, run: Run, t: int) -> bool:
        return self._predicate(run.state(t))


def state_fact(
    predicate: Callable[[GlobalState], bool], label: str = "state-fact"
) -> StateFact:
    """A transient fact from a predicate on the current global state."""
    return StateFact(predicate, label)


def local_fact(
    agent: AgentId,
    predicate: Callable[[LocalState], bool],
    label: str = "local-fact",
) -> Fact:
    """A transient fact from a predicate on ``agent``'s current local state."""

    class _LocalFact(Fact):
        def __init__(self) -> None:
            self.label = f"{label}[{agent}]"

        def _structure(self):
            return (agent, predicate)

        def _action_dependence(self) -> bool:
            # The predicate only ever sees the agent's local state.
            return False

        def holds(self, pps: PPS, run: Run, t: int) -> bool:
            return predicate(run.local(agent, t))

    return _LocalFact()


def env_fact(
    predicate: Callable[[Hashable], bool], label: str = "env-fact"
) -> StateFact:
    """A transient fact from a predicate on the environment's local state."""
    return StateFact(lambda state: predicate(state.env), label)


class AtTime(Fact):
    """The transient fact "the current time is ``t0``"."""

    def __init__(self, t0: int) -> None:
        self.t0 = t0
        self.label = f"time={t0}"

    def _structure(self):
        return (self.t0,)

    def _action_dependence(self) -> bool:
        return False

    def holds(self, pps: PPS, run: Run, t: int) -> bool:
        return t == self.t0


def at_time(t0: int) -> AtTime:
    """The transient fact that the current time equals ``t0``."""
    return AtTime(t0)
