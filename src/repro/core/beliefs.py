"""Subjective probabilistic beliefs.

Agent ``i``'s degree of belief in a fact ``phi`` at a point ``(r, t)``
is the posterior probability obtained by conditioning the prior
``mu_T`` on the agent's local state (paper, Definition 3.1)::

    beta_i(phi) at (r, t)  =  mu_T(phi@l_i | l_i),   l_i = r_i(t)

This is the notion Halpern and Tuttle call ``P_post``.  Because every
run of a pps has positive probability, ``mu_T(l_i) > 0`` for every
local state occurring in the tree, so the posterior is always defined.

The module also implements the random variable ``beta_i(phi)@alpha``
(the belief held at the moment a proper action is performed, zero by
convention in runs where the action is not performed) and the derived
threshold events used in Sections 5 and 7.
"""

from __future__ import annotations

from typing import Callable, Dict

from .engine import SystemIndex
from .facts import Fact
from .measure import Event
from .numeric import ZERO, Probability, ProbabilityLike, as_fraction
from .pps import PPS, Action, AgentId, LocalState, Run
from .actions import ensure_proper, performance_time

__all__ = [
    "occurrence_event",
    "belief",
    "belief_at",
    "belief_at_action",
    "belief_profile",
    "belief_random_variable",
    "threshold_met_event",
    "threshold_met_measure",
]


def occurrence_event(pps: PPS, agent: AgentId, local: LocalState) -> Event:
    """The event "``agent`` is in ``local`` at some point of the run"."""
    index = SystemIndex.of(pps)
    return index.event_of(index.occurrence_mask(agent, local))


def belief(pps: PPS, agent: AgentId, phi: Fact, local: LocalState) -> Probability:
    """``mu_T(phi@l | l)`` — the belief held at local state ``local``.

    Memoized per (agent, fact structural key, local state) on the
    system index, so evaluating the same belief at many points (as the
    ``B_i^p`` and common-belief operators do) — or rebuilding an equal
    fact across sweep rows — costs one posterior.

    Raises:
        UnknownLocalStateError: when ``local`` never occurs for the
            agent (the posterior would condition on a null event).
    """
    return SystemIndex.of(pps).belief(agent, phi, local)


def belief_at(pps: PPS, agent: AgentId, phi: Fact, run: Run, t: int) -> Probability:
    """``beta_i(phi)`` evaluated at the point ``(run, t)``."""
    return belief(pps, agent, phi, run.local(agent, t))


def belief_at_action(
    pps: PPS, agent: AgentId, phi: Fact, action: Action, run: Run
) -> Probability:
    """The random variable ``(beta_i(phi)@alpha)[r]``.

    By the paper's convention this is 0 for runs in which the action is
    not performed.
    """
    t = performance_time(pps, agent, action, run)
    if t is None:
        return ZERO
    return belief_at(pps, agent, phi, run, t)


def belief_profile(
    pps: PPS, agent: AgentId, phi: Fact
) -> Dict[LocalState, Probability]:
    """The belief in ``phi`` at every local state of the agent."""
    return {
        local: belief(pps, agent, phi, local)
        for local in pps.local_states(agent)
    }


def belief_random_variable(
    pps: PPS, agent: AgentId, phi: Fact, action: Action
) -> Callable[[Run], Probability]:
    """``beta_i(phi)@alpha`` as a function of the run.

    The action must be proper; belief values are cached per local state
    so evaluating the variable over all runs costs one posterior
    computation per state in ``L_i[alpha]``.
    """
    ensure_proper(pps, agent, action)
    cache: Dict[LocalState, Probability] = {}

    def variable(run: Run) -> Probability:
        t = performance_time(pps, agent, action, run)
        if t is None:
            return ZERO
        local = run.local(agent, t)
        if local not in cache:
            cache[local] = belief(pps, agent, phi, local)
        return cache[local]

    return variable


def _threshold_met_mask(
    pps: PPS,
    agent: AgentId,
    phi: Fact,
    action: Action,
    threshold: ProbabilityLike,
) -> int:
    """Mask of performing runs whose acting belief meets the bound.

    Decided per acting local state (one cached posterior per state in
    ``L_i[alpha]``), not per run.
    """
    ensure_proper(pps, agent, action)
    bound = as_fraction(threshold)
    index = SystemIndex.of(pps)
    met = 0
    for local, cell in index.state_cells(agent, action).items():
        if index.belief(agent, phi, local) >= bound:
            met |= cell
    return met


def threshold_met_event(
    pps: PPS,
    agent: AgentId,
    phi: Fact,
    action: Action,
    threshold: ProbabilityLike,
) -> Event:
    """Runs of ``R_alpha`` where ``beta_i(phi)@alpha >= threshold``."""
    index = SystemIndex.of(pps)
    return index.event_of(_threshold_met_mask(pps, agent, phi, action, threshold))


def threshold_met_measure(
    pps: PPS,
    agent: AgentId,
    phi: Fact,
    action: Action,
    threshold: ProbabilityLike,
) -> Probability:
    """``mu_T(beta_i(phi)@alpha >= threshold | alpha)``."""
    met = _threshold_met_mask(pps, agent, phi, action, threshold)
    index = SystemIndex.of(pps)
    return index.conditional(met, index.performing_mask(agent, action))
