"""Subjective probabilistic beliefs.

Agent ``i``'s degree of belief in a fact ``phi`` at a point ``(r, t)``
is the posterior probability obtained by conditioning the prior
``mu_T`` on the agent's local state (paper, Definition 3.1)::

    beta_i(phi) at (r, t)  =  mu_T(phi@l_i | l_i),   l_i = r_i(t)

This is the notion Halpern and Tuttle call ``P_post``.  Because every
run of a pps has positive probability, ``mu_T(l_i) > 0`` for every
local state occurring in the tree, so the posterior is always defined.

The module also implements the random variable ``beta_i(phi)@alpha``
(the belief held at the moment a proper action is performed, zero by
convention in runs where the action is not performed) and the derived
threshold events used in Sections 5 and 7.
"""

from __future__ import annotations

from typing import Callable, Dict

from .at_operators import at_local_state
from .errors import UnknownLocalStateError
from .facts import Fact, runs_satisfying
from .measure import Event, conditional, event_where
from .numeric import ZERO, Probability, ProbabilityLike, as_fraction
from .pps import PPS, Action, AgentId, LocalState, Run
from .actions import ensure_proper, performance_time, performing_runs

__all__ = [
    "occurrence_event",
    "belief",
    "belief_at",
    "belief_at_action",
    "belief_profile",
    "belief_random_variable",
    "threshold_met_event",
    "threshold_met_measure",
]


def occurrence_event(pps: PPS, agent: AgentId, local: LocalState) -> Event:
    """The event "``agent`` is in ``local`` at some point of the run"."""
    return event_where(
        pps, lambda run: any(run.local(agent, t) == local for t in run.times())
    )


def belief(pps: PPS, agent: AgentId, phi: Fact, local: LocalState) -> Probability:
    """``mu_T(phi@l | l)`` — the belief held at local state ``local``.

    Raises:
        UnknownLocalStateError: when ``local`` never occurs for the
            agent (the posterior would condition on a null event).
    """
    occurs = occurrence_event(pps, agent, local)
    if not occurs:
        raise UnknownLocalStateError(
            f"local state {local!r} of agent {agent!r} never occurs in {pps.name}"
        )
    phi_at_local = runs_satisfying(pps, at_local_state(phi, agent, local))
    return conditional(pps, phi_at_local, occurs)


def belief_at(pps: PPS, agent: AgentId, phi: Fact, run: Run, t: int) -> Probability:
    """``beta_i(phi)`` evaluated at the point ``(run, t)``."""
    return belief(pps, agent, phi, run.local(agent, t))


def belief_at_action(
    pps: PPS, agent: AgentId, phi: Fact, action: Action, run: Run
) -> Probability:
    """The random variable ``(beta_i(phi)@alpha)[r]``.

    By the paper's convention this is 0 for runs in which the action is
    not performed.
    """
    t = performance_time(pps, agent, action, run)
    if t is None:
        return ZERO
    return belief_at(pps, agent, phi, run, t)


def belief_profile(
    pps: PPS, agent: AgentId, phi: Fact
) -> Dict[LocalState, Probability]:
    """The belief in ``phi`` at every local state of the agent."""
    return {
        local: belief(pps, agent, phi, local)
        for local in pps.local_states(agent)
    }


def belief_random_variable(
    pps: PPS, agent: AgentId, phi: Fact, action: Action
) -> Callable[[Run], Probability]:
    """``beta_i(phi)@alpha`` as a function of the run.

    The action must be proper; belief values are cached per local state
    so evaluating the variable over all runs costs one posterior
    computation per state in ``L_i[alpha]``.
    """
    ensure_proper(pps, agent, action)
    cache: Dict[LocalState, Probability] = {}

    def variable(run: Run) -> Probability:
        t = performance_time(pps, agent, action, run)
        if t is None:
            return ZERO
        local = run.local(agent, t)
        if local not in cache:
            cache[local] = belief(pps, agent, phi, local)
        return cache[local]

    return variable


def threshold_met_event(
    pps: PPS,
    agent: AgentId,
    phi: Fact,
    action: Action,
    threshold: ProbabilityLike,
) -> Event:
    """Runs of ``R_alpha`` where ``beta_i(phi)@alpha >= threshold``."""
    bound = as_fraction(threshold)
    variable = belief_random_variable(pps, agent, phi, action)
    performing = performing_runs(pps, agent, action)
    return frozenset(
        index for index in performing if variable(pps.runs[index]) >= bound
    )


def threshold_met_measure(
    pps: PPS,
    agent: AgentId,
    phi: Fact,
    action: Action,
    threshold: ProbabilityLike,
) -> Probability:
    """``mu_T(beta_i(phi)@alpha >= threshold | alpha)``."""
    met = threshold_met_event(pps, agent, phi, action, threshold)
    performing = performing_runs(pps, agent, action)
    return conditional(pps, met, performing)
