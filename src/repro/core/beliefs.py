"""Subjective probabilistic beliefs.

Agent ``i``'s degree of belief in a fact ``phi`` at a point ``(r, t)``
is the posterior probability obtained by conditioning the prior
``mu_T`` on the agent's local state (paper, Definition 3.1)::

    beta_i(phi) at (r, t)  =  mu_T(phi@l_i | l_i),   l_i = r_i(t)

This is the notion Halpern and Tuttle call ``P_post``.  Because every
run of a pps has positive probability, ``mu_T(l_i) > 0`` for every
local state occurring in the tree, so the posterior is always defined.

The module also implements the random variable ``beta_i(phi)@alpha``
(the belief held at the moment a proper action is performed, zero by
convention in runs where the action is not performed) and the derived
threshold events used in Sections 5 and 7.

Every entry point takes a ``numeric=`` knob (default ``"exact"``,
behaviour unchanged): ``"auto"`` routes posteriors and measures
through the two-tier kernel (:mod:`repro.core.lazyprob`) — threshold
verdicts are decided in float and escalate to exact arithmetic only
within round-off of the boundary, with *identical* verdicts
guaranteed; ``"float"`` returns raw floats with no guarantee.  See
``docs/numerics.md``.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Dict, List, Tuple

from .engine import SystemIndex
from .facts import Fact
from .lazyprob import (
    ABS_EPS,
    REL_EPS,
    check_numeric_mode,
    count_batch,
    count_comparisons,
)
from .measure import Event
from .numeric import ZERO, Probability, ProbabilityLike, as_fraction
from .pps import PPS, Action, AgentId, LocalState, Run
from .actions import ensure_proper, performance_time

__all__ = [
    "occurrence_event",
    "belief",
    "belief_at",
    "belief_at_action",
    "belief_profile",
    "belief_random_variable",
    "threshold_met_event",
    "threshold_met_measure",
    "threshold_met_measures",
]

# The float filter's constants — imported from lazyprob (one ulp of
# relative headroom per rounded step, 4x inflated, plus a subnormal
# cushion), never restated, so the inlined filter below can't drift
# from LazyProb._cmp's.  Inlined loops exist because the dense
# threshold kernels compare raw (approx, err) fields — one LazyProb
# comparison call per decision would double their cost.
_REL = REL_EPS
_ABS = ABS_EPS


def occurrence_event(pps: PPS, agent: AgentId, local: LocalState) -> Event:
    """The event "``agent`` is in ``local`` at some point of the run"."""
    index = SystemIndex.of(pps)
    return index.event_of(index.occurrence_mask(agent, local))


def belief(
    pps: PPS,
    agent: AgentId,
    phi: Fact,
    local: LocalState,
    *,
    numeric: str = "exact",
) -> Probability:
    """``mu_T(phi@l | l)`` — the belief held at local state ``local``.

    Memoized per (agent, fact structural key, local state) on the
    system index, so evaluating the same belief at many points (as the
    ``B_i^p`` and common-belief operators do) — or rebuilding an equal
    fact across sweep rows — costs one posterior.

    Raises:
        UnknownLocalStateError: when ``local`` never occurs for the
            agent (the posterior would condition on a null event).
    """
    return SystemIndex.of(pps).belief(agent, phi, local, numeric=numeric)


def belief_at(
    pps: PPS,
    agent: AgentId,
    phi: Fact,
    run: Run,
    t: int,
    *,
    numeric: str = "exact",
) -> Probability:
    """``beta_i(phi)`` evaluated at the point ``(run, t)``."""
    return belief(pps, agent, phi, run.local(agent, t), numeric=numeric)


def belief_at_action(
    pps: PPS,
    agent: AgentId,
    phi: Fact,
    action: Action,
    run: Run,
    *,
    numeric: str = "exact",
) -> Probability:
    """The random variable ``(beta_i(phi)@alpha)[r]``.

    By the paper's convention this is 0 for runs in which the action is
    not performed — an exact ``Fraction`` zero in ``"exact"``/``"auto"``
    mode, the float ``0.0`` in ``"float"`` mode.
    """
    t = performance_time(pps, agent, action, run)
    if t is None:
        # repro: allow[RP001] float-mode return value: the caller asked
        # for the float tier, so 0.0 is the contract, not a leak.
        return 0.0 if numeric == "float" else ZERO
    return belief_at(pps, agent, phi, run, t, numeric=numeric)


def belief_profile(
    pps: PPS, agent: AgentId, phi: Fact, *, numeric: str = "exact"
) -> Dict[LocalState, Probability]:
    """The belief in ``phi`` at every local state of the agent."""
    return {
        local: belief(pps, agent, phi, local, numeric=numeric)
        for local in pps.local_states(agent)
    }


def belief_random_variable(
    pps: PPS,
    agent: AgentId,
    phi: Fact,
    action: Action,
    *,
    numeric: str = "exact",
) -> Callable[[Run], Probability]:
    """``beta_i(phi)@alpha`` as a function of the run.

    The action must be proper; belief values are cached per local state
    so evaluating the variable over all runs costs one posterior
    computation per state in ``L_i[alpha]``.
    """
    ensure_proper(pps, agent, action)
    check_numeric_mode(numeric)
    cache: Dict[LocalState, Probability] = {}

    def variable(run: Run) -> Probability:
        t = performance_time(pps, agent, action, run)
        if t is None:
            # repro: allow[RP001] float-mode return value (see above).
            return 0.0 if numeric == "float" else ZERO
        local = run.local(agent, t)
        if local not in cache:
            cache[local] = belief(pps, agent, phi, local, numeric=numeric)
        return cache[local]

    return variable


def _threshold_met_mask(
    pps: PPS,
    agent: AgentId,
    phi: Fact,
    action: Action,
    threshold: ProbabilityLike,
    *,
    numeric: str = "exact",
) -> int:
    """Mask of performing runs whose acting belief meets the bound.

    Decided per acting local state via the sorted threshold kernel
    (:meth:`~repro.core.engine.SystemIndex.threshold_kernel`): the
    acting posteriors are exactly sorted once per (agent, fact,
    action) and each bound costs one bisection — float-certified in
    ``"auto"`` mode, with exact comparisons only when the bound lies
    within round-off of a posterior, so the resulting mask is
    identical to exact mode's on every input.  ``"float"`` keeps the
    per-state scalar pass (raw float verdicts, no guarantee).
    """
    ensure_proper(pps, agent, action)
    check_numeric_mode(numeric)
    bound = as_fraction(threshold)
    index = SystemIndex.of(pps)
    if numeric == "float":
        return _met_mask(
            _acting_lazy_beliefs(index, agent, phi, action), bound, numeric
        )
    kernel = index.threshold_kernel(agent, phi, action)
    if numeric == "exact":
        return kernel.met_mask(kernel.locate_exact(bound))
    point, compares = kernel.locate(bound)
    count_batch(int(compares == 0), int(compares > 0), compares)
    return kernel.met_mask(point)


def _acting_exact_beliefs(
    index: SystemIndex, agent: AgentId, phi: Fact, action: Action
) -> list:
    """(exact posterior, cell mask) rows for the acting states."""
    return [
        (index.belief(agent, phi, local), cell)
        for local, cell in index.state_cells(agent, action).items()
    ]


def _met_mask_exact(beliefs, bound) -> int:
    """The met-mask of one bound over exact (posterior, cell) rows.

    The single source of the exact threshold fold — the single-bound
    and batched-grid paths both use it, so the bound semantics
    (non-strict ``>=``) cannot desynchronize.
    """
    met = 0
    for b, cell in beliefs:
        if b >= bound:
            met |= cell
    return met


def _acting_lazy_beliefs(
    index: SystemIndex, agent: AgentId, phi: Fact, action: Action
):
    """Prepared ``(approx, own-gap, posterior, cell)`` rows per acting state.

    The float view and the posterior's own share of the filter gap are
    hoisted out of the per-bound loops: a dense threshold grid touches
    each row once per bound, and attribute loads would otherwise
    dominate the filter itself.
    """
    rows = []
    for local, cell in index.state_cells(agent, action).items():
        b = index.belief(agent, phi, local, numeric="auto")
        # repro: allow[RP001] inlined LazyProb filter slack: 4*err+abs
        # mirrors the certified bound of the lazyprob tier.
        rows.append((b.approx, 4.0 * b.err + _ABS, b, cell))
    return rows


def _met_mask(beliefs, bound, numeric: str) -> int:
    """The met-mask of one bound over prepared belief rows.

    The float filter is inlined: each per-state verdict costs a float
    subtraction and two compares; only posteriors within the
    uncertainty window of the bound go through the counted, escalating
    ``LazyProb`` comparison.  ``numeric="float"`` takes the raw float
    verdict instead.
    """
    met = 0
    bf = bound.numerator / bound.denominator
    if numeric == "float":
        for approx, _, _, cell in beliefs:
            if approx >= bf:
                met |= cell
        return met
    # repro: allow[RP001] inlined LazyProb filter slack for the bound.
    bound_gap = 4.0 * abs(bf) * _REL
    uncertain = 0
    for approx, own_gap, b, cell in beliefs:
        diff = approx - bf
        gap = own_gap + bound_gap
        if diff > gap:
            met |= cell
        elif diff >= -gap:
            # Uncertainty window: the escalating comparison decides
            # (its own filter re-runs, then exact arithmetic settles)
            # and counts itself in the stats.
            uncertain += 1
            if b >= bound:
                met |= cell
    count_comparisons(len(beliefs) - uncertain)
    return met


def threshold_met_event(
    pps: PPS,
    agent: AgentId,
    phi: Fact,
    action: Action,
    threshold: ProbabilityLike,
    *,
    numeric: str = "exact",
) -> Event:
    """Runs of ``R_alpha`` where ``beta_i(phi)@alpha >= threshold``."""
    index = SystemIndex.of(pps)
    return index.event_of(
        _threshold_met_mask(pps, agent, phi, action, threshold, numeric=numeric)
    )


def threshold_met_measure(
    pps: PPS,
    agent: AgentId,
    phi: Fact,
    action: Action,
    threshold: ProbabilityLike,
    *,
    numeric: str = "exact",
) -> Probability:
    """``mu_T(beta_i(phi)@alpha >= threshold | alpha)``."""
    met = _threshold_met_mask(pps, agent, phi, action, threshold, numeric=numeric)
    index = SystemIndex.of(pps)
    return index.conditional(
        met, index.performing_mask(agent, action), numeric=numeric
    )


def threshold_met_measures(
    pps: PPS,
    agent: AgentId,
    phi: Fact,
    action: Action,
    thresholds,
    *,
    numeric: str = "exact",
    kernel: str = "sorted",
):
    """``mu_T(beta_i(phi)@alpha >= p | alpha)`` for a whole grid of ``p``.

    The batched form of :func:`threshold_met_measure`, built for dense
    threshold sweeps (Sections 5 and 7 grids).  Repeated threshold
    values are deduplicated before evaluation and the results fanned
    back out, so degenerate grids pay per-*distinct*-bound work only;
    measures are memoized per distinct met-mask (at most ``L + 1``
    conditionals for ``L`` acting states), in every mode.

    ``kernel`` selects how the met masks are computed:

    * ``"sorted"`` (the default) — the bisected kernel of
      ``docs/numerics.md``: posteriors exactly sorted once per
      (agent, fact, action) and cached on the index; a grid of ``G``
      distinct bounds costs ``O(G log L)``.  In ``"auto"`` mode the
      whole grid is bracketed by two vectorized envelope searches
      (NumPy backend) and only boundary-straddling bounds escalate —
      one :func:`~repro.core.lazyprob.count_batch` record per call.
    * ``"scalar"`` — the per-bound pass over the unsorted posteriors
      (``O(G * L)``), kept as the benchmark baseline and exercised by
      the parity tests.

    ``numeric="float"`` always takes the scalar pass (raw float
    verdicts carry no certification for the sorted path to preserve).

    Results are element-wise identical to per-bound
    :func:`threshold_met_measure` calls (``"auto"``: identical exact
    values on demand, escalating only within round-off of a bound),
    for either kernel.
    """
    ensure_proper(pps, agent, action)
    check_numeric_mode(numeric)
    if kernel not in ("sorted", "scalar"):
        raise ValueError(
            f"kernel must be 'sorted' or 'scalar', got {kernel!r}"
        )
    index = SystemIndex.of(pps)
    performing = index.performing_mask(agent, action)
    bounds = [as_fraction(threshold) for threshold in thresholds]
    # Dedupe keyed by (numerator, denominator): Fractions are always
    # normalized so the pair is a faithful identity, and int-tuple
    # hashing is far cheaper than Fraction.__hash__ (which computes a
    # modular inverse per call — measurable on dense grids).
    distinct: Dict[Tuple[int, int], int] = {}
    grid: List[Fraction] = []
    slots: List[int] = []
    for bound in bounds:
        key = (bound.numerator, bound.denominator)
        slot = distinct.get(key)
        if slot is None:
            slot = len(grid)
            distinct[key] = slot
            grid.append(bound)
        slots.append(slot)
    measures: Dict[int, object] = {}

    def measure_of(met: int):
        value = measures.get(met)
        if value is None:
            value = index.conditional(met, performing, numeric=numeric)
            measures[met] = value
        return value

    if numeric == "float" or kernel == "scalar":
        if numeric == "exact":
            beliefs = _acting_exact_beliefs(index, agent, phi, action)
            mets = [_met_mask_exact(beliefs, bound) for bound in grid]
        else:
            beliefs = _acting_lazy_beliefs(index, agent, phi, action)
            mets = [_met_mask(beliefs, bound, numeric) for bound in grid]
    else:
        tk = index.threshold_kernel(agent, phi, action)
        if numeric == "exact":
            mets = [tk.met_mask(tk.locate_exact(bound)) for bound in grid]
        else:
            points, certified, escalated, compares = tk.locate_batch(grid)
            count_batch(certified, escalated, compares)
            mets = [tk.met_mask(point) for point in points]
    values = [measure_of(met) for met in mets]
    return [values[slot] for slot in slots]
