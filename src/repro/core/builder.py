"""Fluent construction of pps trees.

:class:`PPSBuilder` exists so that examples, tests, and the paper's
hand-drawn figures can be written down declaratively::

    builder = PPSBuilder(["i"], name="figure-1")
    g0 = builder.initial(1, {"i": (0, "g0")})
    g0.child("1/2", {"i": (1, "after-alpha")}, actions={"i": "alpha"})
    g0.child("1/2", {"i": (1, "after-alpha'")}, actions={"i": "alpha'"})
    system = builder.build()

Probabilities accept ints, ``Fraction``, strings (``"1/2"``, ``"0.1"``)
and floats (coerced through their decimal literal, see
:mod:`repro.core.numeric`).
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Optional, Sequence

from .errors import InvalidSystemError
from .numeric import ONE, ProbabilityLike, as_probability
from .pps import Action, AgentId, GlobalState, LocalState, Node, PPS

__all__ = ["PPSBuilder", "NodeHandle"]


class NodeHandle:
    """A handle onto a node under construction.

    Obtained from :meth:`PPSBuilder.initial` or :meth:`NodeHandle.child`;
    supports adding children and inspecting the wrapped node.
    """

    def __init__(self, builder: "PPSBuilder", node: Node) -> None:
        self._builder = builder
        self.node = node

    def child(
        self,
        prob: ProbabilityLike,
        locals_by_agent: Mapping[AgentId, LocalState],
        *,
        env: Hashable = None,
        actions: Optional[Mapping[AgentId, Action]] = None,
    ) -> "NodeHandle":
        """Add a successor global state reached with probability ``prob``.

        Args:
            prob: the transition probability (must be in ``(0, 1]``).
            locals_by_agent: the local state of every agent at the new
                global state.  Every agent of the system must appear.
            env: the environment's local state (defaults to ``None``;
                the builder disambiguates environment states per depth
                automatically only if you leave all of them ``None`` —
                otherwise supply your own).
            actions: the joint action performed at the parent state
                that produced this transition, as a mapping from agent
                name to action.  May include a subset of agents.

        Returns:
            a handle onto the new node.
        """
        return self._builder._add_child(self, prob, locals_by_agent, env, actions)

    def chain(
        self,
        locals_by_agent: Mapping[AgentId, LocalState],
        *,
        env: Hashable = None,
        actions: Optional[Mapping[AgentId, Action]] = None,
    ) -> "NodeHandle":
        """Add a probability-one successor (a deterministic step)."""
        return self.child(ONE, locals_by_agent, env=env, actions=actions)

    @property
    def time(self) -> int:
        return self.node.time


class PPSBuilder:
    """Incrementally build a :class:`~repro.core.pps.PPS`.

    Args:
        agents: agent names; the order fixes the ``locals`` tuple layout.
        name: a label for reports.
    """

    def __init__(self, agents: Sequence[AgentId], *, name: str = "pps") -> None:
        self.agents = tuple(agents)
        self.name = name
        self._next_uid = 0
        self._root = Node(uid=self._take_uid(), depth=0, state=None)
        self._built = False

    def _take_uid(self) -> int:
        uid = self._next_uid
        self._next_uid += 1
        return uid

    def _make_state(
        self, locals_by_agent: Mapping[AgentId, LocalState], env: Hashable
    ) -> GlobalState:
        missing = [agent for agent in self.agents if agent not in locals_by_agent]
        if missing:
            raise InvalidSystemError(
                f"missing local states for agents {missing} "
                f"(system agents: {list(self.agents)})"
            )
        extra = [agent for agent in locals_by_agent if agent not in self.agents]
        if extra:
            raise InvalidSystemError(f"unknown agents {extra} in state definition")
        return GlobalState(
            env=env, locals=tuple(locals_by_agent[agent] for agent in self.agents)
        )

    def initial(
        self,
        prob: ProbabilityLike,
        locals_by_agent: Mapping[AgentId, LocalState],
        *,
        env: Hashable = None,
    ) -> NodeHandle:
        """Add an initial global state chosen with probability ``prob``."""
        handle = NodeHandle(self, self._root)
        return self._add_child(handle, prob, locals_by_agent, env, None)

    def _add_child(
        self,
        parent: NodeHandle,
        prob: ProbabilityLike,
        locals_by_agent: Mapping[AgentId, LocalState],
        env: Hashable,
        actions: Optional[Mapping[AgentId, Action]],
    ) -> NodeHandle:
        probability = as_probability(prob, allow_zero=False)
        state = self._make_state(locals_by_agent, env)
        node = Node(
            uid=self._take_uid(),
            depth=parent.node.depth + 1,
            state=state,
            prob_from_parent=probability,
            via_action=dict(actions) if actions is not None else None,
            parent=parent.node,
        )
        parent.node.children.append(node)
        return NodeHandle(self, node)

    def build(self, *, validate: bool = True) -> PPS:
        """Finalize and validate the system.

        The builder may only be built once; reusing it afterwards raises
        :class:`~repro.core.errors.InvalidSystemError` to prevent
        accidental aliasing of mutable tree nodes between systems.
        """
        if self._built:
            raise InvalidSystemError("builder already built; create a new one")
        self._built = True
        return PPS(self.agents, self._root, name=self.name, validate=validate)
