"""Probabilistic belief operators and common p-belief (Monderer–Samet).

The paper's related-work section points to Monderer and Samet's notion
of *common p-belief* as the probabilistic analogue of common knowledge.
We provide:

* :class:`Believes` — the transient fact ``B_i^p(phi)``:
  ``beta_i(phi) >= p`` at the current point;
* :class:`EveryoneBelieves` — ``E_G^p(phi)``: every agent of the group
  p-believes ``phi``;
* :func:`common_belief_points` — the points at which ``phi`` is common
  p-belief, computed by the standard decreasing fixpoint
  ``F_1 = E^p(phi)``, ``F_{n+1} = E^p(phi & F_n)`` which stabilizes on
  finite systems;
* :class:`CommonBelief` — the same as a :class:`~repro.core.facts.Fact`.

In the coordinated-attack example this machinery lets one observe how
strong a shared belief the agents can actually attain under message
loss (they never attain common knowledge, but they do attain common
p-belief for p bounded by the channel reliability).
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Set, Tuple

from .beliefs import belief_at
from .engine import SystemIndex, bits
from .facts import Fact
from .numeric import Probability, ProbabilityLike, as_fraction
from .pps import PPS, AgentId, Run

__all__ = [
    "Believes",
    "believes",
    "EveryoneBelieves",
    "everyone_believes",
    "common_belief_points",
    "CommonBelief",
    "common_belief",
]

Point = Tuple[int, int]


class Believes(Fact):
    """The transient fact ``B_i^p(phi)``: belief in ``phi`` is at least ``p``."""

    def __init__(self, agent: AgentId, phi: Fact, level: ProbabilityLike) -> None:
        self.agent = agent
        self.phi = phi
        self.level = as_fraction(level)
        self.label = f"B[{agent}]>={self.level}({phi.label})"

    def _structure(self):
        return (self.agent, self.phi.structural_key(), self.level)

    def _action_dependence(self) -> bool:
        # Posteriors condition on information cells (label-independent);
        # only phi itself can look at actions.
        return self.phi.mentions_actions()

    def holds(self, pps: PPS, run: Run, t: int) -> bool:
        return belief_at(pps, self.agent, self.phi, run, t) >= self.level


def believes(agent: AgentId, phi: Fact, level: ProbabilityLike) -> Believes:
    """The fact that the agent's degree of belief in ``phi`` is >= ``level``."""
    return Believes(agent, phi, level)


class EveryoneBelieves(Fact):
    """The transient fact ``E_G^p(phi)``."""

    def __init__(
        self, agents: Iterable[AgentId], phi: Fact, level: ProbabilityLike
    ) -> None:
        self.agents = tuple(agents)
        self.phi = phi
        self.level = as_fraction(level)
        self.label = f"E[{','.join(self.agents)}]>={self.level}({phi.label})"

    def _structure(self):
        return (self.agents, self.phi.structural_key(), self.level)

    def _action_dependence(self) -> bool:
        return self.phi.mentions_actions()

    def holds(self, pps: PPS, run: Run, t: int) -> bool:
        return all(
            Believes(agent, self.phi, self.level).holds(pps, run, t)
            for agent in self.agents
        )


def everyone_believes(
    agents: Iterable[AgentId], phi: Fact, level: ProbabilityLike
) -> EveryoneBelieves:
    """The fact that every agent in the group p-believes ``phi``."""
    return EveryoneBelieves(agents, phi, level)


# repro: allow[RP002] extensional and system-specific by design:
# identity keying is intended (point sets never transfer across trees),
# only the action-dependence override matters.
class _PointSetFact(Fact):
    """A fact defined extensionally by a set of points (internal)."""

    def __init__(self, points: Set[Point], label: str = "point-set") -> None:
        self._points = points
        self.label = label

    def _action_dependence(self) -> bool:
        # Extensional: truth is a function of (run index, time) alone.
        return False

    def holds(self, pps: PPS, run: Run, t: int) -> bool:
        return (run.index, t) in self._points


def _everyone_believes_mask(
    index: SystemIndex,
    group: Sequence[AgentId],
    phi: Fact,
    p: Probability,
    t: int,
    *,
    memo: bool = True,
) -> int:
    """The mask of time-``t`` runs at which ``E_G^p(phi)`` holds.

    Decided cell-by-cell from one truth mask per slice: ``phi`` is
    evaluated once for the whole time slice, and each information
    cell's posterior reduces to the kernel inequality
    ``mu(cell & phi) >= p * mu(cell)`` — no per-(agent, cell)
    re-evaluation of the fact.  ``memo=False`` skips the slice-mask
    cache, used for the single-use refinement facts of the fixpoint.
    """
    result = index.alive_mask(t)
    if not result:
        return 0
    holds = index.holds_mask_at(phi, t, memo=memo)
    for agent in group:
        agent_mask = 0
        for cell in index.partition(agent, t).values():
            if index.probability(cell & holds) >= p * index.probability(cell):
                agent_mask |= cell
        result &= agent_mask
        if not result:
            break
    return result


def common_belief_points(
    pps: PPS,
    agents: Iterable[AgentId],
    phi: Fact,
    level: ProbabilityLike,
    *,
    max_iterations: int = 1000,
) -> Set[Point]:
    """All points at which ``phi`` is common p-belief among ``agents``.

    Iterates ``F_1 = E^p(phi)``, ``F_{n+1} = E^p(phi & F_n)`` to its
    fixpoint; the sequence is decreasing over a finite point set, so it
    terminates (``max_iterations`` is a safety net, not a tuning knob).
    Each iteration is evaluated one time slice at a time through the
    index's partition tables and belief cache.
    """
    group = tuple(agents)
    p = as_fraction(level)
    index = SystemIndex.of(pps)
    times = range(index.max_time + 1)
    current: Set[Point] = {
        (run_index, t)
        for t in times
        for run_index in bits(_everyone_believes_mask(index, group, phi, p, t))
    }
    for _ in range(max_iterations):
        refined_target = phi & _PointSetFact(current)
        refined: Set[Point] = {
            (run_index, t)
            for t in times
            for run_index in bits(
                _everyone_believes_mask(
                    index, group, refined_target, p, t, memo=False
                )
            )
            if (run_index, t) in current
        }
        if refined == current:
            return current
        current = refined
    return current


class CommonBelief(Fact):
    """The transient fact ``C_G^p(phi)`` (cached per system)."""

    def __init__(
        self, agents: Iterable[AgentId], phi: Fact, level: ProbabilityLike
    ) -> None:
        self.agents = tuple(agents)
        self.phi = phi
        self.level = as_fraction(level)
        self.label = f"C[{','.join(self.agents)}]>={self.level}({phi.label})"
        self._cache: Dict[int, Set[Point]] = {}

    def _structure(self):
        return (self.agents, self.phi.structural_key(), self.level)

    def _action_dependence(self) -> bool:
        return self.phi.mentions_actions()

    def holds(self, pps: PPS, run: Run, t: int) -> bool:
        key = id(pps)
        if key not in self._cache:
            self._cache[key] = common_belief_points(
                pps, self.agents, self.phi, self.level
            )
        return (run.index, t) in self._cache[key]


def common_belief(
    agents: Iterable[AgentId], phi: Fact, level: ProbabilityLike
) -> CommonBelief:
    """The fact that ``phi`` is common p-belief among ``agents``."""
    return CommonBelief(agents, phi, level)
