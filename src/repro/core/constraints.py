"""Probabilistic constraints on actions (paper, Definition 3.2).

A probabilistic constraint is a statement of the form::

    mu_T(phi@alpha | alpha) >= p

— "when the action ``alpha`` is performed, the condition ``phi`` should
hold with probability at least ``p``".  For facts about runs this
reduces to the simpler ``mu_T(phi | alpha) >= p``.

:class:`ProbabilisticConstraint` packages the four ingredients
(agent, action, condition, threshold) and exposes the quantities the
paper studies about them: the actual achieved probability, whether the
constraint is satisfied, the measure of runs in which the agent's
belief meets the threshold when acting, and the expected degree of
belief.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Optional

from .actions import ensure_proper, performing_runs
from .beliefs import threshold_met_event, threshold_met_measure
from .engine import SystemIndex
from .facts import Fact
from .independence import is_local_state_independent
from .measure import Event
from .numeric import Probability, ProbabilityLike, as_fraction
from .pps import PPS, Action, AgentId

__all__ = ["ProbabilisticConstraint", "achieved_probability"]


def achieved_probability(
    pps: PPS, agent: AgentId, phi: Fact, action: Action, *, numeric: str = "exact"
) -> Probability:
    """``mu_T(phi@alpha | alpha)`` for a proper action.

    ``numeric="auto"`` returns the measure as an int-pair
    :class:`~repro.core.lazyprob.LazyProb` (identical exact value on
    demand, float-filtered comparisons); ``"float"`` a bare float.

    Raises:
        ImproperActionError: when the action is not proper in ``pps``.
    """
    ensure_proper(pps, agent, action)
    index = SystemIndex.of(pps)
    satisfied = index.phi_at_action_mask(agent, phi, action)
    return index.conditional(
        satisfied, index.performing_mask(agent, action), numeric=numeric
    )


@dataclass
class ProbabilisticConstraint:
    """The constraint ``mu_T(phi@alpha | alpha) >= threshold``.

    Attributes:
        agent: the acting agent ``i``.
        action: the proper action ``alpha``.
        phi: the condition that should hold when the action is taken.
        threshold: the required probability ``p`` (coerced to an exact
            rational on construction).
        name: optional label used in reports.
    """

    agent: AgentId
    action: Action
    phi: Fact
    threshold: Probability
    name: str = "constraint"

    def __post_init__(self) -> None:
        self.threshold = as_fraction(self.threshold)
        if not (0 <= self.threshold <= 1):
            raise ValueError(f"threshold {self.threshold} outside [0, 1]")

    # ------------------------------------------------------------------

    def actual(self, pps: PPS, *, numeric: str = "exact") -> Probability:
        """The achieved probability ``mu_T(phi@alpha | alpha)``."""
        return achieved_probability(
            pps, self.agent, self.phi, self.action, numeric=numeric
        )

    def satisfied(self, pps: PPS, *, numeric: str = "exact") -> bool:
        """Whether the system meets the constraint.

        Identical verdict in ``"exact"`` and ``"auto"`` mode; ``"auto"``
        pays exact arithmetic only when the achieved probability lies
        within round-off of the threshold.
        """
        return self.actual(pps, numeric=numeric) >= self.threshold

    def margin(self, pps: PPS, *, numeric: str = "exact") -> Probability:
        """``actual - threshold`` (negative when violated)."""
        return self.actual(pps, numeric=numeric) - self.threshold

    # ------------------------------------------------------------------

    def independent(self, pps: PPS, *, numeric: str = "exact") -> bool:
        """Whether ``phi`` is local-state independent of the action."""
        return is_local_state_independent(
            pps, self.phi, self.agent, self.action, numeric=numeric
        )

    def performing_event(self, pps: PPS) -> Event:
        """The event ``R_alpha``."""
        return performing_runs(pps, self.agent, self.action)

    def threshold_met_event(
        self,
        pps: PPS,
        threshold: Optional[ProbabilityLike] = None,
        *,
        numeric: str = "exact",
    ) -> Event:
        """Runs of ``R_alpha`` where the acting belief meets ``threshold``.

        Defaults to the constraint's own threshold.
        """
        bound = self.threshold if threshold is None else as_fraction(threshold)
        return threshold_met_event(
            pps, self.agent, self.phi, self.action, bound, numeric=numeric
        )

    def threshold_met_measure(
        self,
        pps: PPS,
        threshold: Optional[ProbabilityLike] = None,
        *,
        numeric: str = "exact",
    ) -> Probability:
        """``mu_T(beta_i(phi)@alpha >= threshold | alpha)``."""
        bound = self.threshold if threshold is None else as_fraction(threshold)
        return threshold_met_measure(
            pps, self.agent, self.phi, self.action, bound, numeric=numeric
        )

    def expected_belief(self, pps: PPS, *, numeric: str = "exact") -> Probability:
        """``E[beta_i(phi)@alpha | alpha]`` (Definition 6.1)."""
        from .expectation import expected_belief  # avoid import cycle

        return expected_belief(
            pps, self.agent, self.phi, self.action, numeric=numeric
        )

    # ------------------------------------------------------------------

    def describe(self, pps: PPS) -> str:
        """A one-paragraph textual summary of the constraint's status."""
        actual = self.actual(pps)
        met = self.threshold_met_measure(pps)
        expected = self.expected_belief(pps)
        status = "SATISFIED" if actual >= self.threshold else "VIOLATED"
        return (
            f"{self.name}: mu(({self.phi.label})@{self.action} | {self.action}) "
            f"= {actual} (~{float(actual):.6g}) vs threshold {self.threshold} "
            f"(~{float(self.threshold):.6g}) -> {status}; "
            f"threshold met when acting with measure {met} "
            f"(~{float(met):.6g}); expected acting belief {expected} "
            f"(~{float(expected):.6g})"
        )
