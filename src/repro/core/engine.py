"""The indexed evaluation engine: per-system bitmask run-sets and caches.

Every query the library answers ultimately reduces to set algebra over
the (finite) run space of a pps and to exact-rational measures of the
resulting sets.  The naive evaluation strategy — rescan ``pps.runs``
and rebuild a ``frozenset`` for every query — is perfectly correct but
pays ``O(|R| * T)`` per query, which multiplies painfully across
sweeps, Monte-Carlo cross-validation, and the theorem checkers.

:class:`SystemIndex` is computed once per system (and cached *on* the
system object, so every layer that touches the same pps shares it) and
holds:

* **bitmask run-sets** — an event is an ``int`` whose bit ``k`` is set
  iff run ``k`` belongs to the event.  Intersection, union, and
  complement are single machine-word-per-64-runs operations;
* an **exact probability kernel** — run weights are reduced to integer
  numerators over one common denominator, so ``mu(event)`` is an
  integer popcount-weighted sum folded back into a single
  :class:`~fractions.Fraction`.  A prefix table of the weights makes
  contiguous index ranges O(1); because runs are collected in DFS
  order, the runs through *any* tree node form exactly such a range;
* precomputed **structure tables** — ``local state -> (time, mask)``
  per agent, per-time knowledge partitions, ``node uid -> (lo, hi)``
  leaf ranges, and ``(agent, action) -> performing mask / performance
  times / per-local-state cells``;
* **memo caches** keyed by :meth:`~repro.core.facts.Fact.structural_key`
  — satisfying run masks for run facts, per-time-slice truth masks for
  transient facts, and posterior beliefs per (agent, fact, local
  state).  Structural keys let equal-but-distinct fact objects (e.g.
  the per-row rebuilds of a sweep) share one cache entry; opaque facts
  fall back to identity keys automatically;
* **batched evaluation** — :meth:`SystemIndex.events_of`,
  :meth:`SystemIndex.truths_at`, and :meth:`SystemIndex.beliefs_batch`
  evaluate a list of facts in one pass per run-slice, decomposing
  boolean connectives into mask algebra so shared subexpressions are
  evaluated once per batch.

Cache invalidation is *never*: a pps tree is immutable after
validation (nothing in the library mutates nodes of a built system),
so an index computed once is valid for the lifetime of the system.

Derived systems (:class:`~repro.core.pps.DerivedPPS` — protocol
transforms represented as per-edge action overlays over a shared
parent tree) do not get cold builds: :meth:`SystemIndex.derived`
inherits every label-independent table and cache from the parent's
index and rebuilds only the (agent, action) tables for the overridden
edges, invalidating just the fact-cache entries whose facts mention
actions (see ``docs/transforms.md``).

Every table and memo cache of the index is additionally classified in
:data:`SystemIndex.DEPENDENCY_CLASS` as **shape-dependent** (a function
of tree shape, states, and edge labels only) or **weight-dependent**
(additionally reads the probability weight vector) — the per-entry
dependency record behind the weight split.  A *reweighted* child
(:class:`~repro.core.pps.ReweightedPPS` — per-edge probability
overrides, shape and labels untouched) inherits every shape-dependent
structure by reference and rebuilds exactly the weight-dependent ones:
the weight vector, prefix table, array kernels, and the measure-bearing
caches.  Satisfying-run masks are weight-*independent*, so a reweighted
row of an adversary-parameter sweep reuses the parent's fact masks
outright and pays only one integer-weight rebuild.

The kernel is **two-tier** (see ``docs/numerics.md``): every measure
starts as an integer weight total over one common denominator
(:meth:`SystemIndex.mask_total`), and the ``numeric=`` knob on
:meth:`SystemIndex.probability` / :meth:`SystemIndex.conditional` /
:meth:`SystemIndex.belief` / :meth:`SystemIndex.beliefs_batch` selects
how the total is folded: ``"exact"`` (default, normalized
:class:`~fractions.Fraction`), ``"auto"``
(:class:`~repro.core.lazyprob.LazyProb` — float-filtered comparisons
with exact-on-demand escalation, verdicts identical to exact), or
``"float"`` (raw floats, no guarantees).

The public frozenset-based :class:`~repro.core.measure.Event` API is
preserved throughout the library; this module is the engine underneath
it, and :meth:`SystemIndex.mask_of` / :meth:`SystemIndex.event_of`
are the interop boundary.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .arraykernel import ThresholdKernel, WeightKernel, div_bounds, float_with_err
from .errors import (
    ConditioningOnNullEventError,
    UnknownAgentError,
    UnknownLocalStateError,
)
from .lazyprob import LazyProb, check_numeric_mode
from .numeric import ONE, ZERO, Probability
from .pps import PPS, Action, AgentId, DerivedPPS, LocalState

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from .facts import Fact

__all__ = ["SystemIndex", "bits"]


def bits(mask: int) -> Iterator[int]:
    """Iterate over the set bit positions of ``mask``, ascending."""
    while mask:
        lsb = mask & -mask
        yield lsb.bit_length() - 1
        mask ^= lsb


class SystemIndex:
    """Precomputed bitmask index of one pps; obtain via :meth:`of`.

    The index is attached to the system on first use, so repeated
    queries — across the core operators, the analysis sweeps, and the
    benchmarks — all share one set of tables.
    """

    #: The per-entry dependency record: every table and memo cache of
    #: the index, classified by what can invalidate it.  ``"shape"``
    #: entries are functions of the tree shape, states, and edge
    #: labels only; ``"weight"`` entries additionally read the
    #: probability weight vector.  :meth:`derived` consults this
    #: record: an action overlay shares *everything* (weights
    #: included) and filters fact caches per-entry through
    #: ``_action_free``; a reweighting inherits every ``"shape"``
    #: structure by reference and rebuilds or drops every ``"weight"``
    #: one.  Every cache write in this module must target a classified
    #: attribute — enforced statically by analyzer rule RP009 and at
    #: runtime by the engine test suite.
    DEPENDENCY_CLASS: Dict[str, str] = {
        # weight-dependent: the exact/array probability kernels and
        # every cache holding measures, posteriors, or verdicts
        # computed from them.
        "_denominator": "weight",
        "_weights": "weight",
        "_prefix": "weight",
        "_prob_cache": "weight",
        "_total_cache": "weight",
        "_weight_kernel": "weight",
        "_bounds_cache": "weight",
        "_den_bounds": "weight",
        "_threshold_kernels": "weight",
        "_belief_cache": "weight",
        "_lazy_beliefs": "weight",
        "_independence_cache": "weight",
        # shape-dependent: structure tables and mask-valued caches
        # (bitmasks record *which* runs satisfy a fact — a question
        # probabilities never enter).
        "run_count": "shape",
        "all_mask": "shape",
        "max_time": "shape",
        "_node_ranges": "shape",
        "_alive": "shape",
        "_local_occurrence": "shape",
        "_partitions": "shape",
        "_event_cache": "shape",
        "_component_cache": "shape",
        "_shard_plans": "shape",
        "_fact_masks": "shape",
        "_slice_masks": "shape",
        "_at_action_cache": "shape",
        "_performing": "shape",
        "_action_records": "shape",
        "_performance_times": "shape",
        "_state_cells": "shape",
        "_agent_actions": "shape",
        "_proper_cache": "shape",
        "_performing_at": "shape",
    }

    #: Instance attributes that are bookkeeping, not cached data:
    #: identity, keying mode, and the derivation machinery itself.
    #: ``DEPENDENCY_CLASS`` and this set together must cover every
    #: attribute the constructor assigns (asserted by the test suite).
    BOOKKEEPING_ATTRS: FrozenSet[str] = frozenset(
        {
            "pps",
            "structural_keys",
            "_action_free",
            "_derived_parent",
            "_inherit_pack",
        }
    )

    @classmethod
    def dependency_class(cls, attr: str) -> str:
        """``"shape"`` or ``"weight"`` for a classified index attribute.

        Raises:
            KeyError: for attributes outside the dependency record —
                adding a cache without classifying it is a bug this
                surfaces (and RP009 catches statically).
        """
        return cls.DEPENDENCY_CLASS[attr]

    @staticmethod
    def _weight_tables(runs) -> Tuple[int, List[int], List[int]]:
        """``(denominator, weights, prefix)`` for a run tuple.

        The single source of the integer-weight kernel: the cold
        constructor and the reweighted branch of :meth:`derived` both
        build through here, which is what pins a derived reweighted
        index bit-identical to a from-scratch rebuild.
        """
        denominator = 1
        for run in runs:
            q = run.prob.denominator
            denominator = denominator // gcd(denominator, q) * q
        weights = [
            run.prob.numerator * (denominator // run.prob.denominator)
            for run in runs
        ]
        prefix = [0]
        for weight in weights:
            prefix.append(prefix[-1] + weight)
        return denominator, weights, prefix

    def __init__(self, pps: PPS, *, structural_keys: bool = True) -> None:
        self.pps = pps
        # When True (the default) the fact memo caches key on
        # Fact.structural_key(), sharing entries between
        # equal-but-distinct fact objects; False restores pure identity
        # keying (used by benchmarks to measure what the sharing buys).
        self.structural_keys = structural_keys
        runs = pps.runs
        self.run_count = len(runs)
        self.all_mask = (1 << self.run_count) - 1

        # --- exact probability kernel -----------------------------------
        # Run weights as integer numerators over one common denominator;
        # prefix sums give O(1) measures of contiguous index ranges.
        denominator, weights, prefix = self._weight_tables(runs)
        self._denominator = denominator
        self._weights: List[int] = weights
        self._prefix: List[int] = prefix
        self._prob_cache: Dict[int, Probability] = {}
        # Raw integer weight totals per mask: the common input of every
        # numeric mode.  Exact mode folds a total into a normalized
        # Fraction (memoized in _prob_cache); the float/auto modes use
        # the (total, denominator) pair directly, skipping the gcd.
        self._total_cache: Dict[int, int] = {}
        # The array view of the weight vector (repro.core.arraykernel),
        # built lazily on first bounds query; (approx, err) bounds per
        # mask are memoized alongside the exact totals and shared with
        # derived indices exactly like _total_cache.
        self._weight_kernel: Optional[WeightKernel] = None
        self._bounds_cache: Dict[int, Tuple[float, float]] = {}
        self._den_bounds: Tuple[float, float] = float_with_err(denominator)
        # Sorted threshold kernels per (agent, fact key, action) — the
        # bisected grid structure of docs/numerics.md.  Never inherited
        # (it reads the action cells), but its expensive input — the
        # exact acting posteriors — lives in _belief_cache, which *is*
        # inherited for action-free facts.
        self._threshold_kernels: Dict[
            Tuple[AgentId, object, Action], ThresholdKernel
        ] = {}

        # --- structure tables -------------------------------------------
        # Runs are collected in DFS order, so the runs through any node
        # form a contiguous index range [lo, hi).
        self._node_ranges: Dict[int, Tuple[int, int]] = {}
        self._assign_leaf_ranges()

        max_time = max((run.final_time for run in runs), default=-1)
        self.max_time = max_time
        alive = [0] * (max_time + 1)
        for run in runs:
            bit = 1 << run.index
            for t in range(run.length):
                alive[t] |= bit
        self._alive: List[int] = alive

        # local state -> (time, occurrence mask), plus the per-time
        # knowledge partitions, all from one pass over the tree.
        self._local_occurrence: Dict[AgentId, Dict[LocalState, Tuple[int, int]]]
        self._partitions: Dict[AgentId, List[Dict[LocalState, int]]]
        self._build_local_tables()

        # --- lazily built action tables ---------------------------------
        self._performing: Optional[Dict[Tuple[AgentId, Action], int]] = None
        self._action_records: Dict[
            Tuple[AgentId, Action], List[Tuple[int, int]]
        ] = {}
        self._performance_times: Dict[
            Tuple[AgentId, Action], Dict[int, Tuple[int, ...]]
        ] = {}
        self._state_cells: Dict[Tuple[AgentId, Action], Dict[LocalState, int]] = {}
        self._agent_actions: Dict[AgentId, set] = {}
        self._proper_cache: Dict[Tuple[AgentId, Action], bool] = {}
        self._performing_at: Dict[Tuple[AgentId, Action], Dict[int, int]] = {}

        # --- memo caches keyed by Fact structural key -------------------
        # (or by identity when structural_keys=False; opaque facts fall
        # back to identity-shaped keys either way).
        self._fact_masks: Dict[object, int] = {}
        self._slice_masks: Dict[Tuple[object, int], int] = {}
        self._belief_cache: Dict[Tuple[AgentId, object, LocalState], Probability] = {}
        # Auto/float-mode twin of _belief_cache: posteriors as LazyProb
        # values built from raw int pairs — no Fraction normalization
        # until a comparison actually escalates (see docs/numerics.md).
        self._lazy_beliefs: Dict[Tuple[AgentId, object, LocalState], LazyProb] = {}
        # Independence verdicts (Definition 4.1) per (fact key, agent,
        # action): identical across numeric modes, recomputed by every
        # theorem premise otherwise.  Never inherited by derived
        # indices — the verdict inspects action cells.
        self._independence_cache: Dict[Tuple[object, AgentId, Action], bool] = {}
        self._at_action_cache: Dict[Tuple[AgentId, object, Action], int] = {}
        self._component_cache: Dict[
            Tuple[Tuple[AgentId, ...], int], Dict[int, int]
        ] = {}
        self._event_cache: Dict[int, FrozenSet[int]] = {}
        # Fact keys whose cached entries are label-independent
        # (Fact.mentions_actions() returned False at caching time);
        # only these survive into a derived index.
        self._action_free: Set[object] = set()
        # Set by derived(): the parent index the action tables are
        # incrementally rebuilt from on first use.
        self._derived_parent: Optional["SystemIndex"] = None
        # Memoized label-independent cache subsets handed to derived
        # indices; see _inheritable_pack().
        self._inherit_pack: Optional[Tuple[Tuple[int, ...], tuple]] = None
        # Shard plans per shard count (core/shard.py): pure functions of
        # the tree's leaf ranges, so derived indices share the dict by
        # reference and a dense sweep plans each K once.
        self._shard_plans: Dict[int, object] = {}

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def of(cls, pps: PPS, *, structural_keys: bool = True) -> "SystemIndex":
        """The system's index, built on first use and cached on the pps.

        ``structural_keys`` only takes effect when this call builds the
        index; an already-attached index is returned as-is.  A
        :class:`~repro.core.pps.DerivedPPS` never gets a cold build
        here: its index is derived from its parent's via
        :meth:`derived`, inheriting every label-independent table.
        """
        index = getattr(pps, "_system_index", None)
        if index is None:
            if isinstance(pps, DerivedPPS):
                parent_index = cls.of(pps.parent, structural_keys=structural_keys)
                if parent_index.structural_keys == structural_keys:
                    index = cls.derived(parent_index, pps)
                else:
                    # The parent was already indexed under the other
                    # keying mode; inheriting its caches would smuggle
                    # that mode in.  Honor the request with a cold
                    # build (the generic constructor handles derived
                    # systems through PPS.edge_action).
                    index = cls(pps, structural_keys=structural_keys)
            else:
                index = cls(pps, structural_keys=structural_keys)
            pps._system_index = index  # type: ignore[attr-defined]
        return index

    @classmethod
    def derived(cls, parent: "SystemIndex", pps: "DerivedPPS") -> "SystemIndex":
        """An index for ``pps`` inheriting ``parent``'s tables.

        ``pps`` must be a derived system whose parent is exactly
        ``parent.pps``.  Everything *shape-dependent* (see
        :data:`DEPENDENCY_CLASS`) is shared by reference — leaf ranges,
        alive masks, local occurrence/partition tables,
        common-knowledge components, and the event-interop cache —
        because neither overlay kind touches states or tree shape.

        For a pure action overlay the *weight-dependent* kernel is
        shared too (weights, prefix table, memoized measures, array
        bounds): relabelling preserves probabilities.  For a
        **reweighted** child (:class:`~repro.core.pps.ReweightedPPS`,
        or any chain whose probability overrides differ from the
        parent's) the weight vector, prefix table, and array-kernel
        state are rebuilt from the child's own runs — through the same
        :meth:`_weight_tables` helper the cold constructor uses, so the
        result is bit-identical to a from-scratch build — and every
        measure-bearing cache starts empty.

        Fact-mask and slice-mask entries are inherited for facts that
        never inspect actions
        (:meth:`~repro.core.facts.Fact.mentions_actions`) in *both*
        cases — masks record which runs satisfy a fact, a
        weight-independent question.  Belief caches additionally
        require unchanged weights.  The (agent, action) tables are
        rebuilt incrementally, touching only the overridden edges, on
        first use.
        """
        if not isinstance(pps, DerivedPPS) or pps.parent is not parent.pps:
            raise ValueError(
                "derived() requires the DerivedPPS whose parent is exactly "
                "the parent index's system"
            )
        # The child is weight-split from the parent exactly when its
        # flattened probability overrides differ from the parent's own
        # (a relabelling of a reweighted parent inherits the parent's
        # table unchanged and still shares the parent's weights).
        reweighted = pps._prob_overrides != getattr(
            pps.parent, "_prob_overrides", {}
        )
        index = cls.__new__(cls)
        index.pps = pps
        index.structural_keys = parent.structural_keys
        index.run_count = parent.run_count
        index.all_mask = parent.all_mask
        if reweighted:
            # Weight-dependent kernel: rebuilt from the child's own run
            # probabilities; memoized measures and bounds start empty.
            denominator, weights, prefix = cls._weight_tables(pps.runs)
            index._denominator = denominator
            index._weights = weights
            index._prefix = prefix
            index._prob_cache = {}
            index._total_cache = {}
            index._weight_kernel = None
            index._bounds_cache = {}
            index._den_bounds = float_with_err(denominator)
        else:
            # Exact probability kernel: identical weights, shared memo.
            index._denominator = parent._denominator
            index._weights = parent._weights
            index._prefix = parent._prefix
            index._prob_cache = parent._prob_cache
            index._total_cache = parent._total_cache
            # Array kernel: weights are identical, so the float view,
            # the per-mask bounds memo, and the denominator bounds are
            # shared; the kernel itself is resolved through the parent
            # lazily (it may not be built yet).
            index._weight_kernel = None
            index._bounds_cache = parent._bounds_cache
            index._den_bounds = parent._den_bounds
        # Threshold kernels are action- and weight-dependent and start
        # empty either way.
        index._threshold_kernels = {}
        # Structure tables: the tree is literally the parent's.
        index._node_ranges = parent._node_ranges
        index.max_time = parent.max_time
        index._alive = parent._alive
        index._local_occurrence = parent._local_occurrence
        index._partitions = parent._partitions
        index._event_cache = parent._event_cache
        index._component_cache = parent._component_cache
        # Action tables: incremental rebuild deferred to first use.
        index._performing = None
        index._action_records = {}
        index._performance_times = {}
        index._state_cells = {}
        index._agent_actions = {}
        index._proper_cache = {}
        index._performing_at = {}
        index._derived_parent = parent
        index._inherit_pack = None
        # Fact caches: label-independent entries carry over verbatim.
        # The filtered views are memoized on the parent (invalidated by
        # growth — engine caches only ever grow), so a dense sweep
        # deriving hundreds of rows from one parent pays the filtering
        # once and each row only a shallow copy.
        free, fact_masks, slice_masks, belief_cache, lazy_beliefs = (
            parent._inheritable_pack()
        )
        index._action_free = set(free)
        index._fact_masks = dict(fact_masks)
        index._slice_masks = dict(slice_masks)
        if reweighted:
            # Posteriors are weight-dependent (DEPENDENCY_CLASS); only
            # the mask-valued caches above survive a reweighting.
            index._belief_cache = {}
            index._lazy_beliefs = {}
        else:
            index._belief_cache = dict(belief_cache)
            index._lazy_beliefs = dict(lazy_beliefs)
        index._at_action_cache = {}
        index._independence_cache = {}
        # Shard plans depend only on the shared tree's leaf ranges.
        index._shard_plans = parent._shard_plans
        return index

    def _inheritable_pack(self):
        """The label-independent subsets of the fact/belief caches.

        Rebuilt only when a cache has grown since the last derivation;
        see :meth:`derived`.
        """
        stamp = (
            len(self._action_free),
            len(self._fact_masks),
            len(self._slice_masks),
            len(self._belief_cache),
            len(self._lazy_beliefs),
        )
        pack = self._inherit_pack
        if pack is not None and pack[0] == stamp:
            return pack[1]
        free = self._action_free
        filtered = (
            free,
            {key: mask for key, mask in self._fact_masks.items() if key in free},
            {
                key: mask
                for key, mask in self._slice_masks.items()
                if key[0] in free
            },
            {
                key: value
                for key, value in self._belief_cache.items()
                if key[1] in free
            },
            {
                key: value
                for key, value in self._lazy_beliefs.items()
                if key[1] in free
            },
        )
        self._inherit_pack = (stamp, filtered)
        return filtered

    def _fact_key(self, fact: "Fact") -> object:
        """The memo-cache key of a fact under this index's keying mode."""
        return fact.structural_key() if self.structural_keys else fact

    def _note_action_free(self, fact: "Fact") -> None:
        """Record that a just-cached fact never inspects action labels.

        Derived indices (:meth:`derived`) inherit exactly the cache
        entries whose keys are recorded here: for those facts the
        masks and posteriors are a function of states, probabilities,
        and partitions only, all of which an action overlay preserves.
        """
        if not fact.mentions_actions():
            self._action_free.add(self._fact_key(fact))

    def _assign_leaf_ranges(self) -> None:
        """DFS matching :attr:`PPS.runs` order: node -> [lo, hi) leaf range."""
        counter = 0
        stack: List[Tuple[object, bool]] = [(self.pps.root, False)]
        lows: Dict[int, int] = {}
        while stack:
            node, done = stack.pop()
            if done:
                self._node_ranges[node.uid] = (lows[node.uid], counter)
                continue
            lows[node.uid] = counter
            if node.is_leaf and not node.is_root:
                counter += 1
                self._node_ranges[node.uid] = (counter - 1, counter)
            else:
                stack.append((node, True))
                stack.extend((child, False) for child in reversed(node.children))
        # Runs exclude the root, so it carries no range: node_mask(root)
        # is the empty event, matching runs_through's historic contract.
        self._node_ranges.pop(self.pps.root.uid, None)

    def _build_local_tables(self) -> None:
        agents = self.pps.agents
        occurrence: Dict[AgentId, Dict[LocalState, Tuple[int, int]]] = {
            agent: {} for agent in agents
        }
        # Compiled systems carry an InternTable (pps.intern): equal
        # local states in the tree are identical objects, so the hot
        # accumulation loop can group by id() — hashing each *distinct*
        # local value once per system instead of once per (node, agent)
        # pair.  That matters for perfect-recall locals whose hash is
        # O(history).  Hand-built trees (no table) keep by-value keys.
        interned = self.pps.intern is not None
        # agent -> t -> key -> [local, mask]; key is id(local) or local.
        acc: Dict[AgentId, List[Dict[object, List[object]]]] = {
            agent: [dict() for _ in range(self.max_time + 1)] for agent in agents
        }
        for node in self.pps.state_nodes():
            state = node.state
            if state is None:
                continue
            mask = self.node_mask(node)
            t = node.time
            for idx, agent in enumerate(agents):
                local = state.local(idx)
                cells = acc[agent][t]
                key = id(local) if interned else local
                entry = cells.get(key)
                if entry is None:
                    cells[key] = [local, mask]
                else:
                    entry[1] |= mask
        partitions: Dict[AgentId, List[Dict[LocalState, int]]] = {}
        for agent in agents:
            slices: List[Dict[LocalState, int]] = []
            table = occurrence[agent]
            for t, cells in enumerate(acc[agent]):
                merged = {local: mask for local, mask in cells.values()}
                slices.append(merged)
                for local, mask in merged.items():
                    # Synchrony: each local state occurs at one time only.
                    table[local] = (t, mask)
            partitions[agent] = slices
        self._local_occurrence = occurrence
        self._partitions = partitions

    def _ensure_actions(self) -> None:
        """Build the (agent, action) tables in one pass over the tree edges.

        A node at time ``T`` whose ``via_action`` is set represents the
        edge on which that joint action was performed at time ``T - 1``
        by every run through the node — and the runs through a node are
        exactly its O(1) leaf-range mask, so each shared edge is
        visited once, not once per run.  Entries are recorded for
        *every* name appearing in ``via_action``, including reserved
        environment pseudo-agents that are not in ``pps.agents`` (facts
        such as ``performed(ENV, ...)`` must keep working); only the
        per-local-state cells require a real agent position.
        """
        if self._performing is not None:
            return
        if self._derived_parent is not None:
            self._derive_actions_from(self._derived_parent)
            return
        performing: Dict[Tuple[AgentId, Action], int] = {}
        records: Dict[Tuple[AgentId, Action], List[Tuple[int, int]]] = {}
        cells: Dict[Tuple[AgentId, Action], Dict[LocalState, int]] = {}
        agent_actions: Dict[AgentId, set] = {agent: set() for agent in self.pps.agents}
        positions = {agent: k for k, agent in enumerate(self.pps.agents)}
        for node in self.pps.state_nodes():
            via = self.pps.edge_action(node)
            t = node.time - 1
            if via is None or t < 0:
                continue
            mask = self.node_mask(node)
            parent = node.parent
            parent_state = parent.state if parent is not None else None
            for agent, action in via.items():
                key = (agent, action)
                performing[key] = performing.get(key, 0) | mask
                records.setdefault(key, []).append((t, mask))
                agent_actions.setdefault(agent, set()).add(action)
                idx = positions.get(agent)
                if idx is not None and parent_state is not None:
                    cell = cells.setdefault(key, {})
                    local = parent_state.local(idx)
                    cell[local] = cell.get(local, 0) | mask
        self._performing = performing
        self._action_records = records
        self._state_cells = cells
        self._agent_actions = agent_actions

    def _derive_actions_from(self, parent: "SystemIndex") -> None:
        """Rebuild the (agent, action) tables from the parent's, touching
        only the overlay's overridden edges.

        Every edge contributed exactly one ``(t, node_mask)`` record
        per (agent, action) pair of its joint action, and node masks of
        same-depth nodes are disjoint, so each old contribution is
        identified unambiguously and can be stripped before the new
        label's contributions are added.  Untouched entries are shared
        with the parent (copy-on-write per key), so the cost is
        O(overridden edges), not O(tree).
        """
        parent._ensure_actions()
        # repro: allow[RP006] internal invariant: _ensure_actions() just
        # populated _performing; the assert only narrows for the type
        # checker.
        assert parent._performing is not None
        pps = self.pps
        performing = dict(parent._performing)
        records = dict(parent._action_records)
        cells = dict(parent._state_cells)
        own_cells: set = set()
        positions = {agent: k for k, agent in enumerate(pps.agents)}
        # Record-list edits are batched per key and applied in one
        # filtering pass at the end, so a row that overrides E edges of
        # one key costs O(len(records[key]) + E), not O(E^2) as
        # per-edge list.remove would.
        strip: Dict[Tuple[AgentId, Action], set] = {}
        add: Dict[Tuple[AgentId, Action], List[Tuple[int, int]]] = {}

        def cell_dict(key: Tuple[AgentId, Action]) -> Dict[LocalState, int]:
            if key not in own_cells:
                cells[key] = dict(cells.get(key, {}))
                own_cells.add(key)
            return cells[key]

        for node, new_via in pps.overlay.items():
            t = node.time - 1
            if t < 0:
                # Edges into time-0 nodes never enter the action tables
                # (nature's initial choice is not an agent action).
                continue
            mask = self.node_mask(node)
            old_via = pps.parent.edge_action(node) or {}
            parent_state = node.parent.state if node.parent is not None else None
            for agent, action in old_via.items():
                if new_via.get(agent) == action:
                    # The override leaves this agent's label alone (a
                    # typical refrain override rewrites one agent of a
                    # joint action); stripping and re-adding an
                    # identical contribution would be wasted table
                    # surgery.
                    continue
                key = (agent, action)
                performing[key] &= ~mask
                strip.setdefault(key, set()).add((t, mask))
                idx = positions.get(agent)
                if idx is not None and parent_state is not None:
                    cell = cell_dict(key)
                    local = parent_state.local(idx)
                    remaining = cell[local] & ~mask
                    if remaining:
                        cell[local] = remaining
                    else:
                        del cell[local]
            for agent, action in new_via.items():
                if old_via.get(agent) == action:
                    continue
                key = (agent, action)
                performing[key] = performing.get(key, 0) | mask
                add.setdefault(key, []).append((t, mask))
                idx = positions.get(agent)
                if idx is not None and parent_state is not None:
                    cell = cell_dict(key)
                    local = parent_state.local(idx)
                    cell[local] = cell.get(local, 0) | mask
        for key in set(strip) | set(add):
            dropped = strip.get(key, set())
            kept = [entry for entry in records.get(key, ()) if entry not in dropped]
            # Each edge contributed exactly one unique (t, mask) record,
            # so every strip target must have been present.
            # repro: allow[RP006] internal bookkeeping invariant, not
            # reachable from the public API.
            assert len(kept) == len(records.get(key, ())) - len(dropped)
            kept.extend(add.get(key, ()))
            records[key] = kept
        # Prune entries an override emptied, so the tables describe the
        # derived system exactly as a cold rebuild would.
        self._performing = {key: mask for key, mask in performing.items() if mask}
        self._action_records = {key: lst for key, lst in records.items() if lst}
        self._state_cells = {key: cell for key, cell in cells.items() if cell}
        agent_actions: Dict[AgentId, set] = {agent: set() for agent in pps.agents}
        for agent, action in self._performing:
            agent_actions.setdefault(agent, set()).add(action)
        self._agent_actions = agent_actions

    # ------------------------------------------------------------------
    # Event interop and the probability kernel
    # ------------------------------------------------------------------

    def mask_of(self, event: FrozenSet[int]) -> int:
        """The bitmask of a frozenset-of-run-indices event."""
        mask = 0
        for index in event:
            mask |= 1 << index
        return mask

    def event_of(self, mask: int) -> FrozenSet[int]:
        """The frozenset event of a bitmask (memoized)."""
        cached = self._event_cache.get(mask)
        if cached is None:
            cached = frozenset(bits(mask))
            self._event_cache[mask] = cached
        return cached

    def complement(self, mask: int) -> int:
        return self.all_mask & ~mask

    def mask_total(self, mask: int) -> int:
        """The integer weight total of a mask over the common denominator.

        ``probability(mask) == Fraction(mask_total(mask), denominator)``
        by construction.  This is the value every numeric mode starts
        from; it is memoized per mask (and shared with derived indices,
        since an action overlay never changes weights).
        """
        if mask == 0:
            return 0
        if mask == self.all_mask:
            return self._prefix[-1]
        cached = self._total_cache.get(mask)
        if cached is None:
            lo = (mask & -mask).bit_length() - 1
            hi = mask.bit_length()
            if mask == (1 << hi) - (1 << lo):
                # Contiguous range (every subtree event is one): O(1).
                cached = self._prefix[hi] - self._prefix[lo]
            else:
                total = 0
                weights = self._weights
                m = mask
                while m:
                    lsb = m & -m
                    total += weights[lsb.bit_length() - 1]
                    m ^= lsb
                cached = total
            self._total_cache[mask] = cached
        return cached

    def weight_kernel(self) -> WeightKernel:
        """The array view of the weight vector (lazily built, shared).

        Derived indices whose weight vector *is* the parent's (action
        overlays) resolve through the parent, so the float arrays are
        materialized once per tree, not once per overlay row.  A
        reweighted index owns a different vector and therefore builds
        (and memoizes) its own kernel.
        """
        parent = self._derived_parent
        if parent is not None and self._weights is parent._weights:
            return parent.weight_kernel()
        kernel = self._weight_kernel
        if kernel is None:
            kernel = WeightKernel(self._weights)
            self._weight_kernel = kernel
        return kernel

    def mask_bounds(self, mask: int) -> Tuple[float, float]:
        """``(approx, err)`` bounds on a mask's integer weight total.

        The float tier of :meth:`mask_total`: the true total provably
        lies in ``[approx - err, approx + err]``.  Masks whose exact
        total is already known (memoized, trivial, or a contiguous
        range — O(1) via the prefix table) convert directly; scattered
        masks go through the weight kernel's vectorized reduction when
        NumPy is available, and fall back to the exact integer total
        (error from conversion only) otherwise — the pure-Python
        backend's bounds are never looser than the vectorized ones, so
        verdicts certified on one backend are certified on both.
        """
        if mask == 0:
            # repro: allow[RP001] float bounds are this API's contract:
            # the bounds tier reports certified float envelopes.
            return (0.0, 0.0)
        cached = self._bounds_cache.get(mask)
        if cached is not None:
            return cached
        total = self._total_cache.get(mask)
        if total is None:
            lo = (mask & -mask).bit_length() - 1
            hi = mask.bit_length()
            if mask == self.all_mask or mask == (1 << hi) - (1 << lo):
                total = self.mask_total(mask)
        if total is not None:
            bounds = float_with_err(total)
        else:
            kernel = self.weight_kernel()
            if kernel.vectorized:
                bounds = kernel.mask_bounds(mask)
            else:
                bounds = float_with_err(self.mask_total(mask))
        self._bounds_cache[mask] = bounds
        return bounds

    def _lazy_conditional(self, target: int, given: int) -> LazyProb:
        """``mu(target | given)`` as a bounds-first deferred LazyProb.

        The float tier comes from :meth:`mask_bounds` (a vectorized
        reduction on the NumPy backend — no per-bit Python loop); the
        exact integer pair is deferred in a thunk, so grids whose
        verdicts certify in float never sum the exact totals at all,
        while an escalating comparison recovers the *same* unnormalized
        pair eager ``from_ratio`` construction would have carried.
        """
        inter = target & given
        num_a, num_e = self.mask_bounds(inter)
        den_a, den_e = self.mask_bounds(given)
        approx, err = div_bounds(num_a, num_e, den_a, den_e)
        return LazyProb(
            approx,
            err,
            pair_thunk=lambda: (self.mask_total(inter), self.mask_total(given)),
        )

    def probability(self, mask: int, *, numeric: str = "exact"):
        """``mu_T`` of a bitmask event.

        ``numeric`` selects the tier: ``"exact"`` (the default) returns
        a memoized normalized :class:`~fractions.Fraction`; ``"auto"``
        returns a :class:`~repro.core.lazyprob.LazyProb` carrying the
        raw ``(total, denominator)`` pair (no gcd paid unless a
        comparison escalates — verdicts guaranteed identical to exact);
        ``"float"`` returns a bare float with no exactness guarantee.
        Trivial masks short-circuit to exact ``0``/``1`` in auto mode.
        """
        if numeric == "exact":
            if mask == 0:
                return ZERO
            if mask == self.all_mask:
                return ONE
            cached = self._prob_cache.get(mask)
            if cached is not None:
                return cached
            result = Fraction(self.mask_total(mask), self._denominator)
            self._prob_cache[mask] = result
            return result
        if numeric == "float":
            return self.mask_total(mask) / self._denominator
        check_numeric_mode(numeric)
        if mask == 0:
            return ZERO
        if mask == self.all_mask:
            return ONE
        num_a, num_e = self.mask_bounds(mask)
        approx, err = div_bounds(num_a, num_e, *self._den_bounds)
        return LazyProb(
            approx,
            err,
            pair_thunk=lambda: (self.mask_total(mask), self._denominator),
        )

    def conditional(self, target: int, given: int, *, numeric: str = "exact"):
        """``mu_T(target | given)`` for bitmask events.

        In ``"auto"``/``"float"`` mode the common denominator cancels:
        the conditional is the plain ratio of the two masks' integer
        weight totals, so no ``Fraction`` is built at all.
        """
        if given == 0:
            raise ConditioningOnNullEventError(
                "cannot condition on an empty event (e.g. an action that is "
                "never performed)"
            )
        if numeric == "exact":
            return self.probability(target & given) / self.probability(given)
        if numeric == "float":
            return self.mask_total(target & given) / self.mask_total(given)
        check_numeric_mode(numeric)
        return self._lazy_conditional(target, given)

    # ------------------------------------------------------------------
    # Structure tables
    # ------------------------------------------------------------------

    def node_mask(self, node) -> int:
        """The mask of runs whose path passes through ``node``."""
        rng = self._node_ranges.get(node.uid)
        if rng is None:
            return 0
        lo, hi = rng
        return (1 << hi) - (1 << lo)

    def alive_mask(self, t: int) -> int:
        """The mask of runs whose length exceeds ``t``."""
        if 0 <= t <= self.max_time:
            return self._alive[t]
        return 0

    def _occurrence_table(self, agent: AgentId) -> Dict[LocalState, Tuple[int, int]]:
        table = self._local_occurrence.get(agent)
        if table is None:
            raise UnknownAgentError(
                f"unknown agent {agent!r}; agents are {self.pps.agents}"
            )
        return table

    def occurrence(self, agent: AgentId, local: LocalState) -> Optional[Tuple[int, int]]:
        """``(time, mask)`` for a local state, or ``None`` if it never occurs."""
        return self._occurrence_table(agent).get(local)

    def _occurrence_or_raise(
        self, agent: AgentId, local: LocalState
    ) -> Tuple[int, int]:
        """``(time, mask)``, raising for never-occurring states.

        The shared entry guard of every belief path (exact and lazy,
        single and batched) — one place owns the error contract.

        Raises:
            UnknownLocalStateError: when ``local`` never occurs for the
                agent.
        """
        entry = self.occurrence(agent, local)
        if entry is None:
            raise UnknownLocalStateError(
                f"local state {local!r} of agent {agent!r} never occurs "
                f"in {self.pps.name}"
            )
        return entry

    def occurrence_mask(self, agent: AgentId, local: LocalState) -> int:
        entry = self.occurrence(agent, local)
        return 0 if entry is None else entry[1]

    def occurrence_time(self, agent: AgentId, local: LocalState) -> Optional[int]:
        entry = self.occurrence(agent, local)
        return None if entry is None else entry[0]

    def local_states(self, agent: AgentId) -> FrozenSet[LocalState]:
        return frozenset(self._occurrence_table(agent))

    def partition(self, agent: AgentId, t: int) -> Mapping[LocalState, int]:
        """Local state -> mask of time-``t`` runs in that information cell."""
        slices = self._partitions.get(agent)
        if slices is None:
            raise UnknownAgentError(
                f"unknown agent {agent!r}; agents are {self.pps.agents}"
            )
        if 0 <= t <= self.max_time:
            return slices[t]
        return {}

    # ------------------------------------------------------------------
    # Action tables
    # ------------------------------------------------------------------

    def performing_mask(self, agent: AgentId, action: Action) -> int:
        """The mask of ``R_alpha``: runs in which the action is performed."""
        self._ensure_actions()
        # repro: allow[RP006] internal invariant: _ensure_actions() just
        # populated _performing (type-narrowing only).
        assert self._performing is not None
        return self._performing.get((agent, action), 0)

    def performance_times(
        self, agent: AgentId, action: Action
    ) -> Mapping[int, Tuple[int, ...]]:
        """Run index -> times of performance (performing runs only).

        Expanded lazily per queried (agent, action) from the per-edge
        records and memoized; unqueried actions never pay the per-run
        expansion.
        """
        self._ensure_actions()
        key = (agent, action)
        cached = self._performance_times.get(key)
        if cached is None:
            table: Dict[int, List[int]] = {}
            for t, mask in self._action_records.get(key, ()):
                for run_index in bits(mask):
                    table.setdefault(run_index, []).append(t)
            cached = {
                run_index: tuple(sorted(ts)) for run_index, ts in table.items()
            }
            self._performance_times[key] = cached
        return cached

    def performing_at(self, agent: AgentId, action: Action, t: int) -> int:
        """The mask of runs in which the action is performed *at time t*.

        Folded once per (agent, action) from the per-edge records and
        memoized; this is the direct mask of the transient fact
        ``does_i(alpha)`` at ``t`` (see ``Does.engine_mask``), making
        action atoms O(edges) to evaluate instead of one ``holds`` call
        per (run, slice) point.
        """
        self._ensure_actions()
        key = (agent, action)
        table = self._performing_at.get(key)
        if table is None:
            table = {}
            for rt, mask in self._action_records.get(key, ()):
                table[rt] = table.get(rt, 0) | mask
            self._performing_at[key] = table
        return table.get(t, 0)

    def state_cells(
        self, agent: AgentId, action: Action
    ) -> Mapping[LocalState, int]:
        """Acting local state -> mask of runs performing there (``Q^{l}``)."""
        self._ensure_actions()
        return self._state_cells.get((agent, action), {})

    def actions_of(self, agent: AgentId) -> FrozenSet[Action]:
        self._ensure_actions()
        return frozenset(self._agent_actions.get(agent, ()))

    def is_proper_action(self, agent: AgentId, action: Action) -> bool:
        """Whether the action is proper for the agent (memoized).

        Proper: performed at least once somewhere, at most once per
        run.  Every checker and threshold query re-asserts properness,
        so the verdict is cached per (agent, action); it is a pure
        function of the action tables, which never change for a built
        index.
        """
        self._ensure_actions()
        key = (agent, action)
        cached = self._proper_cache.get(key)
        if cached is None:
            # Straight from the per-edge records: same-time records are
            # disjoint, so "at most once per run" is exactly "no run
            # appears in two records", i.e. the union's popcount equals
            # the sum of the records' popcounts.  No per-run expansion.
            records = self._action_records.get(key, ())
            if not records:
                cached = False
            else:
                union = 0
                total = 0
                for _, mask in records:
                    union |= mask
                    total += mask.bit_count()
                cached = union.bit_count() == total
            self._proper_cache[key] = cached
        return cached

    # ------------------------------------------------------------------
    # Fact evaluation caches
    # ------------------------------------------------------------------

    def runs_satisfying_mask(self, fact: "Fact", *, memo: bool = True) -> int:
        """The satisfying-run mask of a run fact (memoized structurally).

        Boolean connectives (``And``/``Or``/``Not``) are decomposed
        into mask algebra over their operands' memoized masks, so
        shared subexpressions are evaluated once.

        Pass ``memo=False`` when evaluating a throwaway fact object:
        cached subresults are still *read*, but nothing new is written
        to the per-system caches, so single-use facts are not pinned on
        the system.
        """
        return self._combine_mask(fact, None, None if memo else {})

    def holds_mask_at(self, fact: "Fact", t: int, *, memo: bool = True) -> int:
        """The mask of time-``t``-alive runs at which ``fact`` holds at ``t``.

        Boolean connectives are decomposed into mask algebra over the
        slice masks of their operands.  Pass ``memo=False`` for
        throwaway fact objects (e.g. the per-iteration refinements of a
        fixpoint): results are kept in a per-call overlay instead of
        the per-system caches, so the objects are not pinned for the
        system's lifetime.
        """
        return self._combine_mask(fact, t, None if memo else {})

    # -- single-fact evaluation (cache + boolean decomposition) --------
    #
    # Throughout, ``t is None`` selects the run-mask universe (all
    # runs, facts evaluated at time 0) and an ``int`` ``t`` selects the
    # time-``t`` slice (alive runs, facts evaluated at ``t``); one
    # evaluator and one connective classifier serve both.

    @staticmethod
    def _connective(fact: "Fact"):
        """``(kind, operands)`` for a decomposable connective, else ``None``."""
        from .facts import And, Not, Or

        if isinstance(fact, And):
            return ("and", fact.conjuncts)
        if isinstance(fact, Or):
            return ("or", fact.disjuncts)
        if isinstance(fact, Not):
            return ("not", (fact.operand,))
        return None

    def _universe(self, t: Optional[int]) -> int:
        return self.all_mask if t is None else self.alive_mask(t)

    def _mask_cache(self, t: Optional[int]) -> Dict[object, int]:
        return self._fact_masks if t is None else self._slice_masks

    def _cache_key(self, fact: "Fact", t: Optional[int]) -> object:
        bare = self._fact_key(fact)
        return bare if t is None else (bare, t)

    def _scan_mask(self, fact: "Fact", t: Optional[int]) -> int:
        """One fact's mask by direct point evaluation; raises what it raises."""
        (mask,), (error,) = self._scan_batch([fact], t)
        if error is not None:
            raise error
        return mask

    def _combine_mask(
        self, fact: "Fact", t: Optional[int], overlay: Optional[Dict[object, int]]
    ) -> int:
        key = self._cache_key(fact, t)
        cache = self._mask_cache(t)
        cached = cache.get(key)
        if cached is None and overlay is not None:
            cached = overlay.get(key)
        if cached is not None:
            return cached
        parts = self._connective(fact)
        if parts is None:
            mask = fact.engine_mask(self, t)
            if mask is None:
                mask = self._scan_mask(fact, t)
        else:
            kind, operands = parts
            try:
                if kind == "and":
                    mask = self._universe(t)
                    for operand in operands:
                        mask &= self._combine_mask(operand, t, overlay)
                        if not mask:
                            break
                elif kind == "or":
                    mask = 0
                    for operand in operands:
                        mask |= self._combine_mask(operand, t, overlay)
                else:  # not
                    mask = self._universe(t) & ~self._combine_mask(
                        operands[0], t, overlay
                    )
            except Exception:
                # A sub-fact is partial (its ``holds`` raises) on runs
                # the connective's own short-circuiting would never
                # evaluate — e.g. ``guard & phi@alpha`` with an alpha
                # that is improper only outside the guard.  Re-evaluate
                # the composite per point, exactly as the pre-batching
                # engine did; if that raises too, the raise is genuine.
                mask = self._scan_mask(fact, t)
        if overlay is None:
            cache[key] = mask
            self._note_action_free(fact)
        else:
            overlay[key] = mask
        return mask

    # -- batched evaluation: one pass per run-slice per *batch* --------

    def shard_plan(self, shards: int):
        """The memoized :class:`~repro.core.shard.ShardPlan` for ``shards``.

        The requested count is clamped to ``[1, run_count]`` inside the
        plan builder; plans are pure functions of the tree's leaf
        ranges, so the memo dict is shared with derived indices.
        """
        from .shard import ShardPlan

        key = max(1, min(int(shards), self.run_count)) if self.run_count else 1
        plan = self._shard_plans.get(key)
        if plan is None:
            plan = ShardPlan.for_index(self, key)
            self._shard_plans[key] = plan
        return plan

    def _scan_points(
        self,
        facts: Sequence["Fact"],
        points: Sequence[Tuple[object, int, int]],
        masks: List[int],
        errors: List[Optional[Exception]],
    ) -> None:
        """The point-evaluation inner loop over an ordered point list.

        Mutates ``masks``/``errors`` in place so shards of one scan can
        share them: a fact whose ``holds`` raised earlier (in this call
        or an earlier shard) is skipped, preserving the exact
        first-error short-circuit of the unsharded pass.
        """
        pps = self.pps
        for run, bit, time in points:
            for k, fact in enumerate(facts):
                if errors[k] is not None:
                    continue
                try:
                    if fact.holds(pps, run, time):
                        masks[k] |= bit
                except Exception as exc:
                    errors[k] = exc

    def _scan_points_of(
        self, t: Optional[int], lo: int, hi: int
    ) -> List[Tuple[object, int, int]]:
        """The ordered evaluation points of run range ``[lo, hi)`` at ``t``.

        ``t=None`` scans whole runs (one point per run); otherwise only
        the runs alive at ``t``.  Points are ascending by run index, so
        concatenating consecutive ranges reproduces the full-scan order.
        """
        runs = self.pps.runs
        if t is None:
            return [(run, 1 << run.index, 0) for run in runs[lo:hi]]
        range_mask = (1 << hi) - (1 << lo)
        return [
            (runs[i], 1 << i, t) for i in bits(self.alive_mask(t) & range_mask)
        ]

    def _scan_batch(
        self, facts: Sequence["Fact"], t: Optional[int]
    ) -> Tuple[List[int], List[Optional[Exception]]]:
        """Masks of several facts in one pass over the runs (or a slice).

        Exceptions are isolated per fact: a fact whose ``holds`` raises
        stops being evaluated and gets its first exception recorded in
        the second list (with ``None`` for clean facts), so one partial
        fact cannot poison the rest of a batch.  Callers re-raise or
        fall back as their own contracts require.

        Under ``REPRO_SHARDS=N`` (:func:`~repro.core.shard.default_shards`)
        the pass is decomposed over the N-shard plan's ranges, walked in
        ascending shard order over shared result lists — the same points
        in the same order, so results are bit-identical to the unsharded
        scan (this keeps the decomposition itself under the whole tier-1
        suite).
        """
        masks = [0] * len(facts)
        errors: List[Optional[Exception]] = [None] * len(facts)
        from .shard import default_shards

        shards = default_shards()
        if shards > 1 and self.run_count > 1:
            for lo, hi in self.shard_plan(shards).ranges:
                self._scan_points(
                    facts, self._scan_points_of(t, lo, hi), masks, errors
                )
        else:
            self._scan_points(
                facts, self._scan_points_of(t, 0, self.run_count), masks, errors
            )
        return masks, errors

    def _scan_batch_range(
        self, facts: Sequence["Fact"], t: Optional[int], lo: int, hi: int
    ) -> Tuple[List[int], List[Optional[Exception]]]:
        """:meth:`_scan_batch` restricted to the run range ``[lo, hi)``.

        The per-shard unit of :class:`~repro.core.shard.ShardedExecutor`
        workers: masks OR and first-in-shard-order errors combine back
        to exactly the full scan's results because ranges partition the
        run universe in ascending order.
        """
        masks = [0] * len(facts)
        errors: List[Optional[Exception]] = [None] * len(facts)
        self._scan_points(facts, self._scan_points_of(t, lo, hi), masks, errors)
        return masks, errors

    def _collect_leaves(
        self,
        fact: "Fact",
        t: Optional[int],
        pending: Dict[object, "Fact"],
        overlay: Optional[Dict[object, int]],
    ) -> None:
        """Gather the uncached non-connective subfacts of ``fact``.

        ``t`` selects the slice caches; ``None`` selects the run-mask
        caches.  Connectives are never scanned directly — they combine
        from their operands' masks — so only leaves land in ``pending``.
        """
        key = self._cache_key(fact, t)
        if key in pending:
            return
        if key in self._mask_cache(t) or (overlay is not None and key in overlay):
            return
        parts = self._connective(fact)
        if parts is None:
            # Facts that can state their own mask (e.g. action atoms
            # reading the (agent, action) tables) bypass the point scan
            # entirely and are cached immediately.
            mask = fact.engine_mask(self, t)
            if mask is not None:
                if overlay is None:
                    self._mask_cache(t)[key] = mask
                    self._note_action_free(fact)
                else:
                    overlay[key] = mask
            else:
                pending[key] = fact
        else:
            for operand in parts[1]:
                self._collect_leaves(operand, t, pending, overlay)

    def _cache_scanned(
        self,
        pending: Dict[object, "Fact"],
        t: Optional[int],
        overlay: Optional[Dict[object, int]],
    ) -> None:
        """Scan the pending leaves in one pass and cache the clean ones.

        Leaves whose ``holds`` raised are left uncached; when their
        mask is actually demanded, :meth:`_combine_mask` re-raises (for
        a top-level leaf) or falls back to per-point composite
        evaluation (for a guarded sub-fact), matching the pre-batching
        semantics.
        """
        masks, errors = self._scan_batch(list(pending.values()), t)
        self._absorb_scanned(pending, t, overlay, masks, errors)

    def _absorb_scanned(
        self,
        pending: Dict[object, "Fact"],
        t: Optional[int],
        overlay: Optional[Dict[object, int]],
        masks: Sequence[int],
        errors: Sequence[Optional[Exception]],
    ) -> None:
        """Write scan results for ``pending`` back into this index's caches.

        The single merge point for externally computed scans: a
        :class:`~repro.core.shard.ShardedExecutor` combines per-worker
        results and hands them here, so worker-side cache growth (lost
        with the fork) is re-absorbed by the parent under the same
        keying and ``_action_free`` discipline as an in-process scan.
        Errored facts stay uncached, exactly like :meth:`_cache_scanned`.
        """
        target = self._mask_cache(t) if overlay is None else overlay
        for (key, fact), mask, error in zip(pending.items(), masks, errors):
            if error is None:
                target[key] = mask
                if overlay is None:
                    self._note_action_free(fact)

    def events_of(self, facts: Sequence["Fact"], *, memo: bool = True) -> List[int]:
        """Satisfying-run masks for a batch of facts, one pass over the runs.

        All uncached leaf subfacts of the batch are evaluated in a
        single traversal of the run list (instead of one traversal per
        fact); boolean connectives combine from the leaf masks.  Results
        are identical to per-fact :meth:`runs_satisfying_mask` calls.
        """
        facts = list(facts)
        overlay: Optional[Dict[object, int]] = None if memo else {}
        pending: Dict[object, "Fact"] = {}
        for fact in facts:
            self._collect_leaves(fact, None, pending, overlay)
        if pending:
            self._cache_scanned(pending, None, overlay)
        return [self._combine_mask(fact, None, overlay) for fact in facts]

    def truths_at(
        self, facts: Sequence["Fact"], t: int, *, memo: bool = True
    ) -> List[int]:
        """Time-``t`` truth masks for a batch of facts, one slice pass.

        The batched analogue of :meth:`holds_mask_at`: the time-``t``
        slice is traversed once for all uncached leaves of the batch.
        """
        facts = list(facts)
        overlay: Optional[Dict[object, int]] = None if memo else {}
        pending: Dict[object, "Fact"] = {}
        for fact in facts:
            self._collect_leaves(fact, t, pending, overlay)
        if pending:
            self._cache_scanned(pending, t, overlay)
        return [self._combine_mask(fact, t, overlay) for fact in facts]

    def beliefs_batch(
        self,
        agent: AgentId,
        facts: Sequence["Fact"],
        local: LocalState,
        *,
        memo: bool = True,
        numeric: str = "exact",
    ) -> List[Probability]:
        """``mu_T(phi@l | l)`` for a batch of facts at one local state.

        Facts whose posterior is already cached are answered directly;
        the rest share one batched slice evaluation at the state's
        occurrence time.  Results are identical to per-fact
        :meth:`belief` calls; ``numeric`` selects the tier exactly as
        for :meth:`belief`.

        Raises:
            UnknownLocalStateError: when ``local`` never occurs for the
                agent.
        """
        if numeric != "exact":
            return self._lazy_beliefs_batch(agent, facts, local, memo, numeric)
        facts = list(facts)
        t, occurs = self._occurrence_or_raise(agent, local)
        results: List[Optional[Probability]] = [None] * len(facts)
        missing: List[int] = []
        for k, fact in enumerate(facts):
            cached = self._belief_cache.get((agent, self._fact_key(fact), local))
            if cached is not None:
                results[k] = cached
            else:
                missing.append(k)
        if missing:
            masks = self.truths_at([facts[k] for k in missing], t, memo=memo)
            for k, mask in zip(missing, masks):
                # repro: allow[RP007] exact-only tail: non-exact modes
                # returned via _lazy_beliefs_batch above.
                value = self.conditional(occurs & mask, occurs)
                results[k] = value
                if memo:
                    self._belief_cache[(agent, self._fact_key(facts[k]), local)] = value
                    self._note_action_free(facts[k])
        return results  # type: ignore[return-value]

    def _lazy_beliefs_batch(
        self,
        agent: AgentId,
        facts: Sequence["Fact"],
        local: LocalState,
        memo: bool,
        numeric: str,
    ) -> List[object]:
        """Batched posteriors as int-pair LazyProbs (or their floats)."""
        check_numeric_mode(numeric)
        facts = list(facts)
        t, occurs = self._occurrence_or_raise(agent, local)
        results: List[Optional[LazyProb]] = [None] * len(facts)
        missing: List[int] = []
        for k, fact in enumerate(facts):
            cached = self._lazy_beliefs.get((agent, self._fact_key(fact), local))
            if cached is not None:
                results[k] = cached
            else:
                missing.append(k)
        if missing:
            masks = self.truths_at([facts[k] for k in missing], t, memo=memo)
            for k, mask in zip(missing, masks):
                value = self._lazy_conditional(mask, occurs)
                results[k] = value
                if memo:
                    self._lazy_beliefs[(agent, self._fact_key(facts[k]), local)] = value
                    self._note_action_free(facts[k])
        if numeric == "float":
            return [value.approx for value in results]  # type: ignore[union-attr]
        return results  # type: ignore[return-value]

    def belief(
        self,
        agent: AgentId,
        phi: "Fact",
        local: LocalState,
        *,
        memo: bool = True,
        numeric: str = "exact",
    ) -> Probability:
        """``mu_T(phi@l | l)``, memoized per (agent, fact key, state).

        ``numeric="auto"`` returns the posterior as a
        :class:`~repro.core.lazyprob.LazyProb` built from the raw
        ``(satisfied total, occurrence total)`` integer pair — cached
        per (agent, fact key, state) like the exact posterior, but with
        no ``Fraction`` normalization unless a comparison escalates.
        ``numeric="float"`` returns that value's float approximation.

        Raises:
            UnknownLocalStateError: when ``local`` never occurs for the
                agent.
        """
        if numeric != "exact":
            return self._lazy_belief(agent, phi, local, memo, numeric)
        key = (agent, self._fact_key(phi), local)
        if memo:
            cached = self._belief_cache.get(key)
            if cached is not None:
                return cached
        t, occurs = self._occurrence_or_raise(agent, local)
        # Every run in the occurrence mask passes through ``local`` at
        # ``t`` (synchrony), so phi@l reduces to truth at time t.
        satisfied = occurs & self.holds_mask_at(phi, t, memo=memo)
        # repro: allow[RP007] exact-only tail: non-exact modes returned
        # via _lazy_belief above.
        result = self.conditional(satisfied, occurs)
        if memo:
            self._belief_cache[key] = result
            self._note_action_free(phi)
        return result

    def _lazy_belief(
        self, agent: AgentId, phi: "Fact", local: LocalState, memo: bool, numeric: str
    ):
        """The posterior as an int-pair LazyProb (or its float approx)."""
        check_numeric_mode(numeric)
        key = (agent, self._fact_key(phi), local)
        value: Optional[LazyProb] = self._lazy_beliefs.get(key) if memo else None
        if value is None:
            t, occurs = self._occurrence_or_raise(agent, local)
            satisfied = self.holds_mask_at(phi, t, memo=memo)
            value = self._lazy_conditional(satisfied, occurs)
            if memo:
                self._lazy_beliefs[key] = value
                self._note_action_free(phi)
        return value if numeric == "auto" else value.approx

    def threshold_kernel(
        self, agent: AgentId, phi: "Fact", action: Action
    ) -> ThresholdKernel:
        """The sorted/bisected threshold kernel of one belief family.

        Built once per (agent, fact key, action) from the acting
        posteriors — **exact** values, pulled through
        :meth:`belief`, so the sort keys land in (and are reused
        from) ``_belief_cache``, which derived indices inherit for
        action-free facts: a dense refrain sweep deriving hundreds of
        rows pays the posterior computations once and each row only
        the O(L log L) sort over cached ``Fraction`` values.  See
        :class:`repro.core.arraykernel.ThresholdKernel` for how grids
        are answered from it.
        """
        key = (agent, self._fact_key(phi), action)
        kernel = self._threshold_kernels.get(key)
        if kernel is None:
            kernel = ThresholdKernel(
                [
                    (self.belief(agent, phi, local), cell)
                    for local, cell in self.state_cells(agent, action).items()
                ]
            )
            self._threshold_kernels[key] = kernel
        return kernel

    def phi_at_action_mask(
        self, agent: AgentId, phi: "Fact", action: Action, *, memo: bool = True
    ) -> int:
        """The ``phi@alpha`` run mask for a *proper* action, memoized.

        Keyed on the caller's ``phi`` rather than a freshly built
        ``AtAction`` wrapper, so repeated queries — e.g. the theorem
        checkers each re-deriving the achieved probability of the same
        condition — hit the cache.  Evaluated through the per-slice
        truth masks of ``phi`` (grouping performing runs by performance
        time), so the same masks serve beliefs, knowledge, and
        independence checks of the same condition.
        """
        key = (agent, self._fact_key(phi), action)
        if memo:
            cached = self._at_action_cache.get(key)
            if cached is not None:
                return cached
        by_time: Dict[int, int] = {}
        if self.is_proper_action(agent, action):
            # Proper: every performing run performs exactly once, so
            # the per-edge records *are* the first-performance grouping
            # — no per-run expansion of performance_times needed.
            for t, mask in self._action_records.get((agent, action), ()):
                by_time[t] = by_time.get(t, 0) | mask
        else:
            for run_index, times in self.performance_times(agent, action).items():
                t = times[0]
                by_time[t] = by_time.get(t, 0) | (1 << run_index)
        try:
            mask = 0
            for t, performers in by_time.items():
                # Performing at t implies alive at t, so the slice mask
                # of phi covers every performer.
                mask |= performers & self.holds_mask_at(phi, t, memo=memo)
        except Exception:
            # phi is partial (its ``holds`` raises) on an alive run
            # that does not perform the action — runs the historic
            # per-performing-run evaluation never touched.  Restrict to
            # exactly those runs; a raise from one of *them* is genuine
            # and propagates.
            pps = self.pps
            runs = pps.runs
            mask = 0
            for run_index, times in self.performance_times(agent, action).items():
                if phi.holds(pps, runs[run_index], times[0]):
                    mask |= 1 << run_index
        if memo:
            self._at_action_cache[key] = mask
        return mask

    def common_components(
        self, agents: Tuple[AgentId, ...], t: int
    ) -> Dict[int, int]:
        """Run index -> reachable-component mask for the time-``t`` slice.

        Two runs are linked when some agent of the group has the same
        local state in both; the returned masks are the transitive
        closures used by common knowledge.
        """
        key = (agents, t)
        cached = self._component_cache.get(key)
        if cached is not None:
            return cached
        alive = list(bits(self.alive_mask(t)))
        parent: Dict[int, int] = {index: index for index in alive}

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for agent in agents:
            for mask in self.partition(agent, t).values():
                members = bits(mask)
                first = next(members, None)
                if first is None:
                    continue
                root = find(first)
                for other in members:
                    other_root = find(other)
                    if other_root != root:
                        parent[other_root] = root
        groups: Dict[int, int] = {}
        for index in alive:
            root = find(index)
            groups[root] = groups.get(root, 0) | (1 << index)
        components = {index: groups[find(index)] for index in alive}
        self._component_cache[key] = components
        return components

    def __repr__(self) -> str:
        return (
            f"SystemIndex({self.pps.name!r}, runs={self.run_count}, "
            f"cached_facts={len(self._fact_masks)}, "
            f"cached_beliefs={len(self._belief_cache)})"
        )
