"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch the whole family with a single ``except`` clause while
still being able to distinguish structural problems (malformed systems)
from semantic ones (e.g. asking for the belief held at a local state that
never occurs).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidSystemError",
    "NotStochasticError",
    "SynchronyViolationError",
    "ZeroProbabilityError",
    "ImproperActionError",
    "UnknownAgentError",
    "UnknownLocalStateError",
    "ConditioningOnNullEventError",
    "IndependenceError",
    "CompilationError",
    "FormulaError",
    "FaultSpecError",
    "ShmIntegrityError",
    "FaultExhaustedError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class InvalidSystemError(ReproError):
    """A purely probabilistic system (pps) violates a structural invariant."""


class NotStochasticError(InvalidSystemError):
    """Outgoing edge probabilities of an internal node do not sum to one."""


class SynchronyViolationError(InvalidSystemError):
    """The same agent local state occurs at two different times.

    The paper (Section 2.1) requires every local state to contain the
    current time, which implies a local state value can appear at one
    depth of the tree only.
    """


class ZeroProbabilityError(InvalidSystemError):
    """An edge of the tree carries probability outside the interval (0, 1].

    Definition of a pps requires ``pi : E -> (0, 1]``; zero-probability
    edges must simply be omitted from the tree.
    """


class ImproperActionError(ReproError):
    """An operation requiring a *proper* action was given an improper one.

    An action ``alpha`` is proper for agent ``i`` in ``T`` when it is
    performed at least once in ``T`` and at most once per run
    (Section 3.1).
    """


class UnknownAgentError(ReproError):
    """An agent name does not belong to the system under consideration."""


class UnknownLocalStateError(ReproError):
    """A local state does not occur anywhere in the system."""


class ConditioningOnNullEventError(ReproError):
    """A conditional probability was requested given a measure-zero event.

    In a pps every run has positive probability, so this arises only
    when conditioning on an *empty* event (e.g. on an action that is
    never performed).
    """


class IndependenceError(ReproError):
    """A theorem checker was invoked with its independence premise violated."""


class CompilationError(ReproError):
    """The protocol-to-pps compiler could not build a valid tree."""


class FormulaError(ReproError):
    """A logic-layer formula is malformed or cannot be parsed."""


class FaultSpecError(ReproError):
    """A ``REPRO_FAULTS`` specification string could not be parsed.

    The grammar is documented in :mod:`repro.core.faults` and
    ``docs/robustness.md``; unknown injection sites, malformed hit
    counts, and bad option values all land here so a typo'd chaos spec
    fails loudly instead of silently injecting nothing.
    """


class ShmIntegrityError(ReproError):
    """A shared-memory mask segment failed its length/checksum header.

    Raised by the shard-result transport when the bytes read back from
    a ``multiprocessing.shared_memory`` segment do not match the
    length+CRC header the worker wrote.  The supervisor treats this as
    a retryable shard failure.
    """


class FaultExhaustedError(ReproError):
    """A sharded task kept failing after every retry was spent.

    The message names the failing shard, the attempt budget, and the
    last underlying error, so chaos-test assertions (and operators) can
    see exactly which unit of work could not be completed.
    """
