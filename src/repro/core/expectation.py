"""Expected degree of belief and Jeffrey conditionalization (paper, Section 6).

Definition 6.1 defines the expected degree of agent ``i``'s belief in
``phi`` when it performs the proper action ``alpha`` as::

    E[beta_i(phi)@alpha | alpha]
        = sum_{r in R_T} mu_T(r | alpha) * (beta_i(phi)@alpha)[r]

The proof of the paper's main theorem (6.2) rewrites this sum through
the action-state partition ``{Q^{l_i}}`` of ``R_alpha``; the
decomposition is exposed here (:func:`expected_belief_decomposition`)
both because it is useful diagnostic output and because tests verify
each step of the derivation against it.

:func:`jeffrey_conditional` implements the generalized law of total
probability of Section 6.1::

    Pr(E | Y) = sum_k Pr(X_k | Y) * Pr(E | X_k & Y)

specialized to ``Y = R_alpha`` and ``X_k = Q^{l_k}``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict

from .actions import ensure_proper
from .arraykernel import div_bounds, dot_bounds
from .engine import SystemIndex
from .facts import Fact
from .lazyprob import LazyProb
from .numeric import Probability
from .pps import PPS, Action, AgentId, LocalState

__all__ = [
    "expected_belief",
    "BeliefCell",
    "expected_belief_decomposition",
    "jeffrey_conditional",
]


def expected_belief(
    pps: PPS, agent: AgentId, phi: Fact, action: Action, *, numeric: str = "exact"
) -> Probability:
    """``E[beta_i(phi)@alpha | alpha]`` (Definition 6.1).

    The action must be proper.  The conditioning event is ``R_alpha``;
    the variable is zero outside it, so conditioning only rescales.
    Computed through the action-state cells: the variable is constant
    on each cell ``Q^{l}``, so the sum collapses to one weighted term
    per acting local state.

    In ``"auto"`` mode the weighted sum runs as a float dot product
    with forward error bounds (:func:`repro.core.arraykernel.\
dot_bounds` over the engine's :meth:`~repro.core.engine.SystemIndex.\
mask_bounds` weight totals — the common denominator cancels against
    the conditioning), and the exact ``Fraction`` is deferred: its
    :meth:`~repro.core.lazyprob.LazyProb.exact` value equals the
    exact-mode ``Fraction`` bit-for-bit, since exact rational
    arithmetic is order-insensitive and reduced fractions are unique.
    ``"float"`` returns that dot product's approximation.
    """
    ensure_proper(pps, agent, action)
    index = SystemIndex.of(pps)
    performing = index.performing_mask(agent, action)
    if numeric == "exact":
        numerator = Fraction(0)
        for local, cell in index.state_cells(agent, action).items():
            numerator += index.probability(cell) * index.belief(agent, phi, local)
        return numerator / index.probability(performing)
    items = list(index.state_cells(agent, action).items())
    weight_bounds = [index.mask_bounds(cell) for _, cell in items]
    belief_bounds = []
    for local, _ in items:
        b = index.belief(agent, phi, local, numeric="auto")
        belief_bounds.append((b.approx, b.err))
    num_a, num_e = dot_bounds(weight_bounds, belief_bounds)
    approx, err = div_bounds(num_a, num_e, *index.mask_bounds(performing))
    if numeric == "float":
        return approx

    def pair():
        numerator = Fraction(0)
        for local, cell in items:
            # repro: allow[RP007] exact oracle thunk: LazyProb
            # escalation demands the exact values here by contract.
            numerator += index.probability(cell) * index.belief(agent, phi, local)
        # repro: allow[RP007] exact oracle thunk (see above).
        value = numerator / index.probability(performing)
        return value.numerator, value.denominator

    return LazyProb(approx, err, pair_thunk=pair)


@dataclass(frozen=True)
class BeliefCell:
    """One cell of the action-state decomposition of the expectation.

    Attributes:
        local: the local state ``l_i`` at which the action is performed.
        weight: ``mu_T(Q^{l_i} | alpha)`` — the probability, given that
            the action is performed, that it is performed at ``l_i``.
        belief: ``mu_T(phi@l_i | l_i)`` — the belief held there.
    """

    local: LocalState
    weight: Probability
    belief: Probability

    @property
    def contribution(self) -> Probability:
        return self.weight * self.belief


def expected_belief_decomposition(
    pps: PPS, agent: AgentId, phi: Fact, action: Action, *, numeric: str = "exact"
) -> Dict[LocalState, BeliefCell]:
    """The expectation broken down by acting local state.

    Summing ``cell.contribution`` over the returned mapping reproduces
    :func:`expected_belief` exactly (this is Equation (14) of the
    paper's Appendix D).  In ``"auto"`` mode the cell weights and
    beliefs are int-pair LazyProb values with identical exact values.
    """
    ensure_proper(pps, agent, action)
    index = SystemIndex.of(pps)
    performing = index.performing_mask(agent, action)
    cells: Dict[LocalState, BeliefCell] = {}
    for local, cell_mask in index.state_cells(agent, action).items():
        cells[local] = BeliefCell(
            local=local,
            weight=index.conditional(cell_mask, performing, numeric=numeric),
            belief=index.belief(agent, phi, local, numeric=numeric),
        )
    return cells


def jeffrey_conditional(
    pps: PPS, agent: AgentId, phi: Fact, action: Action, *, numeric: str = "exact"
) -> Probability:
    """Compute ``mu(phi@alpha | alpha)`` by Jeffrey conditionalization.

    Decomposes through the action-state partition::

        mu(phi@alpha | alpha)
            = sum_{l} mu(Q^l | alpha) * mu(phi@alpha | alpha@l)

    For local-state independent ``phi`` each inner conditional equals
    the belief ``mu(phi@l | l)`` (Lemma B.1), which is how Theorem 6.2
    follows; this function, however, computes the inner conditionals
    directly, so it agrees with ``mu(phi@alpha | alpha)`` for *all*
    facts, independent or not.  Tests exploit the contrast.
    """
    ensure_proper(pps, agent, action)
    index = SystemIndex.of(pps)
    phi_at_action = index.phi_at_action_mask(agent, phi, action)
    performing = index.performing_mask(agent, action)
    acc = Fraction(0) if numeric == "exact" else 0
    for cell_mask in index.state_cells(agent, action).values():
        if cell_mask == 0:
            continue
        weight = index.conditional(cell_mask, performing, numeric=numeric)
        acc = acc + weight * index.conditional(
            phi_at_action, cell_mask, numeric=numeric
        )
    return acc
