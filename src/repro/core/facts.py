"""Facts over purely probabilistic systems.

Following the paper's Section 2.3, a *fact* (or event) over a pps ``T``
is identified with the set of points at which it is true; we represent
it intensionally as a predicate ``holds(pps, run, t)``.

Some facts are *facts about runs*: their truth value at a point depends
only on the run, not on the time (``(T, r, t) |= psi`` iff
``(T, r, t') |= psi`` for all ``t, t'``).  These are modelled by
:class:`RunFact`; only run facts correspond directly to events of the
probability space over runs and may therefore be fed to
:func:`runs_satisfying`.

Boolean structure is provided through operator overloading: ``p & q``,
``p | q``, ``~p`` and ``p.implies(q)``.  The connectives preserve
run-fact-ness: a conjunction of run facts is itself (semantically and
class-wise) a run fact.

The temporal closures ``eventually(phi)`` and ``always(phi)`` lift a
transient fact to the run facts "phi holds at some point of the run" /
"phi holds at every point of the run" (the paper uses the former, e.g.
the run fact ``alpha`` is ``eventually(does_i(alpha))``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Optional, Set, Tuple

from .engine import SystemIndex, bits
from .measure import Event
from .pps import PPS, Run

__all__ = [
    "Fact",
    "RunFact",
    "LambdaFact",
    "LambdaRunFact",
    "And",
    "Or",
    "Not",
    "eventually",
    "always",
    "runs_satisfying",
    "points_satisfying",
    "fact_equivalent",
]


class Fact(ABC):
    """A (possibly transient) fact: a predicate over points of a pps."""

    label: str = "fact"
    _structural_key: Optional[Tuple[object, ...]] = None
    _mentions_actions: Optional[bool] = None

    def _structure(self) -> Optional[Tuple[object, ...]]:
        """The fact's structural fingerprint, or ``None`` when opaque.

        Subclasses whose semantics are fully determined by hashable
        attributes (operands, agents, actions, levels) override this to
        return those attributes; the engine may then share memo entries
        between equal-but-distinct instances.  The default ``None``
        keeps identity semantics for opaque facts (arbitrary
        predicates), which is always sound.
        """
        return None

    def structural_key(self) -> Tuple[object, ...]:
        """A hashable key identifying the fact up to syntactic structure.

        Two independently built facts with the same structure (same
        class, same operands) share one key, so the per-system engine
        caches hit across e.g. sweep rows that rebuild the same
        condition.  Facts without a declared structure fall back to an
        identity key that embeds the instance itself — collision-free,
        and pinning exactly what an identity-keyed cache would pin.

        The key is computed once and cached on the instance.
        """
        key = self._structural_key
        if key is None:
            parts = self._structure()
            if parts is None:
                key = (type(self).__qualname__, self)
            else:
                key = (type(self).__qualname__, *parts)
            self._structural_key = key
        return key

    def _action_dependence(self) -> bool:
        """Whether the fact's truth may depend on edge action labels.

        Subclasses whose semantics are a pure function of states,
        probabilities, and information partitions override this to
        ``False`` (or to derive it from their operands).  The default
        ``True`` is the conservative answer for opaque predicates,
        which may inspect ``run.action_of`` freely.
        """
        return True

    def mentions_actions(self) -> bool:
        """Whether evaluating the fact may inspect edge action labels.

        A structural (syntactic) property, computed once per instance:
        ``False`` guarantees the fact's truth masks and posteriors are
        identical in every system sharing this one's tree, states, and
        probabilities — which is exactly what a derived system
        (:class:`~repro.core.pps.DerivedPPS`) preserves.  The engine
        uses this to decide which memo-cache entries a derived index
        may inherit from its parent; ``True`` is always sound (it only
        forfeits cache reuse).
        """
        value = self._mentions_actions
        if value is None:
            value = self._action_dependence()
            self._mentions_actions = value
        return value

    def engine_mask(self, index, t) -> Optional[int]:
        """A direct bitmask for this fact, or ``None`` to point-scan.

        ``t`` selects the time slice (``None`` means the run-mask
        universe, where facts are evaluated at time 0).  Facts whose
        truth set is already tabulated by the engine — e.g. action
        atoms reading the (agent, action) tables — override this so
        the evaluator skips the per-(run, point) ``holds`` scan
        entirely.  The returned mask must equal exactly what that scan
        would produce (parity is asserted in the test-suite); ``None``
        (the default) is always sound.
        """
        return None

    @abstractmethod
    def holds(self, pps: PPS, run: Run, t: int) -> bool:
        """Whether the fact is true at the point ``(run, t)`` of ``pps``.

        ``run`` must be one of ``pps.runs``: the built-in operators
        (knowledge, beliefs, ``@``-operators, ``does``/``performed``)
        answer from ``pps``'s index tables keyed by ``run.index``, so
        a run of a *different* system paired with this ``pps`` is not
        meaningful (this has always been the semantic contract — the
        knowledge and belief operators compared foreign runs against
        ``pps.runs`` even before the indexed engine).
        """

    @property
    def is_run_fact(self) -> bool:
        """Whether truth at a point depends only on the run.

        This is a *structural* property: it is ``True`` when the fact
        is built from :class:`RunFact` leaves and boolean connectives.
        A transient fact may still happen to be time-invariant in a
        particular system; use :func:`repro.core.independence.is_run_based`
        for the semantic check.
        """
        return False

    def holds_in_run(self, pps: PPS, run: Run) -> bool:
        """Truth value in a run; only meaningful for run facts."""
        if not self.is_run_fact:
            raise TypeError(
                f"{self.label!r} is transient; its truth value needs a time. "
                "Wrap it with eventually()/always() or an @-operator first."
            )
        return self.holds(pps, run, 0)

    # Boolean structure ------------------------------------------------

    def __and__(self, other: "Fact") -> "Fact":
        return And(self, other)

    def __or__(self, other: "Fact") -> "Fact":
        return Or(self, other)

    def __invert__(self) -> "Fact":
        return Not(self)

    def implies(self, other: "Fact") -> "Fact":
        """Material implication ``self -> other``."""
        return Or(Not(self), other)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.label}>"


class RunFact(Fact):
    """A fact whose truth value is a property of the whole run."""

    @property
    def is_run_fact(self) -> bool:
        return True


# repro: allow[RP002] opaque predicate: nothing is known about action
# dependence, so the conservative default (True) is the only sound
# answer.
class LambdaFact(Fact):
    """A transient fact defined by an arbitrary point predicate."""

    def __init__(
        self, predicate: Callable[[PPS, Run, int], bool], label: str = "fact"
    ) -> None:
        self._predicate = predicate
        self.label = label

    def _structure(self) -> Tuple[object, ...]:
        # Keyed on the predicate object: wrapping the same callable
        # twice yields the same fact, while distinct closures (even of
        # the same code) stay distinct.
        return (self._predicate,)

    def holds(self, pps: PPS, run: Run, t: int) -> bool:
        return self._predicate(pps, run, t)


# repro: allow[RP002] opaque predicate: the conservative
# action-dependence default (True) is the only sound answer.
class LambdaRunFact(RunFact):
    """A run fact defined by an arbitrary run predicate."""

    def __init__(
        self, predicate: Callable[[PPS, Run], bool], label: str = "run-fact"
    ) -> None:
        self._predicate = predicate
        self.label = label

    def _structure(self) -> Tuple[object, ...]:
        return (self._predicate,)

    def holds(self, pps: PPS, run: Run, t: int) -> bool:
        return self._predicate(pps, run)


class And(Fact):
    """Conjunction of facts; a run fact when all conjuncts are."""

    def __init__(self, *conjuncts: Fact) -> None:
        if not conjuncts:
            raise ValueError("And() needs at least one conjunct")
        self.conjuncts: Tuple[Fact, ...] = conjuncts
        self.label = "(" + " & ".join(c.label for c in conjuncts) + ")"

    def _structure(self) -> Tuple[object, ...]:
        return tuple(c.structural_key() for c in self.conjuncts)

    def _action_dependence(self) -> bool:
        return any(c.mentions_actions() for c in self.conjuncts)

    def holds(self, pps: PPS, run: Run, t: int) -> bool:
        return all(c.holds(pps, run, t) for c in self.conjuncts)

    @property
    def is_run_fact(self) -> bool:
        return all(c.is_run_fact for c in self.conjuncts)


class Or(Fact):
    """Disjunction of facts; a run fact when all disjuncts are."""

    def __init__(self, *disjuncts: Fact) -> None:
        if not disjuncts:
            raise ValueError("Or() needs at least one disjunct")
        self.disjuncts: Tuple[Fact, ...] = disjuncts
        self.label = "(" + " | ".join(d.label for d in disjuncts) + ")"

    def _structure(self) -> Tuple[object, ...]:
        return tuple(d.structural_key() for d in self.disjuncts)

    def _action_dependence(self) -> bool:
        return any(d.mentions_actions() for d in self.disjuncts)

    def holds(self, pps: PPS, run: Run, t: int) -> bool:
        return any(d.holds(pps, run, t) for d in self.disjuncts)

    @property
    def is_run_fact(self) -> bool:
        return all(d.is_run_fact for d in self.disjuncts)


class Not(Fact):
    """Negation of a fact; a run fact when the operand is."""

    def __init__(self, operand: Fact) -> None:
        self.operand = operand
        self.label = f"~{operand.label}"

    def _structure(self) -> Tuple[object, ...]:
        return (self.operand.structural_key(),)

    def _action_dependence(self) -> bool:
        return self.operand.mentions_actions()

    def holds(self, pps: PPS, run: Run, t: int) -> bool:
        return not self.operand.holds(pps, run, t)

    @property
    def is_run_fact(self) -> bool:
        return self.operand.is_run_fact


class _Eventually(RunFact):
    def __init__(self, operand: Fact) -> None:
        self.operand = operand
        self.label = f"<>{operand.label}"

    def _structure(self) -> Tuple[object, ...]:
        return (self.operand.structural_key(),)

    def _action_dependence(self) -> bool:
        return self.operand.mentions_actions()

    def holds(self, pps: PPS, run: Run, t: int) -> bool:
        return any(self.operand.holds(pps, run, time) for time in run.times())


class _Always(RunFact):
    def __init__(self, operand: Fact) -> None:
        self.operand = operand
        self.label = f"[]{operand.label}"

    def _structure(self) -> Tuple[object, ...]:
        return (self.operand.structural_key(),)

    def _action_dependence(self) -> bool:
        return self.operand.mentions_actions()

    def holds(self, pps: PPS, run: Run, t: int) -> bool:
        return all(self.operand.holds(pps, run, time) for time in run.times())


def eventually(fact: Fact) -> RunFact:
    """The run fact "``fact`` holds at some point of the current run"."""
    return _Eventually(fact)


def always(fact: Fact) -> RunFact:
    """The run fact "``fact`` holds at every point of the current run"."""
    return _Always(fact)


def runs_satisfying(pps: PPS, fact: Fact) -> Event:
    """The event (set of run indices) where a run fact is true.

    The satisfying run set is computed once per fact *structural key*
    and memoized on the system's
    :class:`~repro.core.engine.SystemIndex`, so re-querying the same
    fact object — or a structurally equal rebuild of it — is O(1).

    Raises:
        TypeError: if ``fact`` is not structurally a run fact.
    """
    if not fact.is_run_fact:
        raise TypeError(
            f"{fact.label!r} is transient and does not denote a run event"
        )
    index = SystemIndex.of(pps)
    return index.event_of(index.runs_satisfying_mask(fact))


def points_satisfying(pps: PPS, fact: Fact) -> Set[Tuple[int, int]]:
    """All points ``(run index, time)`` at which ``fact`` holds.

    Evaluated one time slice at a time through the index's memoized
    per-slice truth masks, so repeated queries of the same fact object
    (e.g. both sides of :func:`fact_equivalent`) do not re-evaluate.
    """
    index = SystemIndex.of(pps)
    return {
        (run_index, t)
        for t in range(index.max_time + 1)
        for run_index in bits(index.holds_mask_at(fact, t))
    }


def fact_equivalent(pps: PPS, left: Fact, right: Fact) -> bool:
    """Whether two facts hold at exactly the same points of ``pps``."""
    return points_satisfying(pps, left) == points_satisfying(pps, right)
