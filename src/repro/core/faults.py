"""Deterministic fault injection + the execution degradation ladder.

This module is the control plane for the robustness story
(``docs/robustness.md``): a seeded, deterministic :class:`FaultPlan`
decides *when* the execution stack pretends to fail, and a process-wide
:class:`ResilienceReport` records *every* downgrade the stack performs
in response — so no fallback is ever silent, and chaos runs are exactly
reproducible.

Fault spec grammar (``REPRO_FAULTS`` env knob or :meth:`FaultPlan.parse`)::

    spec    = clause (";" clause)*
    clause  = option | fault
    option  = "seed=" INT | "hang=" FLOAT
    fault   = site ["@" key ("," key)*] [":" hits] ["~" prob]
    hits    = positive INT | "*"          (default 1)
    prob    = float in (0, 1]             (default 1.0 = always)

``site`` names one of the registered injection points (:data:`SITES`).
``key`` restricts the fault to particular units of work (shard indices,
chunk indices); without keys the fault applies to every unit.  ``hits``
bounds how many *attempts* fire: ``site:2`` fires on attempts 0 and 1,
so a supervisor with three tries recovers on the third — the idiom for
"transient" faults.  ``prob`` makes firing probabilistic but still
deterministic: the decision hashes ``(seed, site, key, attempt)``
through :func:`zlib.crc32`, never :func:`hash` (which is randomized per
process) and never a live RNG (which would differ across forks).

Examples::

    REPRO_FAULTS="shm-alloc:*"                  # every shm pack fails -> pickle
    REPRO_FAULTS="worker-crash@0"               # shard 0 dies on first attempt
    REPRO_FAULTS="task-submit:2;seed=7"         # first two submits of each chunk fail
    REPRO_FAULTS="shm-corrupt~0.5;seed=3"       # half the segments corrupted

Decisions are *attempt-keyed* wherever the caller can supply an attempt
number: a respawned worker re-running shard 3 on attempt 1 asks
``maybe_fire("worker-crash", key=3, attempt=1)`` and gets the same
answer the parent would predict, regardless of fork-copied counter
state.  Sites that have no natural retry (pure arrivals) fall back to a
per-``(site, key)`` arrival counter.

The degradation ladder (:data:`DEGRADATION_LADDER`) names the only
legal downgrades; :func:`record_degradation` rejects anything else, so
"degrade" can never quietly mean "change the answer":

    execution   parallel -> serial      (sharded pool -> in-process scan)
    transport   shm -> pickle           (shared-memory masks -> pickled bigints)
    backend     numpy -> python         (vectorized kernel -> pure-Python)

Every rung preserves Fraction-bit-identical measures, beliefs, and
theorem verdicts — ``tests/parity.py`` enforces this under injected
faults.
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .errors import FaultSpecError

__all__ = [
    "SITES",
    "DEGRADATION_LADDER",
    "FaultRule",
    "FaultEvent",
    "FaultPlan",
    "DegradationEvent",
    "RetryEvent",
    "ResilienceReport",
    "maybe_fire",
    "fault_plan",
    "set_fault_plan",
    "record_degradation",
    "record_retry",
    "resilience_report",
    "reset_resilience_report",
    "report_delta",
    "absorb_events",
]

#: Registered injection points, keyed by the module that honours them.
#:
#: ``core/shard.py``: ``worker-crash`` (worker process exits hard),
#: ``worker-hang`` (worker sleeps ``hang`` seconds), ``shm-alloc``
#: (shared-memory allocation raises ``OSError``), ``shm-corrupt``
#: (a byte of the packed segment is flipped after the header is
#: written).  ``core/arraykernel.py``: ``backend-import`` (the lazy
#: NumPy import raises ``ImportError``).  ``analysis/sweep.py``:
#: ``task-submit`` (submitting a chunk to the pool raises ``OSError``).
SITES = frozenset(
    {
        "worker-crash",
        "worker-hang",
        "shm-alloc",
        "shm-corrupt",
        "backend-import",
        "task-submit",
    }
)

#: The only legal downgrades, ``area -> (from_mode, to_mode)``.
DEGRADATION_LADDER: Dict[str, Tuple[str, str]] = {
    "execution": ("parallel", "serial"),
    "transport": ("shm", "pickle"),
    "backend": ("numpy", "python"),
}

_UNBOUNDED = None  # hits value meaning "fire on every attempt"


@dataclass(frozen=True)
class FaultRule:
    """One parsed fault clause: which site, which keys, how often."""

    site: str
    keys: Optional[Tuple[str, ...]] = None  # None = all keys
    hits: Optional[int] = 1  # None = unbounded ("*")
    prob: float = 1.0

    def matches_key(self, key: object) -> bool:
        return self.keys is None or str(key) in self.keys


@dataclass(frozen=True)
class FaultEvent:
    """A fault that actually fired (recorded on :attr:`FaultPlan.fired`)."""

    site: str
    key: Optional[str]
    attempt: int


class FaultPlan:
    """A parsed, seeded fault specification.

    Instances are deterministic pure functions of ``(spec, seed)``: the
    same plan asked the same ``(site, key, attempt)`` question always
    answers the same way.  The only mutable state is the per-site
    arrival counter used when the caller cannot supply an ``attempt``,
    and the :attr:`fired` log.
    """

    def __init__(
        self,
        rules: Sequence[FaultRule] = (),
        *,
        seed: int = 0,
        hang_seconds: float = 5.0,
    ) -> None:
        for rule in rules:
            if rule.site not in SITES:
                raise FaultSpecError(
                    f"unknown fault site {rule.site!r}; known sites: "
                    + ", ".join(sorted(SITES))
                )
        self.rules: Tuple[FaultRule, ...] = tuple(rules)
        self.seed = int(seed)
        self.hang_seconds = float(hang_seconds)
        self.fired: List[FaultEvent] = []
        self._counters: Dict[Tuple[str, str], int] = {}

    # -- parsing -----------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a ``REPRO_FAULTS`` spec string (grammar in module docs)."""
        rules: List[FaultRule] = []
        seed = 0
        hang = 5.0
        for raw in spec.split(";"):
            clause = raw.strip()
            if not clause:
                continue
            if "=" in clause:
                name, _, value = clause.partition("=")
                name = name.strip()
                value = value.strip()
                if name == "seed":
                    try:
                        seed = int(value)
                    except ValueError:
                        raise FaultSpecError(
                            f"seed must be an integer, got {value!r}"
                        ) from None
                elif name == "hang":
                    try:
                        hang = float(value)
                    except ValueError:
                        raise FaultSpecError(
                            f"hang must be a float, got {value!r}"
                        ) from None
                    if hang < 0:
                        raise FaultSpecError("hang must be non-negative")
                else:
                    raise FaultSpecError(
                        f"unknown option {name!r} (expected seed= or hang=)"
                    )
                continue
            rules.append(cls._parse_fault(clause))
        return cls(rules, seed=seed, hang_seconds=hang)

    @staticmethod
    def _parse_fault(clause: str) -> FaultRule:
        prob = 1.0
        if "~" in clause:
            clause, _, prob_text = clause.partition("~")
            try:
                prob = float(prob_text)
            except ValueError:
                raise FaultSpecError(
                    f"probability must be a float, got {prob_text!r}"
                ) from None
            if not 0.0 < prob <= 1.0:
                raise FaultSpecError(
                    f"probability must be in (0, 1], got {prob}"
                )
        hits: Optional[int] = 1
        if ":" in clause:
            clause, _, hits_text = clause.partition(":")
            hits_text = hits_text.strip()
            if hits_text == "*":
                hits = _UNBOUNDED
            else:
                try:
                    hits = int(hits_text)
                except ValueError:
                    raise FaultSpecError(
                        f"hit count must be a positive integer or '*', "
                        f"got {hits_text!r}"
                    ) from None
                if hits <= 0:
                    raise FaultSpecError(
                        f"hit count must be positive, got {hits}"
                    )
        keys: Optional[Tuple[str, ...]] = None
        if "@" in clause:
            clause, _, keys_text = clause.partition("@")
            keys = tuple(
                key.strip() for key in keys_text.split(",") if key.strip()
            )
            if not keys:
                raise FaultSpecError(f"empty key list in {clause!r}@")
        site = clause.strip()
        if site not in SITES:
            raise FaultSpecError(
                f"unknown fault site {site!r}; known sites: "
                + ", ".join(sorted(SITES))
            )
        return FaultRule(site=site, keys=keys, hits=hits, prob=prob)

    # -- decisions ---------------------------------------------------

    def should_fire(
        self,
        site: str,
        key: object = None,
        attempt: Optional[int] = None,
    ) -> bool:
        """Deterministically decide whether ``site`` fails this time.

        ``attempt`` is the retry ordinal of the unit of work (0 on the
        first try).  Supply it whenever the caller knows it — decisions
        become pure functions of ``(site, key, attempt)``, immune to
        fork-copied counter state.  Without it, a per-``(site, key)``
        arrival counter stands in.
        """
        if site not in SITES:
            raise FaultSpecError(f"unknown fault site {site!r}")
        rule = self._rule_for(site, key)
        if rule is None:
            return False
        if attempt is None:
            counter_key = (site, str(key))
            attempt = self._counters.get(counter_key, 0)
            self._counters[counter_key] = attempt + 1
        if rule.hits is not _UNBOUNDED and attempt >= rule.hits:
            return False
        if rule.prob < 1.0 and not self._coin(site, key, attempt, rule.prob):
            return False
        self.fired.append(
            FaultEvent(site=site, key=None if key is None else str(key), attempt=attempt)
        )
        return True

    def _rule_for(self, site: str, key: object) -> Optional[FaultRule]:
        for rule in self.rules:
            if rule.site == site and rule.matches_key(key):
                return rule
        return None

    def _coin(self, site: str, key: object, attempt: int, prob: float) -> bool:
        token = f"{self.seed}:{site}:{key}:{attempt}".encode("utf-8")
        return zlib.crc32(token) / 2**32 < prob

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultPlan(rules={list(self.rules)!r}, seed={self.seed}, "
            f"hang_seconds={self.hang_seconds})"
        )


# -- active plan (env knob + programmatic override) -------------------

_active: Optional[FaultPlan] = None
_env_loaded = False


def _current_plan() -> Optional[FaultPlan]:
    global _active, _env_loaded
    if not _env_loaded:
        _env_loaded = True
        spec = os.environ.get("REPRO_FAULTS", "")
        if spec.strip():
            _active = FaultPlan.parse(spec)
    return _active


def fault_plan() -> Optional[FaultPlan]:
    """The active :class:`FaultPlan`, or ``None`` when injection is off."""
    return _current_plan()


def set_fault_plan(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Install ``plan`` as the active plan (``None`` disables injection).

    Overrides the ``REPRO_FAULTS`` env knob either way.  Returns the
    previously active plan so callers can restore it in ``finally``.
    """
    global _active, _env_loaded
    if plan is not None and not isinstance(plan, FaultPlan):
        raise TypeError(f"expected FaultPlan or None, got {type(plan).__name__}")
    previous = _current_plan()
    _active = plan
    _env_loaded = True
    return previous


def maybe_fire(
    site: str, key: object = None, attempt: Optional[int] = None
) -> bool:
    """``True`` when the active plan wants ``site`` to fail this time.

    The hot-path cost with no plan installed is one global read and an
    ``is None`` test — ``bench_fault_overhead.py`` gates it at <2% on
    the shard-scaling family.
    """
    plan = _active if _env_loaded else _current_plan()
    if plan is None:
        return False
    return plan.should_fire(site, key, attempt)


def hang_seconds() -> float:
    """How long a ``worker-hang`` fault should sleep (plan knob)."""
    plan = _current_plan()
    return plan.hang_seconds if plan is not None else 0.0


# -- degradation ladder + resilience report ---------------------------


@dataclass(frozen=True)
class DegradationEvent:
    """One recorded downgrade along :data:`DEGRADATION_LADDER`."""

    area: str  # "execution" | "transport" | "backend"
    from_mode: str
    to_mode: str
    reason: str  # short machine-greppable cause, e.g. "broken-pool"
    detail: str = ""  # free-form context, e.g. the repr of the error


@dataclass(frozen=True)
class RetryEvent:
    """One supervised retry (not a ladder move, but observable)."""

    site: str  # what was retried, e.g. "shard" or "submit"
    key: str  # which unit, e.g. the shard index
    attempt: int  # the attempt that failed (0-based)
    error: str  # repr of the failure that triggered the retry


@dataclass
class ResilienceReport:
    """Queryable log of every downgrade and retry in this process."""

    events: List[DegradationEvent] = field(default_factory=list)
    retries: List[RetryEvent] = field(default_factory=list)

    def degradations(self, area: Optional[str] = None) -> List[DegradationEvent]:
        if area is None:
            return list(self.events)
        return [event for event in self.events if event.area == area]

    def summary(self) -> str:
        lines = [
            f"degradations={len(self.events)} retries={len(self.retries)}"
        ]
        for event in self.events:
            lines.append(
                f"  {event.area}: {event.from_mode} -> {event.to_mode} "
                f"[{event.reason}] {event.detail}".rstrip()
            )
        for retry in self.retries:
            lines.append(
                f"  retry {retry.site}@{retry.key} attempt={retry.attempt}: "
                f"{retry.error}"
            )
        return "\n".join(lines)


_report = ResilienceReport()


def resilience_report() -> ResilienceReport:
    """The process-wide report (workers reset + ship deltas back)."""
    return _report


def reset_resilience_report() -> ResilienceReport:
    """Start a fresh report; returns the one being replaced."""
    global _report
    previous = _report
    _report = ResilienceReport()
    return previous


def record_degradation(
    area: str, from_mode: str, to_mode: str, reason: str, detail: str = ""
) -> DegradationEvent:
    """Record one downgrade; rejects moves not on the ladder."""
    expected = DEGRADATION_LADDER.get(area)
    if expected is None:
        raise ValueError(
            f"unknown degradation area {area!r}; known: "
            + ", ".join(sorted(DEGRADATION_LADDER))
        )
    if (from_mode, to_mode) != expected:
        raise ValueError(
            f"illegal degradation {from_mode!r} -> {to_mode!r} for area "
            f"{area!r}; the ladder allows {expected[0]!r} -> {expected[1]!r}"
        )
    event = DegradationEvent(
        area=area,
        from_mode=from_mode,
        to_mode=to_mode,
        reason=reason,
        detail=detail,
    )
    _report.events.append(event)
    return event


def record_retry(site: str, key: object, attempt: int, error: object) -> RetryEvent:
    """Record one supervised retry of a failed unit of work."""
    event = RetryEvent(
        site=site, key=str(key), attempt=int(attempt), error=repr(error)
    )
    _report.retries.append(event)
    return event


def report_delta() -> Tuple[Tuple[DegradationEvent, ...], Tuple[RetryEvent, ...]]:
    """Picklable snapshot of the current report (worker -> parent wire)."""
    return tuple(_report.events), tuple(_report.retries)


def absorb_events(
    delta: Tuple[Sequence[DegradationEvent], Sequence[RetryEvent]]
) -> None:
    """Merge a worker's :func:`report_delta` into this process's report."""
    events, retries = delta
    _report.events.extend(events)
    _report.retries.extend(retries)
