"""Local-state independence and past-based facts (paper, Section 4).

Definition 4.1: ``phi`` is *local-state independent* of a proper action
``alpha`` in ``T`` if, for every local state ``l_i`` of the agent,

    mu(phi@l_i | l_i) * mu(alpha@l_i | l_i)  ==  mu([phi & alpha]@l_i | l_i)

where ``alpha@l_i`` abbreviates ``does_i(alpha)@l_i``.  Intuitively, at
each local state the event "phi holds now" is probabilistically
independent of "the action is being performed now".  The condition is
what rescues both the sufficiency theorem (4.2) and the expectation
identity (6.2) from the mixed-action counterexamples of Figures 1.

Lemma 4.3 gives the two standard sufficient conditions, both decidable
here exactly:

* (a) the action is deterministic (a function of the local state) —
  :func:`repro.core.actions.is_deterministic_action`;
* (b) the fact is *past-based*: runs agreeing up to time ``t`` agree on
  ``phi`` at ``t`` — :func:`is_past_based`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .engine import SystemIndex
from .facts import Fact
from .lazyprob import check_numeric_mode
from .numeric import Probability
from .pps import PPS, Action, AgentId, LocalState

__all__ = [
    "is_past_based",
    "is_run_based",
    "IndependenceWitness",
    "independence_report",
    "is_local_state_independent",
    "lemma_4_3_applies",
]


def is_past_based(pps: PPS, phi: Fact) -> bool:
    """Whether ``phi`` is past-based in ``pps``.

    ``phi`` is past-based when, for every pair of runs that agree up to
    (and including) time ``t``, the fact holds at time ``t`` in both or
    in neither.  Runs agree up to ``t`` exactly when they extend the
    same time-``t`` node, so it suffices to check that ``phi`` is
    constant across the runs passing through each node — a mask
    comparison against the memoized per-slice truth masks.
    """
    index = SystemIndex.of(pps)
    for node in pps.state_nodes():
        through = index.node_mask(node)
        if through & (through - 1) == 0:
            continue  # zero or one run through the node: trivially constant
        satisfied = through & index.holds_mask_at(phi, node.time)
        if satisfied != 0 and satisfied != through:
            return False
    return True


def is_run_based(pps: PPS, phi: Fact) -> bool:
    """Semantic check that ``phi`` is a fact about runs in this system.

    Unlike :attr:`repro.core.facts.Fact.is_run_fact` (a structural
    property), this checks time-invariance of the truth value in every
    run of the given system.
    """
    for run in pps.runs:
        values = {phi.holds(pps, run, t) for t in run.times()}
        if len(values) > 1:
            return False
    return True


@dataclass(frozen=True)
class IndependenceWitness:
    """Per-local-state data for Definition 4.1.

    Attributes:
        local: the local state ``l_i``.
        prob_phi: ``mu(phi@l | l)``.
        prob_action: ``mu(does(alpha)@l | l)``.
        prob_joint: ``mu([phi & does(alpha)]@l | l)``.
    """

    local: LocalState
    prob_phi: Probability
    prob_action: Probability
    prob_joint: Probability

    @property
    def independent(self) -> bool:
        return self.prob_phi * self.prob_action == self.prob_joint


def independence_report(
    pps: PPS, phi: Fact, agent: AgentId, action: Action, *, numeric: str = "exact"
) -> Dict[LocalState, IndependenceWitness]:
    """Evaluate Definition 4.1 at every occurring local state of the agent.

    Local states at which the action is never performed satisfy the
    condition trivially (both sides are zero) but are still reported,
    so callers can inspect the full picture.

    Each witness needs one pass over the local state's occurrence
    mask: the performance cells ``Q^{l}`` supply ``does(alpha)@l`` and
    the memoized slice mask supplies ``phi@l``.

    With ``numeric="auto"`` the three conditionals are int-pair
    :class:`~repro.core.lazyprob.LazyProb` values: a *dependent*
    witness is usually refuted in float, while the equality of an
    independent one escalates to an integer cross-multiplication — no
    ``Fraction`` normalization either way, same verdict always.
    """
    check_numeric_mode(numeric)
    report: Dict[LocalState, IndependenceWitness] = {}
    index = SystemIndex.of(pps)
    cells = index.state_cells(agent, action)
    for local in index.local_states(agent):
        t, occurs = index.occurrence(agent, local)  # type: ignore[misc]
        phi_at = occurs & index.holds_mask_at(phi, t)
        act_at = cells.get(local, 0)
        report[local] = IndependenceWitness(
            local=local,
            prob_phi=index.conditional(phi_at, occurs, numeric=numeric),
            prob_action=index.conditional(act_at, occurs, numeric=numeric),
            prob_joint=index.conditional(phi_at & act_at, occurs, numeric=numeric),
        )
    return report


def is_local_state_independent(
    pps: PPS, phi: Fact, agent: AgentId, action: Action, *, numeric: str = "exact"
) -> bool:
    """Whether ``phi`` is local-state independent of ``action`` (Def. 4.1).

    The verdict is memoized per (fact key, agent, action) on the
    system index: it is a pure function of those inputs, every theorem
    premise re-derives it, and it is identical in every numeric mode
    (``"auto"`` escalates inside the uncertainty window; ``"float"``
    answers from round-off and is excluded from the shared cache).
    """
    check_numeric_mode(numeric)
    index = SystemIndex.of(pps)
    if numeric == "float":
        # Round-off verdicts never touch the shared cache — neither
        # serving exact verdicts on hits nor poisoning it on misses —
        # so float-mode answers don't depend on what ran before.
        return all(
            witness.independent
            for witness in independence_report(
                pps, phi, agent, action, numeric="float"
            ).values()
        )
    key = (index._fact_key(phi), agent, action)
    cached = index._independence_cache.get(key)
    if cached is not None:
        return cached
    verdict = all(
        witness.independent
        for witness in independence_report(
            pps, phi, agent, action, numeric=numeric
        ).values()
    )
    index._independence_cache[key] = verdict
    return verdict


def lemma_4_3_applies(
    pps: PPS, phi: Fact, agent: AgentId, action: Action
) -> Tuple[bool, List[str]]:
    """Which sufficient conditions of Lemma 4.3 hold, if any.

    Returns:
        a pair ``(applies, reasons)`` where ``reasons`` lists the
        satisfied premises (``"deterministic-action"`` and/or
        ``"past-based-fact"``).
    """
    from .actions import is_deterministic_action  # late import, small cycle

    reasons: List[str] = []
    if is_deterministic_action(pps, agent, action):
        reasons.append("deterministic-action")
    if is_past_based(pps, phi):
        reasons.append("past-based-fact")
    return bool(reasons), reasons
