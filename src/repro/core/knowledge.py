"""Classical (non-probabilistic) knowledge operators.

Knowledge is truth in all indistinguishable points (Fagin, Halpern,
Moses, Vardi — the interpreted-systems semantics): agent ``i`` *knows*
``phi`` at ``(r, t)`` when ``phi`` holds at every point ``(r', t')``
with ``r'_i(t') = r_i(t)``.  In a synchronous system indistinguishable
points share the time, so the check only scans the time-``t`` slice.

Also provided: ``E_G`` (everyone in the group knows) and ``C_G``
(common knowledge), the latter computed as truth throughout the
connected component of the point under the union of the agents'
indistinguishability relations — the standard finite-system fixpoint
characterization.

These operators give the baseline against which the paper's
probabilistic generalization is compared: the classical Knowledge of
Preconditions principle (:mod:`repro.core.kop`) is exactly the
``p = 1`` limit of the belief results (Lemma F.1).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Tuple

from .engine import SystemIndex, bits
from .facts import Fact
from .pps import PPS, AgentId, Run

__all__ = [
    "indistinguishable_points",
    "Knows",
    "knows",
    "EveryoneKnows",
    "everyone_knows",
    "CommonKnowledge",
    "common_knowledge",
    "knowledge_partition",
]

Point = Tuple[int, int]  # (run index, time)


def indistinguishable_points(
    pps: PPS, agent: AgentId, run: Run, t: int
) -> List[Point]:
    """All points the agent cannot distinguish from ``(run, t)``.

    Includes the point itself (the relation is reflexive).  Synchrony
    restricts candidates to the same time slice.
    """
    local = run.local(agent, t)
    index = SystemIndex.of(pps)
    cell = index.partition(agent, t).get(local, 0)
    return [(other, t) for other in bits(cell)]


def knowledge_partition(
    pps: PPS, agent: AgentId, t: int
) -> Dict[object, FrozenSet[int]]:
    """Partition of the time-``t`` runs by the agent's local state.

    Maps each local state occurring at time ``t`` to the indices of the
    runs passing through it — the agent's information cells.  Served
    from the index's precomputed per-time partition tables.
    """
    index = SystemIndex.of(pps)
    return {
        local: index.event_of(mask)
        for local, mask in index.partition(agent, t).items()
    }


class Knows(Fact):
    """The transient fact ``K_i(phi)``."""

    def __init__(self, agent: AgentId, phi: Fact) -> None:
        self.agent = agent
        self.phi = phi
        self.label = f"K[{agent}]({phi.label})"

    def _structure(self):
        return (self.agent, self.phi.structural_key())

    def _action_dependence(self) -> bool:
        # Knowledge is a function of the partitions (label-independent)
        # and of phi's truth masks.
        return self.phi.mentions_actions()

    def holds(self, pps: PPS, run: Run, t: int) -> bool:
        index = SystemIndex.of(pps)
        cell = index.partition(self.agent, t).get(run.local(self.agent, t), 0)
        # Knowledge = the information cell is contained in phi's
        # time-t truth mask (memoized per fact structural key and slice).
        return cell & ~index.holds_mask_at(self.phi, t) == 0


def knows(agent: AgentId, phi: Fact) -> Knows:
    """The fact that ``agent`` knows ``phi`` (truth in all local-state twins)."""
    return Knows(agent, phi)


class EveryoneKnows(Fact):
    """The transient fact ``E_G(phi)``: every agent in ``G`` knows ``phi``."""

    def __init__(self, agents: Iterable[AgentId], phi: Fact) -> None:
        self.agents = tuple(agents)
        self.phi = phi
        self.label = f"E[{','.join(self.agents)}]({phi.label})"

    def _structure(self):
        return (self.agents, self.phi.structural_key())

    def _action_dependence(self) -> bool:
        return self.phi.mentions_actions()

    def holds(self, pps: PPS, run: Run, t: int) -> bool:
        return all(Knows(agent, self.phi).holds(pps, run, t) for agent in self.agents)


def everyone_knows(agents: Iterable[AgentId], phi: Fact) -> EveryoneKnows:
    """The fact that everyone in the group knows ``phi``."""
    return EveryoneKnows(agents, phi)


class CommonKnowledge(Fact):
    """The transient fact ``C_G(phi)``.

    Computed per time slice: two runs are linked when some agent of the
    group has the same local state in both; ``C_G(phi)`` holds at
    ``(r, t)`` iff ``phi`` holds at ``(r', t)`` for every ``r'`` in the
    transitive closure of the links from ``r`` (including ``r`` itself).
    The component masks are cached on the system index per
    (group, time), so they are shared across operator instances.
    """

    def __init__(self, agents: Iterable[AgentId], phi: Fact) -> None:
        self.agents = tuple(agents)
        self.phi = phi
        self.label = f"C[{','.join(self.agents)}]({phi.label})"

    def _structure(self):
        return (self.agents, self.phi.structural_key())

    def _action_dependence(self) -> bool:
        return self.phi.mentions_actions()

    def holds(self, pps: PPS, run: Run, t: int) -> bool:
        index = SystemIndex.of(pps)
        component = index.common_components(self.agents, t)[run.index]
        return component & ~index.holds_mask_at(self.phi, t) == 0


def common_knowledge(agents: Iterable[AgentId], phi: Fact) -> CommonKnowledge:
    """The fact that ``phi`` is common knowledge among ``agents``."""
    return CommonKnowledge(agents, phi)
