"""The classical Knowledge of Preconditions principle (KoP).

The KoP theorem ([30] in the paper) states: if ``phi`` is a *necessary
condition* for performing ``alpha`` (``phi`` surely holds whenever the
action is performed), then the agent *knows* ``phi`` whenever it
performs ``alpha``.

The paper's Theorem 6.2 is the probabilistic generalization, and
Lemma F.1 recovers the KoP in the ``p = 1`` limit:
``mu(phi@alpha | alpha) = 1`` forces acting belief 1 with probability 1.
(In a pps, belief 1 and knowledge coincide for measurable conditions
because every run has positive probability — :func:`check_kop` verifies
both formulations.)

This module provides the deterministic baseline checker so the
library's probabilistic results can be compared against the classical
principle on the same systems.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .actions import ensure_proper, performance_time
from .beliefs import belief_at
from .facts import Fact
from .knowledge import Knows
from .numeric import ONE
from .pps import PPS, Action, AgentId

__all__ = ["is_necessary_condition", "KoPReport", "check_kop"]

Point = Tuple[int, int]


def is_necessary_condition(
    pps: PPS, agent: AgentId, action: Action, phi: Fact
) -> bool:
    """Whether ``phi`` holds at every point where the action is performed.

    This is the KoP premise: performing the action guarantees ``phi``
    (in every run, not merely with high probability).
    """
    for run in pps.runs:
        for t in run.performs(agent, action):
            if not phi.holds(pps, run, t):
                return False
    return True


@dataclass
class KoPReport:
    """Outcome of checking the KoP on a concrete system.

    Attributes:
        necessary: whether ``phi`` is a necessary condition for the
            action (the premise).
        known_when_acting: whether ``K_i(phi)`` holds at every
            performance point (the classical conclusion).
        belief_one_when_acting: whether ``beta_i(phi) = 1`` at every
            performance point (the probabilistic formulation).
        failures: performance points where knowledge fails (empty when
            the principle holds, or when the premise fails).
    """

    necessary: bool
    known_when_acting: bool
    belief_one_when_acting: bool
    failures: List[Point] = field(default_factory=list)

    @property
    def verified(self) -> bool:
        """Whether the KoP implication holds on this system."""
        return (not self.necessary) or (
            self.known_when_acting and self.belief_one_when_acting
        )


def check_kop(
    pps: PPS, agent: AgentId, action: Action, phi: Fact, *, numeric: str = "exact"
) -> KoPReport:
    """Evaluate the Knowledge of Preconditions principle.

    The action must be proper (so the probabilistic comparison with
    Lemma F.1 is meaningful on the same inputs).  ``numeric="auto"``
    decides the per-point belief-one comparisons through the float
    filter (a belief well below 1 is refuted without exact arithmetic;
    one equal to 1 escalates), with verdicts identical to exact mode.
    """
    ensure_proper(pps, agent, action)
    necessary = is_necessary_condition(pps, agent, action, phi)
    knowledge = Knows(agent, phi)
    known = True
    belief_one = True
    failures: List[Point] = []
    for run in pps.runs:
        t = performance_time(pps, agent, action, run)
        if t is None:
            continue
        if not knowledge.holds(pps, run, t):
            known = False
            failures.append((run.index, t))
        if belief_at(pps, agent, phi, run, t, numeric=numeric) != ONE:
            belief_one = False
            if (run.index, t) not in failures:
                failures.append((run.index, t))
    return KoPReport(
        necessary=necessary,
        known_when_acting=known,
        belief_one_when_acting=belief_one,
        failures=failures,
    )
