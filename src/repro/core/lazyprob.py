"""The two-tier numeric kernel: a float fast path with exact fallback.

Everything the library reports is an exact rational, and PRs 1-4 made
the *set* side of every query cheap; what remains on dense sweeps is
the arithmetic itself — thousands of :class:`~fractions.Fraction`
divisions and comparisons whose results are only ever compared against
a threshold, never shown to anyone.  ``Fraction`` pays a gcd
normalization per construction and per arithmetic step; a threshold
verdict almost never needs that.

:class:`LazyProb` is the classical *floating-point filter* of exact
geometric computation (LEDA / CGAL adaptive predicates), specialised to
the engine's integer-weight probability kernel.  A value carries three
tiers of representation:

1. a **float approximation** ``approx`` plus a conservative error bound
   ``err``, maintained through arithmetic by forward error analysis —
   the true value provably lies in ``[approx - err, approx + err]``;
2. an **unnormalized integer pair** ``num/den`` (``den > 0``) when the
   value came from the kernel or from pair arithmetic — exact, but
   never gcd-reduced, so producing and combining pairs costs plain
   integer multiplications instead of ``Fraction`` normalizations;
3. a **normalized** :class:`~fractions.Fraction`, materialized only on
   demand (:meth:`exact`) — bit-identical to what the all-exact code
   path computes, because a reduced rational is unique.

Comparisons resolve in tier 1 whenever the two intervals are disjoint
by a safe margin; otherwise they *escalate* — tier 2 integer
cross-multiplication when both sides carry pairs, tier 3 ``Fraction``
arithmetic as the last resort.  Escalations are counted
(:func:`numeric_stats`) so benchmarks and tests can prove the fallback
actually fires on engineered boundary inputs.

The contract that makes the fast path safe to thread everywhere: **a
comparison's verdict is always identical to exact arithmetic's**, and
:meth:`exact` always returns the identical ``Fraction``.  The tiers
change how an answer is computed, never the answer.

See ``docs/numerics.md`` for the error-bound discipline and the
``numeric=`` knob that routes engine queries through this type.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Optional, Tuple, Union

from .numeric import as_fraction

__all__ = [
    "LazyProb",
    "NumericStats",
    "NUMERIC_MODES",
    "check_numeric_mode",
    "exact_value",
    "approx_value",
    "numeric_stats",
    "reset_numeric_stats",
    "absorb_stats",
    "escalation_count",
    "count_comparisons",
    "count_batch",
    "REL_EPS",
    "ABS_EPS",
]

# One float operation introduces at most half an ulp of relative error;
# every bound below budgets a full ulp (2^-52) per rounded step and a
# tiny absolute cushion for the subnormal range, where relative bounds
# do not hold.  Bounds are *conservative*: over-estimating err costs at
# worst a spurious escalation, never a wrong verdict.  REL_EPS/ABS_EPS
# are the public names: batched kernels that inline the filter (e.g.
# ``beliefs._met_mask``) must share these constants, never restate
# them.
REL_EPS = 2.0 ** -52
ABS_EPS = 1e-300
_REL = REL_EPS
_ABS = ABS_EPS

NUMERIC_MODES = ("exact", "float", "auto")


def check_numeric_mode(numeric: str) -> str:
    """Validate a ``numeric=`` knob value and return it.

    Raises:
        ValueError: for anything other than ``"exact"`` (all-Fraction,
            the default everywhere), ``"float"`` (raw floats, no
            guarantees — interactive exploration only), or ``"auto"``
            (:class:`LazyProb`: float-fast, exact-on-demand, verdicts
            guaranteed identical to ``"exact"``).
    """
    if numeric not in NUMERIC_MODES:
        raise ValueError(
            f"numeric mode must be one of {NUMERIC_MODES}, got {numeric!r}"
        )
    return numeric


@dataclass
class NumericStats:
    """Observability counters for the float filter.

    Attributes:
        comparisons: total LazyProb comparisons performed.
        escalations: how many could not be certified in float and fell
            back to exact arithmetic.
        cells_certified: grid cells an array/bisected batch resolved
            purely from float envelopes (no exact arithmetic).
        cells_escalated: grid cells such a batch had to refine with
            exact comparisons (each refinement comparison also counts
            as one escalation above).
        array_batches: how many batched kernel passes ran.
    """

    comparisons: int = 0
    escalations: int = 0
    cells_certified: int = 0
    cells_escalated: int = 0
    array_batches: int = 0

    def copy(self) -> "NumericStats":
        return NumericStats(
            self.comparisons,
            self.escalations,
            self.cells_certified,
            self.cells_escalated,
            self.array_batches,
        )

    def merge(self, other: "NumericStats") -> "NumericStats":
        """Add ``other``'s counters into this snapshot, returning self.

        Counter addition is commutative and associative, so merging
        per-shard deltas in any order yields the same totals — but the
        sharded paths still merge in ascending shard order, like every
        other combine (docs/sharding.md).
        """
        self.comparisons += other.comparisons
        self.escalations += other.escalations
        self.cells_certified += other.cells_certified
        self.cells_escalated += other.cells_escalated
        self.array_batches += other.array_batches
        return self


_stats = NumericStats()


def numeric_stats() -> NumericStats:
    """A snapshot of the global comparison/escalation counters."""
    return _stats.copy()


def reset_numeric_stats() -> NumericStats:
    """Zero the counters, returning the snapshot from before the reset."""
    snapshot = _stats.copy()
    _stats.comparisons = 0
    _stats.escalations = 0
    _stats.cells_certified = 0
    _stats.cells_escalated = 0
    _stats.array_batches = 0
    return snapshot


def absorb_stats(delta: NumericStats) -> None:
    """Fold a worker's counter delta into the global counters.

    The multi-process half of the observability contract: worker
    processes fork with a *copy* of the global counters, so anything
    they count dies with them unless the parent absorbs it explicitly.
    Shard workers ``reset_numeric_stats()`` on task entry and ship
    ``numeric_stats()`` back as their delta; the parent calls this once
    per worker result, in shard order, keeping ``numeric_stats()``
    totals identical to a serial evaluation of the same queries.
    """
    _stats.merge(delta)


def escalation_count() -> int:
    """How many comparisons have escalated since the last reset."""
    return _stats.escalations


def count_comparisons(n: int) -> None:
    """Record ``n`` filter comparisons performed by a batched kernel.

    Hot loops (e.g. a threshold grid swept against cached posteriors)
    inline the float filter on raw ``approx``/``err`` fields instead of
    going through one ``LazyProb`` comparison call per decision; they
    report their comparison count here in one step so the
    observability counters stay truthful.  Escalations are always
    counted individually (they go through the comparison operators).
    """
    _stats.comparisons += n


def count_batch(certified: int, escalated: int, exact_comparisons: int = 0) -> None:
    """Record one batched (array/bisected) kernel pass.

    ``certified`` cells resolved purely from float envelopes;
    ``escalated`` cells needed exact refinement, performing
    ``exact_comparisons`` exact comparisons between them.  The classic
    counters stay truthful: every certified cell is one filter
    comparison that did not escalate, and every exact refinement
    comparison is one comparison that did.
    """
    _stats.array_batches += 1
    _stats.cells_certified += certified
    _stats.cells_escalated += escalated
    _stats.comparisons += certified + exact_comparisons
    _stats.escalations += exact_comparisons


class LazyProb:
    """A probability-like value: float approximation now, exact on demand.

    Construct via :meth:`from_ratio` (an exact integer pair, the form
    every kernel-derived measure takes) or :meth:`from_exact` (a known
    rational; floats there follow the library's shortest-decimal
    ``as_fraction`` convention for probability literals).  Supports
    ``+ - * /`` and all six comparisons against other ``LazyProb``
    values, ``Fraction``, ``int``, and ``float`` — raw floats in
    operators mean their *binary-exact* rational, exactly as
    ``Fraction`` treats them, so verdicts match exact mode on every
    comparand type.

    Instances are immutable in value; forcing :meth:`exact` memoizes
    the normalized ``Fraction`` on the instance, so later escalations
    of the same value are cheap.
    """

    __slots__ = ("approx", "err", "_num", "_den", "_thunk", "_pair_thunk", "_exact")

    def __init__(
        self,
        approx: float,
        err: float,
        num: Optional[int] = None,
        den: Optional[int] = None,
        thunk: Optional[Callable[[], Fraction]] = None,
        pair_thunk: Optional[Callable[[], Tuple[int, int]]] = None,
        exact: Optional[Fraction] = None,
    ) -> None:
        self.approx = approx
        self.err = err
        self._num = num
        self._den = den
        self._thunk = thunk
        self._pair_thunk = pair_thunk
        self._exact = exact

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_ratio(cls, num: int, den: int) -> "LazyProb":
        """The exact value ``num / den`` from an (unnormalized) int pair.

        This is the kernel's native form: an event's weight total over
        the common denominator, or a conditional's pair of totals.  No
        gcd is taken; ``int.__truediv__`` gives the correctly rounded
        float, so the approximation is within one ulp.

        Raises:
            ZeroDivisionError: when ``den`` is zero.
        """
        if den < 0:
            num, den = -num, -den
        approx = num / den
        return cls(approx, abs(approx) * _REL + _ABS, num=num, den=den)

    @classmethod
    def from_exact(cls, value: Union[int, Fraction, str, float]) -> "LazyProb":
        """Wrap a known exact rational (coerced by ``as_fraction`` rules)."""
        if isinstance(value, LazyProb):
            return value
        frac = as_fraction(value)
        approx = float(frac)
        return cls(
            approx,
            abs(approx) * _REL + _ABS,
            num=frac.numerator,
            den=frac.denominator,
            exact=frac,
        )

    # ------------------------------------------------------------------
    # Exact tier
    # ------------------------------------------------------------------

    def exact(self) -> Fraction:
        """The exact value as a normalized ``Fraction`` (memoized).

        Bit-identical to what the all-``Fraction`` code path computes
        for the same quantity: reduced rationals are unique, and every
        deferred computation below is value-equal to its eager twin.
        """
        if self._exact is None:
            pair = self._pair()
            if pair is not None:
                self._exact = Fraction(pair[0], pair[1])
            else:
                # repro: allow[RP006] internal invariant: the
                # constructor requires pair or thunk (type-narrowing).
                assert self._thunk is not None
                self._exact = self._thunk()
                self._thunk = None
        return self._exact

    def _pair(self) -> Optional[Tuple[int, int]]:
        """The exact unnormalized ``(num, den)`` pair, if one is held.

        A deferred pair (``pair_thunk`` — the form the engine's array
        paths produce, where the float bounds came from a vectorized
        reduction and the exact integer totals have not been summed
        yet) is materialized here on first demand and cached; the
        resulting ``(num, den)`` is the same unnormalized pair the
        eager ``from_ratio`` construction would have carried, so the
        exact tier is unchanged — only *when* the integer work happens
        moves.
        """
        if self._num is not None:
            return (self._num, self._den)  # type: ignore[return-value]
        if self._pair_thunk is not None:
            num, den = self._pair_thunk()
            if den < 0:
                num, den = -num, -den
            self._num = num
            self._den = den
            self._pair_thunk = None
            return (num, den)
        if self._exact is not None:
            return (self._exact.numerator, self._exact.denominator)
        return None

    @property
    def escalated(self) -> bool:
        """Whether the normalized exact value has been materialized."""
        return self._exact is not None

    # ------------------------------------------------------------------
    # Comparisons: float filter, then integer cross-multiplication,
    # then Fraction arithmetic.
    # ------------------------------------------------------------------

    def _cmp(self, other: object) -> Optional[float]:
        """Sign of ``self - other`` (-1/0/+1), ``nan`` for unordered
        (float nan comparands), or ``None`` for types we do not handle
        (rich comparisons then return NotImplemented).

        Scalar comparands (``Fraction``/``int``/``float``) take a
        no-allocation path: their float view and, on escalation, their
        numerator/denominator are read directly — hot threshold loops
        compare thousands of times against the same bound, and wrapping
        it in a ``LazyProb`` per comparison would dominate the filter's
        own cost.

        A raw ``float`` comparand means its *binary-exact* rational
        (``Fraction(x)`` semantics) — exactly how ``Fraction`` itself
        compares against floats, so auto-mode verdicts match exact
        mode's on float comparands too.  To compare against a decimal
        probability literal, pass a string/Fraction or wrap it with
        :meth:`from_exact` (which applies the library's
        shortest-decimal ``as_fraction`` convention).
        """
        if isinstance(other, LazyProb):
            _stats.comparisons += 1
            diff = self.approx - other.approx
            # The 4x inflation absorbs the rounding of err sums and of
            # the subtraction itself; see docs/numerics.md.
            gap = 4.0 * (self.err + other.err) + _ABS
            if diff > gap:
                return 1
            if diff < -gap:
                return -1
            # Uncertainty window: escalate to exact arithmetic.
            _stats.escalations += 1
            lp = self._pair()
            rp = other._pair()
            if lp is not None and rp is not None:
                # dens are positive by construction, so the verdict is
                # the sign of the integer cross-difference — no
                # normalization.
                lhs = lp[0] * rp[1]
                rhs = rp[0] * lp[1]
                return (lhs > rhs) - (lhs < rhs)
            left = self.exact()
            right = other.exact()
            return (left > right) - (left < right)
        if isinstance(other, Fraction):
            on: int = other.numerator
            od: int = other.denominator
        elif isinstance(other, int):
            # bool included: Fraction(1) == True in exact mode, so the
            # parity contract demands the same verdict here.
            on, od = int(other), 1
        elif isinstance(other, float):
            if not math.isfinite(other):
                # Match Fraction's float semantics: every rational is
                # ordered against ±inf by sign, nothing is ordered
                # against nan.  A nan "sign" makes every rich
                # comparison derived from it False except !=.
                _stats.comparisons += 1
                if math.isnan(other):
                    return math.nan
                return -1 if other > 0 else 1
            frac = Fraction(other)  # binary-exact, as Fraction compares
            on, od = frac.numerator, frac.denominator
        else:
            return None
        _stats.comparisons += 1
        oa = on / od
        diff = self.approx - oa
        gap = 4.0 * (self.err + abs(oa) * _REL) + _ABS
        if diff > gap:
            return 1
        if diff < -gap:
            return -1
        _stats.escalations += 1
        lp = self._pair()
        if lp is not None:
            lhs = lp[0] * od
            rhs = on * lp[1]
            return (lhs > rhs) - (lhs < rhs)
        left = self.exact()
        right = Fraction(on, od)
        return (left > right) - (left < right)

    def __lt__(self, other: object) -> bool:
        sign = self._cmp(other)
        if sign is None:
            return NotImplemented
        return sign < 0

    def __le__(self, other: object) -> bool:
        sign = self._cmp(other)
        if sign is None:
            return NotImplemented
        return sign <= 0

    def __gt__(self, other: object) -> bool:
        sign = self._cmp(other)
        if sign is None:
            return NotImplemented
        return sign > 0

    def __ge__(self, other: object) -> bool:
        sign = self._cmp(other)
        if sign is None:
            return NotImplemented
        return sign >= 0

    def __eq__(self, other: object) -> bool:
        sign = self._cmp(other)
        if sign is None:
            return NotImplemented
        return sign == 0

    def __ne__(self, other: object) -> bool:
        sign = self._cmp(other)
        if sign is None:
            return NotImplemented
        return sign != 0

    def __hash__(self) -> int:
        # Hash/eq consistency with Fraction requires the exact value.
        return hash(self.exact())

    def __bool__(self) -> bool:
        return self._cmp(0) != 0

    # ------------------------------------------------------------------
    # Arithmetic: pair-backed operands keep the exact unnormalized pair
    # via plain integer arithmetic, while the float tier propagates the
    # operand approximations and error bounds (err grows along chains —
    # the pair is always there when a comparison needs the true value);
    # pairless operands propagate the bounds and defer the exact
    # computation in a thunk.
    # ------------------------------------------------------------------

    @staticmethod
    def _coerce(other: object) -> Optional["LazyProb"]:
        if isinstance(other, LazyProb):
            return other
        if isinstance(other, int):
            # Small ints are exactly representable: err 0.  (A scalar
            # too large for a float cannot arise from probabilities.)
            # bool included, as Fraction arithmetic accepts it.
            return LazyProb(float(other), 0.0, num=int(other), den=1)
        if isinstance(other, Fraction):
            num = other.numerator
            den = other.denominator
            approx = num / den
            return LazyProb(
                approx, abs(approx) * _REL + _ABS, num=num, den=den, exact=other
            )
        if isinstance(other, float) and math.isfinite(other):
            # Binary-exact, matching the comparisons (exact mode
            # accepts mixed float arithmetic, so auto mode must too —
            # and where Fraction op float degrades to float, staying
            # exact over the float's true value loses nothing).
            frac = Fraction(other)
            approx = float(frac)
            return LazyProb(
                approx,
                abs(approx) * _REL + _ABS,
                num=frac.numerator,
                den=frac.denominator,
                exact=frac,
            )
        return None

    def _add_sub(self, other: object, sign: int, swap: bool) -> "LazyProb":
        rhs = self._coerce(other)
        if rhs is None:
            return NotImplemented
        a, b = (rhs, self) if swap else (self, rhs)
        approx = a.approx + sign * b.approx
        err = a.err + b.err + abs(approx) * _REL + _ABS
        lp = a._pair()
        rp = b._pair()
        if lp is not None and rp is not None:
            # Exact unnormalized pair via integer arithmetic; the float
            # tier propagates operand approximations (no fresh big-int
            # division — the pair is there if a comparison ever needs
            # the true value).  Shared denominators stay shared: the
            # kernel hands out measures over one common denominator,
            # and accumulation chains (weighted-belief sums) would
            # otherwise grow the unnormalized denominator
            # geometrically.
            if lp[1] == rp[1]:
                return LazyProb(approx, err, num=lp[0] + sign * rp[0], den=lp[1])
            num = lp[0] * rp[1] + sign * rp[0] * lp[1]
            den = lp[1] * rp[1]
            return LazyProb(approx, err, num=num, den=den)
        if sign > 0:
            thunk = lambda: a.exact() + b.exact()
        else:
            thunk = lambda: a.exact() - b.exact()
        return LazyProb(approx, err, thunk=thunk)

    def __add__(self, other: object) -> "LazyProb":
        return self._add_sub(other, 1, False)

    def __radd__(self, other: object) -> "LazyProb":
        return self._add_sub(other, 1, True)

    def __sub__(self, other: object) -> "LazyProb":
        return self._add_sub(other, -1, False)

    def __rsub__(self, other: object) -> "LazyProb":
        return self._add_sub(other, -1, True)

    def _mul_div(self, other: object, divide: bool, swap: bool) -> "LazyProb":
        rhs = self._coerce(other)
        if rhs is None:
            return NotImplemented
        a, b = (rhs, self) if swap else (self, rhs)
        lp = a._pair()
        rp = b._pair()
        if divide:
            # A zero float divisor does not mean a zero divisor: the
            # interval may merely straddle zero (e.g. a deferred value
            # around 1e-300).  NaN/inf approximations are handled by
            # the uncertainty bound below — comparisons on such a
            # result always escalate to exact arithmetic.
            approx = a.approx / b.approx if b.approx != 0.0 else math.nan
            lo = abs(b.approx) - b.err
            if lo <= 0.0 or not math.isfinite(approx):
                err = math.inf
            else:
                err = 2.0 * (a.err + abs(approx) * b.err) / lo + abs(
                    approx
                ) * _REL + _ABS
            if lp is not None and rp is not None:
                if rp[0] == 0:
                    raise ZeroDivisionError("LazyProb division by exact zero")
                num = lp[0] * rp[1]
                den = lp[1] * rp[0]
                if den < 0:
                    num, den = -num, -den
                return LazyProb(approx, err, num=num, den=den)
            thunk = lambda: a.exact() / b.exact()
        else:
            approx = a.approx * b.approx
            err = (
                abs(a.approx) * b.err
                + abs(b.approx) * a.err
                + a.err * b.err
                + abs(approx) * _REL
                + _ABS
            )
            if lp is not None and rp is not None:
                return LazyProb(
                    approx, err, num=lp[0] * rp[0], den=lp[1] * rp[1]
                )
            thunk = lambda: a.exact() * b.exact()
        return LazyProb(approx, err, thunk=thunk)

    def __mul__(self, other: object) -> "LazyProb":
        return self._mul_div(other, False, False)

    def __rmul__(self, other: object) -> "LazyProb":
        return self._mul_div(other, False, True)

    def __truediv__(self, other: object) -> "LazyProb":
        return self._mul_div(other, True, False)

    def __rtruediv__(self, other: object) -> "LazyProb":
        return self._mul_div(other, True, True)

    def __neg__(self) -> "LazyProb":
        pair = self._pair()
        if pair is not None:
            return LazyProb.from_ratio(-pair[0], pair[1])
        return LazyProb(-self.approx, self.err, thunk=lambda: -self.exact())

    def __abs__(self) -> "LazyProb":
        if self.approx - self.err >= 0.0:
            return self
        return -self if self._cmp(0) < 0 else self

    def __float__(self) -> float:
        return self.approx

    def __repr__(self) -> str:
        if self._exact is not None:
            return f"LazyProb({self._exact} ~{self.approx:.12g})"
        return f"LazyProb(~{self.approx:.12g} ±{self.err:.3g})"


def exact_value(value: object) -> object:
    """Normalize a possibly-lazy numeric result to its exact form.

    ``LazyProb`` becomes its exact ``Fraction`` (forcing it); anything
    else passes through unchanged.  Use this to compare auto-mode
    results against exact-mode results, or before serializing.
    """
    if isinstance(value, LazyProb):
        return value.exact()
    return value


def approx_value(value: object) -> object:
    """The float view of a numeric result: ``LazyProb`` -> ``approx``,
    ``Fraction`` -> ``float``, everything else unchanged."""
    if isinstance(value, LazyProb):
        return value.approx
    if isinstance(value, Fraction):
        return float(value)
    return value
