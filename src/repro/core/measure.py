"""The probability space over runs and its event algebra.

A pps ``T`` induces the probability space ``X_T = (R_T, 2^{R_T}, mu_T)``
(paper, Section 2.1).  Since ``R_T`` is finite and every run is
measurable, events are simply sets of runs; we represent an event as a
``frozenset`` of run indices into ``pps.runs``.

All probabilities returned here are exact rationals whenever the tree's
edge labels are (which they are, by construction).

Internally the measures route through the per-system
:class:`~repro.core.engine.SystemIndex`: the frozenset is converted to
an integer bitmask once and the exact-probability kernel (integer
weights over a common denominator, with a prefix table for contiguous
run ranges) does the summation.  The frozenset-based API is the stable
interop boundary; callers that want to stay in mask space can use the
index directly.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, FrozenSet, Iterable, Optional, Sequence

from .engine import SystemIndex
from .errors import ConditioningOnNullEventError
from .numeric import Probability
from .pps import PPS, Run

__all__ = [
    "Event",
    "all_runs",
    "empty_event",
    "event_where",
    "complement",
    "intersect",
    "union",
    "probability",
    "conditional",
    "expectation",
    "is_partition",
    "total_probability",
]

Event = FrozenSet[int]


def all_runs(pps: PPS) -> Event:
    """The sure event ``R_T``."""
    index = SystemIndex.of(pps)
    return index.event_of(index.all_mask)


def empty_event() -> Event:
    """The null event."""
    return frozenset()


def event_where(pps: PPS, predicate: Callable[[Run], bool]) -> Event:
    """The event of all runs satisfying ``predicate``."""
    return frozenset(run.index for run in pps.runs if predicate(run))


def complement(pps: PPS, event: Event) -> Event:
    """The complement of ``event`` in ``R_T``."""
    index = SystemIndex.of(pps)
    return index.event_of(index.complement(index.mask_of(event)))


def intersect(*events: Event) -> Event:
    """Intersection of any number of events (the sure event for none)."""
    if not events:
        raise ValueError("intersect() requires at least one event")
    result = events[0]
    for other in events[1:]:
        result = result & other
    return result


def union(*events: Event) -> Event:
    """Union of any number of events."""
    result: Event = frozenset()
    for other in events:
        result = result | other
    return result


def probability(pps: PPS, event: Event) -> Probability:
    """The prior probability ``mu_T(event)``."""
    index = SystemIndex.of(pps)
    return index.probability(index.mask_of(event))


def conditional(pps: PPS, event: Event, given: Event) -> Probability:
    """The conditional probability ``mu_T(event | given)``.

    Raises:
        ConditioningOnNullEventError: when ``given`` is empty.  (In a
            pps every run has positive probability, so emptiness is the
            only way a conditioning event can be null.)
    """
    index = SystemIndex.of(pps)
    return index.conditional(index.mask_of(event), index.mask_of(given))


def expectation(
    pps: PPS,
    value: Callable[[Run], Probability],
    *,
    given: Optional[Event] = None,
) -> Probability:
    """The expectation of a run-indexed random variable.

    Args:
        pps: the system.
        value: the random variable, as a function of the run.
        given: optional conditioning event; when supplied the
            expectation is taken under ``mu_T(. | given)``.

    Raises:
        ConditioningOnNullEventError: when ``given`` is empty.
    """
    if given is None:
        given = all_runs(pps)
    if not given:
        raise ConditioningOnNullEventError("cannot condition on an empty event")
    denominator = probability(pps, given)
    runs = pps.runs
    numerator = sum(
        (runs[index].prob * value(runs[index]) for index in given),
        start=Fraction(0),
    )
    return numerator / denominator


def is_partition(pps: PPS, cells: Iterable[Event], of: Event) -> bool:
    """Whether ``cells`` are pairwise disjoint, non-empty, and cover ``of``."""
    seen: set = set()
    covered: set = set()
    for cell in cells:
        if not cell:
            return False
        if cell & seen:
            return False
        seen |= cell
        covered |= cell
    return covered == set(of)


def total_probability(
    pps: PPS,
    target: Event,
    cells: Sequence[Event],
    *,
    given: Optional[Event] = None,
) -> Probability:
    """Compute ``mu(target | given)`` via the law of total probability.

    This mirrors the generalized Jeffrey-conditionalization identity of
    the paper's Section 6.1::

        Pr(E | Y) = sum_k Pr(X_k | Y) * Pr(E | X_k & Y)

    with ``E = target``, ``Y = given`` and ``X_k = cells[k]``.  It is
    exposed primarily so tests can confirm that the decomposition agrees
    with direct computation; the theorem checkers rely on the same
    identity internally.

    Raises:
        ValueError: if ``cells`` do not partition ``given``.
    """
    if given is None:
        given = all_runs(pps)
    if not is_partition(pps, cells, given):
        raise ValueError("cells must partition the conditioning event")
    acc = Fraction(0)
    for cell in cells:
        weight = conditional(pps, cell, given)
        if weight == 0:
            continue
        acc += weight * conditional(pps, target, cell & given)
    return acc
