"""Reference (unindexed) evaluation path, kept for parity and benchmarks.

These are the seed implementations that predate the
:mod:`~repro.core.engine` index: every query rescans ``pps.runs`` and
rebuilds frozensets from scratch, with no caching of any kind.  They
are deliberately preserved — byte-for-byte in semantics — so that

* the engine-parity tests can assert that the indexed engine returns
  *exactly* (``Fraction``-equal) the same answers on arbitrary
  systems, and
* ``benchmarks/bench_engine_speedup.py`` can time the indexed engine
  against the cost model the library actually had before the index
  existed.

Nothing else should import this module; the public API routes through
the index.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Dict, FrozenSet, Optional, Set

from .errors import ConditioningOnNullEventError, UnknownLocalStateError
from .facts import Fact
from .numeric import Probability, ProbabilityLike, ZERO, as_fraction
from .pps import PPS, Action, AgentId, LocalState, Run

__all__ = [
    "naive_event_where",
    "naive_probability",
    "naive_conditional",
    "naive_runs_satisfying",
    "naive_occurrence_event",
    "naive_belief",
    "naive_performing_runs",
    "naive_performance_time",
    "naive_achieved_probability",
    "naive_expected_belief",
    "naive_threshold_met_measure",
    "naive_knowledge_partition",
]

Event = FrozenSet[int]


def naive_event_where(pps: PPS, predicate: Callable[[Run], bool]) -> Event:
    return frozenset(run.index for run in pps.runs if predicate(run))


def naive_probability(pps: PPS, event: Event) -> Probability:
    runs = pps.runs
    return sum((runs[index].prob for index in event), start=Fraction(0))


def naive_conditional(pps: PPS, event: Event, given: Event) -> Probability:
    if not given:
        raise ConditioningOnNullEventError("cannot condition on an empty event")
    return naive_probability(pps, event & given) / naive_probability(pps, given)


def naive_runs_satisfying(pps: PPS, fact: Fact) -> Event:
    if not fact.is_run_fact:
        raise TypeError(
            f"{fact.label!r} is transient and does not denote a run event"
        )
    return naive_event_where(pps, lambda run: fact.holds(pps, run, 0))


def naive_occurrence_event(pps: PPS, agent: AgentId, local: LocalState) -> Event:
    return naive_event_where(
        pps, lambda run: any(run.local(agent, t) == local for t in run.times())
    )


def _at_local_state_event(
    pps: PPS, phi: Fact, agent: AgentId, local: LocalState
) -> Event:
    def predicate(run: Run) -> bool:
        for time in run.times():
            if run.local(agent, time) == local:
                return phi.holds(pps, run, time)
        return False

    return naive_event_where(pps, predicate)


def naive_belief(
    pps: PPS, agent: AgentId, phi: Fact, local: LocalState
) -> Probability:
    occurs = naive_occurrence_event(pps, agent, local)
    if not occurs:
        raise UnknownLocalStateError(
            f"local state {local!r} of agent {agent!r} never occurs in {pps.name}"
        )
    phi_at_local = _at_local_state_event(pps, phi, agent, local)
    return naive_conditional(pps, phi_at_local, occurs)


def naive_performing_runs(pps: PPS, agent: AgentId, action: Action) -> Event:
    return naive_event_where(pps, lambda run: bool(run.performs(agent, action)))


def naive_performance_time(
    pps: PPS, agent: AgentId, action: Action, run: Run
) -> Optional[int]:
    times = run.performs(agent, action)
    if not times:
        return None
    return times[0]


def _at_action_event(pps: PPS, phi: Fact, agent: AgentId, action: Action) -> Event:
    def predicate(run: Run) -> bool:
        times = run.performs(agent, action)
        if not times:
            return False
        return phi.holds(pps, run, times[0])

    return naive_event_where(pps, predicate)


def naive_achieved_probability(
    pps: PPS, agent: AgentId, phi: Fact, action: Action
) -> Probability:
    performing = naive_performing_runs(pps, agent, action)
    satisfied = _at_action_event(pps, phi, agent, action)
    return naive_conditional(pps, satisfied, performing)


def _naive_belief_variable(
    pps: PPS, agent: AgentId, phi: Fact, action: Action
) -> Callable[[Run], Probability]:
    cache: Dict[LocalState, Probability] = {}

    def variable(run: Run) -> Probability:
        t = naive_performance_time(pps, agent, action, run)
        if t is None:
            return ZERO
        local = run.local(agent, t)
        if local not in cache:
            cache[local] = naive_belief(pps, agent, phi, local)
        return cache[local]

    return variable


def naive_expected_belief(
    pps: PPS, agent: AgentId, phi: Fact, action: Action
) -> Probability:
    variable = _naive_belief_variable(pps, agent, phi, action)
    performing = naive_performing_runs(pps, agent, action)
    denominator = naive_probability(pps, performing)
    runs = pps.runs
    numerator = sum(
        (runs[index].prob * variable(runs[index]) for index in performing),
        start=Fraction(0),
    )
    return numerator / denominator


def naive_threshold_met_measure(
    pps: PPS,
    agent: AgentId,
    phi: Fact,
    action: Action,
    threshold: ProbabilityLike,
) -> Probability:
    bound = as_fraction(threshold)
    variable = _naive_belief_variable(pps, agent, phi, action)
    performing = naive_performing_runs(pps, agent, action)
    met = frozenset(
        index for index in performing if variable(pps.runs[index]) >= bound
    )
    return naive_conditional(pps, met, performing)


def naive_knowledge_partition(
    pps: PPS, agent: AgentId, t: int
) -> Dict[object, FrozenSet[int]]:
    cells: Dict[object, Set[int]] = {}
    for run in pps.runs:
        if t < run.length:
            cells.setdefault(run.local(agent, t), set()).add(run.index)
    return {local: frozenset(indices) for local, indices in cells.items()}
