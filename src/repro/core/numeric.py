"""Exact probability arithmetic helpers.

The paper's central result (Theorem 6.2) is an *equality* between a
conditional probability and an expected degree of belief.  To let tests
and benchmarks assert that equality exactly, the library represents all
probabilities as :class:`fractions.Fraction` internally.

Coercion rules (:func:`as_probability`):

* ``int`` and :class:`~fractions.Fraction` are used as-is,
* ``str`` is parsed by the ``Fraction`` constructor (``"1/10"``,
  ``"0.1"`` both give ``1/10``),
* ``float`` is converted through its shortest decimal representation,
  i.e. ``Fraction(str(x))`` — so the literal ``0.1`` becomes ``1/10``
  rather than the binary expansion ``3602879701896397/36028797018963968``.

This matches user intent for probability literals (a user writing
``0.1`` means one tenth), and is documented prominently because it is a
deliberate deviation from ``Fraction(float)`` semantics.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Optional, Tuple, Union

__all__ = [
    "Probability",
    "ProbabilityLike",
    "as_probability",
    "as_fraction",
    "validate_probability",
    "exact_sqrt",
    "sqrt_fraction",
    "sqrt_fraction_with_exactness",
    "InexactSqrtError",
    "ZERO",
    "ONE",
]

Probability = Fraction
ProbabilityLike = Union[int, float, str, Fraction]

ZERO = Fraction(0)
ONE = Fraction(1)


def as_fraction(value: ProbabilityLike) -> Fraction:
    """Coerce ``value`` to an exact :class:`~fractions.Fraction`.

    Floats are converted via their shortest ``repr`` so that decimal
    literals round-trip exactly (``as_fraction(0.1) == Fraction(1, 10)``).

    Raises:
        TypeError: if ``value`` is not a number or numeric string, or
            is a non-finite float (``nan``/``inf`` have no rational
            value).
        ValueError: if a string cannot be parsed as a rational.
    """
    if isinstance(value, Fraction):
        return value
    if isinstance(value, bool):  # bool is an int subclass; reject explicitly
        raise TypeError("booleans are not probabilities")
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, float):
        if not math.isfinite(value):
            raise TypeError(
                f"non-finite float {value!r} has no exact rational value"
            )
        return Fraction(str(value))
    if isinstance(value, str):
        return Fraction(value)
    raise TypeError(f"cannot interpret {value!r} as an exact probability")


def validate_probability(
    value: Fraction,
    *,
    allow_zero: bool = True,
    allow_one: bool = True,
) -> Fraction:
    """Check that ``value`` lies in the unit interval and return it.

    Args:
        value: an exact rational.
        allow_zero: whether 0 is permitted (tree edges require > 0).
        allow_one: whether 1 is permitted.

    Raises:
        ValueError: when the value falls outside the permitted range.
    """
    low_ok = value > 0 or (allow_zero and value == 0)
    high_ok = value < 1 or (allow_one and value == 1)
    if not (low_ok and high_ok):
        raise ValueError(f"probability {value} outside permitted range")
    return value


def as_probability(
    value: ProbabilityLike,
    *,
    allow_zero: bool = True,
    allow_one: bool = True,
) -> Fraction:
    """Coerce and range-check a probability in a single call."""
    return validate_probability(
        as_fraction(value), allow_zero=allow_zero, allow_one=allow_one
    )


def exact_sqrt(value: Fraction) -> Optional[Fraction]:
    """The exact rational square root of ``value``, if one exists.

    Returns ``None`` when ``value`` is not the square of a rational
    (e.g. ``exact_sqrt(Fraction(1, 2))``).

    Raises:
        ValueError: for negative input.
    """
    if value < 0:
        raise ValueError("square root of a negative probability")
    num_root = math.isqrt(value.numerator)
    den_root = math.isqrt(value.denominator)
    if num_root * num_root == value.numerator and den_root * den_root == value.denominator:
        return Fraction(num_root, den_root)
    return None


class InexactSqrtError(ValueError):
    """Raised by ``sqrt_fraction(..., exact_required=True)`` when the
    input is not the square of a rational, so only a floating-point
    approximation of the root exists."""


def sqrt_fraction_with_exactness(value: Fraction) -> Tuple[Fraction, bool]:
    """``(root, is_exact)``: a rational square root and whether it is exact.

    When ``value`` is a perfect rational square the root is exact and
    the flag is ``True``; otherwise the root is the shortest-decimal
    rational of the floating-point square root and the flag is
    ``False``.  Callers that feed the root into further *exact*
    reasoning (e.g. a Corollary 7.2 threshold) must propagate the flag
    so an approximated input cannot masquerade as an exact one.

    Raises:
        ValueError: for negative input.
    """
    root = exact_sqrt(value)
    if root is not None:
        return root, True
    return Fraction(str(math.sqrt(value))), False


def sqrt_fraction(value: Fraction, *, exact_required: bool = False) -> Fraction:
    """A rational square root of ``value``, exact when possible.

    Used for the PAK level ``1 - sqrt(1 - p)`` of Corollary 7.2: when
    ``1 - p`` is a perfect rational square (as in all of the paper's
    examples, e.g. ``p = 0.99`` gives ``sqrt(1/100) = 1/10``) the result
    is exact; otherwise it falls back to the shortest-decimal rational
    of the floating-point square root.  That fallback is an
    **approximation**: pass ``exact_required=True`` to forbid it, or
    use :func:`sqrt_fraction_with_exactness` to learn which case
    occurred.

    Raises:
        InexactSqrtError: when ``exact_required`` is set and ``value``
            is not a perfect rational square.
        ValueError: for negative input.
    """
    root, is_exact = sqrt_fraction_with_exactness(value)
    if exact_required and not is_exact:
        raise InexactSqrtError(
            f"sqrt({value}) is irrational; only a float-derived "
            "approximation exists (call without exact_required=True to "
            "accept it, or sqrt_fraction_with_exactness for the flag)"
        )
    return root
