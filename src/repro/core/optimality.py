"""Optimality of belief-guided acting (the paper's Section 8).

The paper closes with a design insight: by Theorem 6.2, acting while
holding a low degree of belief in the constraint's condition drags
``mu(phi@alpha | alpha)`` down, so an agent can improve the constraint
by *refraining* at low-belief states; and "if an agent never acts when
her degree of belief is below the threshold, Theorem 6.2 can be used to
establish that an agent's actions are optimal with respect to
satisfying a probabilistic constraint, given her information".

This module makes that quantitative.  The agent's choice space is
*where to keep acting*: any non-empty subset ``S`` of its acting local
states (it cannot act on information it does not have, and refraining
is the only modification considered).  For a subset ``S`` the modified
protocol achieves::

    mu_S  =  sum_{l in S} w_l * b_l  /  sum_{l in S} w_l

where ``w_l = mu(Q^l)`` is the cell weight and ``b_l`` the belief held
at ``l``.  The maximum of this ratio over non-empty subsets is attained
by a *top-belief prefix*: sort states by belief descending and take the
states whose belief is at least the running ratio.  (Adding a state
with belief above the current average raises it; below, lowers it.)

Provided:

* :func:`optimal_acting_states` — the optimal subset and its value;
* :func:`achievable_frontier` — the full value-vs-coverage trade-off
  (each prefix of the belief-sorted states);
* :func:`is_belief_optimal` — whether a system already acts optimally
  for the constraint (i.e. no refinement improves it).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, FrozenSet, List, Tuple

from .engine import SystemIndex
from .expectation import expected_belief_decomposition
from .facts import Fact
from .numeric import Probability
from .pps import PPS, Action, AgentId, LocalState

__all__ = [
    "FrontierPoint",
    "achievable_frontier",
    "optimal_acting_states",
    "is_belief_optimal",
]


@dataclass(frozen=True)
class FrontierPoint:
    """One point of the act-where trade-off.

    Attributes:
        states: the local states at which the agent still acts.
        acting_mass: the unconditional probability that the action is
            (still) performed — the "coverage" retained.
        value: the achieved ``mu(phi@alpha | alpha)`` of the modified
            protocol.
    """

    states: FrozenSet[LocalState]
    acting_mass: Probability
    value: Probability


def _cells(
    pps: PPS, agent: AgentId, phi: Fact, action: Action, numeric: str
) -> List[Tuple[LocalState, Probability, Probability]]:
    """(state, unconditional weight, belief) rows, belief-descending."""
    index = SystemIndex.of(pps)
    # expected_belief_decomposition asserts properness; the engine's
    # action-state cells are the partition's masks directly (what
    # action_state_partition wraps in Events), so stay in mask space.
    decomposition = expected_belief_decomposition(
        pps, agent, phi, action, numeric=numeric
    )
    rows = [
        (
            local,
            index.probability(mask, numeric=numeric),
            decomposition[local].belief,
        )
        for local, mask in index.state_cells(agent, action).items()
    ]
    # In auto mode tied beliefs escalate to exact comparison during the
    # sort, so the order (and hence every prefix) matches exact mode's.
    rows.sort(key=lambda row: (row[2], str(row[0])), reverse=True)
    return rows


def achievable_frontier(
    pps: PPS, agent: AgentId, phi: Fact, action: Action, *, numeric: str = "exact"
) -> List[FrontierPoint]:
    """The value of every top-belief prefix of acting states.

    The first point acts only at the highest-belief state(s); the last
    acts everywhere (the original protocol).  Values are exact (as
    int-pair LazyProbs with identical exact values in ``"auto"``
    mode).  States with equal belief enter together (splitting them
    never changes the ratio, so per-prefix granularity at distinct
    beliefs suffices).
    """
    rows = _cells(pps, agent, phi, action, numeric)
    frontier: List[FrontierPoint] = []
    kept: List[LocalState] = []
    mass = Fraction(0) if numeric == "exact" else 0
    weighted_belief = Fraction(0) if numeric == "exact" else 0
    index = 0
    while index < len(rows):
        belief = rows[index][2]
        # absorb the whole equal-belief group
        while index < len(rows) and rows[index][2] == belief:
            local, weight, _ = rows[index]
            kept.append(local)
            mass = mass + weight
            weighted_belief = weighted_belief + weight * belief
            index += 1
        frontier.append(
            FrontierPoint(
                states=frozenset(kept),
                acting_mass=mass,
                value=weighted_belief / mass,
            )
        )
    return frontier


def optimal_acting_states(
    pps: PPS, agent: AgentId, phi: Fact, action: Action, *, numeric: str = "exact"
) -> FrontierPoint:
    """The subset of acting states maximizing ``mu(phi@alpha | alpha)``.

    Ties are broken toward *larger* coverage (acting more often at no
    cost in value), which is what a protocol designer would pick.
    """
    frontier = achievable_frontier(pps, agent, phi, action, numeric=numeric)
    best = frontier[0]
    for point in frontier[1:]:
        if point.value > best.value or (
            point.value == best.value and point.acting_mass > best.acting_mass
        ):
            best = point
    return best


def is_belief_optimal(
    pps: PPS, agent: AgentId, phi: Fact, action: Action, *, numeric: str = "exact"
) -> bool:
    """Whether no refrain-refinement improves the achieved probability.

    Equivalent to: every acting state's belief equals the overall
    achieved probability, or there is a single acting state.
    """
    frontier = achievable_frontier(pps, agent, phi, action, numeric=numeric)
    full = frontier[-1]
    best = optimal_acting_states(pps, agent, phi, action, numeric=numeric)
    return best.value == full.value
