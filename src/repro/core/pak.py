"""One-call PAK analysis of a (system, agent, action, condition) tuple.

:func:`analyze` gathers everything the paper says about a probabilistic
constraint into a single :class:`PAKReport`:

* properness and independence diagnostics (with Lemma 4.3 reasons);
* the achieved probability ``mu(phi@alpha | alpha)`` and the expected
  acting belief, plus their (Theorem 6.2) equality;
* the acting belief profile — one row per local state at which the
  action is taken, with the cell's weight and belief;
* the threshold-met measure at the constraint's own threshold
  (Section 5) and at the PAK level ``1 - sqrt(1 - p)`` (Corollary 7.2);
* pass/fail results for every theorem checker.

This is the primary high-level entry point of the library — see
``examples/quickstart.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from .actions import is_deterministic_action, is_proper
from .constraints import ProbabilisticConstraint, achieved_probability
from .expectation import BeliefCell, expected_belief, expected_belief_decomposition
from .facts import Fact
from .independence import is_local_state_independent, lemma_4_3_applies
from .beliefs import threshold_met_measure
from .numeric import Probability, ProbabilityLike, as_fraction
from .pps import PPS, Action, AgentId, LocalState
from .theorems import (
    TheoremCheck,
    check_corollary_7_2,
    check_lemma_5_1,
    check_lemma_f_1,
    check_theorem_4_2,
    check_theorem_6_2,
    pak_level_with_exactness,
)

__all__ = ["PAKReport", "analyze"]


@dataclass
class PAKReport:
    """The full PAK picture for one constraint on one system."""

    system_name: str
    agent: AgentId
    action: Action
    condition_label: str
    threshold: Probability
    proper: bool
    independent: bool
    independence_reasons: List[str]
    achieved: Probability
    expected_belief: Probability
    expectation_identity_holds: bool
    threshold_met_measure: Probability
    pak_level: Probability
    pak_level_met_measure: Probability
    belief_profile: Dict[LocalState, BeliefCell]
    theorem_checks: Dict[str, TheoremCheck] = field(default_factory=dict)
    # Whether 1 - threshold is a perfect rational square, making the
    # PAK level (and the Corollary 7.2 epsilon derived from it) exact.
    # When False, pak_level is a float-derived approximation and every
    # quantity computed *at* that level says so explicitly.
    pak_level_exact: bool = True

    @property
    def satisfied(self) -> bool:
        """Whether the constraint is satisfied on the system."""
        return self.achieved >= self.threshold

    @property
    def all_theorems_verified(self) -> bool:
        """Whether every applicable theorem's conclusion held."""
        return all(check.verified for check in self.theorem_checks.values())

    def summary(self) -> str:
        """A multi-line human-readable report.

        Auto-mode reports hold :class:`~repro.core.lazyprob.LazyProb`
        quantities; the summary forces their exact form (presentation
        is off the hot path, and the printed rationals must match the
        exact-mode report's).
        """
        from .lazyprob import exact_value

        self = replace(
            self,
            achieved=exact_value(self.achieved),
            expected_belief=exact_value(self.expected_belief),
            threshold_met_measure=exact_value(self.threshold_met_measure),
            pak_level_met_measure=exact_value(self.pak_level_met_measure),
            belief_profile={
                local: BeliefCell(
                    local=cell.local,
                    weight=exact_value(cell.weight),
                    belief=exact_value(cell.belief),
                )
                for local, cell in self.belief_profile.items()
            },
        )
        lines = [
            f"PAK analysis of {self.system_name}",
            f"  agent={self.agent} action={self.action} "
            f"condition={self.condition_label}",
            f"  proper action:          {self.proper}",
            f"  local-state independent: {self.independent} "
            f"({', '.join(self.independence_reasons) or 'checked directly'})",
            f"  constraint threshold p:  {self.threshold} "
            f"(~{float(self.threshold):.6g})",
            f"  achieved mu(phi@a|a):    {self.achieved} "
            f"(~{float(self.achieved):.6g}) -> "
            f"{'SATISFIED' if self.satisfied else 'VIOLATED'}",
            f"  expected acting belief:  {self.expected_belief} "
            f"(~{float(self.expected_belief):.6g})"
            + ("  [= achieved, Thm 6.2]" if self.expectation_identity_holds else ""),
            f"  mu(belief >= p | a):     {self.threshold_met_measure} "
            f"(~{float(self.threshold_met_measure):.6g})",
            f"  PAK level p'=1-sqrt(1-p): {self.pak_level} "
            f"(~{float(self.pak_level):.6g})"
            + ("" if self.pak_level_exact else "  [APPROXIMATE: 1-p not a rational square]"),
            f"  mu(belief >= p' | a):    {self.pak_level_met_measure} "
            f"(~{float(self.pak_level_met_measure):.6g})"
            + ("" if self.pak_level_exact else "  [at the approximated level]"),
            "  acting belief profile:",
        ]
        for local, cell in sorted(
            self.belief_profile.items(), key=lambda item: str(item[0])
        ):
            lines.append(
                f"    state {local!r}: weight {cell.weight} "
                f"(~{float(cell.weight):.6g}), belief {cell.belief} "
                f"(~{float(cell.belief):.6g})"
            )
        lines.append("  theorem checks:")
        for name, check in self.theorem_checks.items():
            lines.append(f"    {check}")
        return "\n".join(lines)


def analyze(
    pps: PPS,
    agent: AgentId,
    action: Action,
    phi: Fact,
    threshold: ProbabilityLike,
    *,
    numeric: str = "exact",
) -> PAKReport:
    """Run the complete PAK analysis for one probabilistic constraint.

    Args:
        pps: the system.
        agent: the acting agent.
        action: the (proper) action of interest.
        phi: the condition that should hold when acting.
        threshold: the constraint threshold ``p``.
        numeric: ``"exact"`` (default), ``"auto"`` (two-tier kernel —
            all verdicts identical, reported quantities are
            :class:`~repro.core.lazyprob.LazyProb` values whose exact
            form matches exact mode's), or ``"float"``.

    Raises:
        ImproperActionError: when the action is not proper.
    """
    p = as_fraction(threshold)
    proper = is_proper(pps, agent, action)
    independent = is_local_state_independent(pps, phi, agent, action, numeric=numeric)
    _, reasons = lemma_4_3_applies(pps, phi, agent, action)
    achieved = achieved_probability(pps, agent, phi, action, numeric=numeric)
    expected = expected_belief(pps, agent, phi, action, numeric=numeric)
    met_at_p = threshold_met_measure(pps, agent, phi, action, p, numeric=numeric)
    # The PAK level is exact only when 1 - p is a perfect rational
    # square; otherwise it (and everything computed at it) is an
    # approximation, and the report says so rather than passing the
    # Corollary 7.2 check off as the exact statement for p.
    level, level_exact = pak_level_with_exactness(p)
    met_at_level = threshold_met_measure(
        pps, agent, phi, action, level, numeric=numeric
    )
    profile = expected_belief_decomposition(pps, agent, phi, action, numeric=numeric)

    checks: Dict[str, TheoremCheck] = {
        "theorem-4.2": check_theorem_4_2(pps, agent, action, phi, p, numeric=numeric),
        "lemma-5.1": check_lemma_5_1(pps, agent, action, phi, p, numeric=numeric),
        "theorem-6.2": check_theorem_6_2(pps, agent, action, phi, numeric=numeric),
        "lemma-F.1": check_lemma_f_1(pps, agent, action, phi, numeric=numeric),
    }
    # Corollary 7.2 needs epsilon = sqrt(1 - p); use the PAK level's
    # complement, which is exact whenever the level is.
    epsilon = 1 - level
    if 0 <= epsilon <= 1:
        check = check_corollary_7_2(pps, agent, action, phi, epsilon, numeric=numeric)
        if not level_exact:
            # The check itself is exact *given this epsilon*, but the
            # epsilon is a rounded stand-in for the irrational
            # sqrt(1 - p): record that on the check so a "verified"
            # cannot be read as the exact corollary for p.
            check.premises["epsilon-exactly-sqrt(1-p)"] = False
            check.details["epsilon-approximate"] = True
        checks["corollary-7.2"] = check

    return PAKReport(
        system_name=pps.name,
        agent=agent,
        action=action,
        condition_label=phi.label,
        threshold=p,
        proper=proper,
        independent=independent,
        independence_reasons=reasons,
        achieved=achieved,
        expected_belief=expected,
        expectation_identity_holds=(achieved == expected),
        threshold_met_measure=met_at_p,
        pak_level=level,
        pak_level_met_measure=met_at_level,
        belief_profile=profile,
        theorem_checks=checks,
        pak_level_exact=level_exact,
    )
