"""Purely probabilistic systems (pps).

A pps (paper, Section 2.1) is a finite labelled directed tree
``T = (V, E, pi)`` in which

* every node except the root corresponds to a *global state*,
* the root ``lambda`` only defines a distribution over the initial
  global states (its children),
* ``pi : E -> (0, 1]`` labels edges with transition probabilities and
  every internal node's outgoing probabilities sum to one,
* every path from a child of the root to a leaf is a *run*, and the
  probability of a run is the product of the edge probabilities along
  it (including the root edge).

This module implements the tree (:class:`Node`), global states
(:class:`GlobalState`), runs (:class:`Run`), points and the induced
probability space ``X_T = (R_T, 2^{R_T}, mu_T)`` (:class:`PPS`), plus
the derived-system layer through which transforms share a parent's
tree instead of copying it — see ``docs/transforms.md``:

* :class:`ActionOverlay` / :class:`DerivedPPS` — per-edge *action*
  relabellings (states, probabilities, and shape untouched);
* :class:`ProbabilityOverlay` / :class:`ReweightedPPS` — per-edge
  *probability* overrides (states, labels, and shape untouched), the
  substrate of :mod:`repro.core.reweight`'s adversary-drift and
  conditioning transforms.

Synchrony
---------
The paper restricts attention to synchronous systems: every agent local
state contains the current time.  We enforce the observable consequence
of that assumption — a given agent local state value may occur at one
tree depth only — in :meth:`PPS.validate`.  The protocol compiler
(:mod:`repro.protocols.compiler`) time-stamps local states automatically;
hand-built trees must include the time in the local state themselves
(e.g. ``(0, "g0")``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from .errors import (
    InvalidSystemError,
    NotStochasticError,
    SynchronyViolationError,
    UnknownAgentError,
    ZeroProbabilityError,
)
from .numeric import ONE, Probability, ProbabilityLike, as_fraction

__all__ = [
    "AgentId",
    "Action",
    "LocalState",
    "GlobalState",
    "InternTable",
    "Node",
    "Run",
    "OverlayRun",
    "PPS",
    "ActionOverlay",
    "ProbabilityOverlay",
    "DerivedPPS",
    "ReweightedPPS",
]

AgentId = str
Action = Hashable
LocalState = Hashable


@dataclass(frozen=True)
class GlobalState:
    """A global state ``g = (l_e, l_1, ..., l_n)``.

    Attributes:
        env: the environment's local state (any hashable value).
        locals: the agents' local states, ordered consistently with the
            owning :class:`PPS`'s ``agents`` tuple.
    """

    env: Hashable
    locals: Tuple[LocalState, ...]

    def local(self, index: int) -> LocalState:
        """Return the local state of the agent at position ``index``."""
        return self.locals[index]

    def __hash__(self) -> int:
        # Same formula the frozen dataclass would generate, cached:
        # local states can be arbitrarily large (e.g. perfect-recall
        # histories), and interned trees hash the same state at every
        # node that carries it.
        h = self.__dict__.get("_hash")
        if h is None:
            h = hash((self.env, self.locals))
            object.__setattr__(self, "_hash", h)
        return h

    def __getstate__(self):
        # The cached hash must not survive pickling: string hashes are
        # salted per process, so a restored stale value would put equal
        # keys in different dict buckets in the loading process.
        state = dict(self.__dict__)
        state.pop("_hash", None)
        return state


class InternTable:
    """Per-compilation intern table for states and local-state values.

    The protocol compilers (:func:`repro.protocols.compiler.compile_system`
    and :meth:`repro.messaging.system.MessagePassingSystem.compile`) run
    every raw configuration, stamped :class:`GlobalState`, and stamped
    local-state value through one of these tables, so that within a
    compiled system **equal values are identical objects**.  Equality
    checks then hit the ``is`` fast path, :class:`GlobalState` hashes are
    computed once per distinct state (they are cached on the instance),
    and consumers may group by ``id()`` instead of re-hashing.

    A table is attached to the compiled system as :attr:`PPS.intern`;
    :class:`~repro.core.engine.SystemIndex` detects it and builds its
    local-state and partition tables by identity grouping, hashing each
    distinct local value once per system instead of once per
    (node, agent) pair.  Hand-built trees carry no table (``pps.intern
    is None``) and keep the by-value code paths.

    The guarantee an attached table asserts: every non-root
    ``node.state`` of the owning system, and every entry of those
    states' ``locals`` tuples, is the canonical instance — two equal
    values anywhere in the tree are the same object.
    """

    __slots__ = ("_configs", "_locals", "_stamped")

    def __init__(self) -> None:
        self._configs: Dict[Hashable, Hashable] = {}
        self._locals: Dict[LocalState, LocalState] = {}
        # Keyed (id(config), t): stamped_state requires the canonical
        # config, whose identity then stands in for equality — sparing
        # a per-node re-hash of possibly large configurations.  The
        # value pins the config so its id can never be reused while
        # the cache lives.
        self._stamped: Dict[Tuple[int, int], Tuple[Hashable, GlobalState]] = {}

    def config(self, config: Hashable) -> Hashable:
        """The canonical instance of a raw (unstamped) configuration."""
        return self._configs.setdefault(config, config)

    def local(self, value: LocalState) -> LocalState:
        """The canonical instance of a stamped local-state value."""
        return self._locals.setdefault(value, value)

    def stamped_state(
        self,
        config: Hashable,
        t: int,
        env: Hashable,
        raw_locals: Sequence[LocalState],
    ) -> GlobalState:
        """The canonical time-``t`` stamped state of ``config``.

        ``config`` is the cache key and **must be the canonical
        instance** returned by :meth:`config` (the table keeps it alive
        and keys on its identity); ``env`` and ``raw_locals`` supply
        the pieces on a miss.  Local states are stored as interned
        ``(t, raw)`` pairs — the synchrony stamp.
        """
        key = (id(config), t)
        entry = self._stamped.get(key)
        if entry is None:
            state = GlobalState(
                env=env, locals=tuple(self.local((t, raw)) for raw in raw_locals)
            )
            self._stamped[key] = (config, state)
            return state
        return entry[1]

    @property
    def distinct_configs(self) -> int:
        return len(self._configs)

    @property
    def distinct_states(self) -> int:
        return len(self._stamped)

    @property
    def distinct_locals(self) -> int:
        return len(self._locals)

    def __repr__(self) -> str:
        return (
            f"InternTable(configs={self.distinct_configs}, "
            f"states={self.distinct_states}, locals={self.distinct_locals})"
        )


@dataclass
class Node:
    """A node of the execution tree.

    The root has ``state is None`` and ``depth == 0``.  A node at depth
    ``d >= 1`` corresponds to the global state at *time* ``d - 1``.

    ``via_action`` records the joint action (one action per agent, plus
    optionally the environment under a reserved name) whose performance
    at the parent state produced this node.  The paper stores the same
    information in the environment's history component ``h`` at the
    successor state; keeping it on the edge is equivalent bookkeeping
    and is what :func:`repro.core.atoms.does_` inspects.  It is ``None``
    for the root and for initial nodes (nature's initial choice is not
    an action of any agent).
    """

    uid: int
    depth: int
    state: Optional[GlobalState]
    prob_from_parent: Probability = ONE
    via_action: Optional[Mapping[AgentId, Action]] = None
    parent: Optional["Node"] = field(default=None, repr=False)
    children: List["Node"] = field(default_factory=list, repr=False)

    @property
    def time(self) -> int:
        """The time this node's global state refers to (``depth - 1``)."""
        return self.depth - 1

    @property
    def is_root(self) -> bool:
        return self.state is None

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def path_probability(self) -> Probability:
        """Product of edge probabilities from the root to this node."""
        prob = ONE
        node: Optional[Node] = self
        while node is not None and not node.is_root:
            prob *= node.prob_from_parent
            node = node.parent
        return prob


@dataclass(frozen=True)
class Run:
    """A run of the system: a root-to-leaf path, excluding the root.

    ``nodes[t]`` is the tree node holding the global state ``r(t)``;
    hence ``r(0)`` is a child of the root.  ``prob`` is ``mu_T({r})``.

    ``positions`` maps agent name to its index in the ``locals``
    tuples; the owning :class:`PPS` shares its own table so agent
    lookups are O(1) rather than a linear scan of ``agents``.
    """

    index: int
    nodes: Tuple[Node, ...]
    prob: Probability
    agents: Tuple[AgentId, ...]
    positions: Mapping[AgentId, int] = field(
        default_factory=dict, compare=False, repr=False
    )

    @property
    def length(self) -> int:
        """The number of global states in the run."""
        return len(self.nodes)

    @property
    def final_time(self) -> int:
        return self.length - 1

    def times(self) -> range:
        """All times ``t`` for which ``r(t)`` is defined."""
        return range(self.length)

    def state(self, t: int) -> GlobalState:
        """The global state ``r(t)``."""
        node_state = self.nodes[t].state
        # repro: allow[RP006] internal invariant: runs never contain
        # the root, the only stateless node (type-narrowing).
        assert node_state is not None
        return node_state

    def env_state(self, t: int) -> Hashable:
        """The environment's local state at time ``t``."""
        return self.state(t).env

    def local(self, agent: AgentId, t: int) -> LocalState:
        """Agent ``agent``'s local state ``r_i(t)``."""
        idx = self.positions.get(agent)
        if idx is None:
            # Hand-built runs may lack the shared table; fall back to a
            # scan so construction sites outside PPS keep working.
            try:
                idx = self.agents.index(agent)
            except ValueError:
                raise UnknownAgentError(f"unknown agent {agent!r}") from None
        return self.state(t).local(idx)

    def action_of(self, agent: AgentId, t: int) -> Optional[Action]:
        """The action ``agent`` performed at time ``t``, or ``None``.

        ``None`` is returned when ``t`` is the final time of the run
        (no action is performed at a leaf) or when the edge into the
        time-``t + 1`` node does not record an action for the agent
        (possible in hand-built trees).
        """
        if t + 1 >= self.length:
            return None
        via = self.nodes[t + 1].via_action
        if via is None:
            return None
        return via.get(agent)

    def performs(self, agent: AgentId, action: Action) -> Tuple[int, ...]:
        """All times at which ``agent`` performs ``action`` in this run."""
        return tuple(
            t for t in range(self.length - 1) if self.action_of(agent, t) == action
        )

    def shares_prefix(self, other: "Run", t: int) -> bool:
        """Whether the two runs agree up to and including time ``t``.

        Two runs agree up to ``t`` exactly when they extend the same
        time-``t`` node of the tree (paper, Section 4).
        """
        if t >= self.length or t >= other.length:
            return False
        return self.nodes[t].uid == other.nodes[t].uid


@dataclass(frozen=True)
class OverlayRun(Run):
    """A run of a derived system: shared parent nodes, overlaid actions.

    :class:`DerivedPPS` never copies its parent's tree; its runs reuse
    the parent runs' ``nodes`` tuples verbatim and consult the derived
    system's flattened edge-override table when asked for actions.
    Everything label-independent (states, probabilities, prefixes) is
    answered by the inherited :class:`Run` machinery unchanged.
    """

    edge_overrides: Mapping[int, Mapping[AgentId, Action]] = field(
        default_factory=dict, compare=False, repr=False
    )

    def action_of(self, agent: AgentId, t: int) -> Optional[Action]:
        if t + 1 >= self.length:
            return None
        node = self.nodes[t + 1]
        via = self.edge_overrides.get(node.uid, node.via_action)
        if via is None:
            return None
        return via.get(agent)


class PPS:
    """A finite purely probabilistic system and its run space.

    Args:
        agents: the agent names, in the order matching every
            :class:`GlobalState`'s ``locals`` tuple.
        root: the root node of the execution tree.  Its children are
            the initial global states.
        name: optional human-readable label used in reports.
        validate: run structural validation on construction
            (recommended; disable only in performance experiments on
            programmatically generated trees that are valid by
            construction).
        intern: the :class:`InternTable` the tree's states were built
            through, when there is one.  Only the protocol compilers
            pass this; it asserts that equal states/locals in the tree
            are identical objects, which the engine exploits when
            building its tables.

    Raises:
        InvalidSystemError: when the tree violates a pps invariant.
    """

    def __init__(
        self,
        agents: Sequence[AgentId],
        root: Node,
        *,
        name: str = "pps",
        validate: bool = True,
        intern: Optional[InternTable] = None,
    ) -> None:
        self.agents: Tuple[AgentId, ...] = tuple(agents)
        self.name = name
        self.intern = intern
        if len(set(self.agents)) != len(self.agents):
            raise InvalidSystemError("duplicate agent names")
        self._agent_index: Dict[AgentId, int] = {
            agent: idx for idx, agent in enumerate(self.agents)
        }
        self.root = root
        self._runs: Optional[Tuple[Run, ...]] = None
        self._system_index = None  # built lazily by SystemIndex.of
        if validate:
            self.validate()

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    def agent_index(self, agent: AgentId) -> int:
        """Position of ``agent`` in the ``locals`` tuples."""
        try:
            return self._agent_index[agent]
        except KeyError:
            raise UnknownAgentError(
                f"unknown agent {agent!r}; agents are {self.agents}"
            ) from None

    def nodes(self) -> Iterator[Node]:
        """Iterate over all nodes of the tree (root included), pre-order."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def state_nodes(self) -> Iterator[Node]:
        """Iterate over all non-root nodes (those carrying global states)."""
        for node in self.nodes():
            if not node.is_root:
                yield node

    def node_count(self) -> int:
        return sum(1 for _ in self.nodes())

    def edge_action(self, node: Node) -> Optional[Mapping[AgentId, Action]]:
        """The joint action labelling the edge into ``node`` in *this* system.

        For a plain system this is just ``node.via_action``; derived
        systems (:class:`DerivedPPS`) resolve their per-edge overlays
        here instead, which is why everything that inspects edge labels
        — the engine's action tables, tree renderings, signatures —
        must go through this accessor rather than reading the node
        attribute directly.
        """
        return node.via_action

    def edge_probability(self, node: Node) -> Probability:
        """The probability labelling the edge into ``node`` in *this* system.

        For a plain system this is just ``node.prob_from_parent``;
        reweighted systems (:class:`ReweightedPPS`) resolve their
        per-edge probability overlays here instead, which is why
        everything that reads edge probabilities off the shared tree —
        materialization, renderings, transforms building on transforms
        — must go through this accessor rather than the node attribute.
        """
        return node.prob_from_parent

    def max_time(self) -> int:
        """The largest time occurring in any run."""
        return max(node.time for node in self.state_nodes())

    def validate(self) -> None:
        """Check all pps invariants, raising on the first violation.

        Checks performed:

        * the root carries no state; every other node carries one with
          a ``locals`` tuple of the right arity;
        * every edge probability lies in ``(0, 1]``;
        * outgoing probabilities of every internal node sum to one;
        * synchrony — no agent local state occurs at two depths;
        * child depths are parent depth + 1 and parent links are
          consistent.
        """
        if not self.root.is_root:
            raise InvalidSystemError("root node must not carry a global state")
        if not self.root.children:
            raise InvalidSystemError("a pps must have at least one initial state")
        n = len(self.agents)
        state_depth: Dict[Tuple[AgentId, LocalState], int] = {}
        for node in self.nodes():
            if node.is_root:
                if node.depth != 0:
                    raise InvalidSystemError("root must have depth 0")
            else:
                state = node.state
                if state is None:
                    raise InvalidSystemError(
                        f"non-root node {node.uid} carries no global state"
                    )
                if len(state.locals) != n:
                    raise InvalidSystemError(
                        f"node {node.uid}: expected {n} local states, "
                        f"got {len(state.locals)}"
                    )
                if not (0 < node.prob_from_parent <= 1):
                    raise ZeroProbabilityError(
                        f"edge into node {node.uid} has probability "
                        f"{node.prob_from_parent}, outside (0, 1]"
                    )
                for agent, local in zip(self.agents, state.locals):
                    key = (agent, local)
                    seen = state_depth.get(key)
                    if seen is None:
                        state_depth[key] = node.depth
                    elif seen != node.depth:
                        raise SynchronyViolationError(
                            f"local state {local!r} of agent {agent!r} occurs "
                            f"at times {seen - 1} and {node.depth - 1}; "
                            "synchronous local states must include the time"
                        )
            for child in node.children:
                if child.parent is not node:
                    raise InvalidSystemError(
                        f"node {child.uid} has an inconsistent parent link"
                    )
                if child.depth != node.depth + 1:
                    raise InvalidSystemError(
                        f"node {child.uid} has depth {child.depth}, "
                        f"expected {node.depth + 1}"
                    )
            if node.children:
                total = sum(
                    (child.prob_from_parent for child in node.children),
                    start=Fraction(0),
                )
                if total != 1:
                    raise NotStochasticError(
                        f"outgoing probabilities of node {node.uid} sum to "
                        f"{total}, expected 1"
                    )

    # ------------------------------------------------------------------
    # Runs and points
    # ------------------------------------------------------------------

    @property
    def runs(self) -> Tuple[Run, ...]:
        """All runs of the system, each with its prior probability."""
        if self._runs is None:
            collected: List[Run] = []
            path: List[Node] = []

            def visit(node: Node, prob: Probability) -> None:
                if not node.is_root:
                    path.append(node)
                    prob = prob * node.prob_from_parent
                if node.is_leaf:
                    collected.append(
                        Run(
                            index=len(collected),
                            nodes=tuple(path),
                            prob=prob,
                            agents=self.agents,
                            positions=self._agent_index,
                        )
                    )
                else:
                    for child in node.children:
                        visit(child, prob)
                if not node.is_root:
                    path.pop()

            visit(self.root, ONE)
            self._runs = tuple(collected)
        return self._runs

    def run_count(self) -> int:
        return len(self.runs)

    def points(self) -> Iterator[Tuple[Run, int]]:
        """Iterate over all points ``(r, t)`` of the system."""
        for run in self.runs:
            for t in run.times():
                yield run, t

    def index(self) -> "SystemIndex":  # noqa: F821 - forward reference
        """The system's :class:`~repro.core.engine.SystemIndex`.

        Built lazily on first use and cached for the lifetime of the
        system (pps trees are immutable after validation, so the index
        never needs invalidating).
        """
        from .engine import SystemIndex  # late import: engine imports pps

        return SystemIndex.of(self)

    def runs_through(self, node: Node) -> FrozenSet[int]:
        """Indices of the runs whose path passes through ``node``.

        The root lies on no run (runs exclude it), so it maps to the
        empty event.
        """
        index = self.index()
        return index.event_of(index.node_mask(node))

    # ------------------------------------------------------------------
    # Local states and actions
    # ------------------------------------------------------------------

    def local_states(self, agent: AgentId) -> FrozenSet[LocalState]:
        """All local states of ``agent`` occurring anywhere in the tree."""
        self.agent_index(agent)  # keep the UnknownAgentError contract
        return self.index().local_states(agent)

    def occurrence_time(self, agent: AgentId, local: LocalState) -> Optional[int]:
        """The unique time at which ``local`` occurs for ``agent``.

        Synchrony guarantees uniqueness.  Returns ``None`` when the
        local state never occurs.
        """
        self.agent_index(agent)  # keep the UnknownAgentError contract
        return self.index().occurrence_time(agent, local)

    def actions_of(self, agent: AgentId) -> FrozenSet[Action]:
        """All actions ``agent`` ever performs in the system."""
        return self.index().actions_of(agent)

    def __repr__(self) -> str:
        return (
            f"PPS(name={self.name!r}, agents={self.agents}, "
            f"nodes={self.node_count()}, runs={len(self.runs)})"
        )


class ActionOverlay:
    """Per-edge ``via_action`` overrides over a shared parent tree.

    A transform that only *relabels* edges (``relabel_actions``,
    ``refrain_below_threshold``) preserves states, probabilities, tree
    shape, and therefore every belief/knowledge quantity that does not
    mention actions.  Instead of deep-copying the tree, such a
    transform records an overlay: for each changed edge, the (shared)
    node the edge leads into and the new joint action.  Node identity
    is preserved — the overlay never touches the parent's nodes — so a
    :class:`DerivedPPS` built from it can inherit the parent's
    :class:`~repro.core.engine.SystemIndex` tables wholesale and
    rebuild only what the overridden edges invalidate.
    """

    __slots__ = ("_entries",)

    def __init__(
        self, entries: Iterable[Tuple[Node, Mapping[AgentId, Action]]] = ()
    ) -> None:
        """Build an overlay from ``(node, new_via_action)`` pairs.

        Each node must be a non-root node of the parent tree whose edge
        already carries an action label (relabelling an unlabelled edge
        would change which runs perform actions at all, which is not a
        pure relabelling).
        """
        table: Dict[int, Tuple[Node, Dict[AgentId, Action]]] = {}
        for node, via in entries:
            if node.state is None:
                raise InvalidSystemError(
                    "an action overlay cannot override the root (it has "
                    "no incoming edge)"
                )
            table[node.uid] = (node, dict(via))
        self._entries = table

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, uid: int) -> bool:
        return uid in self._entries

    def items(self) -> Iterator[Tuple[Node, Mapping[AgentId, Action]]]:
        """Iterate over ``(node, new_via_action)`` pairs."""
        for node, via in self._entries.values():
            yield node, via

    def override_for(self, uid: int) -> Optional[Mapping[AgentId, Action]]:
        """The overriding joint action for the edge into node ``uid``."""
        entry = self._entries.get(uid)
        return None if entry is None else entry[1]

    def __repr__(self) -> str:
        return f"ActionOverlay(edges={len(self._entries)})"


class ProbabilityOverlay:
    """Per-edge probability overrides over a shared parent tree.

    The probability twin of :class:`ActionOverlay`: a transform that
    only *reweights* edges (``reweight_edges``, ``scale_adversary``,
    ``condition_on``) preserves states, action labels, and tree shape —
    and therefore every leaf range, local table, and event mask.
    Instead of deep-copying the tree, such a transform records for each
    changed edge the (shared) node the edge leads into and the new
    probability.  Node identity is preserved, so a
    :class:`ReweightedPPS` built from it inherits every
    *shape-dependent* structure of the parent's
    :class:`~repro.core.engine.SystemIndex` and rebuilds only the
    weight vector, prefix table, and array kernels.

    Unlike tree edges, override probabilities may be **zero** (that is
    how :func:`~repro.core.reweight.condition_on` removes runs) and may
    exceed one (conditioning renormalizes leaf edges); they only have
    to be non-negative rationals.  :class:`ReweightedPPS` checks that
    the run-space total stays a probability measure.
    """

    __slots__ = ("_entries",)

    def __init__(
        self, entries: Iterable[Tuple[Node, ProbabilityLike]] = ()
    ) -> None:
        """Build an overlay from ``(node, new_probability)`` pairs.

        Each node must be a non-root node of the parent tree (the root
        has no incoming edge to reweight).
        """
        table: Dict[int, Tuple[Node, Probability]] = {}
        for node, prob in entries:
            if node.state is None:
                raise InvalidSystemError(
                    "a probability overlay cannot override the root (it "
                    "has no incoming edge)"
                )
            p = as_fraction(prob)
            if p < 0:
                raise InvalidSystemError(
                    f"edge into node {node.uid} reweighted to {p}; "
                    "probabilities must be non-negative"
                )
            table[node.uid] = (node, p)
        self._entries = table

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, uid: int) -> bool:
        return uid in self._entries

    def items(self) -> Iterator[Tuple[Node, Probability]]:
        """Iterate over ``(node, new_probability)`` pairs."""
        for node, prob in self._entries.values():
            yield node, prob

    def override_for(self, uid: int) -> Optional[Probability]:
        """The overriding probability for the edge into node ``uid``."""
        entry = self._entries.get(uid)
        return None if entry is None else entry[1]

    def __repr__(self) -> str:
        return f"ProbabilityOverlay(edges={len(self._entries)})"


class DerivedPPS(PPS):
    """A system sharing its parent's tree with relabelled edge actions.

    The derived system and its parent agree on everything except the
    joint-action labels of the edges named by ``overlay``:

    * ``derived.root is parent.root`` — no node is copied; ``uid``\\ s,
      depths, states, and probabilities are literally the parent's;
    * ``derived.runs`` are :class:`OverlayRun`\\ s reusing the parent
      runs' node tuples (same indices, same exact probabilities);
    * :meth:`PPS.edge_action` resolves through the flattened override
      table, so engine tables, signatures, and renderings see the new
      labels while ``node.via_action`` keeps showing the parent's;
    * :meth:`index` derives the engine index from the parent's via
      :meth:`repro.core.engine.SystemIndex.derived`, inheriting every
      label-independent table and cache.

    Deriving from an already-derived system chains: overlays are
    flattened at construction, so lookups stay O(1) regardless of
    depth.  Construction never re-validates the (already validated,
    immutable) parent tree.
    """

    def __init__(
        self,
        parent: PPS,
        overlay: ActionOverlay,
        *,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(
            parent.agents,
            parent.root,
            name=name or f"{parent.name}-derived",
            validate=False,
            intern=parent.intern,
        )
        self.parent = parent
        self.overlay = overlay
        flat: Dict[int, Mapping[AgentId, Action]] = (
            dict(parent._edge_overrides) if isinstance(parent, DerivedPPS) else {}
        )
        for node, via in overlay.items():
            # Overrides are looked up by uid, and every tree numbers
            # uids from 0 — an overlay built against a *different* tree
            # would silently bind to whatever node of this tree shares
            # the uid.  Walking the parent chain to the root is
            # O(depth) per override and rules that out exactly.
            probe = node
            while probe.parent is not None:
                probe = probe.parent
            if probe is not parent.root:
                raise InvalidSystemError(
                    f"overlay node {node.uid} does not belong to the "
                    f"parent tree of {parent.name!r}"
                )
            flat[node.uid] = via
        self._edge_overrides: Dict[int, Mapping[AgentId, Action]] = flat
        # Probability overrides flatten the same way: a derived system
        # over a reweighted parent keeps answering edge probabilities
        # (and run measures) through the whole chain's flattened table.
        # Plain relabellings leave this empty; ReweightedPPS fills it.
        self._prob_overrides: Dict[int, Probability] = (
            dict(parent._prob_overrides)
            if isinstance(parent, DerivedPPS)
            else {}
        )

    def edge_action(self, node: Node) -> Optional[Mapping[AgentId, Action]]:
        return self._edge_overrides.get(node.uid, node.via_action)

    def edge_probability(self, node: Node) -> Probability:
        return self._prob_overrides.get(node.uid, node.prob_from_parent)

    @property
    def is_reweighted(self) -> bool:
        """Whether any edge probability differs from the shared tree's."""
        return bool(self._prob_overrides)

    @property
    def runs(self) -> Tuple[Run, ...]:
        if self._runs is None:
            overrides = self._edge_overrides
            reweights = self._prob_overrides
            built: List[Run] = []
            for run in self.parent.runs:
                prob = run.prob
                if reweights:
                    # Recompute from the raw tree edges through the
                    # flattened override table: the parent may itself
                    # be reweighted, and the table already carries the
                    # whole chain.
                    prob = ONE
                    for node in run.nodes:
                        prob = prob * reweights.get(
                            node.uid, node.prob_from_parent
                        )
                built.append(
                    OverlayRun(
                        index=run.index,
                        nodes=run.nodes,
                        prob=prob,
                        agents=self.agents,
                        positions=self._agent_index,
                        edge_overrides=overrides,
                    )
                )
            self._runs = tuple(built)
        return self._runs

    def __repr__(self) -> str:
        return (
            f"DerivedPPS(name={self.name!r}, parent={self.parent.name!r}, "
            f"overridden_edges={len(self._edge_overrides)})"
        )


class ReweightedPPS(DerivedPPS):
    """A system sharing its parent's tree with reweighted edge probabilities.

    The probability twin of :class:`DerivedPPS`: the reweighted system
    and its parent agree on tree shape, states, and action labels, and
    differ only in the probabilities of the edges named by
    ``reweight`` (a :class:`ProbabilityOverlay`):

    * ``reweighted.root is parent.root`` — no node is copied; ``uid``\\ s,
      depths, states, and labels are literally the parent's;
    * ``reweighted.runs`` are :class:`OverlayRun`\\ s reusing the parent
      runs' node tuples, with probabilities recomputed through the
      flattened override table (run indices unchanged);
    * :meth:`PPS.edge_probability` resolves through the flattened
      table, so materialization and chained transforms see the new
      probabilities while ``node.prob_from_parent`` keeps showing the
      tree's;
    * :meth:`index` derives the engine index from the parent's via
      :meth:`repro.core.engine.SystemIndex.derived`, which inherits
      every *shape-dependent* structure by reference and rebuilds only
      the weight vector, prefix table, and array kernels (see
      ``docs/transforms.md``).

    Reweighting composes with relabelling in either order: an optional
    ``overlay`` carries action overrides alongside the reweight, and
    deriving from an already-derived parent flattens both tables, so
    lookups stay O(1) regardless of chaining depth.

    Zero-probability overrides are legal — that is how
    :func:`~repro.core.reweight.condition_on` removes runs — but the
    run space as a whole must remain a probability measure:

    Raises:
        ValueError: when the reweighted run-space probability totals
            zero (the message names an offending zeroed edge), instead
            of a downstream ``ZeroDivisionError`` once the engine
            normalizes by the dead total.
        NotStochasticError: when the total is neither zero nor one.
    """

    def __init__(
        self,
        parent: PPS,
        reweight: ProbabilityOverlay,
        *,
        overlay: Optional[ActionOverlay] = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(
            parent,
            overlay if overlay is not None else ActionOverlay(),
            name=name or f"{parent.name}-reweighted",
        )
        self.reweight = reweight
        for node, prob in reweight.items():
            # Same foreign-tree probe as the action overlay path: uids
            # are per-tree, so an overlay built against a different
            # tree would silently bind to unrelated nodes.
            probe = node
            while probe.parent is not None:
                probe = probe.parent
            if probe is not parent.root:
                raise InvalidSystemError(
                    f"reweight node {node.uid} does not belong to the "
                    f"parent tree of {parent.name!r}"
                )
            self._prob_overrides[node.uid] = prob
        self._check_total()

    def _check_total(self) -> None:
        """Reject reweights that break the run-space probability measure.

        The check forces :attr:`runs` (cached — the derived index
        rebuild consumes the same tuple), so malformed reweights fail
        at construction with a message naming an edge, not deep inside
        the engine's prefix-table normalization.
        """
        total = sum((run.prob for run in self.runs), start=Fraction(0))
        if total == 0:
            culprit = next(
                (
                    node.uid
                    for node, prob in self.reweight.items()
                    if prob == 0
                ),
                None,
            )
            where = (
                f"e.g. the edge into node {culprit} overridden to 0"
                if culprit is not None
                else "no single zeroed edge; the per-run products vanish"
            )
            raise ValueError(
                f"reweight of {self.parent.name!r} drives the total "
                f"run-space probability to zero ({where}); a reweighted "
                "system must keep at least one run with positive "
                "probability"
            )
        if total != 1:
            raise NotStochasticError(
                f"reweighted run-space probability of {self.name!r} sums "
                f"to {total}, expected 1; rescale sibling edges (or use "
                "condition_on, which renormalizes) so the overrides "
                "preserve the measure"
            )

    def __repr__(self) -> str:
        return (
            f"ReweightedPPS(name={self.name!r}, parent={self.parent.name!r}, "
            f"reweighted_edges={len(self.reweight)}, "
            f"overridden_edges={len(self._edge_overrides)})"
        )
