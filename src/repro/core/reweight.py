"""Probability-changing transforms over a shared tree (adversary drift).

The paper's theorems are most interesting under *drift*: how do
Theorem 5.1 / PAK verdicts degrade as the adversary's corruption
probability or the environment's error rate moves?  Recompiling a
system per parameter value pays a full protocol compile + cold index
build per sweep row, even though reweighting an edge probability
changes neither tree shape, nor states, nor action labels — only the
integer weight vector.

The transforms here return :class:`~repro.core.pps.ReweightedPPS`
children over the *shared* parent tree (node identity preserved), whose
engine index inherits every shape-dependent structure by reference and
rebuilds only the weight vector, prefix table, and array kernels
(:meth:`repro.core.engine.SystemIndex.derived`, see
``docs/transforms.md``):

* :func:`reweight_edges` — direct per-edge probability overrides;
* :func:`scale_adversary` — the protocol-level drift knob: scale every
  adversarial branch by a factor, renormalizing honest siblings
  (threaded through :mod:`repro.protocols.adversary` for compiled
  adversary families);
* :func:`condition_on` — the conditional system given a run fact:
  non-satisfying leaf edges are zeroed and satisfying ones
  renormalized, so the result is exactly ``mu(. | fact)``.

Every transform takes ``materialize=True`` as an escape hatch: a
standalone deep copy with the resolved probabilities and action labels
baked into fresh nodes, pinned bit-identical (uid order, leaf order,
``Fraction`` probabilities, every measure) to the derived path — tests
assert this.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Iterable, List, Optional, Tuple

from .errors import InvalidSystemError
from .facts import Fact
from .numeric import Probability, ProbabilityLike, as_fraction
from .pps import PPS, Node, ProbabilityOverlay, ReweightedPPS

__all__ = [
    "condition_on",
    "materialize_reweighted",
    "reweight_edges",
    "scale_adversary",
]

#: ``(node, new_probability)`` pairs — nodes are identity-keyed tree
#: objects (not hashable), so overrides travel as pairs, mirroring
#: :class:`~repro.core.pps.ActionOverlay`'s constructor.
EdgeOverrides = Iterable[Tuple[Node, ProbabilityLike]]


def _override_pairs(overrides: EdgeOverrides) -> List[Tuple[Node, Probability]]:
    return [(node, as_fraction(prob)) for node, prob in overrides]


def reweight_edges(
    pps: PPS,
    overrides: EdgeOverrides,
    *,
    name: Optional[str] = None,
    materialize: bool = False,
) -> PPS:
    """The system with the named edges' probabilities overridden.

    The fundamental reweighting transform: ``overrides`` maps non-root
    nodes of ``pps``'s tree to their new incoming-edge probabilities
    (zero allowed).  The overrides must preserve the run-space
    probability measure — rescale sibling edges complementarily, or
    use :func:`scale_adversary` / :func:`condition_on`, which do.

    Args:
        pps: the parent system (may itself be derived or reweighted;
            overlays flatten).
        overrides: ``node -> probability`` mapping or ``(node,
            probability)`` pairs.
        name: label of the result (default ``"<parent>-reweighted"``).
        materialize: return a standalone deep copy with the new
            probabilities baked into fresh nodes instead of a
            tree-sharing :class:`~repro.core.pps.ReweightedPPS`.

    Raises:
        ValueError: when the reweighted run space has zero total
            probability (the message names an offending zeroed edge).
        NotStochasticError: when the total is neither zero nor one.
    """
    derived = ReweightedPPS(
        pps,
        ProbabilityOverlay(_override_pairs(overrides)),
        name=name,
    )
    if materialize:
        return materialize_reweighted(derived, name=derived.name)
    return derived


def scale_adversary(
    pps: PPS,
    select: Callable[[Node], bool],
    factor: ProbabilityLike,
    *,
    name: Optional[str] = None,
    materialize: bool = False,
) -> PPS:
    """Scale every adversarial branch by ``factor``, renormalizing the rest.

    The protocol-level drift knob: ``select`` marks the adversarial
    outcome edges (called on the node each edge leads into), and every
    selected edge's probability is multiplied by ``factor`` while its
    unselected siblings are rescaled complementarily, so each touched
    node's outgoing distribution stays a distribution.  ``factor > 1``
    strengthens the adversary, ``factor < 1`` weakens it, ``factor=0``
    removes the adversarial branches (their runs keep index slots with
    zero weight — tree shape is shared, not pruned).

    With selected mass ``s`` at a node, selected edges scale by
    ``factor`` and unselected ones by ``(1 - factor*s) / (1 - s)``.

    Raises:
        ValueError: when ``factor`` is negative, when ``factor * s > 1``
            at some node, or when every child of a node is selected and
            ``factor != 1`` (there is no honest mass to absorb the
            change) — each message names the offending node.
    """
    scale = as_fraction(factor)
    if scale < 0:
        raise ValueError(f"scale_adversary factor must be >= 0, got {scale}")
    overrides: List[Tuple[Node, Probability]] = []
    if scale != 1:
        for node in pps.nodes():
            if not node.children:
                continue
            chosen = {
                id(child): child for child in node.children if select(child)
            }
            if not chosen:
                continue
            mass = sum(
                (pps.edge_probability(child) for child in chosen.values()),
                start=Fraction(0),
            )
            if mass == 0:
                continue
            scaled = scale * mass
            if scaled > 1:
                raise ValueError(
                    f"scale_adversary: node {node.uid}'s adversarial mass "
                    f"{mass} scaled by {scale} exceeds 1"
                )
            honest = 1 - mass
            if honest == 0:
                raise ValueError(
                    f"scale_adversary: every branch of node {node.uid} is "
                    f"adversarial (mass 1); scaling by {scale} leaves no "
                    "honest sibling to renormalize against"
                )
            rescale = (1 - scaled) / honest
            for child in node.children:
                p = pps.edge_probability(child)
                q = p * (scale if id(child) in chosen else rescale)
                if q != p:
                    overrides.append((child, q))
    derived = ReweightedPPS(
        pps,
        ProbabilityOverlay(overrides),
        name=name or f"{pps.name}-scaled",
    )
    if materialize:
        return materialize_reweighted(derived, name=derived.name)
    return derived


def condition_on(
    pps: PPS,
    fact: Fact,
    *,
    name: Optional[str] = None,
    materialize: bool = False,
) -> PPS:
    """The conditional system ``mu(. | fact)`` over the shared tree.

    ``fact`` is evaluated as a run fact; leaf edges of non-satisfying
    runs are zeroed and leaf edges of satisfying runs divided by
    ``mu(fact)``, so every run's probability becomes exactly its
    conditional probability.  Run indices, tree shape, states, and
    labels are untouched — the result answers every query as the
    conditioned measure while still sharing the parent's
    shape-dependent index structure.

    Raises:
        ValueError: when ``fact`` has probability zero in ``pps``
            (conditioning would divide by zero downstream).
    """
    from .engine import SystemIndex  # late import: engine imports pps

    index = SystemIndex.of(pps)
    mask = index.runs_satisfying_mask(fact)
    measure = index.probability(mask)
    if measure == 0:
        raise ValueError(
            f"cannot condition {pps.name!r} on {fact!r}: the fact has "
            "probability zero (no run satisfies it with positive weight)"
        )
    overrides: List[Tuple[Node, Probability]] = []
    for run in pps.runs:
        leaf = run.nodes[-1]
        current = pps.edge_probability(leaf)
        if mask >> run.index & 1:
            if measure != 1:
                overrides.append((leaf, current / measure))
        elif current != 0:
            overrides.append((leaf, Fraction(0)))
    derived = ReweightedPPS(
        pps,
        ProbabilityOverlay(overrides),
        name=name or f"{pps.name}|{fact!r}",
    )
    if materialize:
        return materialize_reweighted(derived, name=derived.name)
    return derived


def materialize_reweighted(pps: PPS, *, name: Optional[str] = None) -> PPS:
    """A standalone deep copy with resolved probabilities and labels baked in.

    The escape hatch of the reweighting transforms: fresh nodes
    numbered in depth-first pre-order from 0 (the
    :func:`~repro.protocols.strategies.copy_tree` contract), each
    carrying ``pps.edge_probability`` / ``pps.edge_action`` resolved
    through the whole overlay chain.  Zero-probability edges are kept
    (dropping them would renumber runs), so the copy is bit-identical
    to the derived system on every run index, weight, and measure —
    and is validated only structurally (``validate=False``), since the
    conditional constructions legitimately carry zero edges and
    node-level sums that the global run-space check in
    :class:`~repro.core.pps.ReweightedPPS` has already vetted.
    """
    counter = 0
    result: Optional[Node] = None
    stack: List[Tuple[Node, Optional[Node]]] = [(pps.root, None)]
    while stack:
        node, parent = stack.pop()
        via = pps.edge_action(node)
        copy = Node(
            uid=counter,
            depth=node.depth,
            state=node.state,
            prob_from_parent=pps.edge_probability(node),
            via_action=dict(via) if via is not None else None,
            parent=parent,
        )
        counter += 1
        if parent is None:
            result = copy
        else:
            parent.children.append(copy)
        # Reversed push: children are copied (and numbered) first-child
        # first, matching the recursive pre-order numbering.
        stack.extend((child, copy) for child in reversed(node.children))
    if result is None:  # pragma: no cover - stack always yields the root
        raise InvalidSystemError("cannot materialize an empty tree")
    return PPS(
        pps.agents,
        result,
        name=name or pps.name,
        validate=False,
        intern=pps.intern,
    )
