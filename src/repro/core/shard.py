"""Sharded run spaces: splitting one index's leaf universe across cores.

Runs are collected in DFS order, so the runs through *any* tree node
form a contiguous index range (``docs/engine.md``).  That makes the
bitmask universe splittable at any tree frontier: a
:class:`ShardPlan` picks a frontier whose leaf ranges partition
``[0, run_count)`` into ``K`` contiguous shards, and every engine
quantity then decomposes per shard —

* **masks** restrict by intersection with a shard's range mask and
  recombine by OR;
* **integer weight totals** (the input of every numeric mode) restrict
  to sub-masks and recombine by integer addition over the one common
  denominator;
* **float error bounds** recombine through
  :func:`~repro.core.arraykernel.sum_bounds`, whose error term is
  valid for any summation order, so a bound combined across shards is
  conservative regardless of how the work was split.

All three combines are associative, and the implementations below
always fold **in ascending shard order** — never over a set or an
identity-keyed mapping — so a sharded evaluation is deterministic for
a fixed shard count and its exact values are *bit-identical* to the
single-process path for every shard count (``docs/sharding.md``
records the laws; rule RP008 of ``repro.tools.check`` polices the
fixed-order discipline).

Two execution surfaces consume a plan:

* the engine's own point scans (:meth:`SystemIndex._scan_batch`)
  consult :func:`default_shards` (the ``REPRO_SHARDS`` environment
  knob) and walk the plan's shards in order within the current
  process — same work, same results, exercising the decomposition on
  every tier-1 run;
* :class:`ShardedExecutor` evaluates shards in parallel worker
  processes (``concurrent.futures.ProcessPoolExecutor`` over a
  ``fork`` context, so the index — and any closure-carrying facts
  registered as payload — are inherited by the workers without
  pickling).  The pool is created once and amortized across queries;
  when ``K <= 1``, ``fork`` is unavailable, or a task cannot be
  shipped, evaluation falls back to the serial in-process path with
  identical results.

Worker processes run with fork-copied memo caches and a fork-copied
:func:`~repro.core.lazyprob.numeric_stats` counter; nothing a worker
caches or counts leaks back by itself.  The executor therefore merges
explicitly: combined masks are written back into the parent index
through the engine's own cache discipline
(:meth:`SystemIndex._absorb_scanned` — structural keys and
``_action_free`` records included), and each worker returns a counter
delta that the parent folds into the global stats via
:func:`~repro.core.lazyprob.absorb_stats`.

Result masks are arbitrary-precision ints one bit per run; pickling
them through the result pipe re-serializes ``run_count / 8`` bytes per
fact per shard.  Workers therefore ship mask payloads out-of-band as
packed little-endian byte arrays in a ``multiprocessing.shared_memory``
segment (one segment per task, unlinked by the parent after
reassembly) and send only the segment name, per-mask lengths, and a CRC32 checksum through the pipe
(the parent verifies length + checksum before trusting the bytes);
where shared memory is unavailable or refuses allocation the masks
fall back to in-band pickling — both transports reconstruct the
identical integers (the ``tests/parity.py`` grid runs the sharded
executor over every numeric tier).

:class:`ShardedExecutor` is a *supervisor*, not just a dispatcher
(``docs/robustness.md``): every task carries a per-task timeout, a
failed shard is re-dispatched with bounded retry + exponential
backoff, a broken pool is killed and respawned (budgeted), and
shared-memory segments are parent-named so any segment belonging to a
crashed or abandoned task can be reaped.  When the budget runs out the
executor either raises :class:`~repro.core.errors.FaultExhaustedError`
naming the failing shard or degrades to the serial scan — and *every*
downgrade (parallel→serial, shm→pickle) is recorded as a
:class:`~repro.core.faults.DegradationEvent` on the process's
:func:`~repro.core.faults.resilience_report`, never swallowed.
Deterministic fault injection for all of these paths comes from
:mod:`repro.core.faults` (``REPRO_FAULTS``).
"""

from __future__ import annotations

import itertools
import os
import pickle
import time
import zlib
from bisect import bisect_right
from fractions import Fraction
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .arraykernel import div_bounds, float_with_err, sum_bounds
from .errors import (
    ConditioningOnNullEventError,
    FaultExhaustedError,
    ShmIntegrityError,
)
from .faults import (
    absorb_events,
    hang_seconds,
    maybe_fire,
    record_degradation,
    record_retry,
    report_delta,
    reset_resilience_report,
)
from .lazyprob import (
    LazyProb,
    absorb_stats,
    check_numeric_mode,
    numeric_stats,
    reset_numeric_stats,
)
from .numeric import ONE, ZERO

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from .engine import SystemIndex
    from .facts import Fact
    from .pps import Action, AgentId, LocalState

__all__ = [
    "ShardPlan",
    "ShardedExecutor",
    "default_shards",
    "set_default_shards",
    "combine_masks",
    "combine_totals",
    "combine_bounds",
    "combine_errors",
]


# ----------------------------------------------------------------------
# The REPRO_SHARDS knob
# ----------------------------------------------------------------------

# The process-default shard count: 0/1 means "no sharding" (the
# single-pass scan).  Resolved lazily from the environment on first
# use, so importing the module never reads os.environ at a surprising
# time; tests flip it via set_default_shards, mirroring
# arraykernel.set_backend.
_default_shards: Optional[int] = None


def _shards_from_env() -> int:
    raw = os.environ.get("REPRO_SHARDS", "").strip()
    if not raw:
        return 0
    try:
        value = int(raw)
    except ValueError:
        return 0
    return value if value > 0 else 0


def default_shards() -> int:
    """The process-default shard count (``REPRO_SHARDS``; 0 = off).

    ``REPRO_SHARDS=N`` makes every engine point scan decompose over an
    ``N``-shard plan (in-process, fixed shard order — results are
    bit-identical to the unsharded scan); ``0``, ``1``, unset, or an
    unparseable value leave the single-pass scan in place.
    """
    global _default_shards
    if _default_shards is None:
        _default_shards = _shards_from_env()
    return _default_shards


def set_default_shards(shards: int) -> int:
    """Set the process-default shard count, returning the previous one.

    The test hook behind the parity grids: flipping the knob changes
    how scans are *scheduled*, never what they compute.

    Raises:
        ValueError: for negative shard counts.
    """
    global _default_shards
    if shards < 0:
        raise ValueError(f"shard count must be >= 0, got {shards}")
    previous = default_shards()
    _default_shards = int(shards)
    return previous


# ----------------------------------------------------------------------
# Combine laws (fixed shard order; see docs/sharding.md)
# ----------------------------------------------------------------------


def combine_masks(parts: Sequence[int]) -> int:
    """OR per-shard masks, folded in the given (ascending-shard) order.

    Shard ranges are disjoint, so OR over them is a disjoint union:
    associative, and equal to the unsharded mask for any split.
    """
    mask = 0
    for part in parts:
        mask |= part
    return mask


def combine_totals(parts: Sequence[int]) -> int:
    """Sum per-shard integer weight totals (one common denominator).

    Integer addition is exact and associative, so the combined total —
    and every ``Fraction`` folded from it — is bit-identical to the
    single-process total for any shard count.
    """
    total = 0
    for part in parts:
        total += part
    return total


def combine_errors(parts: Sequence[Optional[Exception]]) -> Optional[Exception]:
    """The first per-shard exception in ascending shard order, if any.

    Shards cover ascending run ranges, so the first erroring shard's
    first exception is exactly the exception the serial point scan
    would have recorded.
    """
    for part in parts:
        if part is not None:
            return part
    return None


def combine_bounds(
    parts: Sequence[Tuple[float, float]]
) -> Tuple[float, float]:
    """Combine per-shard ``(approx, err)`` bounds into one bound.

    Delegates to :func:`~repro.core.arraykernel.sum_bounds`: the error
    term covers the accumulated rounding of *any* summation order, so
    the combined bound is conservative no matter how many shards the
    total was split across.  The exact value the bound brackets is the
    sum of the shards' exact totals — shard-count invariant — so a
    comparison that escalates lands on the identical integers.
    """
    return sum_bounds(parts)


# ----------------------------------------------------------------------
# Shard plans: a tree frontier as contiguous leaf ranges
# ----------------------------------------------------------------------


class ShardPlan:
    """K contiguous leaf ranges covering one index's run universe.

    Built by :meth:`for_index` from a tree frontier: starting from the
    root's children, the widest expandable frontier node is repeatedly
    replaced by its children until the frontier carries at least one
    candidate boundary per requested shard, then the frontier's range
    boundaries are grouped into ``K`` contiguous shards of near-equal
    leaf count.  Because every node's leaf range is contiguous and
    DFS-ordered, the resulting shards partition ``[0, run_count)``
    exactly; derived indices share the parent's plan (same tree, same
    ranges).

    The requested count is clamped to ``[1, run_count]``, so ``K``
    greater than the number of leaves degrades to single-leaf shards
    rather than empty ones.
    """

    __slots__ = ("run_count", "boundaries", "ranges", "masks")

    def __init__(self, run_count: int, boundaries: Sequence[int]) -> None:
        bounds = list(boundaries)
        if not bounds or bounds[0] != 0 or bounds[-1] != run_count:
            raise ValueError(
                f"shard boundaries {bounds} must cover [0, {run_count}]"
            )
        for left, right in zip(bounds, bounds[1:]):
            if right <= left:
                raise ValueError(
                    f"shard boundaries {bounds} must be strictly increasing"
                )
        self.run_count = run_count
        self.boundaries: Tuple[int, ...] = tuple(bounds)
        self.ranges: Tuple[Tuple[int, int], ...] = tuple(
            zip(self.boundaries, self.boundaries[1:])
        )
        self.masks: Tuple[int, ...] = tuple(
            (1 << hi) - (1 << lo) for lo, hi in self.ranges
        )

    # -- construction ---------------------------------------------------

    @classmethod
    def for_index(cls, index: "SystemIndex", shards: int) -> "ShardPlan":
        """A plan splitting ``index``'s leaf universe into ``shards``."""
        run_count = index.run_count
        if run_count <= 0:
            return cls(0, (0,)) if run_count == 0 else cls(run_count, (0, run_count))
        k = max(1, min(int(shards), run_count))
        if k == 1:
            return cls(run_count, (0, run_count))
        cuts = _frontier_boundaries(index, k)
        return cls(run_count, _balanced_cuts(cuts, run_count, k))

    # -- queries --------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return len(self.ranges)

    def shard_of(self, run_index: int) -> int:
        """The shard holding ``run_index``."""
        if not 0 <= run_index < self.run_count:
            raise IndexError(
                f"run index {run_index} outside [0, {self.run_count})"
            )
        return bisect_right(self.boundaries, run_index) - 1

    def submasks(self, mask: int) -> List[int]:
        """``mask`` restricted to each shard, in ascending shard order.

        The restrictions are pairwise disjoint and OR back to ``mask``
        (:func:`combine_masks`), so any per-mask quantity that sums
        over runs decomposes exactly over this list.
        """
        return [mask & shard_mask for shard_mask in self.masks]

    def __repr__(self) -> str:
        return (
            f"ShardPlan(runs={self.run_count}, "
            f"shards={self.shard_count}, boundaries={self.boundaries})"
        )


def _frontier_boundaries(index: "SystemIndex", k: int) -> List[int]:
    """Candidate cut positions from a ``>= k``-node tree frontier.

    The frontier starts at the root's children and repeatedly expands
    the widest node that still has children, until every frontier node
    is narrower than the ideal shard width ``ceil(n / k)`` (or is a
    leaf).  Cut candidates therefore accumulate where the leaf mass is
    — a skewed tree yields enough boundaries to balance the wide side
    instead of splitting only at the top level.
    """
    ranges = index._node_ranges
    frontier: List[object] = list(index.pps.root.children)
    target_width = max(1, -(-index.run_count // k))  # ceil(n / k)

    def width(node: object) -> int:
        rng = ranges.get(node.uid)
        return 0 if rng is None else rng[1] - rng[0]

    while True:
        best_pos = -1
        best_width = target_width
        for pos, node in enumerate(frontier):
            if node.children and width(node) > best_width:
                best_pos = pos
                best_width = width(node)
        if best_pos < 0:
            break
        node = frontier[best_pos]
        frontier[best_pos : best_pos + 1] = list(node.children)
    cuts = sorted(
        {ranges[node.uid][0] for node in frontier if node.uid in ranges}
    )
    return [cut for cut in cuts if cut > 0]


def _balanced_cuts(candidates: Sequence[int], run_count: int, k: int) -> List[int]:
    """``k`` near-equal contiguous groups from candidate cut positions.

    For each of the ``k - 1`` interior boundaries the candidate closest
    to the ideal position ``j * run_count / k`` is chosen (compared in
    exact integer arithmetic, ties to the left), subject to staying
    strictly between the previous choice and the positions the
    remaining boundaries still need.  When the frontier offered fewer
    candidates than requested shards the plan simply has fewer, wider
    shards — never an empty one.
    """
    chosen: List[int] = [0]
    pool = [cut for cut in candidates if 0 < cut < run_count]
    for j in range(1, k):
        remaining = k - j  # boundaries still to place after this one
        best: Optional[int] = None
        best_score: Optional[int] = None
        for pos, cut in enumerate(pool):
            if cut <= chosen[-1]:
                continue
            if len(pool) - pos - 1 < remaining - 1:
                break
            # |cut - j*run_count/k| compared exactly as |cut*k - j*run_count|.
            score = abs(cut * k - j * run_count)
            if best_score is None or score < best_score:
                best = cut
                best_score = score
        if best is None:
            break
        chosen.append(best)
    chosen.append(run_count)
    return chosen


# ----------------------------------------------------------------------
# The fork-based sharded executor
# ----------------------------------------------------------------------

# Worker-process state, inherited by fork at pool creation: the index
# the workers evaluate against, the plan they shard by, and a payload
# tuple of caller objects (e.g. closure-carrying facts) that cannot be
# pickled but *can* be inherited.  Tasks reference payload entries by
# position, so nothing unpicklable ever crosses the pipe.
_WORKER_STATE: Optional[Tuple["SystemIndex", ShardPlan, tuple]] = None


def _fork_context():
    """The ``fork`` multiprocessing context, or ``None`` off-POSIX."""
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None


def _picklable_error(error: Optional[Exception]) -> Optional[Exception]:
    """``error`` if it survives a pickle round-trip, else a summary.

    Scan errors come from arbitrary ``Fact.holds`` implementations;
    one that cannot cross the process boundary is reported as a
    ``RuntimeError`` carrying its type and message rather than
    poisoning the whole result future.
    """
    if error is None:
        return None
    try:
        pickle.dumps(error)
        return error
    except Exception:  # repro: allow[RP010] picklability probe: any failure means "summarize", the caller records nothing because no mode changed
        return RuntimeError(f"{type(error).__name__}: {error}")


#: Parent-side sequence for deterministic, reapable segment names: the
#: parent names every segment *before* dispatch, so a crashed or
#: abandoned task's segment can be unlinked by name even though the
#: worker never reported back.
_segment_counter = itertools.count()


def _create_segment(shared_memory, name: Optional[str], size: int):
    """Create a segment, replacing a stale leftover of the same name.

    A same-named segment can only be debris from a killed worker of a
    previous attempt (parent names are process-unique), so it is safe
    to unlink and re-create.
    """
    if name is None:
        return shared_memory.SharedMemory(create=True, size=size)
    try:
        return shared_memory.SharedMemory(name=name, create=True, size=size)
    except FileExistsError:
        stale = shared_memory.SharedMemory(name=name)
        stale.close()
        stale.unlink()
        return shared_memory.SharedMemory(name=name, create=True, size=size)


def _pack_masks(
    masks: Sequence[int],
    *,
    shard: Optional[int] = None,
    attempt: Optional[int] = None,
    name: Optional[str] = None,
):
    """Ship run masks out-of-band: ``("shm", name, sizes, crc)`` when possible.

    Each mask is packed as its minimal little-endian byte array and the
    packed blobs concatenated into one shared-memory segment, so the
    result pipe carries only the segment name, the per-mask lengths,
    and a CRC32 over the payload (:func:`_unpack_masks` verifies both
    before trusting the bytes).  The segment is *not* unlinked here —
    ownership passes to the parent, and the worker-side resource
    tracker is told to forget it so worker shutdown does not reclaim
    (or warn about) a segment the parent still reads.  Falls back to
    the in-band form ``("pickle", masks)`` when shared memory is
    unavailable or refuses the allocation, recording the shm→pickle
    transport downgrade.

    Fault sites: ``shm-alloc`` (keyed by ``shard``) simulates the
    allocation failure; ``shm-corrupt`` flips a payload byte after the
    checksum is computed, so the parent's verification must catch it.
    """
    try:
        from multiprocessing import shared_memory
    except ImportError:  # pragma: no cover - minimal builds
        return ("pickle", list(masks))
    blobs = [
        mask.to_bytes((mask.bit_length() + 7) // 8, "little") for mask in masks
    ]
    total = sum(len(blob) for blob in blobs)
    try:
        if maybe_fire("shm-alloc", key=shard, attempt=attempt):
            raise OSError("injected shm-alloc fault")
        segment = _create_segment(shared_memory, name, max(1, total))
    except (OSError, ValueError) as error:
        record_degradation(
            "transport", "shm", "pickle", "shm-alloc-failed", repr(error)
        )
        return ("pickle", list(masks))
    offset = 0
    for blob in blobs:
        segment.buf[offset : offset + len(blob)] = blob
        offset += len(blob)
    checksum = zlib.crc32(bytes(segment.buf[:total])) if total else zlib.crc32(b"")
    if maybe_fire("shm-corrupt", key=shard, attempt=attempt):
        if total:
            segment.buf[0] = segment.buf[0] ^ 0xFF
        else:
            checksum ^= 0xFF
    out_name = segment.name
    segment.close()
    try:  # pragma: no cover - tracker layout is an implementation detail
        from multiprocessing import resource_tracker

        resource_tracker.unregister("/" + out_name, "shared_memory")
    except Exception:  # repro: allow[RP010] best-effort tracker bookkeeping: nothing degrades, the transport mode is unchanged
        pass
    return ("shm", out_name, [len(blob) for blob in blobs], checksum)


def _unpack_masks(packed) -> List[int]:
    """Reassemble masks from :func:`_pack_masks`, unlinking the segment.

    The segment is unlinked on *every* path — including a failed
    length or checksum verification, which raises
    :class:`~repro.core.errors.ShmIntegrityError` naming the segment
    (the supervisor treats that as a retryable shard failure).
    """
    if packed[0] == "pickle":
        return list(packed[1])
    from multiprocessing import shared_memory

    _, name, sizes, checksum = packed
    segment = shared_memory.SharedMemory(name=name)
    try:
        total = sum(sizes)
        if segment.size < total:
            raise ShmIntegrityError(
                f"shared-memory segment {name!r} is shorter than its "
                f"length header ({segment.size} < {total} bytes)"
            )
        payload = bytes(segment.buf[:total])
        if zlib.crc32(payload) != checksum:
            raise ShmIntegrityError(
                f"shared-memory segment {name!r} failed its checksum "
                f"({total} bytes)"
            )
        masks: List[int] = []
        offset = 0
        for size in sizes:
            masks.append(int.from_bytes(payload[offset : offset + size], "little"))
            offset += size
    finally:
        segment.close()
        segment.unlink()
    return masks


def _scan_shard_task(
    shard: int,
    fact_refs: Sequence[Tuple[str, object]],
    t: Optional[int],
    attempt: int = 0,
    segment_name: Optional[str] = None,
):
    """Worker task: scan one shard's run range for the referenced facts.

    Returns ``(packed_masks, errors, stats_delta, report_delta)`` —
    masks travel via :func:`_pack_masks`; the numeric counters *and*
    the resilience report are reset on entry so each delta covers
    exactly this task's work (workers are forked with the parent's
    state, which must not be re-counted on merge).

    ``attempt`` is the supervisor's retry ordinal for this shard; all
    worker-side fault decisions are keyed on it, so a fault spec like
    ``worker-crash@0`` fires on the first attempt and *not* on the
    re-dispatch, regardless of which forked process runs it.
    """
    state = _WORKER_STATE
    if state is None:  # pragma: no cover - defensive: task outside a pool
        raise RuntimeError("shard worker has no inherited state")
    index, plan, payload = state
    if maybe_fire("worker-crash", key=shard, attempt=attempt):
        os._exit(13)  # hard exit: simulates OOM-kill / segfault, not an exception
    if maybe_fire("worker-hang", key=shard, attempt=attempt):
        time.sleep(hang_seconds())
    facts = [
        payload[ref] if kind == "payload" else ref
        for kind, ref in fact_refs
    ]
    reset_numeric_stats()
    reset_resilience_report()
    lo, hi = plan.ranges[shard]
    masks, errors = index._scan_batch_range(facts, t, lo, hi)
    return (
        _pack_masks(masks, shard=shard, attempt=attempt, name=segment_name),
        [_picklable_error(error) for error in errors],
        numeric_stats(),
        report_delta(),
    )


class ShardedExecutor:
    """Parallel per-shard evaluation against one index, pool amortized.

    The executor owns (at most) one ``fork``-context process pool,
    created lazily on the first parallel query and reused until
    :meth:`close` — a sweep issuing hundreds of queries pays the fork
    cost once.  Every query is decomposed over the plan's shards,
    evaluated per shard, and recombined **in ascending shard order**
    with the module's combine laws, so results are bit-identical to
    the serial engine path; on any transport failure (unpicklable
    fact, broken pool, no ``fork`` on the platform) the query silently
    recomputes serially instead.

    ``payload`` registers objects the workers must reach but pickle
    cannot carry (closure-backed facts): they are inherited by fork
    and referenced by position.  Objects created *after* the pool
    exists cannot be registered — fork already happened — so build the
    executor after the fact universe of the workload is known, or let
    the picklability probe route novel facts through pickling.

    Supervision knobs (``docs/robustness.md``): ``task_timeout`` bounds
    each shard task's wall clock (a late task is treated as a hung
    worker, the pool is killed and respawned); ``max_retries`` bounds
    re-dispatches per shard; ``backoff`` seeds the exponential
    retry delay; ``max_pool_respawns`` bounds how many times a broken
    pool is rebuilt; ``on_exhaustion`` picks between degrading to the
    serial scan (default — bit-identical results, recorded on the
    resilience report) and raising
    :class:`~repro.core.errors.FaultExhaustedError` naming the shard.

    Usable as a context manager; :meth:`close` is idempotent.
    """

    def __init__(
        self,
        index: "SystemIndex",
        *,
        shards: Optional[int] = None,
        payload: Sequence[object] = (),
        max_workers: Optional[int] = None,
        task_timeout: Optional[float] = None,
        max_retries: int = 2,
        backoff: float = 0.05,
        max_pool_respawns: int = 2,
        on_exhaustion: str = "degrade",
    ) -> None:
        if on_exhaustion not in ("degrade", "raise"):
            raise ValueError(
                f"on_exhaustion must be 'degrade' or 'raise', got {on_exhaustion!r}"
            )
        self.index = index
        requested = default_shards() if shards is None else int(shards)
        self.plan = index.shard_plan(requested)
        self.payload = tuple(payload)
        self._payload_ids = {id(obj): pos for pos, obj in enumerate(self.payload)}
        self._max_workers = max_workers
        self._task_timeout = 300.0 if task_timeout is None else float(task_timeout)
        self._max_retries = int(max_retries)
        self._backoff = float(backoff)
        self._max_pool_respawns = int(max_pool_respawns)
        self._on_exhaustion = on_exhaustion
        self._respawns = 0
        self._pool = None
        self._pool_failed = False
        self._saved_state: Optional[tuple] = None
        self._live_segments: Set[str] = set()

    # -- lifecycle ------------------------------------------------------

    def __enter__(self) -> "ShardedExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        """Shut the pool down, reap stray segments, restore worker state."""
        self._retire_pool(kill=False)
        self._reap_segments(list(self._live_segments))

    def _retire_pool(self, *, kill: bool) -> None:
        """Drop the pool: graceful shutdown, or terminate hung workers.

        ``kill=True`` is the supervision path for a broken or timed-out
        pool — waiting for a hung worker would block forever, so the
        worker processes are terminated outright and joined.  Either
        way the module worker state is restored, and a later
        :meth:`_ensure_pool` may respawn (budget permitting).
        """
        global _WORKER_STATE
        pool = self._pool
        self._pool = None
        if pool is None:
            return
        if kill:
            processes = list(getattr(pool, "_processes", {}).values())
            pool.shutdown(wait=False, cancel_futures=True)
            for process in processes:
                if process.is_alive():
                    process.terminate()
            for process in processes:
                process.join(timeout=5.0)
        else:
            pool.shutdown(wait=True, cancel_futures=True)
        _WORKER_STATE = self._saved_state  # type: ignore[assignment]
        self._saved_state = None

    def _reap_segments(self, names: Sequence[str]) -> None:
        """Unlink parent-named segments whose tasks never reported back.

        Call only after the owning workers are dead or done — a live
        worker could otherwise re-create a segment after its reap.
        Segments the task never created (crash before pack, pickle
        fallback) simply do not exist; that is not an error.
        """
        if not names:
            return
        try:
            from multiprocessing import shared_memory
        except ImportError:  # pragma: no cover - minimal builds
            return
        for name in names:
            try:
                segment = shared_memory.SharedMemory(name=name)
            except FileNotFoundError:
                self._live_segments.discard(name)
                continue
            except OSError:  # pragma: no cover - platform-specific attach errors
                continue
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - reaped concurrently
                pass
            self._live_segments.discard(name)

    def _next_segment_name(self) -> str:
        return f"repro_{os.getpid()}_{next(_segment_counter)}"

    @property
    def shard_count(self) -> int:
        return self.plan.shard_count

    @property
    def respawns(self) -> int:
        """How many times the worker pool has been killed and rebuilt."""
        return self._respawns

    def _ensure_pool(self):
        """The live pool, creating it on first use; ``None`` = serial.

        ``_WORKER_STATE`` must be set *before* the pool exists and stay
        set while it lives: worker processes fork lazily on the first
        submit and inherit whatever the global holds at that moment.
        """
        global _WORKER_STATE
        if self._pool is not None:
            return self._pool
        if self._pool_failed or self.plan.shard_count <= 1:
            return None
        context = _fork_context()
        if context is None:
            self._pool_failed = True
            record_degradation(
                "execution",
                "parallel",
                "serial",
                "no-fork",
                "fork start method unavailable on this platform",
            )
            return None
        from concurrent.futures import ProcessPoolExecutor

        workers = self._max_workers or min(
            self.plan.shard_count, os.cpu_count() or 1
        )
        self._saved_state = _WORKER_STATE
        _WORKER_STATE = (self.index, self.plan, self.payload)
        try:
            self._pool = ProcessPoolExecutor(
                max_workers=max(1, workers), mp_context=context
            )
        except (OSError, ValueError) as error:  # pragma: no cover - resource limits
            _WORKER_STATE = self._saved_state
            self._saved_state = None
            self._pool_failed = True
            record_degradation(
                "execution", "parallel", "serial", "pool-create-failed", repr(error)
            )
            return None
        return self._pool

    # -- the sharded scan ----------------------------------------------

    def _fact_refs(
        self, facts: Sequence["Fact"]
    ) -> Optional[List[Tuple[str, object]]]:
        """Transport references for the facts, or ``None`` if unshippable.

        Payload facts travel by position (fork-inherited, no pickling);
        anything else must survive ``pickle`` — one closure-backed
        stranger falls the whole batch back to the serial path, which
        is always correct.
        """
        refs: List[Tuple[str, object]] = []
        for fact in facts:
            pos = self._payload_ids.get(id(fact))
            if pos is not None:
                refs.append(("payload", pos))
                continue
            try:
                pickle.dumps(fact)
            except Exception:  # repro: allow[RP010] picklability probe: _scan_leaves records the degradation when this returns None
                return None
            refs.append(("object", fact))
        return refs

    def _scan_leaves(self, leaves: Sequence["Fact"], t: Optional[int]):
        """Per-shard supervised parallel scan, serial fallback.

        The serial path answers every query the parallel path answers
        with bit-identical results, so every downgrade to it is safe —
        and every downgrade is recorded (here for unshippable facts;
        inside :meth:`_supervised_parts` for retry/respawn exhaustion;
        in :meth:`_ensure_pool` for pool-level failures).  A plan of
        one shard is serial *by design*, not a degradation.
        """
        pool = self._ensure_pool()
        if pool is not None:
            refs = self._fact_refs(leaves)
            if refs is None:
                record_degradation(
                    "execution",
                    "parallel",
                    "serial",
                    "unpicklable-fact",
                    "a fact in the batch is neither payload nor picklable",
                )
            else:
                parts = self._supervised_parts(refs, t)
                if parts is not None:
                    # Fold strictly in ascending shard order (RP008).
                    for _, _, delta, events in parts:
                        absorb_stats(delta)
                        absorb_events(events)
                    masks = [
                        combine_masks([part[0][k] for part in parts])
                        for k in range(len(leaves))
                    ]
                    errors = [
                        combine_errors([part[1][k] for part in parts])
                        for k in range(len(leaves))
                    ]
                    return masks, errors
        return self.index._scan_batch(leaves, t)

    def _supervised_parts(self, refs, t: Optional[int]):
        """Dispatch every shard with timeout/retry/respawn supervision.

        Returns the per-shard ``(masks, errors, stats_delta, events)``
        list in shard order, or ``None`` when the retry or respawn
        budget ran out and ``on_exhaustion="degrade"`` (the exhaustion
        is recorded as a parallel→serial :class:`DegradationEvent`
        whose detail names the failing shard).  With
        ``on_exhaustion="raise"`` exhaustion raises
        :class:`~repro.core.errors.FaultExhaustedError` instead.

        Each wave submits every still-pending shard, collects results
        under the per-task timeout, then re-dispatches the failures
        after an exponential backoff.  A broken or timed-out pool is
        killed (hung workers terminated) and respawned within the
        respawn budget; because segments are parent-named, every
        segment belonging to a failed task is reaped after the kill,
        so no ``/dev/shm`` residue survives a crashed query.
        """
        from concurrent.futures import TimeoutError as FuturesTimeout
        from concurrent.futures.process import BrokenProcessPool

        shard_count = self.plan.shard_count
        results: List[Optional[tuple]] = [None] * shard_count
        attempts = [0] * shard_count
        pending = list(range(shard_count))
        while pending:
            pool = self._ensure_pool()
            if pool is None:
                # The latch point (_ensure_pool / exhaustion below)
                # already recorded the degradation.
                return None
            names: Dict[int, str] = {}
            futures: Dict[int, object] = {}
            for shard in pending:
                name = self._next_segment_name()
                names[shard] = name
                self._live_segments.add(name)
                futures[shard] = pool.submit(
                    _scan_shard_task, shard, refs, t, attempts[shard], name
                )
            failed: List[Tuple[int, BaseException]] = []
            pool_broken = False
            pool_error: Optional[BaseException] = None
            for shard in pending:
                future = futures[shard]
                if pool_broken and not future.done():
                    failed.append((shard, pool_error))
                    continue
                try:
                    packed, errs, delta, events = future.result(
                        timeout=self._task_timeout
                    )
                    results[shard] = (_unpack_masks(packed), errs, delta, events)
                    self._live_segments.discard(names[shard])
                except (BrokenProcessPool, FuturesTimeout) as error:
                    pool_broken = True
                    pool_error = error
                    failed.append((shard, error))
                except (ShmIntegrityError, OSError, EOFError, pickle.PickleError) as error:
                    failed.append((shard, error))
            if pool_broken:
                # Kill before reaping: a live (hung) worker could
                # otherwise re-create a segment after its reap.
                self._retire_pool(kill=True)
                self._respawns += 1
            self._reap_segments([names[shard] for shard, _ in failed])
            next_pending: List[int] = []
            for shard, error in failed:
                record_retry("shard", shard, attempts[shard], error)
                attempts[shard] += 1
                if attempts[shard] > self._max_retries:
                    return self._exhausted(
                        f"shard {shard} failed after {attempts[shard]} attempts "
                        f"(last error: {error!r})",
                        "retry-exhausted",
                    )
                next_pending.append(shard)
            if pool_broken and self._respawns > self._max_pool_respawns:
                return self._exhausted(
                    f"worker pool respawn budget ({self._max_pool_respawns}) "
                    f"exhausted; last error: {pool_error!r}",
                    "respawn-exhausted",
                )
            if next_pending:
                delay = self._backoff * (2 ** min(attempts[next_pending[0]] - 1, 4))
                if delay > 0:
                    time.sleep(delay)
            pending = next_pending
        return results

    def _exhausted(self, message: str, reason: str):
        """Shared exhaustion epilogue: latch serial, raise or degrade."""
        self._pool_failed = True
        self._retire_pool(kill=True)
        self._reap_segments(list(self._live_segments))
        if self._on_exhaustion == "raise":
            raise FaultExhaustedError(message)
        record_degradation("execution", "parallel", "serial", reason, message)
        return None

    def _batch_masks(
        self, facts: Sequence["Fact"], t: Optional[int], memo: bool
    ) -> List[int]:
        index = self.index
        overlay: Optional[Dict[object, int]] = None if memo else {}
        pending: Dict[object, "Fact"] = {}
        for fact in facts:
            index._collect_leaves(fact, t, pending, overlay)
        if pending:
            masks, errors = self._scan_leaves(list(pending.values()), t)
            # Merge back into the parent index through the engine's own
            # cache discipline (structural keys + _action_free records):
            # worker-side cache growth died with the fork, the combined
            # masks are what survives.
            index._absorb_scanned(pending, t, overlay, masks, errors)
        return [index._combine_mask(fact, t, overlay) for fact in facts]

    # -- queries --------------------------------------------------------

    def events_of(
        self, facts: Sequence["Fact"], *, memo: bool = True
    ) -> List[int]:
        """Satisfying-run masks, shards scanned in parallel.

        Identical to :meth:`SystemIndex.events_of` — the per-shard
        masks are disjoint restrictions of the same point scan and OR
        back in ascending shard order.
        """
        return self._batch_masks(list(facts), None, memo)

    def truths_at(
        self, facts: Sequence["Fact"], t: int, *, memo: bool = True
    ) -> List[int]:
        """Time-``t`` truth masks, shards scanned in parallel."""
        return self._batch_masks(list(facts), t, memo)

    def beliefs_batch(
        self,
        agent: "AgentId",
        facts: Sequence["Fact"],
        local: "LocalState",
        *,
        memo: bool = True,
        numeric: str = "exact",
    ):
        """Batched posteriors; the slice scan runs sharded.

        The expensive part of a posterior is the truth scan at the
        occurrence time; it runs through the sharded path (priming the
        parent's slice caches), after which the engine's own batch
        folds the measures — so values, caching, and ``numeric``
        semantics are *by construction* those of
        :meth:`SystemIndex.beliefs_batch`.
        """
        check_numeric_mode(numeric)
        facts = list(facts)
        t, _ = self.index._occurrence_or_raise(agent, local)
        self.truths_at(facts, t, memo=memo)
        return self.index.beliefs_batch(
            agent, facts, local, memo=memo, numeric=numeric
        )

    def probability(self, mask: int, *, numeric: str = "exact"):
        """``mu_T`` of a mask from per-shard ``(total, denominator)`` pairs.

        Exact/float tiers: per-shard integer totals summed in shard
        order — bit-identical to the serial fold for any shard count.
        Auto tier: per-shard float bounds combined order-insensitively
        (:func:`combine_bounds`); the deferred exact pair sums the same
        shard totals, so escalations land on identical integers.
        """
        index = self.index
        if numeric == "exact":
            if mask == 0:
                return ZERO
            if mask == index.all_mask:
                return ONE
            return Fraction(self._sharded_total(mask), index._denominator)
        if numeric == "float":
            return self._sharded_total(mask) / index._denominator
        check_numeric_mode(numeric)
        if mask == 0:
            return ZERO
        if mask == index.all_mask:
            return ONE
        num_a, num_e = self._sharded_bounds(mask)
        approx, err = div_bounds(num_a, num_e, *index._den_bounds)
        return LazyProb(
            approx,
            err,
            pair_thunk=lambda: (self._sharded_total(mask), index._denominator),
        )

    def conditional(self, target: int, given: int, *, numeric: str = "exact"):
        """``mu_T(target | given)`` from per-shard totals.

        Same combine laws as :meth:`probability`; the common
        denominator cancels, so the non-exact tiers never build a
        ``Fraction`` unless a comparison escalates.
        """
        if given == 0:
            raise ConditioningOnNullEventError(
                "cannot condition on an empty event (e.g. an action that is "
                "never performed)"
            )
        if numeric == "exact":
            return self.probability(target & given) / self.probability(given)
        if numeric == "float":
            return self._sharded_total(target & given) / self._sharded_total(
                given
            )
        check_numeric_mode(numeric)
        inter = target & given
        num_a, num_e = self._sharded_bounds(inter)
        den_a, den_e = self._sharded_bounds(given)
        approx, err = div_bounds(num_a, num_e, den_a, den_e)
        return LazyProb(
            approx,
            err,
            pair_thunk=lambda: (
                self._sharded_total(inter),
                self._sharded_total(given),
            ),
        )

    # -- per-shard measure folds ---------------------------------------

    def _sharded_total(self, mask: int) -> int:
        """The exact integer total as a shard-order sum of sub-totals."""
        return combine_totals(
            [self.index.mask_total(sub) for sub in self.plan.submasks(mask)]
        )

    def _sharded_bounds(self, mask: int) -> Tuple[float, float]:
        """Float bounds combined across shards (order-insensitive err)."""
        if mask == 0:
            return (0.0, 0.0)
        return combine_bounds(
            [self.index.mask_bounds(sub) for sub in self.plan.submasks(mask)]
        )

    def __repr__(self) -> str:
        return (
            f"ShardedExecutor({self.index.pps.name!r}, "
            f"shards={self.plan.shard_count}, "
            f"pool={'live' if self._pool is not None else 'cold'})"
        )
