"""Machine-checkable statements of the paper's theorems.

Each ``check_*`` function evaluates one theorem *on a concrete pps*:
it decides the premises exactly, decides the conclusion exactly, and
returns a :class:`TheoremCheck` with the intermediate quantities as
evidence.  A check "passes" when the theorem's implication holds —
either vacuously (a premise fails) or because the conclusion holds.
Since the theorems are proved for all pps, ``verified`` must come back
``True`` on every valid system; the test-suite and the property-based
generators hammer exactly that.

The checkers:

======================  ==========================================================
:func:`check_theorem_4_2`   belief >= p at every performance point => constraint met
:func:`check_lemma_4_3`     deterministic action / past-based fact => independence
:func:`check_lemma_5_1`     constraint met => threshold met at >= 1 point
:func:`check_theorem_6_2`   mu(phi@alpha | alpha) == E[beta@alpha | alpha]
:func:`check_lemma_f_1`     threshold 1 => belief 1 with probability 1 (KoP limit)
:func:`check_theorem_7_1`   mu >= 1 - delta*eps => mu(beta >= 1-eps | alpha) >= 1-delta
:func:`check_corollary_7_2` mu >= 1 - eps^2 => mu(beta >= 1-eps | alpha) >= 1-eps
======================  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Dict, List, Optional, Tuple

from .actions import is_proper
from .beliefs import threshold_met_measure
from .constraints import achieved_probability
from .engine import SystemIndex
from .expectation import expected_belief
from .facts import Fact
from .independence import is_local_state_independent, is_past_based
from .numeric import (
    ONE,
    Probability,
    ProbabilityLike,
    as_fraction,
    sqrt_fraction,
    sqrt_fraction_with_exactness,
)
from .pps import PPS, Action, AgentId

__all__ = [
    "TheoremCheck",
    "check_theorem_4_2",
    "check_lemma_4_3",
    "check_lemma_5_1",
    "check_theorem_6_2",
    "check_lemma_f_1",
    "check_theorem_7_1",
    "check_corollary_7_2",
    "pak_level",
    "pak_level_with_exactness",
]


@dataclass
class TheoremCheck:
    """The outcome of evaluating one theorem on one system.

    Attributes:
        theorem: a short identifier such as ``"Theorem 6.2"``.
        premises: each named premise and whether it holds.
        conclusion: whether the theorem's conclusion holds.
        details: intermediate quantities useful as evidence or for
            debugging — exact rationals by default; with
            ``numeric="auto"`` they may be
            :class:`~repro.core.lazyprob.LazyProb` values whose
            :meth:`~repro.core.lazyprob.LazyProb.exact` form equals the
            exact-mode rational (normalize with
            :func:`~repro.core.lazyprob.exact_value`).
    """

    theorem: str
    premises: Dict[str, bool]
    conclusion: bool
    details: Dict[str, Any] = field(default_factory=dict)

    @property
    def applicable(self) -> bool:
        """Whether all premises hold."""
        return all(self.premises.values())

    @property
    def verified(self) -> bool:
        """Whether the implication premise => conclusion holds."""
        return self.conclusion or not self.applicable

    def __str__(self) -> str:
        premises = ", ".join(
            f"{name}={'Y' if value else 'N'}" for name, value in self.premises.items()
        )
        return (
            f"{self.theorem}: premises[{premises}] "
            f"conclusion={'Y' if self.conclusion else 'N'} "
            f"verified={'Y' if self.verified else 'N'}"
        )


def _standard_premises(
    pps: PPS, agent: AgentId, action: Action, phi: Fact, numeric: str = "exact"
) -> Dict[str, bool]:
    proper = is_proper(pps, agent, action)
    independent = proper and is_local_state_independent(
        pps, phi, agent, action, numeric=numeric
    )
    return {"proper-action": proper, "local-state-independent": independent}


def _acting_beliefs(
    pps: PPS, agent: AgentId, phi: Fact, action: Action, numeric: str = "exact"
) -> Dict[Any, Probability]:
    """The belief in ``phi`` at each local state in ``L_i[alpha]``.

    One cached posterior per acting state; every performance point of
    a proper action takes one of these values, so theorem premises
    quantifying over performance points reduce to this mapping.
    """
    index = SystemIndex.of(pps)
    return {
        local: index.belief(agent, phi, local, numeric=numeric)
        for local in index.state_cells(agent, action)
    }


def check_theorem_4_2(
    pps: PPS,
    agent: AgentId,
    action: Action,
    phi: Fact,
    threshold: ProbabilityLike,
    *,
    numeric: str = "exact",
) -> TheoremCheck:
    """Sufficiency of meeting the threshold (Theorem 4.2).

    If ``beta_i(phi) >= p`` at every point at which ``i`` performs
    ``alpha``, then ``mu(phi@alpha | alpha) >= p``.
    """
    p = as_fraction(threshold)
    premises = _standard_premises(pps, agent, action, phi, numeric)
    details: Dict[str, Any] = {"threshold": p}
    if premises["proper-action"]:
        # The acting belief is constant on each action-state cell, so
        # the per-performance-point scan collapses to one cached
        # posterior per state in L_i[alpha].
        acting_beliefs = _acting_beliefs(pps, agent, phi, action, numeric)
        premises["belief-meets-threshold-always"] = all(
            b >= p for b in acting_beliefs.values()
        )
        details["min-acting-belief"] = min(acting_beliefs.values())
        achieved = achieved_probability(pps, agent, phi, action, numeric=numeric)
        details["achieved"] = achieved
        conclusion = achieved >= p
    else:
        premises["belief-meets-threshold-always"] = False
        conclusion = False
    return TheoremCheck("Theorem 4.2", premises, conclusion, details)


def check_lemma_4_3(
    pps: PPS,
    agent: AgentId,
    action: Action,
    phi: Fact,
    *,
    numeric: str = "exact",
) -> TheoremCheck:
    """Sufficient conditions for independence (Lemma 4.3)."""
    from .actions import is_deterministic_action

    proper = is_proper(pps, agent, action)
    deterministic = proper and is_deterministic_action(pps, agent, action)
    past_based = is_past_based(pps, phi)
    premises = {
        "proper-action": proper,
        "deterministic-or-past-based": deterministic or past_based,
    }
    conclusion = proper and is_local_state_independent(
        pps, phi, agent, action, numeric=numeric
    )
    return TheoremCheck(
        "Lemma 4.3",
        premises,
        conclusion,
        {"deterministic": deterministic, "past-based": past_based},
    )


def check_lemma_5_1(
    pps: PPS,
    agent: AgentId,
    action: Action,
    phi: Fact,
    threshold: ProbabilityLike,
    *,
    numeric: str = "exact",
) -> TheoremCheck:
    """Necessity of meeting the threshold at least once (Lemma 5.1)."""
    p = as_fraction(threshold)
    premises = _standard_premises(pps, agent, action, phi, numeric)
    details: Dict[str, Any] = {"threshold": p}
    conclusion = False
    if premises["proper-action"]:
        achieved = achieved_probability(pps, agent, phi, action, numeric=numeric)
        premises["constraint-satisfied"] = achieved >= p
        details["achieved"] = achieved
        # Runs qualify exactly when their acting cell's belief meets
        # the bound; the witness is the first such run in run order.
        index = SystemIndex.of(pps)
        beliefs = _acting_beliefs(pps, agent, phi, action, numeric)
        met_mask = 0
        for local, cell in index.state_cells(agent, action).items():
            if beliefs[local] >= p:
                met_mask |= cell
        witness: Optional[Tuple[int, int]] = None
        if met_mask:
            run_index = (met_mask & -met_mask).bit_length() - 1
            t = index.performance_times(agent, action)[run_index][0]
            witness = (run_index, t)
        details["witness-point"] = witness
        conclusion = witness is not None
    else:
        premises["constraint-satisfied"] = False
    return TheoremCheck("Lemma 5.1", premises, conclusion, details)


def check_theorem_6_2(
    pps: PPS,
    agent: AgentId,
    action: Action,
    phi: Fact,
    *,
    numeric: str = "exact",
) -> TheoremCheck:
    """The expectation identity (Theorem 6.2, the paper's main result).

    ``mu(phi@alpha | alpha) == E[beta_i(phi)@alpha | alpha]`` — checked
    as an *exact* equality of rationals.  (In ``"auto"`` mode the two
    sides are genuinely equal whenever the theorem applies, so the
    float filter cannot separate them and the equality escalates —
    equality assertions are the worst case for the fast path, threshold
    inequalities its best.)
    """
    premises = _standard_premises(pps, agent, action, phi, numeric)
    details: Dict[str, Any] = {}
    conclusion = False
    if premises["proper-action"]:
        achieved = achieved_probability(pps, agent, phi, action, numeric=numeric)
        expected = expected_belief(pps, agent, phi, action, numeric=numeric)
        details["achieved"] = achieved
        details["expected-belief"] = expected
        conclusion = achieved == expected
    return TheoremCheck("Theorem 6.2", premises, conclusion, details)


def check_lemma_f_1(
    pps: PPS,
    agent: AgentId,
    action: Action,
    phi: Fact,
    *,
    numeric: str = "exact",
) -> TheoremCheck:
    """The certainty limit (Lemma F.1): threshold 1 forces belief 1.

    If ``mu(phi@alpha | alpha) = 1`` then the acting belief equals 1
    with probability 1 — the classical Knowledge-of-Preconditions
    principle recovered as the ``p = 1`` case.
    """
    premises = _standard_premises(pps, agent, action, phi, numeric)
    details: Dict[str, Any] = {}
    conclusion = False
    if premises["proper-action"]:
        achieved = achieved_probability(pps, agent, phi, action, numeric=numeric)
        premises["certain-constraint"] = achieved == 1
        details["achieved"] = achieved
        measure_one = threshold_met_measure(
            pps, agent, phi, action, ONE, numeric=numeric
        )
        details["measure-belief-one"] = measure_one
        conclusion = measure_one == 1
    else:
        premises["certain-constraint"] = False
    return TheoremCheck("Lemma F.1", premises, conclusion, details)


def check_theorem_7_1(
    pps: PPS,
    agent: AgentId,
    action: Action,
    phi: Fact,
    delta: ProbabilityLike,
    epsilon: ProbabilityLike,
    *,
    numeric: str = "exact",
) -> TheoremCheck:
    """The probabilistic-approximate-knowledge bound (Theorem 7.1).

    For ``delta, epsilon in (0, 1)``: if
    ``mu(phi@alpha | alpha) >= 1 - delta * epsilon`` then
    ``mu(beta_i(phi)@alpha >= 1 - epsilon | alpha) >= 1 - delta``.
    """
    d = as_fraction(delta)
    e = as_fraction(epsilon)
    if not (0 < d < 1 and 0 < e < 1):
        raise ValueError("Theorem 7.1 requires delta, epsilon in (0, 1)")
    premises = _standard_premises(pps, agent, action, phi, numeric)
    details: Dict[str, Any] = {"delta": d, "epsilon": e}
    conclusion = False
    if premises["proper-action"]:
        achieved = achieved_probability(pps, agent, phi, action, numeric=numeric)
        premises["high-probability-constraint"] = achieved >= 1 - d * e
        details["achieved"] = achieved
        met = threshold_met_measure(pps, agent, phi, action, 1 - e, numeric=numeric)
        details["strong-belief-measure"] = met
        conclusion = met >= 1 - d
    else:
        premises["high-probability-constraint"] = False
    return TheoremCheck("Theorem 7.1", premises, conclusion, details)


def check_corollary_7_2(
    pps: PPS,
    agent: AgentId,
    action: Action,
    phi: Fact,
    epsilon: ProbabilityLike,
    *,
    numeric: str = "exact",
) -> TheoremCheck:
    """PAK-knowledge (Corollary 7.2): ``delta = epsilon`` in Theorem 7.1.

    For ``epsilon >= 0``: if ``mu(phi@alpha | alpha) >= 1 - epsilon^2``
    then ``mu(beta >= 1 - epsilon | alpha) >= 1 - epsilon``.  The
    boundary cases ``epsilon = 0`` (Lemma F.1) and ``epsilon = 1``
    (trivial) are included, matching the paper's proof.
    """
    e = as_fraction(epsilon)
    if e < 0:
        raise ValueError("Corollary 7.2 requires epsilon >= 0")
    premises = _standard_premises(pps, agent, action, phi, numeric)
    details: Dict[str, Any] = {"epsilon": e}
    conclusion = False
    if premises["proper-action"]:
        achieved = achieved_probability(pps, agent, phi, action, numeric=numeric)
        premises["high-probability-constraint"] = achieved >= 1 - e * e
        details["achieved"] = achieved
        met = threshold_met_measure(pps, agent, phi, action, 1 - e, numeric=numeric)
        details["strong-belief-measure"] = met
        conclusion = met >= 1 - e
    else:
        premises["high-probability-constraint"] = False
    return TheoremCheck("Corollary 7.2", premises, conclusion, details)


def pak_level(
    threshold: ProbabilityLike, *, exact_required: bool = False
) -> Probability:
    """The PAK level ``p' = 1 - sqrt(1 - p)`` for a constraint threshold.

    Corollary 7.2 restated: a constraint with threshold ``p`` forces the
    condition to be believed to degree at least ``p'`` with probability
    at least ``p'``.  Exact whenever ``1 - p`` is a perfect rational
    square (e.g. ``pak_level("0.99") == Fraction(9, 10)``); otherwise
    the level is a float-derived **approximation** — pass
    ``exact_required=True`` to raise
    :class:`~repro.core.numeric.InexactSqrtError` instead, or use
    :func:`pak_level_with_exactness` when you need to know which case
    occurred (as :func:`repro.core.pak.analyze` does before labelling a
    Corollary 7.2 verdict).
    """
    level, _ = pak_level_with_exactness(threshold, exact_required=exact_required)
    return level


def pak_level_with_exactness(
    threshold: ProbabilityLike, *, exact_required: bool = False
) -> Tuple[Probability, bool]:
    """``(pak_level(p), is_exact)`` — the level plus its exactness flag."""
    p = as_fraction(threshold)
    if not (0 <= p <= 1):
        raise ValueError(f"threshold {p} outside [0, 1]")
    if exact_required:
        return 1 - sqrt_fraction(1 - p, exact_required=True), True
    root, is_exact = sqrt_fraction_with_exactness(1 - p)
    return 1 - root, is_exact
