"""Syntactic logic layer: formula AST, parser, and model checker."""

from .axioms import check_axioms, holds_everywhere
from .parser import parse
from .semantics import (
    compile_formula,
    holds_at,
    satisfiable,
    satisfying_points,
    valid,
)
from .syntax import (
    Belief,
    Bottom,
    Conj,
    Disj,
    DoesF,
    Formula,
    Impl,
    Know,
    Neg,
    Prop,
    Top,
    Valuation,
)

__all__ = [
    "Belief",
    "check_axioms",
    "holds_everywhere",
    "Bottom",
    "Conj",
    "Disj",
    "DoesF",
    "Formula",
    "Impl",
    "Know",
    "Neg",
    "Prop",
    "Top",
    "Valuation",
    "compile_formula",
    "holds_at",
    "parse",
    "satisfiable",
    "satisfying_points",
    "valid",
]
