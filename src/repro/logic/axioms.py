"""Epistemic axiom checking over purely probabilistic systems.

The knowledge operator of interpreted systems is S5, and the graded
belief operator of Definition 3.1 satisfies a family of well-known
properties in synchronous pps (where beliefs are functions of the local
state and every run has positive measure).  This module turns each into
a checkable *validity* on a concrete system:

Knowledge (S5):

* ``T``  (truth):                    K_i(phi) -> phi
* ``K``  (distribution):            K_i(phi -> psi) -> (K_i phi -> K_i psi)
* ``4``  (positive introspection):  K_i phi -> K_i K_i phi
* ``5``  (negative introspection):  ~K_i phi -> K_i ~K_i phi

Belief:

* ``consistency``:        B_i^p(phi) & B_i^q(~phi) implies p + q <= 1
  (checked as: the belief function is additive, beta(phi) + beta(~phi) = 1)
* ``knowledge-to-belief``: K_i(phi) -> B_i^1(phi)
* ``belief-certainty``:    B_i^1(phi) -> K_i(phi)   (needs positive measures — true in a pps)
* ``introspection``:       B_i^p(phi) -> K_i(B_i^p(phi))
  (beliefs are a function of the local state, so the agent knows them)

:func:`check_axioms` evaluates all of them for one agent and condition
and returns a name -> bool mapping; since the axioms are theorems of
the model, every entry must be ``True`` on every valid system — the
property-based tests enforce exactly that.
"""

from __future__ import annotations

from typing import Dict, Iterable

from ..core.beliefs import belief_at
from ..core.facts import Fact
from ..core.knowledge import Knows
from ..core.numeric import ProbabilityLike, as_fraction
from ..core.pps import PPS, AgentId

__all__ = ["check_axioms", "holds_everywhere"]


def holds_everywhere(pps: PPS, fact: Fact) -> bool:
    """Whether a fact holds at every point of the system."""
    return all(fact.holds(pps, run, t) for run, t in pps.points())


def check_axioms(
    pps: PPS,
    agent: AgentId,
    phi: Fact,
    psi: Fact,
    *,
    levels: Iterable[ProbabilityLike] = ("1/2", "9/10", 1),
) -> Dict[str, bool]:
    """Evaluate the epistemic/doxastic axioms for ``agent`` on ``pps``.

    Args:
        pps: the system.
        agent: whose knowledge/beliefs to check.
        phi: the primary condition.
        psi: a second condition (for the distribution axiom K).
        levels: belief levels at which to check the graded axioms.

    Returns:
        axiom name -> whether it is valid on this system.  All must be
        ``True``; a ``False`` indicates a library bug.
    """
    know_phi = Knows(agent, phi)
    know_psi = Knows(agent, psi)
    results: Dict[str, bool] = {}

    results["T:knowledge-implies-truth"] = holds_everywhere(
        pps, know_phi.implies(phi)
    )
    results["K:distribution"] = holds_everywhere(
        pps,
        Knows(agent, phi.implies(psi)).implies(know_phi.implies(know_psi)),
    )
    results["4:positive-introspection"] = holds_everywhere(
        pps, know_phi.implies(Knows(agent, know_phi))
    )
    results["5:negative-introspection"] = holds_everywhere(
        pps, (~know_phi).implies(Knows(agent, ~know_phi))
    )

    results["belief-additivity"] = all(
        belief_at(pps, agent, phi, run, t) + belief_at(pps, agent, ~phi, run, t)
        == 1
        for run, t in pps.points()
    )
    results["knowledge-implies-belief-one"] = all(
        belief_at(pps, agent, phi, run, t) == 1
        for run, t in pps.points()
        if know_phi.holds(pps, run, t)
    )
    results["belief-one-implies-knowledge"] = all(
        know_phi.holds(pps, run, t)
        for run, t in pps.points()
        if belief_at(pps, agent, phi, run, t) == 1
    )

    from ..core.common_belief import Believes

    for level in levels:
        p = as_fraction(level)
        graded = Believes(agent, phi, p)
        results[f"belief-introspection@{p}"] = holds_everywhere(
            pps, graded.implies(Knows(agent, graded))
        )

    return results
