"""Parser for the concrete formula syntax.

Grammar (standard precedence: ``!`` binds tightest, then ``&``, ``|``,
``->`` right-associative)::

    formula  := disj ('->' formula)?
    disj     := conj ('|' conj)*
    conj     := unary ('&' unary)*
    unary    := '!' unary
              | 'K' '[' name ']' unary
              | 'B' '[' name ']' cmp number unary
              | 'does' '[' name ']' '(' name ')'
              | '(' formula ')'
              | 'true' | 'false'
              | name                      -- a proposition
    cmp      := '>=' | '<=' | '>' | '<' | '=='
    number   := decimal (e.g. 0.9) or fraction (e.g. 9/10)

Examples::

    parse("K[alice] fire_b")
    parse("B[alice]>=0.9 (fire_a & fire_b)")
    parse("does[alice](fire) -> B[alice]>=0.9 fire_b")
"""

from __future__ import annotations

import re
from typing import List, NamedTuple

from ..core.errors import FormulaError
from .syntax import (
    Belief,
    Bottom,
    Conj,
    Disj,
    DoesF,
    Formula,
    Impl,
    Know,
    Neg,
    Prop,
    Top,
)

__all__ = ["parse"]


class _Token(NamedTuple):
    kind: str
    text: str
    pos: int


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<arrow>->)
  | (?P<cmp>>=|<=|==|>|<)
  | (?P<number>\d+/\d+|\d+\.\d+|\d+)
  | (?P<name>[A-Za-z_][A-Za-z0-9_'\-]*)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<lbrack>\[)
  | (?P<rbrack>\])
  | (?P<bang>!)
  | (?P<amp>&)
  | (?P<pipe>\|)
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise FormulaError(f"unexpected character {text[pos]!r} at {pos}")
        kind = match.lastgroup
        # repro: allow[RP006] internal invariant: every alternative of
        # the lexer regex is a named group (type-narrowing).
        assert kind is not None
        if kind != "ws":
            tokens.append(_Token(kind, match.group(), pos))
        pos = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: List[_Token], source: str) -> None:
        self._tokens = tokens
        self._source = source
        self._index = 0

    def _peek(self) -> _Token:
        if self._index >= len(self._tokens):
            raise FormulaError(f"unexpected end of formula: {self._source!r}")
        return self._tokens[self._index]

    def _done(self) -> bool:
        return self._index >= len(self._tokens)

    def _advance(self) -> _Token:
        token = self._peek()
        self._index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._peek()
        if token.kind != kind:
            raise FormulaError(
                f"expected {kind} at position {token.pos}, got {token.text!r}"
            )
        return self._advance()

    # grammar ----------------------------------------------------------

    def formula(self) -> Formula:
        left = self.disj()
        if not self._done() and self._peek().kind == "arrow":
            self._advance()
            return Impl(left, self.formula())
        return left

    def disj(self) -> Formula:
        left = self.conj()
        while not self._done() and self._peek().kind == "pipe":
            self._advance()
            left = Disj(left, self.conj())
        return left

    def conj(self) -> Formula:
        left = self.unary()
        while not self._done() and self._peek().kind == "amp":
            self._advance()
            left = Conj(left, self.unary())
        return left

    def unary(self) -> Formula:
        token = self._peek()
        if token.kind == "bang":
            self._advance()
            return Neg(self.unary())
        if token.kind == "lparen":
            self._advance()
            inner = self.formula()
            self._expect("rparen")
            return inner
        if token.kind == "name":
            return self._named(token)
        raise FormulaError(
            f"unexpected token {token.text!r} at position {token.pos}"
        )

    def _bracketed_name(self) -> str:
        self._expect("lbrack")
        name = self._expect("name").text
        self._expect("rbrack")
        return name

    def _named(self, token: _Token) -> Formula:
        if token.text == "true":
            self._advance()
            return Top()
        if token.text == "false":
            self._advance()
            return Bottom()
        if token.text == "K":
            self._advance()
            agent = self._bracketed_name()
            return Know(agent, self.unary())
        if token.text == "B":
            self._advance()
            agent = self._bracketed_name()
            comparison = self._expect("cmp").text
            level = self._expect("number").text
            return Belief(agent, comparison, level, self.unary())
        if token.text == "does":
            self._advance()
            agent = self._bracketed_name()
            self._expect("lparen")
            action = self._expect("name").text
            self._expect("rparen")
            return DoesF(agent, action)
        self._advance()
        return Prop(token.text)


def parse(text: str) -> Formula:
    """Parse a formula from concrete syntax.

    Raises:
        FormulaError: on lexical or syntactic errors, with a position.
    """
    tokens = _tokenize(text)
    if not tokens:
        raise FormulaError("empty formula")
    parser = _Parser(tokens, text)
    result = parser.formula()
    if not parser._done():
        stray = parser._peek()
        raise FormulaError(
            f"trailing input {stray.text!r} at position {stray.pos}"
        )
    return result
