"""Model checking formulas over purely probabilistic systems.

Given a pps, a formula and a valuation, the checker answers:

* :func:`holds_at` — truth at one point;
* :func:`satisfying_points` — all points where the formula is true;
* :func:`valid` — truth at every point of the system;
* :func:`satisfiable` — truth somewhere.

Formulas may be ASTs (:class:`~repro.logic.syntax.Formula`) or concrete
syntax strings, which are parsed on the fly.
"""

from __future__ import annotations

from typing import Set, Tuple, Union

from ..core.facts import Fact, points_satisfying
from ..core.pps import PPS, Run
from .parser import parse
from .syntax import Formula, Valuation

__all__ = ["holds_at", "satisfying_points", "valid", "satisfiable", "compile_formula"]

FormulaLike = Union[Formula, str]


def compile_formula(formula: FormulaLike, valuation: Valuation) -> Fact:
    """Normalize a formula (AST or string) into a semantic fact."""
    if isinstance(formula, str):
        formula = parse(formula)
    return formula.to_fact(valuation)


def holds_at(
    pps: PPS,
    formula: FormulaLike,
    valuation: Valuation,
    run: Run,
    t: int,
) -> bool:
    """Whether the formula is true at the point ``(run, t)``."""
    return compile_formula(formula, valuation).holds(pps, run, t)


def satisfying_points(
    pps: PPS, formula: FormulaLike, valuation: Valuation
) -> Set[Tuple[int, int]]:
    """All points ``(run index, time)`` satisfying the formula."""
    return points_satisfying(pps, compile_formula(formula, valuation))


def valid(pps: PPS, formula: FormulaLike, valuation: Valuation) -> bool:
    """Whether the formula holds at every point of the system."""
    fact = compile_formula(formula, valuation)
    return all(fact.holds(pps, run, t) for run, t in pps.points())


def satisfiable(pps: PPS, formula: FormulaLike, valuation: Valuation) -> bool:
    """Whether the formula holds at some point of the system."""
    fact = compile_formula(formula, valuation)
    return any(fact.holds(pps, run, t) for run, t in pps.points())
