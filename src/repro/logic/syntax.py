"""Formula AST for the epistemic-probabilistic logic.

The core library treats facts *semantically* (sets of points), exactly
as the paper's Section 2.3 does.  This layer adds a *syntactic* face: a
small formula language with atomic propositions, boolean connectives,
the knowledge modality ``K_i``, the graded belief modality
``B_i >= p`` (and the other comparisons), and the action predicate
``does_i(alpha)``.

A formula is compiled against a *valuation* (proposition name ->
:class:`~repro.core.facts.Fact`) into a semantic fact via
:meth:`Formula.to_fact`, after which all core machinery applies.  The
concrete syntax is provided by :mod:`repro.logic.parser`.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping, Tuple

from ..core.atoms import FALSE, TRUE, does_
from ..core.beliefs import belief_at
from ..core.errors import FormulaError
from ..core.facts import Fact, LambdaFact
from ..core.knowledge import Knows
from ..core.numeric import ProbabilityLike, as_fraction
from ..core.pps import Action, AgentId

__all__ = [
    "Formula",
    "Prop",
    "Top",
    "Bottom",
    "Neg",
    "Conj",
    "Disj",
    "Impl",
    "Know",
    "Belief",
    "DoesF",
    "Valuation",
    "COMPARISONS",
]

Valuation = Mapping[str, Fact]

COMPARISONS = {
    ">=": lambda a, b: a >= b,
    ">": lambda a, b: a > b,
    "<=": lambda a, b: a <= b,
    "<": lambda a, b: a < b,
    "==": lambda a, b: a == b,
}


class Formula:
    """Base class of the formula AST."""

    def to_fact(self, valuation: Valuation) -> Fact:
        """Compile the formula to a semantic fact."""
        raise NotImplementedError

    # Operator sugar mirroring the Fact algebra.
    def __and__(self, other: "Formula") -> "Formula":
        return Conj(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Disj(self, other)

    def __invert__(self) -> "Formula":
        return Neg(self)

    def implies(self, other: "Formula") -> "Formula":
        return Impl(self, other)


@dataclass(frozen=True)
class Prop(Formula):
    """An atomic proposition, resolved through the valuation."""

    name: str

    def to_fact(self, valuation: Valuation) -> Fact:
        try:
            return valuation[self.name]
        except KeyError:
            raise FormulaError(
                f"proposition {self.name!r} missing from the valuation "
                f"(known: {sorted(valuation)})"
            ) from None

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Top(Formula):
    """The constant true formula."""

    def to_fact(self, valuation: Valuation) -> Fact:
        return TRUE

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class Bottom(Formula):
    """The constant false formula."""

    def to_fact(self, valuation: Valuation) -> Fact:
        return FALSE

    def __str__(self) -> str:
        return "false"


@dataclass(frozen=True)
class Neg(Formula):
    """Negation."""

    operand: Formula

    def to_fact(self, valuation: Valuation) -> Fact:
        return ~self.operand.to_fact(valuation)

    def __str__(self) -> str:
        return f"!{self.operand}"


@dataclass(frozen=True)
class Conj(Formula):
    """Conjunction."""

    left: Formula
    right: Formula

    def to_fact(self, valuation: Valuation) -> Fact:
        return self.left.to_fact(valuation) & self.right.to_fact(valuation)

    def __str__(self) -> str:
        return f"({self.left} & {self.right})"


@dataclass(frozen=True)
class Disj(Formula):
    """Disjunction."""

    left: Formula
    right: Formula

    def to_fact(self, valuation: Valuation) -> Fact:
        return self.left.to_fact(valuation) | self.right.to_fact(valuation)

    def __str__(self) -> str:
        return f"({self.left} | {self.right})"


@dataclass(frozen=True)
class Impl(Formula):
    """Material implication."""

    left: Formula
    right: Formula

    def to_fact(self, valuation: Valuation) -> Fact:
        return self.left.to_fact(valuation).implies(self.right.to_fact(valuation))

    def __str__(self) -> str:
        return f"({self.left} -> {self.right})"


@dataclass(frozen=True)
class Know(Formula):
    """The knowledge modality ``K_i(phi)``."""

    agent: AgentId
    operand: Formula

    def to_fact(self, valuation: Valuation) -> Fact:
        return Knows(self.agent, self.operand.to_fact(valuation))

    def __str__(self) -> str:
        return f"K[{self.agent}] {self.operand}"


@dataclass(frozen=True)
class Belief(Formula):
    """The graded belief modality ``B_i <cmp> <level> (phi)``.

    ``Belief("alice", ">=", "0.9", phi)`` holds at a point exactly when
    ``beta_alice(phi) >= 9/10`` there.
    """

    agent: AgentId
    comparison: str
    level: Fraction
    operand: Formula

    def __init__(
        self,
        agent: AgentId,
        comparison: str,
        level: ProbabilityLike,
        operand: Formula,
    ) -> None:
        if comparison not in COMPARISONS:
            raise FormulaError(
                f"unknown comparison {comparison!r}; use one of {sorted(COMPARISONS)}"
            )
        object.__setattr__(self, "agent", agent)
        object.__setattr__(self, "comparison", comparison)
        object.__setattr__(self, "level", as_fraction(level))
        object.__setattr__(self, "operand", operand)

    def to_fact(self, valuation: Valuation) -> Fact:
        inner = self.operand.to_fact(valuation)
        compare = COMPARISONS[self.comparison]
        agent, level = self.agent, self.level

        return LambdaFact(
            lambda pps, run, t: compare(belief_at(pps, agent, inner, run, t), level),
            label=f"B[{agent}]{self.comparison}{level}({inner.label})",
        )

    def __str__(self) -> str:
        return f"B[{self.agent}]{self.comparison}{self.level} {self.operand}"


@dataclass(frozen=True)
class DoesF(Formula):
    """The action predicate ``does_i(alpha)``."""

    agent: AgentId
    action: Action

    def to_fact(self, valuation: Valuation) -> Fact:
        return does_(self.agent, self.action)

    def __str__(self) -> str:
        return f"does[{self.agent}]({self.action})"
