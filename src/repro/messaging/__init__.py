"""Synchronous lossy message-passing substrate (the Example 1 setting)."""

from .channels import ChannelModel, FunctionChannel, LossyChannel, ReliableChannel
from .messages import SKIP, Message, Move
from .network import FunctionRoundProtocol, RecordingState, RoundProtocol
from .system import MessagePassingSystem, initial_configs

__all__ = [
    "ChannelModel",
    "FunctionChannel",
    "FunctionRoundProtocol",
    "LossyChannel",
    "Message",
    "MessagePassingSystem",
    "Move",
    "RecordingState",
    "ReliableChannel",
    "RoundProtocol",
    "SKIP",
    "initial_configs",
]
