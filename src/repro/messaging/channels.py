"""Channel models: per-message delivery probability.

Example 1 of the paper uses a channel in which "every message sent
is lost with probability 0.1, and delivered in the round in which it is
sent with probability 0.9.  No message is delivered late, and
probabilities for different messages are independent."

:class:`LossyChannel` is exactly that model; :class:`ReliableChannel`
is the degenerate case; :class:`FunctionChannel` supports asymmetric or
content-dependent reliability (used, e.g., to model a one-directional
weak link in the coordinated-attack experiments).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable

from ..core.numeric import ONE, Probability, ProbabilityLike, as_probability
from .messages import Message

__all__ = ["ChannelModel", "LossyChannel", "ReliableChannel", "FunctionChannel"]


class ChannelModel(ABC):
    """Synchronous channel: each message independently delivered or lost.

    A message sent in round ``t`` is delivered at the end of round
    ``t`` (visible in the recipient's time ``t + 1`` local state) with
    probability :meth:`delivery_probability`, and otherwise lost
    forever.  Losses of distinct messages are independent.
    """

    @abstractmethod
    def delivery_probability(self, message: Message) -> Probability:
        """The probability that ``message`` is delivered."""


class LossyChannel(ChannelModel):
    """Uniform iid loss: every message lost with probability ``loss``."""

    def __init__(self, loss: ProbabilityLike) -> None:
        self.loss = as_probability(loss)

    def delivery_probability(self, message: Message) -> Probability:
        return ONE - self.loss

    def __repr__(self) -> str:
        return f"LossyChannel(loss={self.loss})"


class ReliableChannel(ChannelModel):
    """A channel that never loses messages."""

    def delivery_probability(self, message: Message) -> Probability:
        return ONE

    def __repr__(self) -> str:
        return "ReliableChannel()"


class FunctionChannel(ChannelModel):
    """Delivery probability given by an arbitrary function of the message."""

    def __init__(
        self, fn: Callable[[Message], ProbabilityLike], name: str = "channel"
    ) -> None:
        self._fn = fn
        self.name = name

    def delivery_probability(self, message: Message) -> Probability:
        return as_probability(self._fn(message))

    def __repr__(self) -> str:
        return f"FunctionChannel({self.name})"
