"""Messages and round moves for the synchronous lossy network.

A :class:`Message` is an immutable (sender, recipient, content) record.
A :class:`Move` is what an agent does in one round: a local action
label (recorded on the tree edge, so ``does_(agent, action)`` sees it)
together with the messages it sends in that round.

Mixed behaviour — probabilistic choice of what to send, as agent ``j``
does in the paper's Theorem 5.2 construction — is expressed by a
:class:`~repro.protocols.distribution.Distribution` over moves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Tuple

from ..core.pps import Action, AgentId

__all__ = ["Message", "Move", "SKIP"]

SKIP: Action = "skip"
"""The conventional no-op action label."""


@dataclass(frozen=True)
class Message:
    """An immutable message.

    Attributes:
        sender: the sending agent.
        recipient: the destination agent.
        content: any hashable payload.
    """

    sender: AgentId
    recipient: AgentId
    content: Hashable

    def __str__(self) -> str:
        return f"{self.sender}->{self.recipient}:{self.content!r}"


@dataclass(frozen=True)
class Move:
    """One round of behaviour: a local action plus outgoing messages.

    Attributes:
        action: the action label recorded on the edge (defaults to
            :data:`SKIP`).
        sends: the messages dispatched this round, in order.
    """

    action: Action = SKIP
    sends: Tuple[Message, ...] = ()

    @classmethod
    def sending(cls, *messages: Message, action: Action = SKIP) -> "Move":
        """A move that sends ``messages`` (and performs ``action``)."""
        return cls(action=action, sends=tuple(messages))

    @classmethod
    def acting(cls, action: Action) -> "Move":
        """A move that performs ``action`` and sends nothing."""
        return cls(action=action)
