"""Round protocols for the synchronous message-passing network.

A :class:`RoundProtocol` describes one agent's behaviour:

* :meth:`RoundProtocol.step` — given the raw local state, the
  distribution over :class:`~repro.messaging.messages.Move` values
  (action label + messages to send) for this round;
* :meth:`RoundProtocol.update` — the new raw local state given the old
  one, the move actually taken, and the messages delivered to the agent
  at the end of the round.

:class:`FunctionRoundProtocol` builds one from two plain functions.
:class:`RecordingState` offers a convenient immutable local-state shape
(a payload plus the full observation history) for protocols that just
need "what have I seen so far" — it guarantees perfect recall, which
keeps local states distinct exactly when the agent's information
differs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Hashable, Tuple, Union

from ..core.pps import LocalState
from ..protocols.distribution import Distribution
from ..protocols.protocol import coerce_distribution
from .messages import Message, Move

__all__ = ["RoundProtocol", "FunctionRoundProtocol", "RecordingState"]


@dataclass(frozen=True)
class RecordingState:
    """An immutable perfect-recall local state.

    Attributes:
        payload: the protocol-relevant data (e.g. the value of ``go``).
        observations: one entry per elapsed round, each a pair
            ``(action taken, messages received)``.
    """

    payload: Hashable
    observations: Tuple[Tuple[Hashable, Tuple[Message, ...]], ...] = ()

    def observe(self, action: Hashable, delivered: Tuple[Message, ...]) -> "RecordingState":
        """The successor state after one round."""
        return RecordingState(
            payload=self.payload,
            observations=self.observations + ((action, delivered),),
        )

    def received(self, round_index: int) -> Tuple[Message, ...]:
        """Messages delivered at the end of round ``round_index``."""
        return self.observations[round_index][1]

    def received_contents(self, round_index: int) -> Tuple[Hashable, ...]:
        """Just the payloads of the round's deliveries."""
        return tuple(m.content for m in self.received(round_index))

    @property
    def rounds_elapsed(self) -> int:
        return len(self.observations)


class RoundProtocol(ABC):
    """One agent's behaviour in the synchronous network."""

    @abstractmethod
    def step(self, local: LocalState) -> Union[Move, Distribution]:
        """The (possibly mixed) move for this round.

        May return a bare :class:`Move` for deterministic behaviour or
        a :class:`Distribution` over moves for a mixed action step.
        """

    @abstractmethod
    def update(
        self, local: LocalState, move: Move, delivered: Tuple[Message, ...]
    ) -> LocalState:
        """The next raw local state.

        Args:
            local: the state at the start of the round.
            move: the move actually realized (so the agent remembers
                its own probabilistic choices — local states have
                perfect recall of own actions).
            delivered: messages delivered to this agent this round, in
                a deterministic global order.
        """

    def step_distribution(self, local: LocalState) -> Distribution:
        """Normalized form of :meth:`step`."""
        return coerce_distribution(self.step(local))


class FunctionRoundProtocol(RoundProtocol):
    """A round protocol assembled from two functions."""

    def __init__(
        self,
        step: Callable[[LocalState], Union[Move, Distribution]],
        update: Callable[[LocalState, Move, Tuple[Message, ...]], LocalState],
        name: str = "round-protocol",
    ) -> None:
        self._step = step
        self._update = update
        self.name = name

    def step(self, local: LocalState) -> Union[Move, Distribution]:
        return self._step(local)

    def update(
        self, local: LocalState, move: Move, delivered: Tuple[Message, ...]
    ) -> LocalState:
        return self._update(local, move, delivered)
