"""Compile a synchronous lossy-network protocol into a pps.

:class:`MessagePassingSystem` rolls the whole Example 1 setting into a
single object: agents with :class:`~repro.messaging.network.RoundProtocol`
behaviour, a :class:`~repro.messaging.channels.ChannelModel`, an exact
initial distribution, and a bounded horizon.  :meth:`compile` expands
every combination of (joint move, per-message delivery pattern) into a
tree edge:

1. each agent draws a move from its step distribution (independent);
2. every message sent this round is independently delivered or lost
   with the channel's probability;
3. each agent's state is updated with its own realized move and the
   messages delivered *to it*, in a deterministic global order.

Agent local states are stored time-stamped (synchrony); the action
label of each agent's move is recorded on the edge, so facts like
``does_("alice", "fire")`` and run facts like
``performed("bob", "fire")`` work directly on the result.  The delivery
pattern is recorded on the edge under the reserved
:data:`~repro.protocols.compiler.ENV` key, enabling facts about the
channel itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.errors import CompilationError
from ..core.numeric import ONE, Probability
from ..core.pps import PPS, AgentId, GlobalState, InternTable, LocalState
from ..protocols.compiler import ENV, Edge, expand_tree
from ..protocols.distribution import Distribution
from .channels import ChannelModel
from .messages import Message, Move
from .network import RoundProtocol

__all__ = ["MessagePassingSystem", "initial_configs"]


def initial_configs(
    agents: Sequence[AgentId],
    distribution: Mapping[Tuple[LocalState, ...], object],
) -> Distribution:
    """Build the initial distribution from locals-tuple -> probability.

    A thin wrapper that exists mostly for readability at call sites;
    the tuples must be ordered like ``agents``.
    """
    if not all(len(config) == len(agents) for config in distribution):
        raise CompilationError("initial configurations have wrong arity")
    return Distribution(dict(distribution))


@dataclass
class MessagePassingSystem:
    """A synchronous message-passing protocol over a lossy network.

    Attributes:
        agents: agent names.
        protocols: one :class:`RoundProtocol` per agent.
        channel: the delivery model for every message.
        initial: distribution over tuples of raw initial local states,
            ordered like ``agents``.
        horizon: number of rounds to run; the compiled tree has states
            at times ``0 .. horizon``.
        name: system name.
        record_delivery_pattern: when true (default), each edge records
            the round's delivery pattern under the reserved ``ENV`` key.
    """

    agents: Sequence[AgentId]
    protocols: Mapping[AgentId, RoundProtocol]
    channel: ChannelModel
    initial: Distribution
    horizon: int
    name: str = "message-passing"
    record_delivery_pattern: bool = True

    def __post_init__(self) -> None:
        self.agents = tuple(self.agents)
        missing = [a for a in self.agents if a not in self.protocols]
        if missing:
            raise CompilationError(f"agents without round protocols: {missing}")
        if self.horizon < 0:
            raise CompilationError("horizon must be non-negative")

    # ------------------------------------------------------------------

    def _stamped(self, raw_locals: Tuple[LocalState, ...], t: int) -> GlobalState:
        return GlobalState(env=None, locals=tuple((t, raw) for raw in raw_locals))

    def compile(self, *, memoize: bool = True) -> PPS:
        """Expand the protocol into a purely probabilistic system.

        The expansion runs through the shared breadth-first grower
        (:func:`repro.protocols.compiler.expand_tree`); a round's
        successor enumeration — joint moves, delivery patterns, state
        updates — is a pure function of the raw local-state tuple, so
        with ``memoize=True`` (the default) it is computed once per
        distinct configuration and reused as an expansion template, and
        all configurations, stamped states, and stamped local values
        are interned (``pps.intern``).  ``memoize=False`` re-enumerates
        every node; both modes produce identical trees.
        """
        agents = self.agents
        table: Optional[InternTable] = InternTable() if memoize else None

        def expand(raw_locals: Tuple[LocalState, ...], t: int) -> List[Edge]:
            edges: List[Edge] = []
            for joint_move, move_prob in self._joint_moves(raw_locals).items():
                sent = self._sent_messages(joint_move)
                for pattern, pattern_prob in self._delivery_patterns(sent).items():
                    new_locals = self._apply_round(raw_locals, joint_move, sent, pattern)
                    if table is not None:
                        new_locals = table.config(new_locals)
                    via: Dict[AgentId, object] = {
                        agent: move.action
                        for agent, move in zip(agents, joint_move)
                    }
                    if self.record_delivery_pattern:
                        via[ENV] = pattern
                    edges.append((new_locals, via, move_prob * pattern_prob))
            return edges

        if table is not None:
            def stamp(raw_locals: Tuple[LocalState, ...], t: int) -> GlobalState:
                return table.stamped_state(raw_locals, t, None, raw_locals)

            initial = [
                (table.config(raw_locals), prob)
                for raw_locals, prob in self.initial.items()
            ]
        else:
            def stamp(raw_locals: Tuple[LocalState, ...], t: int) -> GlobalState:
                return self._stamped(raw_locals, t)

            initial = list(self.initial.items())

        root = expand_tree(
            initial,
            expand=expand,
            stamp=stamp,
            stop=lambda raw_locals, t: t >= self.horizon,
            memoize=memoize,
        )
        pps = PPS(agents, root, name=self.name, intern=table)
        if not pps.runs:
            raise CompilationError("compilation produced no runs")
        return pps

    # ------------------------------------------------------------------

    def _joint_moves(
        self, raw_locals: Tuple[LocalState, ...]
    ) -> Distribution:
        """Distribution over tuples of per-agent moves (independent)."""
        joint: List[Tuple[Tuple[Move, ...], Probability]] = [((), ONE)]
        for agent, raw in zip(self.agents, raw_locals):
            dist = self.protocols[agent].step_distribution(raw)
            joint = [
                (moves + (move,), weight * w)
                for moves, weight in joint
                for move, w in dist.items()
            ]
        return Distribution(dict(joint))

    @staticmethod
    def _sent_messages(joint_move: Tuple[Move, ...]) -> Tuple[Message, ...]:
        """All messages sent this round, in a deterministic global order."""
        sent: List[Message] = []
        for move in joint_move:
            sent.extend(move.sends)
        return tuple(sent)

    def _delivery_patterns(self, sent: Tuple[Message, ...]) -> Distribution:
        """Distribution over delivery bit-vectors for the sent messages."""
        joint: List[Tuple[Tuple[bool, ...], Probability]] = [((), ONE)]
        for message in sent:
            p = self.channel.delivery_probability(message)
            outcomes: List[Tuple[bool, Probability]] = []
            if p > 0:
                outcomes.append((True, p))
            if p < 1:
                outcomes.append((False, ONE - p))
            joint = [
                (bits + (bit,), weight * w)
                for bits, weight in joint
                for bit, w in outcomes
            ]
        return Distribution(dict(joint))

    def _apply_round(
        self,
        raw_locals: Tuple[LocalState, ...],
        joint_move: Tuple[Move, ...],
        sent: Tuple[Message, ...],
        pattern: Tuple[bool, ...],
    ) -> Tuple[LocalState, ...]:
        """Deliver messages per ``pattern`` and update every agent."""
        delivered_to: Dict[AgentId, List[Message]] = {a: [] for a in self.agents}
        for message, delivered in zip(sent, pattern):
            if delivered:
                if message.recipient not in delivered_to:
                    raise CompilationError(
                        f"message {message} addressed to unknown agent"
                    )
                delivered_to[message.recipient].append(message)
        return tuple(
            self.protocols[agent].update(raw, move, tuple(delivered_to[agent]))
            for agent, raw, move in zip(self.agents, raw_locals, joint_move)
        )
