"""Protocol substrate: distributions, protocols, adversaries, compiler.

Implements the paper's Section 2.2: probabilistic protocols
``P_i : L_i -> Delta(Act_i)`` for agents and the environment, adversary
fixing for nondeterministic choices, and the bounded-horizon compiler
that turns a joint protocol into a purely probabilistic system.
"""

from .adversary import (
    Adversary,
    compile_under_adversaries,
    drift_under_adversaries,
    enumerate_adversaries,
    scale_adversary,
)
from .compiler import ENV, Config, ProtocolSystem, compile_system
from .distribution import Distribution, product
from .environment import (
    EnvironmentProtocol,
    FunctionEnvironment,
    PassiveEnvironment,
)
from .protocol import (
    AgentProtocol,
    ConstantProtocol,
    FunctionProtocol,
    TableProtocol,
    as_protocol,
    coerce_distribution,
)
from .strategies import copy_tree, refrain_below_threshold, relabel_actions

__all__ = [
    "Adversary",
    "AgentProtocol",
    "Config",
    "ConstantProtocol",
    "Distribution",
    "ENV",
    "EnvironmentProtocol",
    "FunctionEnvironment",
    "FunctionProtocol",
    "PassiveEnvironment",
    "ProtocolSystem",
    "TableProtocol",
    "as_protocol",
    "coerce_distribution",
    "compile_system",
    "compile_under_adversaries",
    "copy_tree",
    "drift_under_adversaries",
    "enumerate_adversaries",
    "scale_adversary",
    "product",
    "refrain_below_threshold",
    "relabel_actions",
]
