"""Adversaries: fixing nondeterministic choices before compilation.

Probabilistic reasoning in the presence of nondeterminism requires
fixing all nondeterministic choices first (Pnueli; Halpern–Tuttle; the
paper's Section 2).  An *adversary* is such a fixing: e.g. "Alice's
``go`` flag is set nondeterministically" becomes two adversaries, one
per flag value, each inducing its own pps.

:class:`Adversary` is an immutable record of named choices;
:func:`enumerate_adversaries` expands a choice space into all
adversaries; :func:`compile_under_adversaries` builds one pps per
adversary from a system factory.  Analyses (beliefs, constraints,
theorems) are then run per-adversary, matching the paper's
"probabilities are only defined once the adversary is fixed".

Once compiled, an adversary family can *drift* without recompiling:
:func:`scale_adversary` (re-exported from :mod:`repro.core.reweight`)
scales the probability of marked adversarial branches inside one
system, and :func:`drift_under_adversaries` applies it across a whole
compiled family, producing tree-sharing
:class:`~repro.core.pps.ReweightedPPS` children whose engine indices
inherit every shape-dependent table from the originals.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product as iter_product
from typing import Callable, Dict, Hashable, List, Mapping, Sequence, Tuple

from ..core.numeric import ProbabilityLike
from ..core.pps import PPS, Node
from ..core.reweight import scale_adversary
from .compiler import ProtocolSystem, compile_system

__all__ = [
    "Adversary",
    "compile_under_adversaries",
    "drift_under_adversaries",
    "enumerate_adversaries",
    "scale_adversary",
]


@dataclass(frozen=True)
class Adversary:
    """A complete assignment of the nondeterministic choices.

    Attributes:
        choices: the named choices, as a sorted tuple of pairs so that
            adversaries are hashable and have a canonical form.
    """

    choices: Tuple[Tuple[str, Hashable], ...]

    @classmethod
    def of(cls, **choices: Hashable) -> "Adversary":
        """Build an adversary from keyword choices."""
        return cls(tuple(sorted(choices.items())))

    def get(self, name: str) -> Hashable:
        """The value fixed for choice ``name``.

        Raises:
            KeyError: when the adversary does not fix that choice.
        """
        for key, value in self.choices:
            if key == name:
                return value
        raise KeyError(f"adversary fixes no choice named {name!r}")

    def describe(self) -> str:
        return ", ".join(f"{key}={value!r}" for key, value in self.choices)

    def __str__(self) -> str:
        return f"Adversary({self.describe()})"


def enumerate_adversaries(
    space: Mapping[str, Sequence[Hashable]]
) -> List[Adversary]:
    """All adversaries over a finite choice space.

    Args:
        space: choice name -> the values the scheduler may pick.

    Returns:
        one :class:`Adversary` per element of the cartesian product,
        in a deterministic order.
    """
    names = sorted(space)
    combos = iter_product(*(space[name] for name in names))
    return [
        Adversary(tuple(zip(names, combo)))
        for combo in combos
    ]


def compile_under_adversaries(
    space: Mapping[str, Sequence[Hashable]],
    make_system: Callable[[Adversary], ProtocolSystem],
    *,
    name_prefix: str = "adversary",
) -> Dict[Adversary, PPS]:
    """Compile one pps per adversary of the choice space.

    Args:
        space: the nondeterministic choice space.
        make_system: factory producing the (purely probabilistic)
            protocol system once the adversary is fixed.
        name_prefix: systems are named ``f"{name_prefix}[{choices}]"``.
    """
    systems: Dict[Adversary, PPS] = {}
    for adversary in enumerate_adversaries(space):
        system = make_system(adversary)
        systems[adversary] = compile_system(
            system, name=f"{name_prefix}[{adversary.describe()}]"
        )
    return systems


def drift_under_adversaries(
    compiled: Mapping[Adversary, PPS],
    select: Callable[[Adversary, Node], bool],
    factor: ProbabilityLike,
    *,
    materialize: bool = False,
) -> Dict[Adversary, PPS]:
    """Scale the adversarial branches of every system in a compiled family.

    The family-level drift knob: for each ``(adversary, pps)`` pair of
    ``compiled``, applies :func:`scale_adversary` with the selection
    ``node -> select(adversary, node)``, so the marking may depend on
    which nondeterministic choices that system was compiled under.
    Systems whose selection marks no edge come back unchanged-measure
    (but still as cheap derived children, keeping the return type
    uniform).

    Args:
        compiled: an adversary family, e.g. from
            :func:`compile_under_adversaries`.
        select: marks adversarial outcome edges, given the adversary
            the system was compiled under and the node the edge leads
            into.
        factor: the common scale applied to every selected edge.
        materialize: bake each drifted system into a standalone copy
            instead of a tree-sharing derived child.
    """
    return {
        adversary: scale_adversary(
            pps,
            lambda node, _adv=adversary: select(_adv, node),
            factor,
            name=f"{pps.name}-drift({factor})",
            materialize=materialize,
        )
        for adversary, pps in compiled.items()
    }
