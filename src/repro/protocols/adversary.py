"""Adversaries: fixing nondeterministic choices before compilation.

Probabilistic reasoning in the presence of nondeterminism requires
fixing all nondeterministic choices first (Pnueli; Halpern–Tuttle; the
paper's Section 2).  An *adversary* is such a fixing: e.g. "Alice's
``go`` flag is set nondeterministically" becomes two adversaries, one
per flag value, each inducing its own pps.

:class:`Adversary` is an immutable record of named choices;
:func:`enumerate_adversaries` expands a choice space into all
adversaries; :func:`compile_under_adversaries` builds one pps per
adversary from a system factory.  Analyses (beliefs, constraints,
theorems) are then run per-adversary, matching the paper's
"probabilities are only defined once the adversary is fixed".
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product as iter_product
from typing import Callable, Dict, Hashable, List, Mapping, Sequence, Tuple

from ..core.pps import PPS
from .compiler import ProtocolSystem, compile_system

__all__ = ["Adversary", "enumerate_adversaries", "compile_under_adversaries"]


@dataclass(frozen=True)
class Adversary:
    """A complete assignment of the nondeterministic choices.

    Attributes:
        choices: the named choices, as a sorted tuple of pairs so that
            adversaries are hashable and have a canonical form.
    """

    choices: Tuple[Tuple[str, Hashable], ...]

    @classmethod
    def of(cls, **choices: Hashable) -> "Adversary":
        """Build an adversary from keyword choices."""
        return cls(tuple(sorted(choices.items())))

    def get(self, name: str) -> Hashable:
        """The value fixed for choice ``name``.

        Raises:
            KeyError: when the adversary does not fix that choice.
        """
        for key, value in self.choices:
            if key == name:
                return value
        raise KeyError(f"adversary fixes no choice named {name!r}")

    def describe(self) -> str:
        return ", ".join(f"{key}={value!r}" for key, value in self.choices)

    def __str__(self) -> str:
        return f"Adversary({self.describe()})"


def enumerate_adversaries(
    space: Mapping[str, Sequence[Hashable]]
) -> List[Adversary]:
    """All adversaries over a finite choice space.

    Args:
        space: choice name -> the values the scheduler may pick.

    Returns:
        one :class:`Adversary` per element of the cartesian product,
        in a deterministic order.
    """
    names = sorted(space)
    combos = iter_product(*(space[name] for name in names))
    return [
        Adversary(tuple(zip(names, combo)))
        for combo in combos
    ]


def compile_under_adversaries(
    space: Mapping[str, Sequence[Hashable]],
    make_system: Callable[[Adversary], ProtocolSystem],
    *,
    name_prefix: str = "adversary",
) -> Dict[Adversary, PPS]:
    """Compile one pps per adversary of the choice space.

    Args:
        space: the nondeterministic choice space.
        make_system: factory producing the (purely probabilistic)
            protocol system once the adversary is fixed.
        name_prefix: systems are named ``f"{name_prefix}[{choices}]"``.
    """
    systems: Dict[Adversary, PPS] = {}
    for adversary in enumerate_adversaries(space):
        system = make_system(adversary)
        systems[adversary] = compile_system(
            system, name=f"{name_prefix}[{adversary.describe()}]"
        )
    return systems
