"""Compile a joint protocol into a purely probabilistic system.

The paper's Section 2.2: given a distribution over initial global
states and probabilistic protocols for the environment and every agent,
all terminating in bounded time, the run space is a pps.  This module
performs that construction explicitly, producing a
:class:`~repro.core.pps.PPS` by breadth-first expansion:

1. the root's children are the support of the initial distribution;
2. at every non-final node, enumerate the product of the agents'
   action distributions, then the environment's reaction to each joint
   action, apply the (deterministic) transition function to obtain the
   successor state, and label the edge with the combined probability
   and the joint action.

Synchrony is enforced by *time-stamping*: agents' local states are
stored in the tree as ``(t, raw_state)`` pairs while the protocol
functions always see the raw state.  This implements the paper's
"every local state contains ``time_i``" assumption without burdening
protocol authors.

Two joint choices that happen to produce the same raw successor state
yield *separate* tree nodes (a tree never merges histories); their
global states may coincide, which is exactly how agents come to be
uncertain about what happened.

Repeated configurations and memoized expansion
----------------------------------------------
Histories never merge, but raw configurations *recur*: in synchronous
protocols the same :class:`Config` typically labels many tree nodes
(that recurrence is precisely what makes agents uncertain).  The
successor enumeration above — the joint-action product, the
environment's reaction, and the transition — is a pure function of the
raw configuration, so by default :func:`compile_system` computes it
once per distinct configuration as an **expansion template** (a list
of ``(successor config, via action, edge probability)`` triples) and
stamps fresh :class:`~repro.core.pps.Node` objects from the template
at every other node carrying that configuration.  All configurations,
stamped states, and stamped local values are interned in a
per-compilation :class:`~repro.core.pps.InternTable` (attached to the
result as ``pps.intern``), so equality within the tree is identity and
state hashes are cached.  Tree shape, uid assignment (breadth-first,
depth-monotone), run order, and all edge probabilities are identical
to the unmemoized construction; ``memoize=False`` is the escape hatch
that re-enumerates every node independently.  See ``docs/compiler.md``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import (
    Callable,
    Deque,
    Dict,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..core.errors import CompilationError
from ..core.numeric import ONE, Probability
from ..core.pps import PPS, Action, AgentId, GlobalState, InternTable, LocalState, Node
from .distribution import Distribution
from .environment import EnvironmentProtocol, PassiveEnvironment
from .protocol import AgentProtocol, ProtocolLike, as_protocol

__all__ = ["Config", "ProtocolSystem", "compile_system", "expand_tree", "ENV"]

ENV = "_env"
"""Reserved key under which the environment's action is recorded on edges."""


@dataclass(frozen=True)
class Config:
    """An unstamped global configuration: environment + raw local states.

    ``locals`` is ordered consistently with the owning
    :class:`ProtocolSystem`'s ``agents`` tuple.
    """

    env: Hashable
    locals: Tuple[LocalState, ...]

    def __hash__(self) -> int:
        # Same formula the frozen dataclass would generate, cached:
        # the memoized compiler keys its template and stamp caches on
        # configurations, looking each one up once per node.
        h = self.__dict__.get("_hash")
        if h is None:
            h = hash((self.env, self.locals))
            object.__setattr__(self, "_hash", h)
        return h

    def __getstate__(self):
        # The cached hash must not survive pickling: string hashes are
        # salted per process, so a restored stale value would put equal
        # keys in different dict buckets in the loading process.
        state = dict(self.__dict__)
        state.pop("_hash", None)
        return state


# (new_env, new_locals) returned by a transition function
Transition = Callable[
    [Hashable, Mapping[AgentId, LocalState], Mapping[AgentId, Action], Hashable],
    Tuple[Hashable, Mapping[AgentId, LocalState]],
]


@dataclass
class ProtocolSystem:
    """Everything needed to compile a pps from protocols.

    Attributes:
        agents: agent names (order fixes state layout).
        protocols: one protocol per agent (callables allowed).
        transition: the deterministic successor function
            ``(env, locals, joint_actions, env_action) ->
            (new_env, new_locals)``.  ``locals`` and the result mapping
            are keyed by agent name.
        initial: distribution over initial :class:`Config` values.
        environment: the environment's probabilistic protocol
            (defaults to a passive one).
        horizon: the maximum time; states at ``t == horizon`` are
            leaves.  Required because a pps is finite.
        final: optional predicate ``(env, locals, t) -> bool`` marking
            additional early-termination states.
        record_env_action: when true, the environment's per-round
            action is recorded on edges under the reserved key
            :data:`ENV` (useful for facts about delivery patterns).
    """

    agents: Sequence[AgentId]
    protocols: Mapping[AgentId, ProtocolLike]
    transition: Transition
    initial: Distribution[Config]
    environment: EnvironmentProtocol = field(default_factory=PassiveEnvironment)
    horizon: int = 1
    final: Optional[Callable[[Hashable, Mapping[AgentId, LocalState], int], bool]] = None
    record_env_action: bool = False

    def __post_init__(self) -> None:
        self.agents = tuple(self.agents)
        if ENV in self.agents:
            raise CompilationError(f"agent name {ENV!r} is reserved")
        missing = [a for a in self.agents if a not in self.protocols]
        if missing:
            raise CompilationError(f"agents without protocols: {missing}")
        if self.horizon < 0:
            raise CompilationError("horizon must be non-negative")
        self._normalized: Dict[AgentId, AgentProtocol] = {
            agent: as_protocol(self.protocols[agent]) for agent in self.agents
        }

    def protocol_of(self, agent: AgentId) -> AgentProtocol:
        return self._normalized[agent]

    def locals_map(self, config: Config) -> Dict[AgentId, LocalState]:
        return dict(zip(self.agents, config.locals))


def _stamped_state(system: ProtocolSystem, config: Config, t: int) -> GlobalState:
    """Store raw locals as ``(t, raw)`` pairs — the synchrony stamp."""
    return GlobalState(
        env=config.env, locals=tuple((t, raw) for raw in config.locals)
    )


# One outgoing edge of the expansion: (successor config, via action,
# edge probability).  A node's full edge list is its expansion template.
Edge = Tuple[Hashable, Mapping[AgentId, Action], Probability]


def expand_tree(
    initial: Iterable[Tuple[Hashable, Probability]],
    *,
    expand: Callable[[Hashable, int], Sequence[Edge]],
    stamp: Callable[[Hashable, int], GlobalState],
    stop: Callable[[Hashable, int], bool],
    memoize: bool = True,
) -> Node:
    """Breadth-first bounded expansion shared by both protocol compilers.

    Args:
        initial: ``(config, probability)`` pairs for the root's children.
        expand: the successor enumeration ``(config, t) -> edges``.  It
            **must be a pure function of the configuration** — ``t`` is
            provided for diagnostics only (with ``memoize=True`` the
            template is computed at the configuration's first occurrence
            and reused at every later one, whatever its time).
        stamp: ``(config, t) -> GlobalState`` — the time-stamped state
            stored on the node (may intern; must be pure).
        stop: ``(config, t) -> bool`` — whether the node is a leaf
            (horizon reached or an early-termination state).  Unlike
            ``expand``, this may depend on the time.
        memoize: cache expansion templates per configuration (the
            default).  ``False`` re-enumerates every node — the escape
            hatch used by the parity tests and benchmarks.  Both modes
            produce identical trees: same shape, same breadth-first
            depth-monotone uids, same run order, same probabilities.
            With ``memoize=True`` the configurations fed in (initial
            entries and the successors ``expand`` returns) **must be
            canonical interned instances kept alive for the whole
            call** — equal configs the same object, as an
            :class:`~repro.core.pps.InternTable` guarantees — because
            the template cache keys on object identity to avoid
            re-hashing large configurations at every node.

    Returns:
        The root node of the expanded tree.
    """
    uid_counter = [0]

    def take_uid() -> int:
        uid_counter[0] += 1
        return uid_counter[0] - 1

    root = Node(uid=take_uid(), depth=0, state=None)
    # FIFO frontier entries: (node, raw config).  A LIFO here would
    # expand depth-first and hand out uids out of level order; the
    # docstring's breadth-first contract keeps uids depth-monotone.
    frontier: Deque[Tuple[Node, Hashable]] = deque()
    for config, prob in initial:
        node = Node(
            uid=take_uid(),
            depth=1,
            state=stamp(config, 0),
            prob_from_parent=prob,
            parent=root,
        )
        root.children.append(node)
        frontier.append((node, config))

    # id(config) -> (config, edges); the config reference keeps the id
    # stable for the lifetime of the cache.
    templates: Optional[Dict[int, Tuple[Hashable, Sequence[Edge]]]] = (
        {} if memoize else None
    )
    while frontier:
        node, config = frontier.popleft()
        t = node.time
        if stop(config, t):
            continue
        if templates is None:
            edges = expand(config, t)
        else:
            # Configs are interned, so identity is equality; id-keying
            # skips re-hashing (possibly large) configurations here.
            # The entry pins the config itself: an id must never be
            # reused while the cache lives, even if a caller breaks
            # the keep-alive half of the interning contract.
            key = id(config)
            entry = templates.get(key)
            if entry is None:
                edges = expand(config, t)
                templates[key] = (config, edges)
            else:
                edges = entry[1]
        depth = node.depth + 1
        for successor, via, prob in edges:
            child = Node(
                uid=take_uid(),
                depth=depth,
                state=stamp(successor, t + 1),
                prob_from_parent=prob,
                via_action=via,
                parent=node,
            )
            node.children.append(child)
            frontier.append((child, successor))
    return root


def compile_system(
    system: ProtocolSystem, *, name: str = "compiled", memoize: bool = True
) -> PPS:
    """Run the bounded-horizon expansion and return the pps.

    With ``memoize=True`` (the default) the successor enumeration is
    computed once per distinct raw :class:`Config` and reused as an
    expansion template wherever that configuration recurs, and all
    configurations, stamped states, and stamped local values are
    interned (the table is attached as ``pps.intern``).  The resulting
    tree is identical — shape, uids, run order, probabilities — to the
    ``memoize=False`` construction, which re-enumerates the joint
    product and environment reaction at every node.

    Raises:
        CompilationError: when a transition returns a local-state
            mapping that omits an agent or names an unknown one, or the
            expansion produces no runs.
    """
    agents = system.agents
    known = set(agents)
    table: Optional[InternTable] = InternTable() if memoize else None

    def expand(config: Config, t: int) -> List[Edge]:
        locals_map = system.locals_map(config)
        # Joint agent action distribution (independent choices).
        joint: List[Tuple[Dict[AgentId, Action], Probability]] = [({}, ONE)]
        for agent, raw in zip(agents, config.locals):
            dist = system.protocol_of(agent).act(raw)
            joint = [
                ({**acts, agent: action}, weight * w)
                for acts, weight in joint
                for action, w in dist.items()
            ]
        edges: List[Edge] = []
        for joint_actions, joint_prob in joint:
            env_dist = system.environment.react(config.env, joint_actions)
            for env_action, env_prob in env_dist.items():
                new_env, new_locals = system.transition(
                    config.env, locals_map, joint_actions, env_action
                )
                missing = [a for a in agents if a not in new_locals]
                if missing:
                    raise CompilationError(
                        f"transition at time {t} omitted local states for {missing}"
                    )
                if len(new_locals) != len(agents):
                    unknown = sorted(
                        repr(k) for k in new_locals if k not in known
                    )
                    raise CompilationError(
                        f"transition at time {t} returned local states for "
                        f"unknown agents [{', '.join(unknown)}]; "
                        f"agents are {tuple(agents)}"
                    )
                successor = Config(
                    env=new_env,
                    locals=tuple(new_locals[a] for a in agents),
                )
                if table is not None:
                    successor = table.config(successor)
                via: Dict[AgentId, Action] = dict(joint_actions)
                if system.record_env_action:
                    via[ENV] = env_action
                edges.append((successor, via, joint_prob * env_prob))
        return edges

    if table is not None:
        def stamp(config: Config, t: int) -> GlobalState:
            return table.stamped_state(config, t, config.env, config.locals)

        initial = [
            (table.config(config), prob) for config, prob in system.initial.items()
        ]
    else:
        def stamp(config: Config, t: int) -> GlobalState:
            return _stamped_state(system, config, t)

        initial = list(system.initial.items())

    final = system.final

    def stop(config: Config, t: int) -> bool:
        if t >= system.horizon:
            return True
        if final is None:
            return False
        return final(config.env, system.locals_map(config), t)

    root = expand_tree(
        initial, expand=expand, stamp=stamp, stop=stop, memoize=memoize
    )
    pps = PPS(agents, root, name=name, intern=table)
    if not pps.runs:
        raise CompilationError("compilation produced no runs")
    return pps
