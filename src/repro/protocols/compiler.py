"""Compile a joint protocol into a purely probabilistic system.

The paper's Section 2.2: given a distribution over initial global
states and probabilistic protocols for the environment and every agent,
all terminating in bounded time, the run space is a pps.  This module
performs that construction explicitly, producing a
:class:`~repro.core.pps.PPS` by breadth-first expansion:

1. the root's children are the support of the initial distribution;
2. at every non-final node, enumerate the product of the agents'
   action distributions, then the environment's reaction to each joint
   action, apply the (deterministic) transition function to obtain the
   successor state, and label the edge with the combined probability
   and the joint action.

Synchrony is enforced by *time-stamping*: agents' local states are
stored in the tree as ``(t, raw_state)`` pairs while the protocol
functions always see the raw state.  This implements the paper's
"every local state contains ``time_i``" assumption without burdening
protocol authors.

Two joint choices that happen to produce the same raw successor state
yield *separate* tree nodes (a tree never merges histories); their
global states may coincide, which is exactly how agents come to be
uncertain about what happened.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import (
    Callable,
    Deque,
    Dict,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..core.errors import CompilationError
from ..core.numeric import ONE, Probability
from ..core.pps import PPS, Action, AgentId, GlobalState, LocalState, Node
from .distribution import Distribution
from .environment import EnvironmentProtocol, PassiveEnvironment
from .protocol import AgentProtocol, ProtocolLike, as_protocol

__all__ = ["Config", "ProtocolSystem", "compile_system", "ENV"]

ENV = "_env"
"""Reserved key under which the environment's action is recorded on edges."""


@dataclass(frozen=True)
class Config:
    """An unstamped global configuration: environment + raw local states.

    ``locals`` is ordered consistently with the owning
    :class:`ProtocolSystem`'s ``agents`` tuple.
    """

    env: Hashable
    locals: Tuple[LocalState, ...]


# (new_env, new_locals) returned by a transition function
Transition = Callable[
    [Hashable, Mapping[AgentId, LocalState], Mapping[AgentId, Action], Hashable],
    Tuple[Hashable, Mapping[AgentId, LocalState]],
]


@dataclass
class ProtocolSystem:
    """Everything needed to compile a pps from protocols.

    Attributes:
        agents: agent names (order fixes state layout).
        protocols: one protocol per agent (callables allowed).
        transition: the deterministic successor function
            ``(env, locals, joint_actions, env_action) ->
            (new_env, new_locals)``.  ``locals`` and the result mapping
            are keyed by agent name.
        initial: distribution over initial :class:`Config` values.
        environment: the environment's probabilistic protocol
            (defaults to a passive one).
        horizon: the maximum time; states at ``t == horizon`` are
            leaves.  Required because a pps is finite.
        final: optional predicate ``(env, locals, t) -> bool`` marking
            additional early-termination states.
        record_env_action: when true, the environment's per-round
            action is recorded on edges under the reserved key
            :data:`ENV` (useful for facts about delivery patterns).
    """

    agents: Sequence[AgentId]
    protocols: Mapping[AgentId, ProtocolLike]
    transition: Transition
    initial: Distribution[Config]
    environment: EnvironmentProtocol = field(default_factory=PassiveEnvironment)
    horizon: int = 1
    final: Optional[Callable[[Hashable, Mapping[AgentId, LocalState], int], bool]] = None
    record_env_action: bool = False

    def __post_init__(self) -> None:
        self.agents = tuple(self.agents)
        if ENV in self.agents:
            raise CompilationError(f"agent name {ENV!r} is reserved")
        missing = [a for a in self.agents if a not in self.protocols]
        if missing:
            raise CompilationError(f"agents without protocols: {missing}")
        if self.horizon < 0:
            raise CompilationError("horizon must be non-negative")
        self._normalized: Dict[AgentId, AgentProtocol] = {
            agent: as_protocol(self.protocols[agent]) for agent in self.agents
        }

    def protocol_of(self, agent: AgentId) -> AgentProtocol:
        return self._normalized[agent]

    def locals_map(self, config: Config) -> Dict[AgentId, LocalState]:
        return dict(zip(self.agents, config.locals))


def _stamped_state(system: ProtocolSystem, config: Config, t: int) -> GlobalState:
    """Store raw locals as ``(t, raw)`` pairs — the synchrony stamp."""
    return GlobalState(
        env=config.env, locals=tuple((t, raw) for raw in config.locals)
    )


def compile_system(system: ProtocolSystem, *, name: str = "compiled") -> PPS:
    """Run the bounded-horizon expansion and return the pps.

    Raises:
        CompilationError: when a transition returns an incomplete local
            state mapping, or the expansion produces no runs.
    """
    uid_counter = [0]

    def take_uid() -> int:
        uid_counter[0] += 1
        return uid_counter[0] - 1

    root = Node(uid=take_uid(), depth=0, state=None)
    # FIFO frontier entries: (node, raw config).  A LIFO here would
    # expand depth-first and hand out uids out of level order; the
    # docstring's breadth-first contract keeps uids depth-monotone.
    frontier: Deque[Tuple[Node, Config]] = deque()
    for config, prob in system.initial.items():
        node = Node(
            uid=take_uid(),
            depth=1,
            state=_stamped_state(system, config, 0),
            prob_from_parent=prob,
            parent=root,
        )
        root.children.append(node)
        frontier.append((node, config))

    while frontier:
        node, config = frontier.popleft()
        t = node.time
        locals_map = system.locals_map(config)
        if t >= system.horizon:
            continue
        if system.final is not None and system.final(config.env, locals_map, t):
            continue
        # Joint agent action distribution (independent choices).
        joint: List[Tuple[Dict[AgentId, Action], Probability]] = [({}, ONE)]
        for agent, raw in zip(system.agents, config.locals):
            dist = system.protocol_of(agent).act(raw)
            joint = [
                ({**acts, agent: action}, weight * w)
                for acts, weight in joint
                for action, w in dist.items()
            ]
        for joint_actions, joint_prob in joint:
            env_dist = system.environment.react(config.env, joint_actions)
            for env_action, env_prob in env_dist.items():
                new_env, new_locals = system.transition(
                    config.env, locals_map, joint_actions, env_action
                )
                missing = [a for a in system.agents if a not in new_locals]
                if missing:
                    raise CompilationError(
                        f"transition at time {t} omitted local states for {missing}"
                    )
                successor = Config(
                    env=new_env,
                    locals=tuple(new_locals[a] for a in system.agents),
                )
                via: Dict[AgentId, Action] = dict(joint_actions)
                if system.record_env_action:
                    via[ENV] = env_action
                child = Node(
                    uid=take_uid(),
                    depth=node.depth + 1,
                    state=_stamped_state(system, successor, t + 1),
                    prob_from_parent=joint_prob * env_prob,
                    via_action=via,
                    parent=node,
                )
                node.children.append(child)
                frontier.append((child, successor))

    pps = PPS(system.agents, root, name=name)
    if not pps.runs:
        raise CompilationError("compilation produced no runs")
    return pps
