"""Exact finite discrete probability distributions.

Protocols map local states to distributions over actions
(``P_i : L_i -> Delta(Act_i)``, paper Section 2.2).  This module gives
the distribution type those protocols return: finite support, exact
rational weights, positive everywhere on the support, summing to one.

Construction helpers cover the common cases: :meth:`Distribution.point`
(deterministic choice), :meth:`Distribution.uniform`,
:meth:`Distribution.bernoulli`, and :meth:`Distribution.weighted`.
Distributions compose through :meth:`map` (push-forward, merging equal
images) and :func:`product` (independent joint distribution over a
tuple of outcomes).
"""

from __future__ import annotations

from fractions import Fraction
from typing import (
    Callable,
    Dict,
    Generic,
    Hashable,
    Iterable,
    Iterator,
    Mapping,
    Sequence,
    Tuple,
    TypeVar,
    Union,
)

from ..core.errors import InvalidSystemError
from ..core.numeric import ONE, Probability, ProbabilityLike, as_fraction

__all__ = ["Distribution", "product"]

T = TypeVar("T", bound=Hashable)
U = TypeVar("U", bound=Hashable)


class Distribution(Generic[T]):
    """An exact probability distribution with finite support.

    Args:
        weights: outcome-to-probability mapping (or iterable of pairs).
            Zero-weight outcomes are rejected rather than dropped:
            silently accepting them would hide bugs in protocol code
            (the paper's pps definition likewise excludes probability-0
            edges).

    Raises:
        InvalidSystemError: when weights are non-positive or do not
            sum to one.
    """

    def __init__(
        self,
        weights: Union[Mapping[T, ProbabilityLike], Iterable[Tuple[T, ProbabilityLike]]],
    ) -> None:
        items = weights.items() if isinstance(weights, Mapping) else weights
        table: Dict[T, Probability] = {}
        for outcome, weight in items:
            w = as_fraction(weight)
            if w <= 0:
                raise InvalidSystemError(
                    f"outcome {outcome!r} has non-positive probability {w}"
                )
            if outcome in table:
                raise InvalidSystemError(f"duplicate outcome {outcome!r}")
            table[outcome] = w
        if not table:
            raise InvalidSystemError("a distribution needs at least one outcome")
        total = sum(table.values(), start=Fraction(0))
        if total != 1:
            raise InvalidSystemError(
                f"distribution weights sum to {total}, expected 1"
            )
        self._table = table

    # -- constructors ---------------------------------------------------

    @classmethod
    def point(cls, outcome: T) -> "Distribution[T]":
        """The deterministic distribution concentrated on ``outcome``."""
        return cls({outcome: ONE})

    @classmethod
    def uniform(cls, outcomes: Sequence[T]) -> "Distribution[T]":
        """The uniform distribution over distinct ``outcomes``."""
        n = len(outcomes)
        if n == 0:
            raise InvalidSystemError("uniform() needs at least one outcome")
        return cls({outcome: Fraction(1, n) for outcome in outcomes})

    @classmethod
    def bernoulli(
        cls,
        prob_true: ProbabilityLike,
        *,
        true: T = True,  # type: ignore[assignment]
        false: T = False,  # type: ignore[assignment]
    ) -> "Distribution[T]":
        """A two-outcome distribution: ``true`` w.p. ``prob_true``.

        Degenerate probabilities (0 or 1) collapse to a point
        distribution, keeping the support free of zero-weight outcomes.
        Equal ``true``/``false`` outcomes likewise collapse to a point
        mass on that outcome (the two branches are indistinguishable),
        instead of tripping the duplicate-outcome check.
        """
        p = as_fraction(prob_true)
        if not (0 <= p <= 1):
            raise InvalidSystemError(f"bernoulli probability {p} outside [0, 1]")
        if true == false:
            return cls.point(true)
        if p == 0:
            return cls.point(false)
        if p == 1:
            return cls.point(true)
        return cls({true: p, false: 1 - p})

    @classmethod
    def weighted(cls, *pairs: Tuple[T, ProbabilityLike]) -> "Distribution[T]":
        """Convenience variadic constructor: ``weighted((x, "1/3"), ...)``."""
        return cls(pairs)

    # -- queries ----------------------------------------------------------

    @property
    def support(self) -> Tuple[T, ...]:
        """The outcomes carrying positive probability."""
        return tuple(self._table)

    def prob(self, outcome: T) -> Probability:
        """The probability of ``outcome`` (0 when outside the support)."""
        return self._table.get(outcome, Fraction(0))

    def items(self) -> Iterator[Tuple[T, Probability]]:
        """Iterate over ``(outcome, probability)`` pairs."""
        return iter(self._table.items())

    def is_deterministic(self) -> bool:
        """Whether the distribution is a point mass."""
        return len(self._table) == 1

    def expectation(self, value: Callable[[T], Probability]) -> Probability:
        """The expected value of ``value`` under the distribution."""
        return sum(
            (weight * value(outcome) for outcome, weight in self._table.items()),
            start=Fraction(0),
        )

    # -- transforms -------------------------------------------------------

    def map(self, fn: Callable[[T], U]) -> "Distribution[U]":
        """The push-forward distribution, merging equal images."""
        table: Dict[U, Probability] = {}
        for outcome, weight in self._table.items():
            image = fn(outcome)
            table[image] = table.get(image, Fraction(0)) + weight
        return Distribution(table)

    def reweight(
        self,
        factor: Callable[[T], ProbabilityLike],
    ) -> "Distribution[T]":
        """The distribution with each weight scaled by ``factor(outcome)``.

        Weights are multiplied pointwise and renormalized, dropping
        outcomes whose factor is zero — the reweighting analogue of
        :meth:`condition` (which is ``reweight`` with a 0/1 factor).

        Raises:
            ValueError: when a factor is negative, or when every
                reweighted outcome has weight zero (the message names
                the first zeroed outcome, rather than letting the zero
                total surface as a ``ZeroDivisionError`` downstream).
        """
        scaled: Dict[T, Probability] = {}
        zeroed: Dict[T, None] = {}
        for outcome, weight in self._table.items():
            f = as_fraction(factor(outcome))
            if f < 0:
                raise ValueError(
                    f"reweight factor for outcome {outcome!r} is negative "
                    f"({f})"
                )
            if f == 0:
                zeroed.setdefault(outcome)
                continue
            scaled[outcome] = weight * f
        total = sum(scaled.values(), start=Fraction(0))
        if total == 0:
            culprit = next(iter(zeroed))
            raise ValueError(
                "reweight drives the total probability to zero (every "
                f"outcome zeroed, e.g. {culprit!r}); scale at least one "
                "outcome by a positive factor"
            )
        return Distribution({o: w / total for o, w in scaled.items()})

    def condition(self, predicate: Callable[[T], bool]) -> "Distribution[T]":
        """The conditional distribution given ``predicate``.

        Raises:
            InvalidSystemError: when no outcome satisfies the predicate.
        """
        kept = {o: w for o, w in self._table.items() if predicate(o)}
        if not kept:
            raise InvalidSystemError("conditioning event has probability zero")
        total = sum(kept.values(), start=Fraction(0))
        return Distribution({o: w / total for o, w in kept.items()})

    # -- dunder -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._table)

    def __iter__(self) -> Iterator[T]:
        return iter(self._table)

    def __contains__(self, outcome: object) -> bool:
        return outcome in self._table

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Distribution):
            return NotImplemented
        return self._table == other._table

    def __hash__(self) -> int:
        return hash(frozenset(self._table.items()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{o!r}: {w}" for o, w in self._table.items())
        return f"Distribution({{{inner}}})"


def product(distributions: Sequence[Distribution[T]]) -> Distribution[Tuple[T, ...]]:
    """The independent joint distribution over a tuple of outcomes.

    ``product([])`` is the point distribution on the empty tuple, which
    makes it safe to fold over a possibly empty list of per-message or
    per-agent choices.
    """
    joint: Distribution[Tuple[T, ...]] = Distribution.point(())
    for dist in distributions:
        pairs: Dict[Tuple[T, ...], Probability] = {}
        for prefix, wp in joint.items():
            for outcome, wo in dist.items():
                pairs[prefix + (outcome,)] = wp * wo
        joint = Distribution(pairs)
    return joint
