"""Environment (scheduler) protocols.

The environment ``e`` is an agent-like entity that resolves everything
outside the agents' control: message delivery, failures, external
inputs.  Following Halpern–Tuttle (and the paper's Section 2), all
*nondeterministic* environment choices are fixed by an adversary before
compilation; what remains here is the environment's *probabilistic*
protocol.

The environment's choice in a round may depend on the agents' actions
in the same round (e.g. a channel can only lose messages that were
actually sent), so :meth:`EnvironmentProtocol.react` receives the joint
action.  This is scheduling semantics, not information leakage: the
environment acts "after" the agents within a round, as the tree of the
Halpern–Tuttle model does.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Hashable, Mapping

from ..core.pps import Action, AgentId
from .distribution import Distribution
from .protocol import coerce_distribution

__all__ = [
    "EnvironmentProtocol",
    "PassiveEnvironment",
    "FunctionEnvironment",
]


class EnvironmentProtocol(ABC):
    """The environment's probabilistic protocol."""

    @abstractmethod
    def react(
        self, env_state: Hashable, joint_actions: Mapping[AgentId, Action]
    ) -> Distribution[Hashable]:
        """Distribution over environment actions for this round."""


class PassiveEnvironment(EnvironmentProtocol):
    """An environment that does nothing (its action is always ``None``)."""

    def react(
        self, env_state: Hashable, joint_actions: Mapping[AgentId, Action]
    ) -> Distribution[Hashable]:
        return Distribution.point(None)


class FunctionEnvironment(EnvironmentProtocol):
    """An environment defined by a function.

    The function receives ``(env_state, joint_actions)`` and returns a
    distribution over environment actions (bare values are coerced to
    deterministic choices).
    """

    def __init__(
        self,
        fn: Callable[[Hashable, Mapping[AgentId, Action]], object],
        name: str = "environment",
    ) -> None:
        self._fn = fn
        self.name = name

    def react(
        self, env_state: Hashable, joint_actions: Mapping[AgentId, Action]
    ) -> Distribution[Hashable]:
        return coerce_distribution(self._fn(env_state, joint_actions))
