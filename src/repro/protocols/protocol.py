"""Agent protocols: ``P_i : L_i -> Delta(Act_i)`` (paper, Section 2.2).

A (probabilistic) protocol for agent ``i`` maps each of its local
states to a distribution over local actions.  When that distribution
has more than one outcome the agent performs a *mixed action step*:
the probabilistic choice is made from the local state, and the agent
does not know in advance which action of the support will be realized —
precisely the situation that breaks naive belief/constraint reasoning
in the paper's Figure 1.

Protocols are plain callables or :class:`AgentProtocol` subclasses;
:func:`as_protocol` normalizes either form, and bare (non-distribution)
return values are coerced to deterministic choices.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Hashable, Mapping, Union

from ..core.pps import Action, AgentId, LocalState
from .distribution import Distribution

__all__ = [
    "AgentProtocol",
    "FunctionProtocol",
    "ConstantProtocol",
    "TableProtocol",
    "as_protocol",
    "coerce_distribution",
]

ProtocolLike = Union["AgentProtocol", Callable[[LocalState], object]]


def coerce_distribution(value: object) -> Distribution:
    """Wrap a bare outcome as a point distribution; pass distributions through."""
    if isinstance(value, Distribution):
        return value
    return Distribution.point(value)


class AgentProtocol(ABC):
    """A probabilistic protocol for one agent."""

    @abstractmethod
    def act(self, local: LocalState) -> Distribution[Action]:
        """The distribution over actions the agent takes at ``local``."""

    def is_mixed_at(self, local: LocalState) -> bool:
        """Whether the agent performs a mixed action step at ``local``."""
        return not self.act(local).is_deterministic()


class FunctionProtocol(AgentProtocol):
    """A protocol defined by a function of the local state.

    The function may return either a :class:`Distribution` or a bare
    action (interpreted deterministically).
    """

    def __init__(self, fn: Callable[[LocalState], object], name: str = "protocol") -> None:
        self._fn = fn
        self.name = name

    def act(self, local: LocalState) -> Distribution[Action]:
        return coerce_distribution(self._fn(local))


class ConstantProtocol(AgentProtocol):
    """A protocol performing the same (possibly mixed) step everywhere."""

    def __init__(self, choice: object) -> None:
        self._choice = coerce_distribution(choice)

    def act(self, local: LocalState) -> Distribution[Action]:
        return self._choice


class TableProtocol(AgentProtocol):
    """A protocol given extensionally as a local-state table.

    Args:
        table: local state -> action or distribution.
        default: behaviour at states missing from the table; required
            when lookups may miss (a ``KeyError`` is raised otherwise,
            which is usually the right failure for a mis-specified
            protocol).
    """

    def __init__(
        self,
        table: Mapping[LocalState, object],
        *,
        default: object = None,
        has_default: bool = False,
    ) -> None:
        self._table = {local: coerce_distribution(v) for local, v in table.items()}
        self._has_default = has_default or default is not None
        self._default = coerce_distribution(default) if self._has_default else None

    def act(self, local: LocalState) -> Distribution[Action]:
        hit = self._table.get(local)
        if hit is not None:
            return hit
        if self._default is not None:
            return self._default
        raise KeyError(f"protocol has no entry for local state {local!r}")


def as_protocol(value: ProtocolLike) -> AgentProtocol:
    """Normalize a callable or protocol object to an :class:`AgentProtocol`."""
    if isinstance(value, AgentProtocol):
        return value
    if callable(value):
        return FunctionProtocol(value)
    raise TypeError(f"cannot interpret {value!r} as an agent protocol")
