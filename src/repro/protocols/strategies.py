"""Belief-guided protocol transforms (the paper's Section 8 insight).

Theorem 6.2 implies that whenever an agent acts while holding a low
degree of belief in the constraint's condition, it drags the achieved
probability down; by *refraining* from acting at such states, the agent
weakly improves the constraint.  The paper illustrates this on the FS
protocol: Alice declining to fire after receiving 'No' raises
``mu(both fire | Alice fires)`` from 0.99 to 0.99899.

:func:`refrain_below_threshold` applies this transform mechanically to
any compiled system: every performance of the action at a local state
whose belief in the condition is below the threshold is replaced by a
substitute action (default ``"skip"``), leaving probabilities intact.
:func:`copy_tree` is the underlying structural copy, exposed because it
is independently useful (e.g. for building modified systems in tests).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..core.beliefs import belief
from ..core.facts import Fact
from ..core.numeric import ProbabilityLike, as_fraction
from ..core.pps import PPS, Action, AgentId, Node

__all__ = ["copy_tree", "relabel_actions", "refrain_below_threshold"]


def copy_tree(root: Node) -> Node:
    """A structural deep copy of a tree with fresh node identities."""
    counter = [0]

    def clone(node: Node, parent: Optional[Node]) -> Node:
        copy = Node(
            uid=counter[0],
            depth=node.depth,
            state=node.state,
            prob_from_parent=node.prob_from_parent,
            via_action=dict(node.via_action) if node.via_action is not None else None,
            parent=parent,
        )
        counter[0] += 1
        copy.children = [clone(child, copy) for child in node.children]
        return copy

    return clone(root, None)


def relabel_actions(
    pps: PPS,
    relabel: Callable[[Node, Dict[AgentId, Action]], Dict[AgentId, Action]],
    *,
    name: Optional[str] = None,
) -> PPS:
    """A copy of the system with edge action labels rewritten.

    Args:
        pps: the source system.
        relabel: called with each non-initial node (of the *copy*) and
            a mutable copy of its ``via_action``; returns the new joint
            action for the edge into that node.
        name: name of the resulting system.

    Only labels change: states, probabilities and tree shape are
    preserved, so the transform models the same stochastic process with
    re-described behaviour.
    """
    root = copy_tree(pps.root)
    stack = [root]
    while stack:
        node = stack.pop()
        if node.via_action is not None:
            node.via_action = relabel(node, dict(node.via_action))
        stack.extend(node.children)
    return PPS(pps.agents, root, name=name or f"{pps.name}-relabelled")


def refrain_below_threshold(
    pps: PPS,
    agent: AgentId,
    action: Action,
    phi: Fact,
    threshold: ProbabilityLike,
    *,
    replacement: Action = "skip",
    name: Optional[str] = None,
) -> PPS:
    """Suppress performances of ``action`` at low-belief local states.

    Every edge on which ``agent`` performs ``action`` from a local state
    where ``beta_i(phi) < threshold`` (computed in the *original*
    system — the belief the agent would hold when deciding) is relabelled
    to ``replacement``.  The result is a system for the modified
    protocol "act only when sufficiently confident".

    Note that the modified agent uses the same information it had in
    the original protocol; since beliefs are a function of the local
    state, the modified behaviour is implementable.
    """
    bound = as_fraction(threshold)
    idx = pps.agent_index(agent)
    belief_cache: Dict[object, bool] = {}

    def low_belief(local: object) -> bool:
        if local not in belief_cache:
            belief_cache[local] = belief(pps, agent, phi, local) < bound
        return belief_cache[local]

    def relabel(node: Node, via: Dict[AgentId, Action]) -> Dict[AgentId, Action]:
        if via.get(agent) != action:
            return via
        parent = node.parent
        assert parent is not None and parent.state is not None
        if low_belief(parent.state.local(idx)):
            via[agent] = replacement
        return via

    return relabel_actions(
        pps, relabel, name=name or f"{pps.name}-refrain[{action}]"
    )
