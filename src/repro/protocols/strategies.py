"""Belief-guided protocol transforms (the paper's Section 8 insight).

Theorem 6.2 implies that whenever an agent acts while holding a low
degree of belief in the constraint's condition, it drags the achieved
probability down; by *refraining* from acting at such states, the agent
weakly improves the constraint.  The paper illustrates this on the FS
protocol: Alice declining to fire after receiving 'No' raises
``mu(both fire | Alice fires)`` from 0.99 to 0.99899.

:func:`refrain_below_threshold` applies this transform mechanically to
any compiled system: every performance of the action at a local state
whose belief in the condition is below the threshold is replaced by a
substitute action (default ``"skip"``), leaving probabilities intact.

Derived systems
---------------
Relabelling edges preserves states, probabilities, tree shape, and
therefore every belief/knowledge quantity that does not mention
actions.  The transforms exploit this: by default they return a
:class:`~repro.core.pps.DerivedPPS` — an
:class:`~repro.core.pps.ActionOverlay` of per-edge overrides over the
*shared* parent tree, node identity preserved — whose engine index is
derived from the parent's instead of rebuilt
(:meth:`repro.core.engine.SystemIndex.derived`).  Dense threshold
sweeps and optimality ablations thereby pay O(overridden edges) per
row instead of a full copy + validate + index rebuild; see
``docs/transforms.md``.

Pass ``materialize=True`` to get the historic behaviour instead: a
standalone deep copy with fresh node identities, bit-identical (uid
sequence, leaf order, ``Fraction`` probabilities) to what the
pre-derived-layer implementation produced.  :func:`copy_tree` is that
structural copy, exposed because it is independently useful (e.g. for
building modified systems in tests).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional, Tuple

from ..core.beliefs import belief
from ..core.facts import Fact
from ..core.numeric import ProbabilityLike, as_fraction
from ..core.pps import PPS, Action, ActionOverlay, AgentId, DerivedPPS, Node

__all__ = [
    "copy_tree",
    "relabel_actions",
    "refrain_candidates",
    "refrain_below_threshold",
]


def refrain_candidates(
    pps: PPS, agent: AgentId, action: Action
) -> List[Tuple[Node, Dict[AgentId, Action], object]]:
    """The edges a refrain transform can touch, with their acting states.

    One breadth-first walk (the transforms' canonical edge order)
    returning ``(node, joint action, acting local state)`` for every
    edge on which ``agent`` performs ``action``.  This is the single
    source of truth for the refrain transform's candidate semantics —
    :func:`refrain_below_threshold`'s derived path and the dense-sweep
    fast path in :func:`repro.analysis.sweep.refrain_threshold_sweep`
    both build their overrides from it.

    Raises:
        ValueError: when a matching performance is recorded on an edge
            leaving the root — there is no acting local state there, so
            a belief guard would be undefined.
    """
    idx = pps.agent_index(agent)
    candidates: List[Tuple[Node, Dict[AgentId, Action], object]] = []
    queue = deque([pps.root])
    while queue:
        node = queue.popleft()
        via = pps.edge_action(node)
        if via is not None and via.get(agent) == action:
            parent = node.parent
            if parent is None or parent.state is None:
                raise ValueError(
                    f"refrain transform: edge into node {node.uid} "
                    f"(depth {node.depth}) records {agent!r} performing "
                    f"{action!r} but leaves the root, so there is no acting "
                    "local state to evaluate the belief at"
                )
            candidates.append((node, dict(via), parent.state.local(idx)))
        queue.extend(node.children)
    return candidates


def copy_tree(root: Node) -> Node:
    """A structural deep copy of a tree with fresh node identities.

    Nodes are numbered in depth-first pre-order starting from 0 (the
    historic ``copy_tree`` contract).  The walk is iterative, so trees
    deeper than the interpreter's recursion limit — reachable since the
    compiler scale-up — copy fine.
    """
    counter = 0
    result: Optional[Node] = None
    stack: List[Tuple[Node, Optional[Node]]] = [(root, None)]
    while stack:
        node, parent = stack.pop()
        copy = Node(
            uid=counter,
            depth=node.depth,
            state=node.state,
            prob_from_parent=node.prob_from_parent,
            via_action=dict(node.via_action) if node.via_action is not None else None,
            parent=parent,
        )
        counter += 1
        if parent is None:
            result = copy
        else:
            parent.children.append(copy)
        # Reversed push: children are copied (and numbered) first-child
        # first, exactly matching the recursive pre-order numbering.
        stack.extend((child, copy) for child in reversed(node.children))
    # repro: allow[RP006] internal invariant: the stack starts non-empty
    # so the root copy is always produced (type-narrowing).
    assert result is not None
    return result


def relabel_actions(
    pps: PPS,
    relabel: Callable[[Node, Dict[AgentId, Action]], Dict[AgentId, Action]],
    *,
    name: Optional[str] = None,
    materialize: bool = False,
) -> PPS:
    """A system equal to ``pps`` with edge action labels rewritten.

    Args:
        pps: the source system (possibly itself derived; overlays
            chain).
        relabel: called once per labelled edge, in **breadth-first
            order** over the tree (root's children first, then depth 2,
            and so on — siblings in child order), with the node the
            edge leads into and a mutable copy of the edge's joint
            action; returns the new joint action for that edge.  In the
            default derived mode the node is the *shared* parent node
            and must not be mutated; with ``materialize=True`` it is
            the freshly copied node (the historic contract).
        name: name of the resulting system.
        materialize: when ``True``, deep-copy the tree
            (:func:`copy_tree`) and return a standalone :class:`PPS`,
            bit-identical to the historic implementation's output.  By
            default the result is a :class:`~repro.core.pps.DerivedPPS`
            recording only the edges the callback actually changed.

    Only labels change: states, probabilities and tree shape are
    preserved, so the transform models the same stochastic process with
    re-described behaviour.
    """
    if materialize:
        root = copy_tree(pps.root)
        if isinstance(pps, DerivedPPS):
            # Bake the source's overlay into the copy: the copy starts
            # from ``node.via_action`` (the base labels), but the
            # system being materialized is the *resolved* one.
            pairs: List[Tuple[Node, Node]] = [(pps.root, root)]
            while pairs:
                source, target = pairs.pop()
                via = pps.edge_action(source)
                # repro: allow[RP003] construction phase: the target is
                # a fresh private copy not yet published to any index.
                target.via_action = dict(via) if via is not None else None
                pairs.extend(zip(source.children, target.children))
        queue = deque([root])
        while queue:
            node = queue.popleft()
            if node.via_action is not None:
                # repro: allow[RP003] construction phase: relabelling a
                # fresh private copy before the PPS is published.
                node.via_action = relabel(node, dict(node.via_action))
            queue.extend(node.children)
        return PPS(pps.agents, root, name=name or f"{pps.name}-relabelled")
    overrides: List[Tuple[Node, Dict[AgentId, Action]]] = []
    queue = deque([pps.root])
    while queue:
        node = queue.popleft()
        via = pps.edge_action(node)
        if via is not None:
            new_via = relabel(node, dict(via))
            if new_via != via:
                overrides.append((node, dict(new_via)))
        queue.extend(node.children)
    return DerivedPPS(
        pps, ActionOverlay(overrides), name=name or f"{pps.name}-relabelled"
    )


def refrain_below_threshold(
    pps: PPS,
    agent: AgentId,
    action: Action,
    phi: Fact,
    threshold: ProbabilityLike,
    *,
    replacement: Action = "skip",
    name: Optional[str] = None,
    materialize: bool = False,
    numeric: str = "exact",
) -> PPS:
    """Suppress performances of ``action`` at low-belief local states.

    Every edge on which ``agent`` performs ``action`` from a local state
    where ``beta_i(phi) < threshold`` (computed in the *original*
    system — the belief the agent would hold when deciding) is relabelled
    to ``replacement``.  The result is a system for the modified
    protocol "act only when sufficiently confident".

    By default the result is a :class:`~repro.core.pps.DerivedPPS`
    sharing ``pps``'s tree and engine index (see
    :func:`relabel_actions`); ``materialize=True`` reproduces the
    historic deep-copy output bit-identically.

    Note that the modified agent uses the same information it had in
    the original protocol; since beliefs are a function of the local
    state, the modified behaviour is implementable.

    ``numeric="auto"`` decides the per-state belief guards through the
    two-tier kernel (:mod:`repro.core.lazyprob`): guards resolve in
    float and escalate to exact arithmetic only when a belief lies
    within round-off of the threshold, so the relabelled edge set —
    and hence the returned system — is *identical* to exact mode's.
    ``numeric="float"`` trusts round-off (exploration only).

    Raises:
        ValueError: when a matching performance is recorded on an edge
            leaving the root — there is no acting local state there, so
            the belief guard is undefined.
    """
    bound = as_fraction(threshold)
    if numeric == "auto":
        from ..core.lazyprob import LazyProb

        bound = LazyProb.from_exact(bound)
    elif numeric == "float":
        bound = float(bound)
    belief_cache: Dict[object, bool] = {}

    def low_belief(local: object) -> bool:
        if local not in belief_cache:
            belief_cache[local] = (
                belief(pps, agent, phi, local, numeric=numeric) < bound
            )
        return belief_cache[local]

    result_name = name or f"{pps.name}-refrain[{action}]"
    overrides = [
        (node, {**via, agent: replacement})
        for node, via, local in refrain_candidates(pps, agent, action)
        if replacement != action and low_belief(local)
    ]
    derived = DerivedPPS(pps, ActionOverlay(overrides), name=result_name)
    if not materialize:
        return derived
    # The materialized output is the derived system baked into a
    # standalone deep copy (relabel_actions' materialize branch resolves
    # the overlay into the copied nodes), so both escape-hatch and
    # default path share refrain_candidates' guard semantics — and the
    # copy numbering matches the historic deep-copy-then-relabel
    # implementation bit for bit (asserted against a legacy oracle in
    # tests and bench_transform_sweep).
    return relabel_actions(
        derived, lambda node, via: via, name=result_name, materialize=True
    )
