"""Static correctness tools for the :mod:`repro` codebase.

The package is developer tooling, not library runtime: nothing under
``repro.tools`` is imported by the engine, the compilers, or the
analysis layer.  Its one entry point is the invariant analyzer

.. code-block:: console

    $ PYTHONPATH=src python -m repro.tools.check --strict

which parses the whole source tree and enforces the hand-maintained
invariants the layered engine optimizations rely on — exact-core
modules stay float-free, ``Fact`` subclasses keep their
``structural_key``/``mentions_actions`` contract coherent, interned
trees stay immutable, engine memo caches stay structurally keyed, and
the ``numeric=`` knob threads through every consumer.  See
``docs/static-analysis.md`` for the rule catalogue and the
suppression/baseline policy.
"""
