"""CLI of the invariant analyzer: ``python -m repro.tools.check``.

Scans the library tree (``src/repro``) strictly and, by default, the
``benchmarks/`` and ``examples/`` trees in advisory mode (findings are
reported but never affect the exit status).  With ``--strict`` the
process exits non-zero on any live, non-suppressed, non-baselined
finding in the strict tree — this is the mode CI runs.

Exit status: 0 clean (or non-strict run), 1 findings in strict mode,
2 usage or parse errors.

See ``docs/static-analysis.md`` for the rule catalogue and the
suppression/baseline policy.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .framework import (
    CheckConfig,
    CheckResult,
    active_rules,
    apply_baseline,
    baseline_payload,
    build_model,
    check_files,
    collect_files,
    load_baseline,
    render_json,
    render_text,
)
from . import rules as _rules  # noqa: F401  (imports populate the registry)

__all__ = ["main", "find_root"]

ADVISORY_TREES = ("benchmarks", "examples")
STRICT_TREE = "src/repro"
BASELINE_NAME = ".repro-check-baseline.json"


def find_root(start: Optional[Path] = None) -> Path:
    """The repository root: the nearest ancestor holding ``src/repro``.

    Starts from ``start`` (default: this file's location, falling back
    to the working directory), so the analyzer finds its tree both when
    run from a checkout and when pointed elsewhere with ``--root``.
    """
    candidates = []
    if start is not None:
        candidates.append(start)
    else:
        candidates.append(Path(__file__).resolve().parent)
        candidates.append(Path.cwd())
    for candidate in candidates:
        current = candidate.resolve()
        for ancestor in (current, *current.parents):
            if (ancestor / STRICT_TREE).is_dir():
                return ancestor
    raise SystemExit(
        f"cannot locate a repository root (no {STRICT_TREE}/ above "
        f"{candidates[0]}); pass --root"
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.check",
        description="Static invariant analyzer for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="root-relative files/directories to scan strictly "
        f"(default: {STRICT_TREE})",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="repository root (default: auto-detected)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 on any non-baselined finding in the strict tree",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit a JSON report instead of text"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"baseline file (default: <root>/{BASELINE_NAME})",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline file with the current strict findings "
        "and exit 0 (grandfathering workflow; the committed baseline is "
        "expected to stay empty)",
    )
    parser.add_argument(
        "--no-advisory",
        action="store_true",
        help=f"skip the advisory scan of {'/'.join(ADVISORY_TREES)}",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list registered rules and exit"
    )
    options = parser.parse_args(argv)

    only = (
        [part.strip() for part in options.rules.split(",") if part.strip()]
        if options.rules
        else None
    )
    try:
        rules = active_rules(only)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2

    if options.list_rules:
        for rule in rules:
            print(f"{rule.id}  {rule.title}")
        return 0

    root = find_root(options.root)
    config = CheckConfig()

    strict_paths = list(options.paths) if options.paths else [STRICT_TREE]
    strict_files = collect_files(root, strict_paths)
    if not strict_files:
        print(
            f"no python files under {', '.join(strict_paths)} (root {root})",
            file=sys.stderr,
        )
        return 2
    advisory_files = (
        []
        if options.no_advisory
        else collect_files(root, [t for t in ADVISORY_TREES if (root / t).is_dir()])
    )

    model = build_model(root, [*strict_files, *advisory_files], config)
    strict_result = check_files(root, strict_files, config, model, rules)
    advisory_result = (
        check_files(root, advisory_files, config, model, rules, advisory=True)
        if advisory_files
        else CheckResult()
    )

    baseline_path = options.baseline or (root / BASELINE_NAME)
    if options.write_baseline:
        baseline_path.write_text(
            baseline_payload(strict_result.findings), encoding="utf-8"
        )
        print(
            f"wrote {len(strict_result.findings)} finding(s) to {baseline_path}"
        )
        return 0
    baseline = load_baseline(baseline_path)
    strict_result.findings, grandfathered = apply_baseline(
        strict_result.findings, baseline
    )

    render = render_json if options.json else render_text
    print(
        render(
            strict_result,
            advisory_result,
            rules,
            grandfathered=grandfathered,
        )
    )

    if strict_result.errors or advisory_result.errors:
        return 2
    if options.strict and strict_result.findings:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
