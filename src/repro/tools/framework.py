"""The rule framework of the invariant analyzer (``repro.tools.check``).

The analyzer is a small, dependency-free static checker shaped like the
sanitizer layers of a build pipeline:

* a **rule registry** (:func:`register` / :data:`REGISTRY`) of
  :class:`Rule` subclasses, each owning one invariant (``RP001`` ...);
* a **per-file AST dispatch**: every file is parsed once, parent links
  are annotated, and each node is offered to the rules that declared
  interest in its type (:attr:`Rule.interests`) — one tree walk per
  file regardless of how many rules are active;
* a **project model** (:class:`ProjectModel`), built in a first pass
  over every scanned file, giving rules cross-file knowledge: the class
  hierarchy (so ``Fact`` subclasses defined far from ``core/facts.py``
  are recognized) and the set of ``numeric=``-accepting functions;
* **inline suppressions**: a finding is silenced by a
  ``# repro: allow[RP001] <one-line justification>`` comment on the
  finding's line or anywhere in the contiguous comment block directly
  above it (markers must be real comments — a docstring describing the
  syntax never suppresses anything);
* a **committed baseline** (:func:`load_baseline`) for grandfathered
  findings, matched on ``(rule, path, message)`` so line drift does not
  churn it.  Policy: the baseline ships empty — new findings are fixed
  or explicitly allowed, not baselined (see ``docs/static-analysis.md``);
* **text and JSON reporters** with ``file:line`` output.

Everything here is runtime-free with respect to the library: the
analyzer only ever *reads* the tree it is pointed at.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
)

__all__ = [
    "Finding",
    "CheckConfig",
    "Rule",
    "register",
    "REGISTRY",
    "active_rules",
    "ClassInfo",
    "FuncInfo",
    "ProjectModel",
    "FileContext",
    "build_model",
    "check_source",
    "check_files",
    "collect_files",
    "load_baseline",
    "apply_baseline",
    "render_text",
    "render_json",
]


# ---------------------------------------------------------------------------
# Findings
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # posix path relative to the scan root
    line: int
    message: str
    advisory: bool = False

    def location(self) -> str:
        return f"{self.path}:{self.line}"

    def baseline_key(self) -> Tuple[str, str, str]:
        """Identity used for baseline matching.

        Deliberately excludes the line number: a baselined finding that
        merely moves (code added above it) stays baselined; one whose
        message changes (different object, different cache) resurfaces.
        """
        return (self.rule, self.path, self.message)


# ---------------------------------------------------------------------------
# Configuration
# ---------------------------------------------------------------------------


def _matches(rel_path: str, patterns: Sequence[str]) -> bool:
    """Whether a posix relative path matches any configured pattern.

    A pattern ending in ``/`` matches any file under that directory
    (anchored at the root or at any path component); any other pattern
    matches the path exactly or as a trailing path suffix, so tests can
    scope rules to bare fixture file names.
    """
    slashed = "/" + rel_path
    for pattern in patterns:
        if pattern.endswith("/"):
            if rel_path.startswith(pattern) or ("/" + pattern) in slashed:
                return True
        elif rel_path == pattern or slashed.endswith("/" + pattern):
            return True
    return False


@dataclass
class CheckConfig:
    """Repo-specific knowledge the rules consult.

    The defaults describe this repository's layout and recorded
    invariants (``docs/engine.md`` / ``docs/transforms.md`` /
    ``docs/numerics.md``); tests override individual fields to point
    rules at fixture snippets.
    """

    # RP001: modules whose arithmetic decides exact verdicts, and the
    # sanctioned numeric tiers inside them that are allowed to hold
    # floats (the LEDA-style filter lives there by design).
    exact_core: Tuple[str, ...] = ("src/repro/core/",)
    numeric_tiers: Tuple[str, ...] = (
        "src/repro/core/numeric.py",
        "src/repro/core/lazyprob.py",
        "src/repro/core/arraykernel.py",
        "src/repro/core/shard.py",
        "src/repro/core/faults.py",
    )
    # math functions that are exact on integer arguments and therefore
    # fine inside exact-core modules.
    exact_math: Tuple[str, ...] = (
        "gcd",
        "lcm",
        "isqrt",
        "comb",
        "perm",
        "factorial",
        "floor",
        "ceil",
        "trunc",
    )

    # RP002: the Fact roots whose default implementations do not count
    # as "defining" the structural pair.
    fact_bases: Tuple[str, ...] = ("Fact", "RunFact")

    # RP003: interned/immutable classes (by name) plus every Fact
    # subclass, attributes that identify an immutable instance when
    # assigned through an arbitrary expression, and the declared memo
    # slots that legitimately backfill after construction.
    immutable_classes: Tuple[str, ...] = ("Node", "Config", "GlobalState")
    immutable_attrs: Tuple[str, ...] = (
        "uid",
        "depth",
        "state",
        "prob_from_parent",
        "via_action",
        "children",
        "env",
        "locals",
    )
    memo_slots: Tuple[str, ...] = (
        "_hash",
        "_structural_key",
        "_mentions_actions",
        "_system_index",
        "_runs",
    )

    # RP004: the engine module and its fact-keyed memo caches.  The
    # inheritable caches must also record _action_free at every write
    # (docs/transforms.md); the non-inherited ones only need the
    # structural-key discipline.
    engine_modules: Tuple[str, ...] = ("src/repro/core/engine.py",)
    inheritable_fact_caches: Tuple[str, ...] = (
        "_fact_masks",
        "_slice_masks",
        "_belief_cache",
        "_lazy_beliefs",
    )
    fact_keyed_caches: Tuple[str, ...] = (
        "_at_action_cache",
        "_independence_cache",
        "_threshold_kernels",
    )
    cache_accessors: Tuple[str, ...] = ("_mask_cache",)
    key_derivers: Tuple[str, ...] = ("_fact_key", "_cache_key", "structural_key")
    action_free_recorders: Tuple[str, ...] = ("_note_action_free",)

    # RP005: modules whose outputs are pinned deterministic (uid
    # sequences, leaf orders, cache keys).
    deterministic_modules: Tuple[str, ...] = (
        "src/repro/protocols/compiler.py",
        "src/repro/protocols/strategies.py",
        "src/repro/messaging/system.py",
        "src/repro/core/engine.py",
        "src/repro/core/pps.py",
        "src/repro/core/shard.py",
    )

    # RP008: modules holding shard-combine implementations, whose
    # result folds must iterate in a fixed (list/tuple) order — never
    # over a set or an identity-keyed sort (docs/sharding.md).
    shard_modules: Tuple[str, ...] = ("src/repro/core/shard.py",)

    # RP009: the weight-split layer (docs/transforms.md).  In these
    # modules, every instance attribute assigned inside the class that
    # declares the dependency tables must be classified in one of them
    # (shape-/weight-dependent or bookkeeping), and functions on the
    # derived-inheritance / reweight-invalidation paths (matched by
    # name marker) must not iterate sets or sort by id() — cache
    # drop/copy order must be deterministic.
    weight_split_modules: Tuple[str, ...] = (
        "src/repro/core/engine.py",
        "src/repro/core/reweight.py",
    )
    dependency_tables: Tuple[str, ...] = ("DEPENDENCY_CLASS",)
    bookkeeping_tables: Tuple[str, ...] = ("BOOKKEEPING_ATTRS",)
    invalidation_markers: Tuple[str, ...] = (
        "derived",
        "inherit",
        "invalidat",
        "reweight",
        "materialize",
    )

    # RP010: execution-stack modules whose resilience/fallback paths
    # must never degrade silently — a broad ``except`` there has to
    # record a degradation/retry event (docs/robustness.md), re-raise,
    # or carry an ``allow[RP010]`` justification.
    execution_modules: Tuple[str, ...] = (
        "src/repro/core/shard.py",
        "src/repro/core/arraykernel.py",
        "src/repro/core/faults.py",
        "src/repro/analysis/sweep.py",
    )
    degradation_recorders: Tuple[str, ...] = (
        "record_degradation",
        "record_retry",
        "absorb_events",
    )

    def is_exact_core(self, rel_path: str) -> bool:
        return _matches(rel_path, self.exact_core) and not _matches(
            rel_path, self.numeric_tiers
        )


# ---------------------------------------------------------------------------
# Project model (first pass)
# ---------------------------------------------------------------------------


@dataclass
class ClassInfo:
    """One class definition found anywhere in the scanned tree."""

    name: str
    path: str
    line: int
    bases: Tuple[str, ...]
    methods: frozenset  # names of functions defined in the class body


@dataclass
class FuncInfo:
    """One ``numeric=``-accepting function definition."""

    name: str
    path: str
    line: int
    # 0-based position of the ``numeric`` parameter among positional
    # parameters with a leading self/cls stripped; None when keyword-only.
    numeric_position: Optional[int]


class ProjectModel:
    """Cross-file knowledge shared by all rules.

    Classes are keyed by bare name; when a name is defined more than
    once the candidates are merged conservatively (a method counts as
    defined if *any* candidate defines it, a class counts as a Fact
    subclass if *any* candidate's base chain reaches a Fact root).
    """

    def __init__(self, config: CheckConfig) -> None:
        self.config = config
        self.classes: Dict[str, List[ClassInfo]] = {}
        self.numeric_functions: Dict[str, List[FuncInfo]] = {}

    # -- construction --------------------------------------------------

    def add_file(self, rel_path: str, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                bases = tuple(
                    base_name
                    for base in node.bases
                    if (base_name := _dotted_tail(base)) is not None
                )
                methods = frozenset(
                    item.name
                    for item in node.body
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                )
                self.classes.setdefault(node.name, []).append(
                    ClassInfo(node.name, rel_path, node.lineno, bases, methods)
                )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                position = _numeric_position(node)
                if position is not _NO_NUMERIC:
                    self.numeric_functions.setdefault(node.name, []).append(
                        FuncInfo(node.name, rel_path, node.lineno, position)
                    )

    # -- queries -------------------------------------------------------

    def is_fact_subclass(self, name: str) -> bool:
        """Whether ``name``'s base chain reaches a Fact root class."""
        return self._reaches_fact(name, set())

    def _reaches_fact(self, name: str, seen: Set[str]) -> bool:
        if name in self.config.fact_bases:
            return True
        if name in seen:
            return False
        seen.add(name)
        for info in self.classes.get(name, ()):
            for base in info.bases:
                if self._reaches_fact(base, seen):
                    return True
        return False

    def defines_method(self, name: str, method: str) -> bool:
        """Whether ``name`` or a project ancestor *below* the Fact roots
        defines ``method`` in its own body."""
        return self._defines(name, method, set())

    def _defines(self, name: str, method: str, seen: Set[str]) -> bool:
        if name in self.config.fact_bases or name in seen:
            return False
        seen.add(name)
        for info in self.classes.get(name, ()):
            if method in info.methods:
                return True
            for base in info.bases:
                if self._defines(base, method, seen):
                    return True
        return False

    def numeric_threaded(self, call: ast.Call, callee: str) -> Optional[bool]:
        """Whether ``call`` forwards the knob to numeric-aware ``callee``.

        ``None`` when the callee is not numeric-aware.  A call is
        considered threaded when it passes ``numeric=`` by keyword,
        forwards ``**kwargs``, or supplies enough positional arguments
        to cover the callee's ``numeric`` slot.
        """
        infos = self.numeric_functions.get(callee)
        if not infos:
            return None
        for keyword in call.keywords:
            if keyword.arg == "numeric" or keyword.arg is None:
                return True
        positions = [
            info.numeric_position
            for info in infos
            if info.numeric_position is not None
        ]
        if positions and len(call.args) > min(positions):
            return True
        return False


_NO_NUMERIC = object()


def _numeric_position(node):
    """The self/cls-stripped positional index of a ``numeric`` parameter.

    Returns ``None`` when the parameter is keyword-only, or the
    :data:`_NO_NUMERIC` sentinel when the function takes no ``numeric``
    parameter at all.
    """
    args = node.args
    positional = list(args.posonlyargs) + list(args.args)
    names = [arg.arg for arg in positional]
    offset = 1 if names and names[0] in ("self", "cls") else 0
    for index, name in enumerate(names):
        if name == "numeric":
            return index - offset
    if any(arg.arg == "numeric" for arg in args.kwonlyargs):
        return None
    return _NO_NUMERIC


def _dotted_tail(node) -> Optional[str]:
    """The last identifier of a Name/Attribute base expression."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


# ---------------------------------------------------------------------------
# Per-file context
# ---------------------------------------------------------------------------

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_*,\s]+)\]")


@dataclass
class FileContext:
    """Everything a rule may consult about the file under analysis."""

    rel_path: str
    tree: ast.Module
    lines: List[str]
    config: CheckConfig
    model: ProjectModel
    advisory: bool = False

    def matches(self, patterns: Sequence[str]) -> bool:
        return _matches(self.rel_path, patterns)

    def enclosing_function(self, node):
        """The nearest enclosing function definition, or ``None``."""
        current = getattr(node, "_repro_parent", None)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return current
            current = getattr(current, "_repro_parent", None)
        return None

    def parent(self, node):
        return getattr(node, "_repro_parent", None)


def _annotate_parents(tree: ast.AST) -> None:
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            child._repro_parent = parent  # type: ignore[attr-defined]


def _comment_tokens(source: str) -> List[Tuple[int, str]]:
    """(line, text) of every comment token; allow[] markers must live in
    real comments, so a docstring *describing* the syntax never
    suppresses anything."""
    comments: List[Tuple[int, str]] = []
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass  # a file that does not tokenize is reported as a parse error
    return comments


class _Suppressions:
    """The ``# repro: allow[...]`` map of one file."""

    def __init__(self, source: str, lines: List[str]) -> None:
        self.by_line: Dict[int, Set[str]] = {}
        self.comment_only: Set[int] = set()
        self.used: Set[int] = set()
        self._comment_lines: Set[int] = {
            number
            for number, text in enumerate(lines, start=1)
            if text.strip().startswith("#")
        }
        for number, comment in _comment_tokens(source):
            match = _ALLOW_RE.search(comment)
            if match is None:
                continue
            rules = {part.strip() for part in match.group(1).split(",")}
            self.by_line[number] = {part for part in rules if part}
            if number in self._comment_lines:
                self.comment_only.add(number)

    def _covers(self, line: int, rule: str) -> bool:
        allowed = self.by_line.get(line)
        return allowed is not None and (rule in allowed or "*" in allowed)

    def suppresses(self, finding: Finding) -> bool:
        # Same line, or a comment-only allow marker anywhere in the
        # contiguous comment block directly above the finding (the
        # natural home of a multi-line justification).
        if self._covers(finding.line, finding.rule):
            self.used.add(finding.line)
            return True
        above = finding.line - 1
        while above in self._comment_lines:
            if above in self.comment_only and self._covers(above, finding.rule):
                self.used.add(above)
                return True
            above -= 1
        return False

    def unused(self) -> List[int]:
        return sorted(set(self.by_line) - self.used)


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------


class Rule:
    """Base class of one invariant check.

    Subclasses set :attr:`id`/:attr:`title`, declare the AST node types
    they want via :attr:`interests`, and yield :class:`Finding`s from
    :meth:`visit` (called once per matching node of each applicable
    file).  :meth:`begin_file`/:meth:`end_file` bracket the single
    shared tree walk.
    """

    id: str = ""
    title: str = ""
    interests: Tuple[Type[ast.AST], ...] = ()

    def applies_to(self, ctx: FileContext) -> bool:
        return True

    def begin_file(self, ctx: FileContext) -> None:
        pass

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        return iter(())

    def end_file(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.id,
            path=ctx.rel_path,
            line=getattr(node, "lineno", 1),
            message=message,
            advisory=ctx.advisory,
        )


REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_class.id:
        raise ValueError(f"{rule_class.__name__} has no rule id")
    if rule_class.id in REGISTRY:
        raise ValueError(f"duplicate rule id {rule_class.id}")
    REGISTRY[rule_class.id] = rule_class
    return rule_class


def active_rules(only: Optional[Sequence[str]] = None) -> List[Rule]:
    """Instantiate the registered rules (optionally a subset by id)."""
    selected = sorted(REGISTRY) if only is None else list(only)
    unknown = [rule_id for rule_id in selected if rule_id not in REGISTRY]
    if unknown:
        raise KeyError(f"unknown rule ids: {', '.join(unknown)}")
    return [REGISTRY[rule_id]() for rule_id in selected]


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------


def collect_files(root: Path, relative: Sequence[str]) -> List[Path]:
    """All ``.py`` files under the given root-relative paths, sorted."""
    files: List[Path] = []
    for entry in relative:
        path = root / entry
        if path.is_file() and path.suffix == ".py":
            files.append(path)
        elif path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
    return files


def build_model(
    root: Path, files: Iterable[Path], config: CheckConfig
) -> ProjectModel:
    """First pass: parse every file into the cross-file project model."""
    model = ProjectModel(config)
    for path in files:
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"))
        except SyntaxError:
            continue  # reported by the check pass
        model.add_file(path.relative_to(root).as_posix(), tree)
    return model


@dataclass
class CheckResult:
    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    unused_allows: List[Tuple[str, int]] = field(default_factory=list)
    errors: List[Finding] = field(default_factory=list)

    def extend(self, other: "CheckResult") -> None:
        self.findings.extend(other.findings)
        self.suppressed += other.suppressed
        self.unused_allows.extend(other.unused_allows)
        self.errors.extend(other.errors)


def check_source(
    source: str,
    rel_path: str,
    config: CheckConfig,
    model: ProjectModel,
    rules: Sequence[Rule],
    *,
    advisory: bool = False,
) -> CheckResult:
    """Run the rules over one file's source text (the core primitive)."""
    result = CheckResult()
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        result.errors.append(
            Finding(
                rule="PARSE",
                path=rel_path,
                line=exc.lineno or 1,
                message=f"file does not parse: {exc.msg}",
                advisory=advisory,
            )
        )
        return result
    _annotate_parents(tree)
    lines = source.splitlines()
    ctx = FileContext(rel_path, tree, lines, config, model, advisory)
    active = [rule for rule in rules if rule.applies_to(ctx)]
    if not active:
        return result
    suppressions = _Suppressions(source, lines)
    raw: List[Finding] = []
    for rule in active:
        rule.begin_file(ctx)
    for node in ast.walk(tree):
        for rule in active:
            if rule.interests and isinstance(node, rule.interests):
                raw.extend(rule.visit(node, ctx))
    for rule in active:
        raw.extend(rule.end_file(ctx))
    seen: Set[Tuple[str, str, int, str]] = set()
    for finding in sorted(raw, key=lambda f: (f.line, f.rule, f.message)):
        identity = (finding.rule, finding.path, finding.line, finding.message)
        if identity in seen:
            continue
        seen.add(identity)
        if suppressions.suppresses(finding):
            result.suppressed += 1
        else:
            result.findings.append(finding)
    result.unused_allows.extend(
        (rel_path, line) for line in suppressions.unused()
    )
    return result


def check_files(
    root: Path,
    files: Sequence[Path],
    config: CheckConfig,
    model: ProjectModel,
    rules: Sequence[Rule],
    *,
    advisory: bool = False,
) -> CheckResult:
    result = CheckResult()
    for path in files:
        result.extend(
            check_source(
                path.read_text(encoding="utf-8"),
                path.relative_to(root).as_posix(),
                config,
                model,
                rules,
                advisory=advisory,
            )
        )
    return result


# ---------------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------------


def load_baseline(path: Path) -> Set[Tuple[str, str, str]]:
    """The grandfathered-finding keys of a committed baseline file."""
    if not path.exists():
        return set()
    data = json.loads(path.read_text(encoding="utf-8"))
    return {
        (entry["rule"], entry["path"], entry["message"])
        for entry in data.get("findings", ())
    }


def apply_baseline(
    findings: Sequence[Finding], baseline: Set[Tuple[str, str, str]]
) -> Tuple[List[Finding], int]:
    """Split findings into (fresh, number grandfathered)."""
    fresh = [f for f in findings if f.baseline_key() not in baseline]
    return fresh, len(findings) - len(fresh)


def baseline_payload(findings: Sequence[Finding]) -> str:
    entries = sorted(
        {f.baseline_key() for f in findings}
    )
    return json.dumps(
        {
            "findings": [
                {"rule": rule, "path": path, "message": message}
                for rule, path, message in entries
            ]
        },
        indent=2,
    ) + "\n"


# ---------------------------------------------------------------------------
# Reporters
# ---------------------------------------------------------------------------


def render_text(
    strict: CheckResult,
    advisory: CheckResult,
    rules: Sequence[Rule],
    *,
    grandfathered: int = 0,
) -> str:
    out: List[str] = []
    titles = {rule.id: rule.title for rule in rules}
    for finding in strict.errors + advisory.errors:
        out.append(f"{finding.location()}: error: {finding.message}")
    for finding in strict.findings:
        out.append(f"{finding.location()}: {finding.rule} {finding.message}")
    if advisory.findings:
        out.append("")
        out.append("advisory (non-blocking):")
        for finding in advisory.findings:
            out.append(
                f"  {finding.location()}: {finding.rule} {finding.message}"
            )
    unused = strict.unused_allows + advisory.unused_allows
    if unused:
        out.append("")
        out.append("unused suppressions (informational):")
        for path, line in unused:
            out.append(f"  {path}:{line}: allow[] comment matched no finding")
    out.append("")
    by_rule: Dict[str, int] = {}
    for finding in strict.findings:
        by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
    summary = (
        f"{len(strict.findings)} finding(s), "
        f"{strict.suppressed + advisory.suppressed} suppressed, "
        f"{grandfathered} baselined, "
        f"{len(advisory.findings)} advisory, "
        f"{len(rules)} rule(s) active"
    )
    if by_rule:
        details = ", ".join(
            f"{rule_id}={count} [{titles.get(rule_id, '?')}]"
            for rule_id, count in sorted(by_rule.items())
        )
        summary += f" ({details})"
    out.append(summary)
    return "\n".join(out)


def render_json(
    strict: CheckResult,
    advisory: CheckResult,
    rules: Sequence[Rule],
    *,
    grandfathered: int = 0,
) -> str:
    def encode(finding: Finding) -> Dict[str, object]:
        return {
            "rule": finding.rule,
            "path": finding.path,
            "line": finding.line,
            "message": finding.message,
            "advisory": finding.advisory,
        }

    return json.dumps(
        {
            "findings": [encode(f) for f in strict.findings],
            "advisory": [encode(f) for f in advisory.findings],
            "errors": [encode(f) for f in strict.errors + advisory.errors],
            "suppressed": strict.suppressed + advisory.suppressed,
            "baselined": grandfathered,
            "unused_allows": [
                {"path": path, "line": line}
                for path, line in strict.unused_allows + advisory.unused_allows
            ],
            "rules": [
                {"id": rule.id, "title": rule.title} for rule in rules
            ],
        },
        indent=2,
    )
