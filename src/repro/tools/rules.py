"""The invariant rules of ``repro.tools.check`` (RP001–RP010).

Each rule enforces one hand-maintained invariant the layered engine
depends on; the catalogue with rationale lives in
``docs/static-analysis.md``, the invariants themselves are recorded in
``docs/engine.md``, ``docs/transforms.md`` and ``docs/numerics.md``.
Rules are heuristic AST checks, not type inference: they are tuned so
that every firing is worth a human look, and intentional exceptions
are annotated in place with ``# repro: allow[RPnnn] <why>``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .framework import FileContext, Finding, Rule, register

__all__ = [
    "FloatInExactCore",
    "FactStructuralPair",
    "ImmutableMutation",
    "EngineCacheDiscipline",
    "NondeterminismSource",
    "BareAssert",
    "NumericKnobDropped",
    "ShardCombineOrder",
    "WeightSplitDiscipline",
    "SilentDegradation",
]


def _call_name(node: ast.Call) -> Optional[str]:
    """The bare callee name of a call (``f(...)`` or ``obj.f(...)``)."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _names_in(node: ast.AST) -> Set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


_CTOR_METHODS = ("__init__", "__post_init__", "__new__")


def _in_constructor(ctx: FileContext, node: ast.AST) -> bool:
    enclosing = ctx.enclosing_function(node)
    return enclosing is not None and enclosing.name in _CTOR_METHODS


# ---------------------------------------------------------------------------
# RP001
# ---------------------------------------------------------------------------


@register
class FloatInExactCore(Rule):
    """Float arithmetic inside exact-core modules.

    The engine's guarantee (``docs/numerics.md``) is that every verdict
    is exact-rational; floats are confined to the sanctioned numeric
    tiers (``lazyprob``/``arraykernel``/``numeric``), which carry
    certified error bounds.  A stray float literal, ``float()`` call,
    or inexact ``math.*`` use anywhere else silently degrades verdicts
    instead of crashing.  ``float()`` applied directly inside an
    f-string substitution is exempt: conversion at the formatting
    boundary is display-only and cannot reach a comparison.
    """

    id = "RP001"
    title = "float arithmetic in exact-core module"
    interests = (ast.Constant, ast.Call, ast.Attribute, ast.ImportFrom)

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.config.is_exact_core(ctx.rel_path)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, float):
                yield self.finding(
                    ctx,
                    node,
                    f"float literal {node.value!r} in an exact-core module; "
                    "exact verdicts must stay in Fraction/int arithmetic "
                    "(floats belong to the lazyprob/arraykernel tiers)",
                )
        elif isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id == "float":
                if isinstance(ctx.parent(node), ast.FormattedValue):
                    return  # display-only conversion inside an f-string
                yield self.finding(
                    ctx,
                    node,
                    "float() conversion in an exact-core module; only the "
                    "sanctioned numeric tiers may leave exact arithmetic",
                )
        elif isinstance(node, ast.Attribute):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "math"
                and node.attr not in ctx.config.exact_math
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"math.{node.attr} in an exact-core module is inexact "
                    "on rationals; use exact integer/Fraction arithmetic",
                )
        elif isinstance(node, ast.ImportFrom):
            if node.module == "math":
                for alias in node.names:
                    if alias.name not in ctx.config.exact_math:
                        yield self.finding(
                            ctx,
                            node,
                            f"from math import {alias.name} in an exact-core "
                            "module; only integer-exact math functions "
                            f"({', '.join(ctx.config.exact_math)}) are "
                            "sanctioned",
                        )


# ---------------------------------------------------------------------------
# RP002
# ---------------------------------------------------------------------------


@register
class FactStructuralPair(Rule):
    """Fact subclasses must keep ``_structure``/``_action_dependence`` paired.

    The engine keys its memo caches on ``Fact.structural_key()`` and
    decides derived-index cache inheritance by
    ``Fact.mentions_actions()`` (``docs/engine.md``,
    ``docs/transforms.md``).  Both derive from overridable hooks; a
    subclass that declares one hook and silently inherits the other has
    usually not *decided* the other — which is how a structurally
    shared cache entry ends up inherited by a derived system whose
    labels changed its truth value.  Classes where the inherited
    default is genuinely correct say so with an inline allow.
    """

    id = "RP002"
    title = "Fact subclass with unpaired _structure/_action_dependence"
    interests = (ast.ClassDef,)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        if not isinstance(node, ast.ClassDef):
            return
        model = ctx.model
        if node.name in ctx.config.fact_bases:
            return
        if not model.is_fact_subclass(node.name):
            return
        has_structure = model.defines_method(node.name, "_structure")
        has_dependence = model.defines_method(node.name, "_action_dependence")
        if has_structure and not has_dependence:
            yield self.finding(
                ctx,
                node,
                f"Fact subclass {node.name} defines _structure() (structural "
                "cache sharing) but not _action_dependence(); derived-index "
                "inheritance falls back to the conservative default — "
                "define it, or allow[] with why the default is correct",
            )
        elif has_dependence and not has_structure:
            yield self.finding(
                ctx,
                node,
                f"Fact subclass {node.name} defines _action_dependence() but "
                "not _structure(); its cache entries stay identity-keyed "
                "while claiming a sharing property — define _structure(), "
                "or allow[] with why identity keying is intended",
            )


# ---------------------------------------------------------------------------
# RP003
# ---------------------------------------------------------------------------


@register
class ImmutableMutation(Rule):
    """Attribute assignment on interned/immutable objects after construction.

    Engine indices and intern tables are "never invalidated"
    (``docs/engine.md``): that is sound only while ``Node``/``Config``/
    ``GlobalState``/``Fact`` instances stay frozen after ``__init__``.
    A post-construction assignment silently stales every cache keyed on
    the object.  Declared memo slots (cached hashes, cached structural
    keys) are the sanctioned exception; construction-phase mutation of
    freshly copied private trees gets an inline allow.
    """

    id = "RP003"
    title = "mutation of interned/immutable object outside construction"
    interests = (ast.ClassDef, ast.Assign, ast.AugAssign, ast.Call)

    def _is_immutable_class(self, name: str, ctx: FileContext) -> bool:
        return name in ctx.config.immutable_classes or ctx.model.is_fact_subclass(
            name
        )

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        if isinstance(node, ast.ClassDef):
            yield from self._check_class(node, ctx)
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            yield from self._check_assign(node, ctx)
        elif isinstance(node, ast.Call):
            yield from self._check_setattr(node, ctx)

    # -- self.x = ... inside methods of immutable classes --------------

    def _check_class(self, node: ast.ClassDef, ctx: FileContext) -> Iterator[Finding]:
        if not self._is_immutable_class(node.name, ctx):
            return
        for item in node.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name in _CTOR_METHODS:
                continue
            for sub in ast.walk(item):
                if isinstance(sub, (ast.Assign, ast.AugAssign)):
                    for target in self._targets(sub):
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                            and target.attr not in ctx.config.memo_slots
                        ):
                            yield self.finding(
                                ctx,
                                sub,
                                f"{node.name}.{item.name} assigns "
                                f"self.{target.attr} outside __init__/"
                                "__post_init__ on an interned/immutable "
                                "class; memo caches keyed on the instance "
                                "go silently stale",
                            )

    @staticmethod
    def _targets(node) -> Sequence[ast.AST]:
        return node.targets if isinstance(node, ast.Assign) else [node.target]

    # -- <expr>.via_action = ... anywhere -------------------------------

    def _check_assign(self, node, ctx: FileContext) -> Iterator[Finding]:
        if _in_constructor(ctx, node):
            return
        for target in self._targets(node):
            if (
                isinstance(target, ast.Attribute)
                and target.attr in ctx.config.immutable_attrs
            ):
                # self.x inside immutable-class methods is reported by
                # _check_class with the class context; everything else
                # (node.via_action = ..., state.env = ...) lands here.
                if (
                    isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                yield self.finding(
                    ctx,
                    node,
                    f"assignment to .{target.attr} mutates an interned/"
                    "immutable tree object after construction; build a new "
                    "node or record an overlay instead (docs/transforms.md)",
                )

    # -- object.__setattr__ escapes -------------------------------------

    def _check_setattr(self, node: ast.Call, ctx: FileContext) -> Iterator[Finding]:
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr == "__setattr__"
            and isinstance(func.value, ast.Name)
            and func.value.id == "object"
        ):
            return
        if _in_constructor(ctx, node):
            return
        enclosing = ctx.enclosing_function(node)
        if enclosing is not None and enclosing.name in ("__setstate__", "__getstate__"):
            return
        if len(node.args) >= 2 and isinstance(node.args[1], ast.Constant):
            attr = node.args[1].value
            if isinstance(attr, str) and attr in ctx.config.memo_slots:
                return
            label = f"object.__setattr__(..., {attr!r}, ...)"
        else:
            label = "object.__setattr__ with a dynamic attribute"
        yield self.finding(
            ctx,
            node,
            f"{label} outside construction bypasses immutability on a "
            "frozen instance; only declared memo slots "
            f"({', '.join(ctx.config.memo_slots)}) may backfill",
        )


# ---------------------------------------------------------------------------
# RP004
# ---------------------------------------------------------------------------


@register
class EngineCacheDiscipline(Rule):
    """Engine fact-cache writes must stay structurally keyed and recorded.

    Every fact-keyed memo cache of ``SystemIndex`` keys on
    ``Fact.structural_key()`` (via ``_fact_key``/``_cache_key``), and
    the *inheritable* caches additionally record ``_action_free`` at
    every write — that record is exactly what a derived index copies
    (``docs/transforms.md``).  A write that skips either step poisons
    structural sharing or derived-system inheritance without failing a
    single direct test.  The check is function-scoped: a function that
    writes such a cache must derive a key (or receive pre-keyed entries
    through a parameter) and, for inheritable caches, must call the
    recorder.
    """

    id = "RP004"
    title = "engine fact-cache write without key/action-free discipline"
    interests = (ast.FunctionDef, ast.AsyncFunctionDef)

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.matches(ctx.config.engine_modules)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return
        config = ctx.config
        inheritable = set(config.inheritable_fact_caches)
        fact_keyed = inheritable | set(config.fact_keyed_caches)

        params = {arg.arg for arg in node.args.args}
        params |= {arg.arg for arg in node.args.kwonlyargs}
        params |= {arg.arg for arg in node.args.posonlyargs}

        aliases: Set[str] = set()  # locals holding a fact-cache mapping
        keying_called = False
        recorder_called = False
        param_derived: Set[str] = set(params)
        writes: List[Tuple[ast.Assign, str, bool]] = []

        def cache_reference(expr: ast.AST) -> Optional[Tuple[str, bool]]:
            """(cache name, inheritable?) when expr denotes a fact cache."""
            for sub in ast.walk(expr):
                if isinstance(sub, ast.Attribute):
                    if sub.attr in fact_keyed:
                        return sub.attr, sub.attr in inheritable
                    if sub.attr in config.cache_accessors:
                        return sub.attr, True
            return None

        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                name = _call_name(sub)
                if name in config.key_derivers:
                    keying_called = True
                if name in config.action_free_recorders:
                    recorder_called = True
            elif isinstance(sub, ast.For):
                # Loop targets fed from a parameter carry pre-keyed
                # entries (the caller derived the keys).
                if _names_in(sub.iter) & param_derived:
                    param_derived |= _names_in(sub.target)
            elif isinstance(sub, ast.Assign):
                targets = sub.targets
                if (
                    len(targets) == 1
                    and isinstance(targets[0], ast.Name)
                    and cache_reference(sub.value) is not None
                ):
                    aliases.add(targets[0].id)
                for target in targets:
                    if isinstance(target, ast.Subscript):
                        container = target.value
                        ref = cache_reference(container)
                        if ref is None and (
                            isinstance(container, ast.Name)
                            and container.id in aliases
                        ):
                            ref = (container.id, True)
                        if ref is not None:
                            writes.append((sub, ref[0], ref[1]))

        for write, cache_name, is_inheritable in writes:
            target = write.targets[0]
            key_expr = target.slice if isinstance(target, ast.Subscript) else target
            key_names = _names_in(key_expr)
            if not keying_called and not (key_names and key_names <= param_derived):
                yield self.finding(
                    ctx,
                    write,
                    f"write to fact-keyed cache {cache_name} without a "
                    "structural key: derive the key via _fact_key()/"
                    "_cache_key()/structural_key() (or receive pre-keyed "
                    "entries through a parameter)",
                )
            if is_inheritable and not recorder_called:
                yield self.finding(
                    ctx,
                    write,
                    f"write to inheritable fact cache {cache_name} without "
                    "recording _action_free (_note_action_free); derived "
                    "indices inherit exactly the recorded entries "
                    "(docs/transforms.md)",
                )


# ---------------------------------------------------------------------------
# RP005
# ---------------------------------------------------------------------------


@register
class NondeterminismSource(Rule):
    """Nondeterminism in compiler/engine paths.

    Compiled trees pin their uid sequences, leaf orders, and cache keys
    across processes (``docs/compiler.md`` determinism tests).  Sorting
    by ``id()``, iterating a set into ordered output, or drawing from
    the process-global unseeded RNG makes those artifacts
    allocation-/hash-seed-dependent — bugs that only reproduce on some
    runs.
    """

    id = "RP005"
    title = "nondeterminism source in deterministic compiler/engine path"
    interests = (ast.Call, ast.For, ast.Attribute)

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.matches(ctx.config.deterministic_modules)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        if isinstance(node, ast.Call):
            yield from self._check_call(node, ctx)
        elif isinstance(node, ast.For):
            if isinstance(node.iter, ast.Set) or (
                isinstance(node.iter, ast.Call)
                and isinstance(node.iter.func, ast.Name)
                and node.iter.func.id in ("set", "frozenset")
            ):
                yield self.finding(
                    ctx,
                    node,
                    "iterating a set in a deterministic path: iteration "
                    "order is hash-dependent; sort it (or iterate a list/"
                    "dict, which preserve insertion order)",
                )
        elif isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "random":
                yield self.finding(
                    ctx,
                    node,
                    f"random.{node.attr} uses the process-global unseeded "
                    "RNG in a deterministic path; take an explicit seeded "
                    "random.Random parameter instead",
                )

    def _check_call(self, node: ast.Call, ctx: FileContext) -> Iterator[Finding]:
        name = _call_name(node)
        if name in ("sorted", "sort"):
            for keyword in node.keywords:
                if keyword.arg != "key":
                    continue
                value = keyword.value
                uses_id = (isinstance(value, ast.Name) and value.id == "id") or any(
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Name)
                    and sub.func.id == "id"
                    for sub in ast.walk(value)
                )
                if uses_id:
                    yield self.finding(
                        ctx,
                        node,
                        "sort keyed on id() orders by allocation address — "
                        "nondeterministic across processes; key on a stable "
                        "attribute (uid, depth, name) instead",
                    )
        elif name == "Random" and not node.args and not node.keywords:
            yield self.finding(
                ctx,
                node,
                "Random() without a seed in a deterministic path; pass an "
                "explicit seed (or accept a seeded Random parameter)",
            )


# ---------------------------------------------------------------------------
# RP006
# ---------------------------------------------------------------------------


@register
class BareAssert(Rule):
    """Bare ``assert`` statements in library code.

    Asserts vanish under ``python -O``, so a precondition they guard
    becomes silently unchecked in optimized deployments — and their
    failure raises a bare ``AssertionError`` no caller can usefully
    catch.  User-facing preconditions belong in typed exceptions from
    ``repro.core.errors`` naming the offending object; genuinely
    internal invariants (unreachable via the public API) keep the
    assert with an inline allow stating why.
    """

    id = "RP006"
    title = "bare assert in library code"
    interests = (ast.Assert,)

    def applies_to(self, ctx: FileContext) -> bool:
        # Benchmarks/examples use asserts as their enforcement gates;
        # the rule is about the importable library tree.
        return not ctx.advisory

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        yield self.finding(
            ctx,
            node,
            "bare assert vanishes under python -O; raise a typed error "
            "from repro.core.errors naming the offending object, or "
            "allow[] with why this is an internal invariant",
        )


# ---------------------------------------------------------------------------
# RP007
# ---------------------------------------------------------------------------


@register
class NumericKnobDropped(Rule):
    """``numeric=``-accepting functions must thread the knob to callees.

    The two-tier kernel's contract (``docs/numerics.md``) is that one
    ``numeric="auto"`` knob flips a whole computation onto the float
    fast path; a consumer that accepts the knob but calls a
    numeric-aware callee without forwarding it silently pins that
    subtree to exact mode (a performance bug) — or, worse, mixes modes
    across a comparison.  Calls inside a branch whose condition tests
    ``numeric`` are exempt: the author demonstrably dispatched on the
    mode, so pinning the callee is the point of the branch.  Other
    intentional drops (mode-independent verdicts, guard overrides) say
    so with an inline allow.
    """

    id = "RP007"
    title = "numeric= knob accepted but not threaded to callee"
    interests = (ast.FunctionDef, ast.AsyncFunctionDef)

    @staticmethod
    def _mode_decided(call: ast.Call, scope: ast.AST, ctx: FileContext) -> bool:
        """True when the call sits under an if/ternary that tests numeric."""
        current: Optional[ast.AST] = call
        while current is not None and current is not scope:
            current = ctx.parent(current)
            if isinstance(current, (ast.If, ast.IfExp)):
                if "numeric" in _names_in(current.test):
                    return True
        return False

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return
        arg_names = {arg.arg for arg in node.args.args}
        arg_names |= {arg.arg for arg in node.args.kwonlyargs}
        arg_names |= {arg.arg for arg in node.args.posonlyargs}
        if "numeric" not in arg_names:
            return
        # Nested functions with their own numeric parameter are visited
        # separately; skip their bodies here so calls are not charged to
        # the wrong scope.
        nested_with_numeric = [
            sub
            for sub in ast.walk(node)
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef))
            and sub is not node
            and any(
                arg.arg == "numeric"
                for arg in (
                    *sub.args.args,
                    *sub.args.kwonlyargs,
                    *sub.args.posonlyargs,
                )
            )
        ]
        skip: Set[int] = set()
        for nested in nested_with_numeric:
            for sub in ast.walk(nested):
                skip.add(id(sub))
        for sub in ast.walk(node):
            if id(sub) in skip or not isinstance(sub, ast.Call):
                continue
            callee = _call_name(sub)
            if callee is None:
                continue
            # Self-recursion is checked like any other call: a recursive
            # step that drops the knob pins the rest of the computation.
            if self._mode_decided(sub, node, ctx):
                continue
            if ctx.model.numeric_threaded(sub, callee) is False:
                yield self.finding(
                    ctx,
                    sub,
                    f"call to numeric-aware {callee}() drops the numeric= "
                    "knob accepted by "
                    f"{node.name}(); forward numeric=numeric, or allow[] "
                    "with why this callee is intentionally mode-pinned",
                )


# ---------------------------------------------------------------------------
# RP008
# ---------------------------------------------------------------------------

# Function names that mark a shard-combine implementation: the folds
# whose iteration order the bit-identity guarantee depends on.
_COMBINE_MARKERS = ("combine", "merge", "absorb", "fold", "gather")


@register
class ShardCombineOrder(Rule):
    """Shard-combine folds must iterate partial results in fixed order.

    The sharded executor's bit-identity guarantee (``docs/sharding.md``)
    rests on folding per-shard partial results in ascending shard
    order: disjoint masks and integer totals are order-insensitive,
    but float error envelopes, first-error short-circuits, and
    ``NumericStats`` absorption are not.  A combine/merge/absorb
    implementation that iterates a set (hash order) or sorts by
    ``id()`` (allocation address) produces answers that differ across
    processes, hash seeds, and reruns — exactly the class of bug the
    differential harness exists to catch.
    """

    id = "RP008"
    title = "shard-combine fold iterates in nondeterministic order"
    interests = (ast.For, ast.Call, ast.comprehension)

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.matches(ctx.config.shard_modules)

    @staticmethod
    def _combine_scope(node: ast.AST, ctx: FileContext) -> Optional[str]:
        """Name of an enclosing combine-marked function, if any.

        Helpers nested inside a combine function still shape its fold
        order, so every enclosing function is checked, not just the
        nearest one.
        """
        current: Optional[ast.AST] = node
        while current is not None:
            current = ctx.parent(current)
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                name = current.name.lower()
                if any(marker in name for marker in _COMBINE_MARKERS):
                    return current.name
        return None

    @staticmethod
    def _unordered_iterable(expr: ast.AST) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Name)
            and expr.func.id in ("set", "frozenset")
        )

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        if isinstance(node, ast.For):
            scope = self._combine_scope(node, ctx)
            if scope is not None and self._unordered_iterable(node.iter):
                yield self.finding(
                    ctx,
                    node,
                    f"{scope}() folds shard results by iterating a set: "
                    "hash order varies across processes and seeds, "
                    "breaking bit-identical combination; fold shards in "
                    "ascending shard-index order (list/tuple)",
                )
        elif isinstance(node, ast.comprehension):
            # ``ast.comprehension`` carries no position; anchor the
            # finding on its iterable expression instead.
            scope = self._combine_scope(node.iter, ctx)
            if scope is not None and self._unordered_iterable(node.iter):
                yield self.finding(
                    ctx,
                    node.iter,
                    f"{scope}() folds shard results by iterating a set: "
                    "hash order varies across processes and seeds, "
                    "breaking bit-identical combination; fold shards in "
                    "ascending shard-index order (list/tuple)",
                )
        elif isinstance(node, ast.Call):
            if _call_name(node) not in ("sorted", "sort"):
                return
            scope = self._combine_scope(node, ctx)
            if scope is None:
                return
            for keyword in node.keywords:
                if keyword.arg != "key":
                    continue
                value = keyword.value
                uses_id = (
                    isinstance(value, ast.Name) and value.id == "id"
                ) or any(
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Name)
                    and sub.func.id == "id"
                    for sub in ast.walk(value)
                )
                if uses_id:
                    yield self.finding(
                        ctx,
                        node,
                        f"{scope}() orders shard results by id() — "
                        "allocation addresses differ across processes, "
                        "so the fold order is nondeterministic; key on "
                        "the shard index instead",
                    )


# ---------------------------------------------------------------------------
# RP009
# ---------------------------------------------------------------------------


@register
class WeightSplitDiscipline(Rule):
    """Engine state must carry a dependency class; reweight paths fold fixed.

    The weight-split layer (``docs/transforms.md``) derives a
    reweighted index by consulting ``DEPENDENCY_CLASS``: every
    shape-dependent structure is inherited by reference, every
    weight-dependent one rebuilt or dropped.  That is sound only while
    the classification is *exhaustive* — an instance attribute the
    table does not mention is invisible to ``derived()`` and silently
    inherited with stale weights.  So (a) every attribute assigned on
    the index inside the class that declares the tables must appear in
    a dependency table or the bookkeeping set, and (b) the
    derived-inheritance / reweight-invalidation functions (matched by
    name marker) must never iterate a set or sort by ``id()`` — which
    caches are dropped, and in what order entries are copied, must not
    depend on hash seeds or allocation addresses.
    """

    id = "RP009"
    title = "engine state without dependency class / unordered reweight path"
    interests = (ast.Assign, ast.AnnAssign, ast.For, ast.comprehension, ast.Call)

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.matches(ctx.config.weight_split_modules)

    # -- table discovery (per file) -------------------------------------

    def begin_file(self, ctx: FileContext) -> None:
        table_names = set(ctx.config.dependency_tables) | set(
            ctx.config.bookkeeping_tables
        )
        self._classified: Set[str] = set()
        self._table_classes: Set[int] = set()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id in table_names:
                    self._classified |= self._declared_attrs(node.value)
                    owner = self._enclosing_class(node, ctx)
                    if owner is not None:
                        self._table_classes.add(id(owner))

    @staticmethod
    def _declared_attrs(expr: ast.AST) -> Set[str]:
        """The attribute names a table literal classifies.

        Dict tables classify their *keys* (values are the class
        labels); set/frozenset/tuple tables classify every string
        element.
        """
        if isinstance(expr, ast.Dict):
            return {
                key.value
                for key in expr.keys
                if isinstance(key, ast.Constant) and isinstance(key.value, str)
            }
        return {
            sub.value
            for sub in ast.walk(expr)
            if isinstance(sub, ast.Constant) and isinstance(sub.value, str)
        }

    @staticmethod
    def _enclosing_class(node: ast.AST, ctx: FileContext) -> Optional[ast.ClassDef]:
        current: Optional[ast.AST] = node
        while current is not None:
            current = ctx.parent(current)
            if isinstance(current, ast.ClassDef):
                return current
        return None

    # -- half (b): fixed-order inheritance/invalidation folds -----------

    @staticmethod
    def _invalidation_scope(node: ast.AST, ctx: FileContext) -> Optional[str]:
        """Name of an enclosing invalidation-marked function, if any."""
        markers = ctx.config.invalidation_markers
        current: Optional[ast.AST] = node
        while current is not None:
            current = ctx.parent(current)
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                name = current.name.lower()
                if any(marker in name for marker in markers):
                    return current.name
        return None

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            yield from self._check_attr_assign(node, ctx)
        if isinstance(node, ast.For):
            scope = self._invalidation_scope(node, ctx)
            if scope is not None and ShardCombineOrder._unordered_iterable(
                node.iter
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"{scope}() iterates a set on a derived-inheritance/"
                    "reweight-invalidation path: which caches are touched, "
                    "and in what order, becomes hash-seed dependent; "
                    "iterate the dependency table or a dict/list instead",
                )
        elif isinstance(node, ast.comprehension):
            scope = self._invalidation_scope(node.iter, ctx)
            if scope is not None and ShardCombineOrder._unordered_iterable(
                node.iter
            ):
                yield self.finding(
                    ctx,
                    node.iter,
                    f"{scope}() iterates a set on a derived-inheritance/"
                    "reweight-invalidation path: which caches are touched, "
                    "and in what order, becomes hash-seed dependent; "
                    "iterate the dependency table or a dict/list instead",
                )
        elif isinstance(node, ast.Call):
            if _call_name(node) not in ("sorted", "sort"):
                return
            scope = self._invalidation_scope(node, ctx)
            if scope is None:
                return
            for keyword in node.keywords:
                if keyword.arg != "key":
                    continue
                value = keyword.value
                uses_id = (
                    isinstance(value, ast.Name) and value.id == "id"
                ) or any(
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Name)
                    and sub.func.id == "id"
                    for sub in ast.walk(value)
                )
                if uses_id:
                    yield self.finding(
                        ctx,
                        node,
                        f"{scope}() orders cache entries by id() on a "
                        "derived-inheritance/reweight-invalidation path — "
                        "allocation addresses differ across processes; key "
                        "on the attribute name or a stable uid instead",
                    )

    def _check_attr_assign(self, node, ctx: FileContext) -> Iterator[Finding]:
        owner = self._enclosing_class(node, ctx)
        if owner is None or id(owner) not in self._table_classes:
            return
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for target in targets:
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
            ):
                continue
            receiver = target.value.id
            if receiver not in ("self", "index"):
                continue
            if target.attr not in self._classified:
                yield self.finding(
                    ctx,
                    node,
                    f"attribute {receiver}.{target.attr} assigned in "
                    f"{owner.name} without a dependency class: add it to "
                    "DEPENDENCY_CLASS (shape/weight) or BOOKKEEPING_ATTRS "
                    "so derived()/reweight invalidation can see it "
                    "(docs/transforms.md)",
                )


# ---------------------------------------------------------------------------
# RP010
# ---------------------------------------------------------------------------


@register
class SilentDegradation(Rule):
    """A broad ``except`` on the execution stack that degrades silently.

    The robustness contract (``docs/robustness.md``) is that every
    fallback along the degradation ladder — parallel→serial, shm→pickle,
    numpy→python — is *recorded* on the resilience report, never
    swallowed.  A handler in an execution module that catches
    ``Exception``/``BaseException`` (or is bare) and neither calls a
    degradation recorder (``record_degradation``/``record_retry``/
    ``absorb_events``) nor re-raises is exactly the silent-fallback
    shape PR 10 removed; new ones need an ``allow[RP010]`` justification
    explaining why nothing observable changed.
    """

    id = "RP010"
    title = "broad except without a recorded degradation"
    interests = (ast.Try,)

    _BROAD = ("Exception", "BaseException")

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.matches(ctx.config.execution_modules)

    def visit(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        if not isinstance(node, ast.Try):
            return
        for handler in node.handlers:
            if not self._is_broad(handler.type):
                continue
            if self._records_or_raises(handler, ctx):
                continue
            caught = (
                "bare except"
                if handler.type is None
                else f"except {ast.unparse(handler.type)}"
            )
            yield self.finding(
                ctx,
                handler,
                f"{caught} on the execution stack neither records a "
                "degradation event nor re-raises — fallbacks must be "
                "observable (docs/robustness.md): call "
                f"{'/'.join(ctx.config.degradation_recorders)} or "
                "annotate why nothing degrades",
            )

    def _is_broad(self, expr: Optional[ast.expr]) -> bool:
        if expr is None:
            return True  # bare except
        names = []
        if isinstance(expr, ast.Tuple):
            names = list(expr.elts)
        else:
            names = [expr]
        for name in names:
            if isinstance(name, ast.Name) and name.id in self._BROAD:
                return True
            if isinstance(name, ast.Attribute) and name.attr in self._BROAD:
                return True
        return False

    def _records_or_raises(
        self, handler: ast.ExceptHandler, ctx: FileContext
    ) -> bool:
        recorders = set(ctx.config.degradation_recorders)
        for sub in ast.walk(handler):
            if isinstance(sub, ast.Raise):
                return True
            if isinstance(sub, ast.Call) and _call_name(sub) in recorders:
                return True
        return False
