"""Shared fixtures: the paper's systems, built once per session."""

from __future__ import annotations

import pytest

from repro import PPSBuilder
from repro.apps.figure1 import build_figure1
from repro.apps.firing_squad import build_firing_squad
from repro.apps.theorem52 import build_theorem52


@pytest.fixture(scope="session")
def figure1():
    """The paper's Figure 1 mixed-action counterexample."""
    return build_figure1()


@pytest.fixture(scope="session")
def firing_squad():
    """The Example 1 FS system (loss 0.1, go probability 0.5)."""
    return build_firing_squad()


@pytest.fixture(scope="session")
def firing_squad_improved():
    """The Section 8 FS' system (Alice refrains on 'No')."""
    return build_firing_squad(improved=True)


@pytest.fixture(scope="session")
def theorem52():
    """The Theorem 5.2 construction with p = 0.9, epsilon = 0.1."""
    return build_theorem52("0.9", "0.1")


@pytest.fixture()
def two_coin_tree():
    """A small hand-built tree: coin at time 0, coin at time 1.

    Agent "obs" sees the first coin but not the second; agent "blind"
    sees neither.  Useful for belief arithmetic with known answers.
    """
    builder = PPSBuilder(["obs", "blind"], name="two-coin")
    heads = builder.initial("1/2", {"obs": (0, "H"), "blind": (0, "-")})
    tails = builder.initial("1/2", {"obs": (0, "T"), "blind": (0, "-")})
    for start, label in ((heads, "H"), (tails, "T")):
        start.child(
            "1/3",
            {"obs": (1, label), "blind": (1, "-")},
            env=("second", "h"),
            actions={"obs": "observe", "blind": "wait"},
        )
        start.child(
            "2/3",
            {"obs": (1, label), "blind": (1, "-")},
            env=("second", "t"),
            actions={"obs": "observe", "blind": "wait"},
        )
    return builder.build()
