"""Reusable differential harness: one query, a grid of configurations.

The engine has accumulated several "must never change the answer"
axes: shard scheduling (``REPRO_SHARDS`` / ``core.shard``), the
numeric tier (``exact``/``auto``/``float``), the array backend
(NumPy vs pure Python), and injected faults (``core.faults`` — any
non-exhausting fault combination must degrade, never drift).
:func:`assert_fraction_parity` runs an
arbitrary query under a grid of those configurations and asserts
Fraction-exact equality of everything the query returns — events,
measures, verdicts, whole sweep tables — against a single reference,
so every new parity test is one query function instead of a hand-rolled
loop per axis.

Conventions:

* *systems* are zero-argument factories: every configuration gets a
  freshly built system, so memo caches and backend choices of one
  configuration can never leak into another's run.
* the query returns any nesting of dicts/lists/tuples/sets over
  measure values; :func:`canonical` collapses it to a comparable form
  with every ``LazyProb`` materialized via ``exact()``.
* ``float``-mode results are compared bitwise *among the float
  configurations only* (floats are reproducible, not exact); all other
  modes must equal the exact reference.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, NamedTuple, Optional, Sequence

from repro.core import arraykernel
from repro.core.arraykernel import HAVE_NUMPY, set_backend
from repro.core.faults import FaultPlan, set_fault_plan
from repro.core.lazyprob import LazyProb
from repro.core.shard import set_default_shards

__all__ = [
    "ParityConfig",
    "DEFAULT_CONFIGS",
    "FAULT_CONFIGS",
    "QUICK_CONFIGS",
    "assert_fraction_parity",
    "canonical",
    "parity_config",
]


class ParityConfig(NamedTuple):
    """One point of the configuration grid."""

    shards: int = 0
    numeric: str = "exact"
    backend: Optional[str] = None  # None = leave the active backend
    faults: Optional[str] = None  # REPRO_FAULTS spec; None = no injection

    @property
    def label(self) -> str:
        backend = self.backend or "default"
        label = f"shards={self.shards}/numeric={self.numeric}/backend={backend}"
        if self.faults is not None:
            label += f"/faults={self.faults}"
        return label


def _grid() -> Sequence[ParityConfig]:
    backends: Sequence[Optional[str]] = ("python", "numpy") if HAVE_NUMPY else (
        "python",
    )
    configs = []
    for backend in backends:
        for numeric in ("exact", "auto", "float"):
            for shards in (0, 2, 3, 8):
                configs.append(ParityConfig(shards, numeric, backend))
    return tuple(configs) + FAULT_CONFIGS


# Non-exhausting fault legs of the robustness invariant (ISSUE 10):
# every downgrade these force — shm→pickle transport, numpy→python
# backend, supervised worker-crash recovery — must leave each answer
# Fraction-bit-identical to the clean legs above.  The sharded-executor
# sites (worker-crash/shm-*) only fire for queries that actually route
# through ShardedExecutor; backend-import fires anywhere a vectorized
# kernel is built.  Float mode stays out: its comparisons are bitwise
# among float legs, and a degraded backend is allowed to change float
# *timing*, never exact values.
FAULT_CONFIGS: Sequence[ParityConfig] = (
    ParityConfig(3, "exact", None, "shm-alloc:*;worker-crash@0"),
    ParityConfig(2, "auto", None, "shm-corrupt@0;task-submit:1"),
    ParityConfig(3, "auto", None, "backend-import:1;seed=7"),
)

# The full grid of the ISSUE's differential matrix: serial vs K∈{2,3,8}
# shards × exact/auto/float × both backends (NumPy legs only where
# installed), plus the injected-fault legs.  Heavy — use on sampled
# seeds.
DEFAULT_CONFIGS: Sequence[ParityConfig] = _grid()

# The cheap sub-grid for wide seed sweeps: the shard axis under exact
# arithmetic plus one non-serial auto leg.
QUICK_CONFIGS: Sequence[ParityConfig] = (
    ParityConfig(0, "exact"),
    ParityConfig(3, "exact"),
    ParityConfig(3, "auto"),
)


@contextmanager
def parity_config(config: ParityConfig):
    """Apply one grid point's knobs, restoring them afterwards.

    The backend is snapshot unconditionally: an injected
    ``backend-import`` fault degrades the process-wide backend to
    ``"python"`` mid-configuration, and that must not leak into the
    next grid point.  Likewise the fault plan (including one loaded
    from ``REPRO_FAULTS``) is saved and restored around every point.
    """
    previous_shards = set_default_shards(config.shards)
    previous_backend = arraykernel.backend()
    if config.backend is not None:
        set_backend(config.backend)
    previous_plan = set_fault_plan(
        FaultPlan.parse(config.faults) if config.faults is not None else None
    )
    try:
        yield
    finally:
        set_fault_plan(previous_plan)
        set_backend(previous_backend)
        set_default_shards(previous_shards)


def canonical(value: object) -> object:
    """Collapse a query result to a configuration-independent form.

    ``LazyProb`` values are materialized through ``exact()`` (the
    harness compares what they *are*, not how tight their float
    envelope happened to be under this schedule); containers recurse,
    with sets ordered deterministically.  Floats pass through
    unchanged — float-mode comparisons are bitwise by design.
    """
    if isinstance(value, LazyProb):
        return value.exact()
    if isinstance(value, dict):
        return tuple(
            (canonical(k), canonical(v)) for k, v in sorted(
                value.items(), key=lambda item: repr(item[0])
            )
        )
    if isinstance(value, (list, tuple)):
        return tuple(canonical(item) for item in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted((canonical(item) for item in value), key=repr))
    return value


def assert_fraction_parity(
    query_fn: Callable[..., object],
    systems: Sequence[Callable[[], object]],
    configs: Optional[Sequence[ParityConfig]] = None,
    *,
    reference_fn: Optional[Callable[[object], object]] = None,
) -> None:
    """Assert one query answers identically across the whole grid.

    Args:
        query_fn: called as ``query_fn(system, numeric=mode)`` under
            each configuration; may return any nesting of containers
            over measures/verdicts (queries that ignore ``numeric``
            simply accept and drop the keyword).
        systems: zero-argument system factories — a *fresh* system per
            configuration, so no caches cross configurations.
        configs: grid points to run; default :data:`DEFAULT_CONFIGS`.
        reference_fn: optional independent oracle, called once per
            system as ``reference_fn(system)``; when given, every
            non-float configuration must match *it* (e.g. the naive
            engine), otherwise they must match the first non-float
            configuration's result.
    """
    configs = list(DEFAULT_CONFIGS if configs is None else configs)
    if not configs:
        raise ValueError("assert_fraction_parity needs at least one config")
    for pos, factory in enumerate(systems):
        exact_reference = None
        float_reference = None
        if reference_fn is not None:
            exact_reference = ("oracle", canonical(reference_fn(factory())))
        for config in configs:
            system = factory()
            with parity_config(config):
                result = canonical(query_fn(system, numeric=config.numeric))
            if config.numeric == "float":
                if float_reference is None:
                    float_reference = (config.label, result)
                elif result != float_reference[1]:
                    raise AssertionError(
                        f"float parity broken on system #{pos}: "
                        f"{config.label} != {float_reference[0]}\n"
                        f"  got:      {result!r}\n"
                        f"  expected: {float_reference[1]!r}"
                    )
            elif exact_reference is None:
                exact_reference = (config.label, result)
            elif result != exact_reference[1]:
                raise AssertionError(
                    f"Fraction parity broken on system #{pos}: "
                    f"{config.label} != {exact_reference[0]}\n"
                    f"  got:      {result!r}\n"
                    f"  expected: {exact_reference[1]!r}"
                )
