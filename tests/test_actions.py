"""Unit tests for proper actions and their partitions."""

import pytest

from repro import (
    ImproperActionError,
    PPSBuilder,
    action_state_partition,
    action_states,
    ensure_proper,
    is_deterministic_action,
    is_proper,
    performance_state,
    performance_time,
    performance_times,
    performing_runs,
    runs_performing_at_state,
)
from repro.core.measure import all_runs, is_partition


def repeated_action_system():
    """An agent performing "tick" twice in its only run (improper)."""
    builder = PPSBuilder(["a"], name="repeater")
    s0 = builder.initial(1, {"a": (0, "x")})
    s1 = s0.chain({"a": (1, "y")}, actions={"a": "tick"})
    s1.chain({"a": (2, "z")}, actions={"a": "tick"})
    return builder.build()


def mixed_action_system():
    """Action "go" performed from two different local states."""
    builder = PPSBuilder(["a"], name="mixed-states")
    left = builder.initial("1/2", {"a": (0, "L")})
    right = builder.initial("1/2", {"a": (0, "R")})
    left.chain({"a": (1, "end-l")}, actions={"a": "go"})
    right.chain({"a": (1, "end-r")}, actions={"a": "go"})
    return builder.build()


class TestProperness:
    def test_proper_in_two_coin(self, two_coin_tree):
        assert is_proper(two_coin_tree, "obs", "observe")

    def test_never_performed_is_improper(self, two_coin_tree):
        assert not is_proper(two_coin_tree, "obs", "phantom")

    def test_repeated_is_improper(self):
        assert not is_proper(repeated_action_system(), "a", "tick")

    def test_ensure_proper_passes(self, two_coin_tree):
        ensure_proper(two_coin_tree, "obs", "observe")

    def test_ensure_proper_never_performed(self, two_coin_tree):
        with pytest.raises(ImproperActionError):
            ensure_proper(two_coin_tree, "obs", "phantom")

    def test_ensure_proper_repeated(self):
        with pytest.raises(ImproperActionError):
            ensure_proper(repeated_action_system(), "a", "tick")


class TestPerformanceQueries:
    def test_performance_times_table(self, two_coin_tree):
        table = performance_times(two_coin_tree, "obs", "observe")
        assert set(table) == {r.index for r in two_coin_tree.runs}
        assert all(times == (0,) for times in table.values())

    def test_performance_time_in_run(self, two_coin_tree):
        run = two_coin_tree.runs[0]
        assert performance_time(two_coin_tree, "obs", "observe", run) == 0

    def test_performance_time_absent(self, two_coin_tree):
        run = two_coin_tree.runs[0]
        assert performance_time(two_coin_tree, "obs", "phantom", run) is None

    def test_performance_time_improper_raises(self):
        system = repeated_action_system()
        with pytest.raises(ImproperActionError):
            performance_time(system, "a", "tick", system.runs[0])

    def test_performance_state(self, two_coin_tree):
        run = two_coin_tree.runs[0]
        assert performance_state(two_coin_tree, "obs", "observe", run) in {
            (0, "H"),
            (0, "T"),
        }

    def test_performing_runs(self, two_coin_tree):
        assert performing_runs(two_coin_tree, "obs", "observe") == all_runs(
            two_coin_tree
        )


class TestActionStates:
    def test_action_states_two_coin(self, two_coin_tree):
        assert action_states(two_coin_tree, "obs", "observe") == {
            (0, "H"),
            (0, "T"),
        }

    def test_runs_performing_at_state(self, two_coin_tree):
        cell = runs_performing_at_state(two_coin_tree, "obs", "observe", (0, "H"))
        assert len(cell) == 2

    def test_partition_covers_performing_runs(self, two_coin_tree):
        cells = action_state_partition(two_coin_tree, "obs", "observe")
        assert is_partition(
            two_coin_tree,
            list(cells.values()),
            performing_runs(two_coin_tree, "obs", "observe"),
        )

    def test_partition_of_mixed_state_action(self):
        system = mixed_action_system()
        cells = action_state_partition(system, "a", "go")
        assert set(cells) == {(0, "L"), (0, "R")}
        assert all(len(cell) == 1 for cell in cells.values())

    def test_partition_rejects_improper(self):
        with pytest.raises(ImproperActionError):
            action_state_partition(repeated_action_system(), "a", "tick")


class TestDeterminism:
    def test_unconditional_action_is_deterministic(self, two_coin_tree):
        assert is_deterministic_action(two_coin_tree, "obs", "observe")

    def test_mixed_action_is_not_deterministic(self, figure1):
        assert not is_deterministic_action(figure1, "i", "alpha")

    def test_action_from_distinct_states_still_deterministic(self):
        # "go" is performed at both L and R — a function of the state.
        assert is_deterministic_action(mixed_action_system(), "a", "go")
