"""The paper's Section 2 discussion: nondeterministic ``go``.

"If the value of go were set nondeterministically, then the initial
global state with go = 0 would define a pps, and the one with go = 1
would define another, separate, pps."  We realize this with the
adversary machinery: one firing-squad system per adversary choice, and
probabilistic analysis per-adversary only.
"""

from fractions import Fraction

import pytest

from repro import ImproperActionError, achieved_probability
from repro.apps.firing_squad import ALICE, FIRE, both_fire, build_firing_squad
from repro.protocols import Adversary, enumerate_adversaries


def system_for(adversary: Adversary):
    return build_firing_squad(go_probability=adversary.get("go"))


class TestNondeterministicGo:
    def test_two_adversaries_two_systems(self):
        adversaries = enumerate_adversaries({"go": [0, 1]})
        systems = {adv: system_for(adv) for adv in adversaries}
        assert len(systems) == 2

    def test_go_one_adversary_behaves_like_conditional_fs(self):
        system = system_for(Adversary.of(go=1))
        assert achieved_probability(system, ALICE, both_fire(), FIRE) == Fraction(
            99, 100
        )

    def test_go_zero_adversary_has_no_firing(self):
        # Under the go=0 adversary Alice never fires: "fire" is not a
        # proper action, and mu(. | fire) is simply undefined — exactly
        # the measurability discussion of Section 2.
        system = system_for(Adversary.of(go=0))
        for run in system.runs:
            assert not run.performs(ALICE, FIRE)
        with pytest.raises(ImproperActionError):
            achieved_probability(system, ALICE, both_fire(), FIRE)

    def test_adversary_systems_are_separate_probability_spaces(self):
        go_one = system_for(Adversary.of(go=1))
        go_zero = system_for(Adversary.of(go=0))
        assert sum(r.prob for r in go_one.runs) == 1
        assert sum(r.prob for r in go_zero.runs) == 1
        # The go=1 space has all the loss branching; go=0 is tiny.
        assert go_one.run_count() > go_zero.run_count()
