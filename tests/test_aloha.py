"""Integration tests for slotted ALOHA — mixed actions with independence."""

from fractions import Fraction

import pytest

from repro import (
    achieved_probability,
    check_theorem_6_2,
    expected_belief,
    is_deterministic_action,
    is_local_state_independent,
    is_past_based,
    is_proper,
    lemma_4_3_applies,
)
from repro.apps.aloha import (
    build_aloha,
    channel_clear_for,
    station_names,
    transmit_action,
    transmits,
)

ME = "station-0"


class TestStructure:
    def test_run_count(self):
        assert build_aloha(n=3).run_count() == 8

    def test_transmit_is_proper(self):
        system = build_aloha(n=3)
        assert is_proper(system, ME, transmit_action(0))

    def test_transmit_is_mixed(self):
        system = build_aloha(n=3)
        assert not is_deterministic_action(system, ME, transmit_action(0))

    def test_condition_is_not_past_based(self):
        system = build_aloha(n=3)
        assert not is_past_based(system, channel_clear_for(ME, 3))

    def test_lemma_4_3_does_not_apply(self):
        # Neither sufficient condition holds — this app exists to show
        # independence can still hold "by physics".
        system = build_aloha(n=3)
        applies, reasons = lemma_4_3_applies(
            system, channel_clear_for(ME, 3), ME, transmit_action(0)
        )
        assert not applies and reasons == []


class TestIndependenceByPhysics:
    def test_condition_is_independent_anyway(self):
        system = build_aloha(n=3)
        assert is_local_state_independent(
            system, channel_clear_for(ME, 3), ME, transmit_action(0)
        )

    def test_expectation_identity_exact(self):
        system = build_aloha(n=3, persistence="1/4")
        check = check_theorem_6_2(
            system, ME, transmit_action(0), channel_clear_for(ME, 3)
        )
        assert check.applicable and check.conclusion

    def test_own_transmission_is_dependent(self):
        # The contrast: the station's own action is exactly the
        # Figure 1 kind of dependent condition.
        system = build_aloha(n=3)
        assert not is_local_state_independent(
            system, transmits(ME), ME, transmit_action(0)
        )


class TestExactValues:
    @pytest.mark.parametrize(
        ("n", "q", "expected"),
        [
            (2, "1/4", Fraction(3, 4)),
            (3, "1/4", Fraction(9, 16)),
            (3, "1/2", Fraction(1, 4)),
            (4, "1/10", Fraction(729, 1000)),
        ],
    )
    def test_clear_probability_formula(self, n, q, expected):
        # mu(channel clear @ tx | tx) = (1 - q)^(n-1).
        system = build_aloha(n=n, persistence=q)
        assert achieved_probability(
            system, ME, channel_clear_for(ME, n), transmit_action(0)
        ) == expected

    def test_expected_belief_matches(self):
        system = build_aloha(n=3, persistence="1/4")
        assert expected_belief(
            system, ME, channel_clear_for(ME, 3), transmit_action(0)
        ) == Fraction(9, 16)

    def test_belief_is_flat_without_observations(self):
        # Before any feedback the station's belief equals the prior at
        # every acting point — a single information state.
        from repro.core.expectation import expected_belief_decomposition

        system = build_aloha(n=3, persistence="1/4")
        cells = expected_belief_decomposition(
            system, ME, channel_clear_for(ME, 3), transmit_action(0)
        )
        assert len(cells) == 1

    def test_multi_slot_actions_proper_per_slot(self):
        system = build_aloha(n=2, persistence="1/2", slots=2)
        assert is_proper(system, ME, transmit_action(0))
        assert is_proper(system, ME, transmit_action(1))
        assert achieved_probability(
            system, ME, channel_clear_for(ME, 2, slot=1), transmit_action(1)
        ) == Fraction(1, 2)


class TestValidation:
    def test_single_station_rejected(self):
        with pytest.raises(ValueError):
            build_aloha(n=1)

    def test_zero_slots_rejected(self):
        with pytest.raises(ValueError):
            build_aloha(slots=0)

    def test_degenerate_persistence(self):
        always = build_aloha(n=2, persistence=1)
        assert achieved_probability(
            always, ME, channel_clear_for(ME, 2), transmit_action(0)
        ) == 0
