"""The array backend and bisected threshold kernel.

Four layers of evidence:

* unit tests of :mod:`repro.core.arraykernel` primitives — conversion
  error terms, containment of true values in ``(approx, err)``
  intervals, and the sorted kernel's bracketing against plain bisect;
* backend parity — the same queries under the NumPy and pure-Python
  backends (flipped via :func:`~repro.core.arraykernel.set_backend`)
  produce identical exact values and verdicts;
* 18-seed random-system parity — the sorted/bisected auto path, the
  scalar auto path, and exact mode agree measure-for-measure on dense
  grids seeded with exact posterior values (forced escalations);
* an adversarial overflow case — integer weights beyond 2**53, where
  the float view of the kernel is *wrong by construction*: the
  conversion error term must force escalation, never a mis-certify.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from fractions import Fraction

import pytest

from repro.analysis.random_systems import (
    proper_actions_of,
    random_protocol_system,
    random_run_fact,
    random_state_fact,
)
from repro.analysis.sweep import refrain_threshold_sweep
from repro.core import arraykernel
from repro.core.arraykernel import (
    HAVE_NUMPY,
    ThresholdKernel,
    WeightKernel,
    div_bounds,
    dot_bounds,
    float_with_err,
    set_backend,
)
from repro.core.beliefs import threshold_met_measure, threshold_met_measures
from repro.core.builder import PPSBuilder
from repro.core.engine import SystemIndex
from repro.core.lazyprob import (
    exact_value,
    numeric_stats,
    reset_numeric_stats,
)

SEEDS = list(range(18))

BACKENDS = ["python"] + (["numpy"] if HAVE_NUMPY else [])


@pytest.fixture(params=BACKENDS)
def backend(request):
    previous = set_backend(request.param)
    yield request.param
    set_backend(previous)


# ----------------------------------------------------------------------
# Primitive bounds
# ----------------------------------------------------------------------


class TestFloatWithErr:
    def test_exact_below_2_53(self):
        for value in (0, 1, -7, 2**53, -(2**53)):
            approx, err = float_with_err(value)
            assert approx == float(value) and err == 0.0

    def test_rounding_term_above_2_53(self):
        approx, err = float_with_err(2**53 + 1)
        assert err > 0.0
        assert abs(approx - (2**53 + 1)) <= err

    def test_overflow_is_infinite_error(self):
        approx, err = float_with_err(10**400)
        assert approx == float("inf") and err == float("inf")
        approx, err = float_with_err(-(10**400))
        assert approx == float("-inf") and err == float("inf")

    def test_containment_randomized(self):
        rng = random.Random(3)
        for _ in range(500):
            value = rng.randint(-(2**80), 2**80)
            approx, err = float_with_err(value)
            assert abs(approx - value) <= err


class TestWeightKernel:
    def test_mask_bounds_contain_true_total(self, backend):
        rng = random.Random(9)
        weights = [rng.randint(0, 2**70) for _ in range(37)]
        kernel = WeightKernel(weights)
        assert kernel.vectorized == (backend == "numpy")
        for _ in range(60):
            mask = rng.getrandbits(37)
            approx, err = kernel.mask_bounds(mask)
            true = sum(w for k, w in enumerate(weights) if mask >> k & 1)
            assert abs(approx - true) <= err

    def test_empty_mask(self, backend):
        assert WeightKernel([1, 2, 3]).mask_bounds(0) == (0.0, 0.0)

    def test_small_weights_certify_tightly(self, backend):
        kernel = WeightKernel([1, 2, 4, 8])
        approx, err = kernel.mask_bounds(0b1010)
        assert approx == 10.0 and err < 1e-10


class TestDivDotBounds:
    def test_div_containment(self):
        rng = random.Random(5)
        for _ in range(400):
            num = Fraction(rng.randint(-999, 999), rng.randint(1, 999))
            den = Fraction(rng.randint(1, 999), rng.randint(1, 999))
            na, ne = float(num), abs(float(num)) * 2**-50
            da, de = float(den), abs(float(den)) * 2**-50
            approx, err = div_bounds(na, ne, da, de)
            assert abs(approx - float(num / den)) <= err

    def test_div_straddling_zero_is_uncertifiable(self):
        approx, err = div_bounds(1.0, 0.0, 1e-300, 1.0)
        assert err == float("inf")

    def test_dot_containment(self, backend):
        rng = random.Random(7)
        for _ in range(100):
            n = rng.randint(0, 9)
            xs = [(rng.uniform(-5, 5), rng.uniform(0, 1e-12)) for _ in range(n)]
            ys = [(rng.uniform(-5, 5), rng.uniform(0, 1e-12)) for _ in range(n)]
            approx, err = dot_bounds(xs, ys)
            center = sum(x[0] * y[0] for x, y in zip(xs, ys))
            slack = sum(
                abs(x[0]) * y[1] + abs(y[0]) * x[1] + x[1] * y[1]
                for x, y in zip(xs, ys)
            )
            assert abs(approx - center) <= err + slack


# ----------------------------------------------------------------------
# The sorted kernel against plain bisect
# ----------------------------------------------------------------------


class TestThresholdKernel:
    def _random_rows(self, rng, n):
        return [
            (Fraction(rng.randint(0, 64), 64), 1 << k) for k in range(n)
        ]

    def test_locate_matches_bisect(self, backend):
        rng = random.Random(11)
        rows = self._random_rows(rng, 40)
        kernel = ThresholdKernel(rows)
        probes = [Fraction(k, 128) for k in range(129)]
        probes += [value for value, _ in rows[:10]]
        probes += [value + Fraction(1, 10**18) for value, _ in rows[:10]]
        for bound in probes:
            point, _ = kernel.locate(bound)
            assert point == bisect_left(kernel.values, bound)

    def test_met_mask_is_suffix_union(self, backend):
        rng = random.Random(13)
        rows = self._random_rows(rng, 25)
        kernel = ThresholdKernel(rows)
        for bound in [Fraction(k, 32) for k in range(33)]:
            expected = 0
            for value, cell in rows:
                if value >= bound:
                    expected |= cell
            assert kernel.met_mask(kernel.locate_exact(bound)) == expected

    def test_locate_batch_matches_scalar_locate(self, backend):
        rng = random.Random(17)
        rows = self._random_rows(rng, 30)
        kernel = ThresholdKernel(rows)
        probes = [Fraction(rng.randint(0, 256), 256) for _ in range(200)]
        probes += [value for value, _ in rows]
        points, certified, escalated, compares = kernel.locate_batch(probes)
        assert points == [kernel.locate(bound)[0] for bound in probes]
        assert certified + escalated == len(probes)
        # Exact ties cannot be certified in float.
        assert escalated > 0 and compares >= escalated

    def test_empty_kernel(self, backend):
        kernel = ThresholdKernel([])
        points, certified, escalated, compares = kernel.locate_batch(
            [Fraction(1, 2), Fraction(1, 3)]
        )
        assert points == [0, 0] and escalated == 0
        assert kernel.met_mask(0) == 0

    def test_adversarial_bounds_escalate_not_wrong(self, backend):
        rows = [(Fraction(1, 3), 0b01), (Fraction(2, 3), 0b10)]
        kernel = ThresholdKernel(rows)
        # Above 1/3 by an amount far beyond float resolution.
        huge = Fraction(10**400, 10**400 * 3 - 1)
        point, compares = kernel.locate(huge)
        assert point == bisect_left(kernel.values, huge)
        assert compares > 0
        # A bound whose float view overflows entirely: the infinite
        # window degrades to full-range exact bisection.
        beyond = Fraction(10**400)
        point, compares = kernel.locate(beyond)
        assert point == len(kernel.values)
        assert compares > 0


def test_set_backend_rejects_unknown():
    with pytest.raises(ValueError):
        set_backend("cuda")
    if not HAVE_NUMPY:
        with pytest.raises(ValueError):
            set_backend("numpy")
    assert arraykernel.backend() in ("numpy", "python")


# ----------------------------------------------------------------------
# Random-system parity: sorted auto vs scalar auto vs exact
# ----------------------------------------------------------------------


def _case(seed: int):
    pps = random_protocol_system(seed, horizon=2)
    rng = random.Random(seed + 9000)
    agent = pps.agents[seed % len(pps.agents)]
    actions = proper_actions_of(pps, agent)
    if not actions:
        return None
    action = actions[seed % len(actions)]
    phi = random_state_fact(seed) if seed % 2 == 0 else random_run_fact(seed)
    return pps, agent, action, phi, rng


@pytest.mark.parametrize("seed", SEEDS)
def test_sorted_scalar_exact_grid_parity(seed):
    case = _case(seed)
    if case is None:
        pytest.skip("no proper action for this seed")
    pps, agent, action, phi, rng = case
    index = SystemIndex.of(pps)
    grid = [Fraction(k, 32) for k in range(33)]
    # Exact posteriors and 1e-18 perturbations: forced boundary work.
    posteriors = [
        index.belief(agent, phi, local)
        for local in list(index.state_cells(agent, action))[:3]
    ]
    grid += posteriors
    grid += [p + Fraction(1, 10**18) for p in posteriors]
    exact = threshold_met_measures(pps, agent, phi, action, grid)
    sorted_auto = threshold_met_measures(
        pps, agent, phi, action, grid, numeric="auto"
    )
    scalar_auto = threshold_met_measures(
        pps, agent, phi, action, grid, numeric="auto", kernel="scalar"
    )
    assert [exact_value(m) for m in sorted_auto] == exact
    assert [exact_value(m) for m in scalar_auto] == exact
    # Single-bound calls agree too (they share the same kernel).
    for bound in grid[:5] + posteriors:
        assert exact_value(
            threshold_met_measure(pps, agent, phi, action, bound, numeric="auto")
        ) == threshold_met_measure(pps, agent, phi, action, bound)


@pytest.mark.parametrize("seed", SEEDS[:6])
def test_backend_parity_on_random_systems(seed):
    case = _case(seed)
    if case is None:
        pytest.skip("no proper action for this seed")
    if not HAVE_NUMPY:
        pytest.skip("numpy not installed; single-backend environment")
    _, agent, action, phi, _ = case
    grid = [Fraction(k, 16) for k in range(17)]
    results = {}
    for name in BACKENDS:
        previous = set_backend(name)
        try:
            # Fresh system per backend: kernels are cached per index.
            pps = random_protocol_system(seed, horizon=2)
            index = SystemIndex.of(pps)
            probes = grid + [
                index.belief(agent, phi, local)
                for local in list(index.state_cells(agent, action))[:2]
            ]
            results[name] = [
                exact_value(m)
                for m in threshold_met_measures(
                    pps, agent, phi, action, probes, numeric="auto"
                )
            ]
        finally:
            set_backend(previous)
    assert results["python"] == results["numpy"]


# ----------------------------------------------------------------------
# Batched counters and dedup
# ----------------------------------------------------------------------


def test_batched_counters_and_dedup_fan_out():
    from repro.apps.firing_squad import ALICE, FIRE, both_fire, build_firing_squad

    pps = build_firing_squad()
    phi = both_fire()
    index = SystemIndex.of(pps)
    posterior = max(
        index.belief(ALICE, phi, local)
        for local in index.state_cells(ALICE, FIRE)
    )
    grid = [Fraction(k, 8) for k in range(9)] + [posterior]
    doubled = grid + grid  # every bound duplicated
    reset_numeric_stats()
    out = threshold_met_measures(pps, ALICE, phi, FIRE, doubled, numeric="auto")
    stats = numeric_stats()
    assert stats.array_batches == 1
    # Per-distinct-bound work only: the duplicates cost nothing.
    assert stats.cells_certified + stats.cells_escalated == len(set(grid))
    assert stats.cells_escalated > 0  # the exact posterior bound
    assert stats.cells_certified > 0
    assert stats.escalations > 0
    # Fan-out preserves order and per-duplicate equality.
    assert len(out) == len(doubled)
    for first, second in zip(out[: len(grid)], out[len(grid) :]):
        assert exact_value(first) == exact_value(second)
    assert [exact_value(m) for m in out] == threshold_met_measures(
        pps, ALICE, phi, FIRE, doubled
    )


def test_refrain_sweep_dedupes_thresholds():
    from repro.apps.firing_squad import ALICE, FIRE, both_fire, build_firing_squad

    pps = build_firing_squad()
    phi = both_fire()
    thresholds = ["1/2", "1/2", "3/4", "1/2"]
    rows = refrain_threshold_sweep(pps, ALICE, phi, FIRE, thresholds)
    assert [row["threshold"] for row in rows] == [
        Fraction(1, 2),
        Fraction(1, 2),
        Fraction(3, 4),
        Fraction(1, 2),
    ]
    assert rows[0] == rows[1] == rows[3]
    # Fanned-out duplicates are distinct dicts (mutation isolation).
    assert rows[0] is not rows[1]
    rows[0]["achieved"] = None
    assert rows[1]["achieved"] is not None


def test_threshold_met_measures_rejects_unknown_kernel():
    from repro.apps.firing_squad import ALICE, FIRE, both_fire, build_firing_squad

    with pytest.raises(ValueError):
        threshold_met_measures(
            build_firing_squad(), ALICE, both_fire(), FIRE, ["1/2"], kernel="gpu"
        )


# ----------------------------------------------------------------------
# Overflow adversary: weights beyond 2**53
# ----------------------------------------------------------------------


def _big_weight_system():
    """Four initial branches with weights 2**53 + {1,3,5,7}.

    The agent cannot distinguish the branches (same local state), phi
    holds on branches 0 and 2, and ``go`` is performed everywhere — so
    the single acting posterior is ``(w0 + w2) / (w0+w1+w2+w3)``, a
    ratio of integers no float64 represents exactly.
    """
    weights = [2**53 + 1, 2**53 + 3, 2**53 + 5, 2**53 + 7]
    total = sum(weights)
    builder = PPSBuilder(["i"], name="big-weights")
    for k, w in enumerate(weights):
        g = builder.initial(Fraction(w, total), {"i": "s"}, env=k)
        g.chain({"i": f"done{k}"}, env=k, actions={"i": "go"})
    return builder.build(), weights, total


def test_overflow_weights_escalate_instead_of_wrong_certify():
    from repro.core.atoms import state_fact

    pps, weights, total = _big_weight_system()
    phi = state_fact(lambda state: state.env in (0, 2), label="phi-even")
    posterior = Fraction(weights[0] + weights[2], total)

    index = SystemIndex.of(pps)
    assert index.belief("i", phi, "s") == posterior

    # Bounds the float tier cannot separate from the posterior: the
    # exact tie and a perturbation far below the conversion error of
    # the > 2**53 weights.
    tiny = Fraction(1, total * 2**20)
    grid = [posterior, posterior + tiny, posterior - tiny, Fraction(1, 2)]
    reset_numeric_stats()
    auto = threshold_met_measures(pps, "i", phi, "go", grid, numeric="auto")
    exact = threshold_met_measures(pps, "i", phi, "go", grid)
    assert [exact_value(m) for m in auto] == exact
    stats = numeric_stats()
    # The rounding-error term forced exact refinement — no silent
    # (wrong) float certification at the boundary.
    assert stats.cells_escalated >= 3
    assert stats.escalations > 0
    # Verdict semantics: >= is non-strict, so the tie and the lower
    # perturbation are met, the upper one is not; the posterior itself
    # sits just *below* 1/2 (2*(w0+w2) = total - 4).
    met, above, below, half = (exact_value(m) for m in auto)
    assert posterior < Fraction(1, 2)
    assert met == 1 and below == 1 and above == 0 and half == 0


def test_overflow_weights_mask_bounds_carry_error(backend):
    pps, weights, total = _big_weight_system()
    index = SystemIndex.of(pps)
    # A non-contiguous mask over big weights: bits 0 and 2 (phi runs).
    approx, err = index.mask_bounds(0b101)
    true = weights[0] + weights[2]
    assert err > 0.0
    assert abs(approx - true) <= err
