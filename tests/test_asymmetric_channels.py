"""FunctionChannel in anger: asymmetric and content-dependent links."""

from fractions import Fraction

from repro import achieved_probability, expected_belief_decomposition
from repro.apps.coordinated_attack import (
    ACK,
    ATTACK,
    GENERAL_A,
    GENERAL_B,
    ORDER,
    _GeneralA,
    _GeneralB,
    both_attack,
)
from repro.messaging import FunctionChannel, Message, MessagePassingSystem, RecordingState
from repro.protocols import Distribution


def build_asymmetric_attack(order_loss: str, ack_loss: str):
    """Coordinated attack where order and ack links differ in quality."""

    def reliability(message: Message) -> object:
        if message.content == ORDER:
            return 1 - Fraction(order_loss)
        return 1 - Fraction(ack_loss)

    deadline = 2  # one ack round
    return MessagePassingSystem(
        agents=[GENERAL_A, GENERAL_B],
        protocols={
            GENERAL_A: _GeneralA(deadline),
            GENERAL_B: _GeneralB(deadline),
        },
        channel=FunctionChannel(reliability, name="asymmetric"),
        initial=Distribution(
            {
                (RecordingState(0), RecordingState(None)): Fraction(1, 2),
                (RecordingState(1), RecordingState(None)): Fraction(1, 2),
            }
        ),
        horizon=deadline + 1,
        name="asymmetric-attack",
    ).compile()


class TestAsymmetricLinks:
    def test_success_depends_only_on_order_link(self):
        # The ack link quality cannot change the success probability.
        for ack_loss in ("0", "0.5", "0.9"):
            system = build_asymmetric_attack("0.2", ack_loss)
            assert achieved_probability(
                system, GENERAL_A, both_attack(), ATTACK
            ) == Fraction(4, 5)

    def test_ack_link_shapes_beliefs(self):
        # A perfect ack link collapses A's uncertainty entirely: either
        # the ack arrives (belief 1) or the order was lost (belief 0).
        perfect = build_asymmetric_attack("0.2", "0")
        cells = expected_belief_decomposition(
            perfect, GENERAL_A, both_attack(), ATTACK
        )
        assert sorted(cell.belief for cell in cells.values()) == [0, 1]

    def test_nearly_dead_ack_link_leaves_near_prior(self):
        # An almost-always-lost ack link leaves A's no-ack posterior
        # near the prior 1 - order_loss = 4/5 (loss exactly 1 would
        # remove the delivered-ack branch from the tree entirely).
        dead = build_asymmetric_attack("0.2", "0.999999")
        cells = expected_belief_decomposition(
            dead, GENERAL_A, both_attack(), ATTACK
        )
        no_ack = [cell.belief for cell in cells.values() if cell.belief < 1]
        assert no_ack
        assert abs(float(max(no_ack)) - 0.8) < 1e-5

    def test_degenerate_reliable_everything(self):
        system = build_asymmetric_attack("0", "0")
        assert achieved_probability(
            system, GENERAL_A, both_attack(), ATTACK
        ) == 1
