"""Unit tests for the phi@l and phi@alpha run facts."""

import pytest

from repro import (
    FALSE,
    TRUE,
    ImproperActionError,
    PPSBuilder,
    action_at_local_state,
    at_action,
    at_local_state,
    does_,
    env_fact,
    runs_satisfying,
)


class TestAtLocalState:
    def test_requires_state_to_occur(self, two_coin_tree):
        fact = at_local_state(TRUE, "obs", (7, "nowhere"))
        assert runs_satisfying(two_coin_tree, fact) == frozenset()

    def test_evaluates_phi_at_occurrence_time(self, two_coin_tree):
        # At the time obs is in (1, "H"), the env holds the second coin.
        second_heads = env_fact(lambda e: e == ("second", "h"))
        fact = at_local_state(second_heads, "obs", (1, "H"))
        runs = runs_satisfying(two_coin_tree, fact)
        assert len(runs) == 1

    def test_true_at_state_equals_occurrence(self, two_coin_tree):
        fact = at_local_state(TRUE, "obs", (0, "H"))
        assert len(runs_satisfying(two_coin_tree, fact)) == 2

    def test_false_at_state_is_empty(self, two_coin_tree):
        fact = at_local_state(FALSE, "obs", (0, "H"))
        assert runs_satisfying(two_coin_tree, fact) == frozenset()

    def test_is_run_fact(self):
        assert at_local_state(TRUE, "obs", (0, "H")).is_run_fact


class TestAtAction:
    def test_requires_action_in_run(self, two_coin_tree):
        fact = at_action(TRUE, "obs", "phantom")
        assert runs_satisfying(two_coin_tree, fact) == frozenset()

    def test_evaluates_phi_at_performance_time(self, two_coin_tree):
        at_zero = env_fact(lambda e: e is None)  # true only at time 0
        fact = at_action(at_zero, "obs", "observe")
        assert len(runs_satisfying(two_coin_tree, fact)) == 4

    def test_improper_action_raises(self):
        builder = PPSBuilder(["a"])
        s0 = builder.initial(1, {"a": (0, "x")})
        s1 = s0.chain({"a": (1, "y")}, actions={"a": "tick"})
        s1.chain({"a": (2, "z")}, actions={"a": "tick"})  # twice in one run
        system = builder.build()
        fact = at_action(TRUE, "a", "tick")
        with pytest.raises(ImproperActionError):
            runs_satisfying(system, fact)

    def test_action_at_local_state_shorthand(self, two_coin_tree):
        direct = at_local_state(does_("obs", "observe"), "obs", (0, "H"))
        shorthand = action_at_local_state("obs", "observe", (0, "H"))
        assert runs_satisfying(two_coin_tree, direct) == runs_satisfying(
            two_coin_tree, shorthand
        )

    def test_phi_and_alpha_conjunction(self, two_coin_tree):
        # [phi & does(alpha)]@l — the paper's appendix shorthand.
        phi = env_fact(lambda e: e is None)
        conj = at_local_state(
            phi & does_("obs", "observe"), "obs", (0, "H")
        )
        assert len(runs_satisfying(two_coin_tree, conj)) == 2
