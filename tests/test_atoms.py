"""Unit tests for atomic facts: does, performed, state predicates."""

from repro import (
    does_,
    env_fact,
    local_fact,
    local_state_occurs,
    performed,
    points_satisfying,
    runs_satisfying,
    state_fact,
)


class TestDoes:
    def test_true_exactly_at_performance_point(self, two_coin_tree):
        fact = does_("obs", "observe")
        points = points_satisfying(two_coin_tree, fact)
        assert points == {(r.index, 0) for r in two_coin_tree.runs}

    def test_false_for_other_action(self, two_coin_tree):
        fact = does_("obs", "never-happens")
        assert points_satisfying(two_coin_tree, fact) == set()

    def test_false_at_leaf(self, two_coin_tree):
        fact = does_("obs", "observe")
        run = two_coin_tree.runs[0]
        assert not fact.holds(two_coin_tree, run, run.final_time)

    def test_label(self):
        assert does_("a", "x").label == "does[a](x)"


class TestPerformed:
    def test_run_fact(self):
        assert performed("obs", "observe").is_run_fact

    def test_all_runs_perform_observe(self, two_coin_tree):
        fact = performed("obs", "observe")
        assert runs_satisfying(two_coin_tree, fact) == frozenset(
            r.index for r in two_coin_tree.runs
        )

    def test_no_run_performs_phantom(self, two_coin_tree):
        assert runs_satisfying(two_coin_tree, performed("obs", "phantom")) == frozenset()

    def test_time_invariant_within_run(self, two_coin_tree):
        fact = performed("blind", "wait")
        run = two_coin_tree.runs[0]
        values = {fact.holds(two_coin_tree, run, t) for t in run.times()}
        assert values == {True}


class TestLocalStateOccurs:
    def test_occurs(self, two_coin_tree):
        fact = local_state_occurs("obs", (0, "H"))
        assert len(runs_satisfying(two_coin_tree, fact)) == 2

    def test_never_occurs(self, two_coin_tree):
        fact = local_state_occurs("obs", (5, "nope"))
        assert runs_satisfying(two_coin_tree, fact) == frozenset()


class TestStatePredicates:
    def test_state_fact(self, two_coin_tree):
        second_heads = state_fact(
            lambda g: g.env == ("second", "h"), label="second-heads"
        )
        points = points_satisfying(two_coin_tree, second_heads)
        assert all(t == 1 for _, t in points)
        assert len(points) == 2

    def test_local_fact(self, two_coin_tree):
        saw_heads = local_fact("obs", lambda l: l[1] == "H")
        points = points_satisfying(two_coin_tree, saw_heads)
        assert len(points) == 4  # 2 runs x 2 times in the heads branch

    def test_env_fact(self, two_coin_tree):
        initial_env = env_fact(lambda e: e is None, label="no-env")
        points = points_satisfying(two_coin_tree, initial_env)
        assert all(t == 0 for _, t in points)
