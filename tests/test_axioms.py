"""Tests for the epistemic axiom checkers (logic layer)."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import TRUE, eventually
from repro.analysis.random_systems import random_protocol_system, random_state_fact
from repro.apps.firing_squad import ALICE, BOB, both_fire, fire_bob
from repro.logic import check_axioms, holds_everywhere


class TestHoldsEverywhere:
    def test_true(self, firing_squad):
        assert holds_everywhere(firing_squad, TRUE)

    def test_contingent_fact(self, firing_squad):
        assert not holds_everywhere(firing_squad, eventually(fire_bob()))


class TestAxiomsOnFiringSquad:
    @pytest.fixture(scope="class")
    def results(self, firing_squad):
        return check_axioms(
            firing_squad, ALICE, eventually(both_fire()), eventually(fire_bob())
        )

    def test_all_axioms_valid(self, results):
        assert all(results.values()), {
            name: value for name, value in results.items() if not value
        }

    def test_s5_axioms_present(self, results):
        for name in (
            "T:knowledge-implies-truth",
            "K:distribution",
            "4:positive-introspection",
            "5:negative-introspection",
        ):
            assert name in results

    def test_belief_bridge_axioms_present(self, results):
        assert "knowledge-implies-belief-one" in results
        assert "belief-one-implies-knowledge" in results

    def test_graded_levels_parameterizable(self, firing_squad):
        results = check_axioms(
            firing_squad,
            BOB,
            eventually(both_fire()),
            TRUE,
            levels=("1/4",),
        )
        assert "belief-introspection@1/4" in results
        assert results["belief-introspection@1/4"]


@settings(
    max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(seed=st.integers(min_value=0, max_value=5000))
def test_axioms_hold_on_random_systems(seed):
    system = random_protocol_system(seed)
    phi = random_state_fact(seed + 10)
    psi = random_state_fact(seed + 20)
    results = check_axioms(system, system.agents[0], phi, psi, levels=("1/2",))
    assert all(results.values()), {
        name: value for name, value in results.items() if not value
    }
