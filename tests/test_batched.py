"""Batched evaluation and structural cache keys.

Two contracts are hammered here:

* **Batched parity** — ``events_of`` / ``truths_at`` / ``beliefs_batch``
  must return exactly (``Fraction``-equal) what the single-fact APIs
  return, on the seeded random-system corpus, for every fact shape the
  library builds (atoms, connectives, temporal closures, knowledge,
  graded belief).
* **Structural sharing** — two independently built, syntactically equal
  facts share one engine cache entry; opaque facts (arbitrary
  predicates) keep identity semantics; ``memo=False`` writes nothing
  into the per-system caches.
"""

from __future__ import annotations

import pytest

from repro import (
    SystemIndex,
    believes,
    does_,
    eventually,
    knows,
    performed,
)
from repro.core.naive import naive_belief, naive_runs_satisfying
from repro.analysis.random_systems import (
    proper_actions_of,
    random_protocol_system,
    random_run_fact,
    random_state_fact,
)

BATCH_SEEDS = [(seed, seed % 3 * 0.5) for seed in range(0, 54, 3)]


def _system(seed: int, mixed: float):
    return random_protocol_system(seed, mixed_level=mixed)


def _two_run_improper_system():
    """Run 0 performs 'go' twice (improper there); run 1 performs it once."""
    from repro import PPSBuilder

    builder = PPSBuilder(["i"], name="improper-go")
    a = builder.initial("1/2", {"i": (0, "a")})
    b = builder.initial("1/2", {"i": (0, "b")})
    a1 = a.child(1, {"i": (1, "a")}, actions={"i": "go"})
    a1.child(1, {"i": (2, "a")}, actions={"i": "go"})
    b1 = b.child(1, {"i": (1, "b")}, actions={"i": "go"})
    b1.child(1, {"i": (2, "b")}, actions={"i": "wait"})
    return builder.build()


def _fact_menu(system, seed):
    """A batch covering every structural shape the engine decomposes."""
    agent = system.agents[0]
    action = proper_actions_of(system, agent)[0]
    phi = random_state_fact(seed + 1)
    chi = random_run_fact(seed + 2)
    alpha = performed(agent, action)
    return [
        phi,
        chi,
        alpha,
        eventually(phi),
        phi & alpha,
        phi | ~alpha,
        ~(phi & ~chi),
        does_(agent, action),
        knows(agent, phi),
        believes(agent, phi, "1/2"),
    ]


@pytest.mark.parametrize("seed,mixed", BATCH_SEEDS)
def test_events_of_matches_single_fact_masks(seed, mixed):
    batched_system = _system(seed, mixed)
    single_system = _system(seed, mixed)
    facts = _fact_menu(batched_system, seed)
    run_facts = [fact for fact in facts if fact.is_run_fact]
    batched = SystemIndex.of(batched_system).events_of(run_facts)
    single_index = SystemIndex.of(single_system)
    singles = [single_index.runs_satisfying_mask(fact) for fact in run_facts]
    assert batched == singles
    # ... and both agree with the naive from-scratch event scan.
    for fact, mask in zip(run_facts, batched):
        index = SystemIndex.of(batched_system)
        assert index.event_of(mask) == naive_runs_satisfying(batched_system, fact)


@pytest.mark.parametrize("seed,mixed", BATCH_SEEDS)
def test_truths_at_matches_single_fact_slices(seed, mixed):
    batched_system = _system(seed, mixed)
    single_system = _system(seed, mixed)
    facts = _fact_menu(batched_system, seed)
    batched_index = SystemIndex.of(batched_system)
    single_index = SystemIndex.of(single_system)
    for t in range(batched_index.max_time + 1):
        batched = batched_index.truths_at(facts, t)
        singles = [single_index.holds_mask_at(fact, t) for fact in facts]
        assert batched == singles
        # Per-point ground truth, bypassing both cache layers.
        runs = batched_system.runs
        for fact, mask in zip(facts, batched):
            expected = 0
            for run in runs:
                if t < run.length and fact.holds(batched_system, run, t):
                    expected |= 1 << run.index
            assert mask == expected


@pytest.mark.parametrize("seed,mixed", BATCH_SEEDS)
def test_beliefs_batch_matches_naive_beliefs(seed, mixed):
    system = _system(seed, mixed)
    index = SystemIndex.of(system)
    facts = _fact_menu(system, seed)[:6]
    for agent in system.agents:
        for local in sorted(index.local_states(agent), key=repr):
            batched = index.beliefs_batch(agent, facts, local)
            for fact, value in zip(facts, batched):
                assert value == naive_belief(system, agent, fact, local)
                assert value == index.belief(agent, fact, local)


class TestStructuralSharing:
    def test_equal_facts_share_one_slice_entry(self):
        system = random_protocol_system(7)
        index = SystemIndex.of(system)
        agent = system.agents[0]
        action = proper_actions_of(system, agent)[0]

        def build():
            return performed(agent, action) & ~does_(agent, action)

        first, second = build(), build()
        assert first is not second
        assert first.structural_key() == second.structural_key()
        mask = index.holds_mask_at(first, 0)
        cached_entries = len(index._slice_masks)
        assert index.holds_mask_at(second, 0) == mask
        assert len(index._slice_masks) == cached_entries

    def test_equal_facts_share_one_belief_entry(self):
        system = random_protocol_system(8)
        index = SystemIndex.of(system)
        agent = system.agents[0]
        action = proper_actions_of(system, agent)[0]
        local = sorted(index.local_states(agent), key=repr)[0]
        first = index.belief(agent, performed(agent, action), local)
        cached_entries = len(index._belief_cache)
        # A sweep row rebuilding the same condition hits the same entry.
        second = index.belief(agent, performed(agent, action), local)
        assert second == first
        assert len(index._belief_cache) == cached_entries

    def test_structural_key_cached_per_instance(self):
        fact = performed("a0", (0, 1)) | ~performed("a1", (0, 0))
        assert fact.structural_key() is fact.structural_key()

    def test_predicate_facts_key_on_the_callable(self):
        # Distinct predicate closures (even from the same seed) must
        # not share cache entries: nothing relates their semantics.
        first = random_state_fact(5)
        second = random_state_fact(5)
        assert first.structural_key() != second.structural_key()

    def test_opaque_facts_fall_back_to_identity(self):
        from repro.core.facts import RunFact

        class Opaque(RunFact):
            def holds(self, pps, run, t):
                return True

        first, second = Opaque(), Opaque()
        assert first.structural_key() != second.structural_key()
        # The identity fallback embeds the instance, so the key cannot
        # collide with (or outlive) another fact's key.
        assert first in first.structural_key()

    def test_memo_false_leaves_caches_untouched(self):
        system = random_protocol_system(9)
        index = SystemIndex.of(system)
        agent = system.agents[0]
        action = proper_actions_of(system, agent)[0]
        fresh = performed(agent, action) & random_run_fact(42)
        facts_before = dict(index._fact_masks)
        slices_before = dict(index._slice_masks)
        with_memo = index.runs_satisfying_mask(
            performed(agent, action) & random_run_fact(42), memo=True
        )
        index._fact_masks.clear()
        index._fact_masks.update(facts_before)
        assert index.runs_satisfying_mask(fresh, memo=False) == with_memo
        assert index.truths_at([fresh], 0, memo=False)[0] == (
            index.holds_mask_at(fresh, 0, memo=False)
        )
        assert index._fact_masks == facts_before
        assert index._slice_masks == slices_before

    def test_guarded_partial_facts_keep_short_circuit_semantics(self):
        # Regression: the boolean mask decomposition must not evaluate
        # a partial sub-fact (one whose ``holds`` raises) on runs the
        # connective's own short-circuiting would never touch — e.g. a
        # guard conjunct excluding the runs where an @-action operand
        # is improper.
        from repro import ImproperActionError, TRUE, at_action, runs_satisfying
        from repro.core.facts import LambdaRunFact

        builder_pps = _two_run_improper_system()
        phi_at = at_action(TRUE, "i", "go")
        guard = LambdaRunFact(lambda pps, run: run.index == 1, label="guard")
        # Unguarded, the partial fact raises (run 0 performs 'go' twice) ...
        with pytest.raises(ImproperActionError):
            runs_satisfying(builder_pps, phi_at)
        # ... but guarded it evaluates only where the guard holds.
        assert runs_satisfying(builder_pps, guard & phi_at) == frozenset({1})
        index = SystemIndex.of(builder_pps)
        assert index.events_of([guard | ~guard, guard & phi_at]) == [
            index.all_mask,
            0b10,
        ]

    def test_phi_at_action_only_evaluates_performing_runs(self):
        # Regression: deriving phi@alpha from whole-slice truth masks
        # must not evaluate a partial phi on alive runs that do not
        # perform alpha (the historic path never touched them).
        from fractions import Fraction

        from repro import TRUE, at_action
        from repro.core.constraints import achieved_probability

        builder_pps = _two_run_improper_system()
        phi = at_action(TRUE, "i", "go")  # raises on run 0 ('go' twice)
        assert achieved_probability(builder_pps, "i", phi, "wait") == Fraction(1)

    def test_verify_system_tolerates_unreachable_partial_conditions(self):
        # Regression: the batched condition prefetch must not raise for
        # a partial condition the checker loop never evaluates (here
        # the agent has no proper actions at all, so no checker runs).
        from repro import PPSBuilder, TRUE, at_action
        from repro.analysis.verify import verify_system

        builder = PPSBuilder(["i"], name="no-proper-actions")
        a = builder.initial(1, {"i": (0, "a")})
        a1 = a.child(1, {"i": (1, "a")}, actions={"i": "go"})
        a1.child(1, {"i": (2, "a")}, actions={"i": "go"})
        pps = builder.build()
        verification = verify_system(pps, {"c": at_action(TRUE, "i", "go")})
        assert verification.results == {}
        assert verification.all_verified

    def test_identity_keyed_index_does_not_share(self):
        # structural_keys=False restores the pre-batching behavior:
        # equal-but-distinct facts get separate entries.
        system = random_protocol_system(10)
        index = SystemIndex.of(system, structural_keys=False)
        assert not index.structural_keys
        agent = system.agents[0]
        action = proper_actions_of(system, agent)[0]
        first = index.runs_satisfying_mask(performed(agent, action))
        cached_entries = len(index._fact_masks)
        assert index.runs_satisfying_mask(performed(agent, action)) == first
        assert len(index._fact_masks) == cached_entries + 1
