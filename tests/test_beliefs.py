"""Unit tests for posterior beliefs (Definition 3.1) and belief variables."""

from fractions import Fraction

import pytest

from repro import (
    TRUE,
    UnknownLocalStateError,
    belief,
    belief_at,
    belief_at_action,
    belief_profile,
    belief_random_variable,
    env_fact,
    occurrence_event,
    threshold_met_event,
    threshold_met_measure,
)


class TestBelief:
    def test_belief_in_true_is_one(self, two_coin_tree):
        assert belief(two_coin_tree, "obs", TRUE, (0, "H")) == 1

    def test_posterior_conditioning(self, two_coin_tree):
        # obs in state (1, "H"): second coin is h with probability 1/3.
        second_heads = env_fact(lambda e: e == ("second", "h"))
        assert belief(two_coin_tree, "obs", second_heads, (1, "H")) == Fraction(1, 3)

    def test_blind_agent_keeps_prior(self, two_coin_tree):
        # blind never learns the first coin.
        first_heads = env_fact(lambda e: e == ("second", "h"))
        assert belief(two_coin_tree, "blind", first_heads, (1, "-")) == Fraction(1, 3)

    def test_unknown_local_state_raises(self, two_coin_tree):
        with pytest.raises(UnknownLocalStateError):
            belief(two_coin_tree, "obs", TRUE, (9, "nope"))

    def test_belief_is_probability(self, two_coin_tree):
        second_heads = env_fact(lambda e: e == ("second", "h"))
        for local in two_coin_tree.local_states("obs"):
            value = belief(two_coin_tree, "obs", second_heads, local)
            assert 0 <= value <= 1

    def test_belief_at_point_tracks_current_time(self, two_coin_tree):
        run = two_coin_tree.runs[0]
        second_heads = env_fact(lambda e: e == ("second", "h"))
        # At time 0 the transient fact is false (env is still None), so
        # phi@l_0 never holds; at time 1 the posterior is 1/3.
        assert belief_at(two_coin_tree, "obs", second_heads, run, 0) == 0
        assert belief_at(two_coin_tree, "obs", second_heads, run, 1) == Fraction(1, 3)


class TestOccurrenceEvent:
    def test_every_run_passes_initial_states(self, two_coin_tree):
        heads = occurrence_event(two_coin_tree, "obs", (0, "H"))
        tails = occurrence_event(two_coin_tree, "obs", (0, "T"))
        assert len(heads) == 2 and len(tails) == 2
        assert not heads & tails

    def test_unknown_state_empty(self, two_coin_tree):
        assert occurrence_event(two_coin_tree, "obs", "missing") == frozenset()


class TestBeliefAtAction:
    def test_paper_convention_zero_when_not_performed(self, figure1):
        from repro.apps.figure1 import psi_not_alpha

        psi = psi_not_alpha()
        not_performing = next(
            run for run in figure1.runs if not run.performs("i", "alpha")
        )
        assert belief_at_action(figure1, "i", psi, "alpha", not_performing) == 0

    def test_figure1_belief_is_half(self, figure1):
        from repro.apps.figure1 import psi_not_alpha

        psi = psi_not_alpha()
        performing = next(run for run in figure1.runs if run.performs("i", "alpha"))
        assert belief_at_action(figure1, "i", psi, "alpha", performing) == Fraction(
            1, 2
        )

    def test_random_variable_matches_pointwise(self, two_coin_tree):
        second_heads = env_fact(lambda e: e == ("second", "h"))
        variable = belief_random_variable(
            two_coin_tree, "obs", second_heads, "observe"
        )
        for run in two_coin_tree.runs:
            assert variable(run) == belief_at_action(
                two_coin_tree, "obs", second_heads, "observe", run
            )


class TestBeliefProfile:
    def test_profile_covers_all_states(self, two_coin_tree):
        profile = belief_profile(two_coin_tree, "obs", TRUE)
        assert set(profile) == two_coin_tree.local_states("obs")
        assert all(value == 1 for value in profile.values())


class TestThresholdEvents:
    def test_met_event_everything_for_zero_threshold(self, two_coin_tree):
        met = threshold_met_event(two_coin_tree, "obs", TRUE, "observe", 0)
        assert len(met) == 4

    def test_met_measure_one_for_certain_fact(self, two_coin_tree):
        assert threshold_met_measure(two_coin_tree, "obs", TRUE, "observe", 1) == 1

    def test_met_measure_for_partial_belief(self, two_coin_tree):
        from repro import eventually

        # The run fact "the second coin will land heads": belief 1/3 at
        # the acting point (time 0), for every run.
        second_heads = eventually(env_fact(lambda e: e == ("second", "h")))
        # belief is 1/3 everywhere when acting; threshold 1/2 never met.
        assert (
            threshold_met_measure(
                two_coin_tree, "obs", second_heads, "observe", "1/2"
            )
            == 0
        )
        # threshold 1/3 always met.
        assert (
            threshold_met_measure(
                two_coin_tree, "obs", second_heads, "observe", "1/3"
            )
            == 1
        )
