"""Integration tests for Ben-Or-style retry consensus."""

from fractions import Fraction

import pytest

from repro import (
    achieved_probability,
    check_theorem_6_2,
    expected_belief,
    is_proper,
    probability,
    runs_satisfying,
)
from repro.apps.ben_or import (
    AGENT_A,
    AGENT_B,
    agreement_among_deciders,
    both_decide,
    build_ben_or,
    decide_action,
    decided_value,
)


def mass(system, fact) -> Fraction:
    return probability(system, runs_satisfying(system, fact))


class TestFreeChoiceAdvantage:
    def test_progress_grows_with_rounds(self):
        values = [
            mass(build_ben_or(rounds=rounds), both_decide())
            for rounds in (3, 4, 5)
        ]
        assert values == sorted(values)
        assert values[-1] > values[0]

    def test_deterministic_ablation_capped_at_equal_input_mass(self):
        # Without coins, only equal-input runs (prior mass 1/2) can
        # ever decide, however long the horizon; coins break the cap.
        for rounds in (4, 5):
            capped = mass(
                build_ben_or(rounds=rounds, free_choice=False), both_decide()
            )
            assert capped < Fraction(1, 2)
        assert mass(build_ben_or(rounds=5), both_decide()) > Fraction(1, 2)

    def test_mismatched_inputs_never_decide_without_coins(self):
        system = build_ben_or(rounds=5, free_choice=False)
        for run in system.runs:
            a_input = run.local(AGENT_A, 0)[1][1]
            b_input = run.local(AGENT_B, 0)[1][1]
            if a_input != b_input:
                assert decided_value(system, run, AGENT_A) is None
                assert decided_value(system, run, AGENT_B) is None

    def test_coins_rescue_mismatched_inputs(self):
        system = build_ben_or(rounds=5, free_choice=True)
        rescued = [
            run
            for run in system.runs
            if run.local(AGENT_A, 0)[1][1] != run.local(AGENT_B, 0)[1][1]
            and decided_value(system, run, AGENT_A) is not None
        ]
        assert rescued

    def test_free_choice_dominates_ablation(self):
        with_coins = mass(build_ben_or(rounds=5), both_decide())
        without = mass(build_ben_or(rounds=5, free_choice=False), both_decide())
        assert with_coins > without


class TestSafety:
    def test_agreement_is_certain(self):
        # With two agents this protocol can fail to terminate but can
        # never disagree.
        system = build_ben_or(rounds=5)
        assert mass(system, agreement_among_deciders()) == 1

    def test_decide_is_proper_when_performed(self):
        system = build_ben_or(rounds=4)
        for value in (0, 1):
            assert is_proper(system, AGENT_A, decide_action(value))

    def test_decided_value_unique(self):
        system = build_ben_or(rounds=5)
        for run in system.runs:
            performed = [
                v for v in (0, 1) if run.performs(AGENT_A, decide_action(v))
            ]
            assert len(performed) <= 1


class TestPakMachinery:
    def test_agreement_constraint_and_expectation(self):
        system = build_ben_or(rounds=4)
        agree = agreement_among_deciders()
        assert achieved_probability(
            system, AGENT_A, agree, decide_action(1)
        ) == 1
        assert expected_belief(system, AGENT_A, agree, decide_action(1)) == 1

    def test_peer_decides_constraint(self):
        system = build_ben_or(rounds=4)
        peer = both_decide()
        value = achieved_probability(system, AGENT_A, peer, decide_action(1))
        assert 0 < value < 1  # A can decide while B is still retrying
        check = check_theorem_6_2(system, AGENT_A, decide_action(1), peer)
        assert check.verified

    def test_lossless_equal_inputs_decide_immediately(self):
        system = build_ben_or(loss=0, rounds=3, one_probability=1)
        assert mass(system, both_decide()) == 1


class TestValidation:
    def test_too_few_rounds_rejected(self):
        with pytest.raises(ValueError):
            build_ben_or(rounds=1)

    def test_biased_inputs(self):
        system = build_ben_or(rounds=3, one_probability="3/4")
        equal_ones = [
            run
            for run in system.runs
            if run.local(AGENT_A, 0)[1][1] == run.local(AGENT_B, 0)[1][1] == 1
        ]
        assert sum(r.prob for r in equal_ones) == Fraction(9, 16)
