"""Unit tests for the fluent PPSBuilder."""

from fractions import Fraction

import pytest

from repro import InvalidSystemError, PPSBuilder


class TestBuilder:
    def test_probability_coercion_from_string(self):
        builder = PPSBuilder(["a"])
        builder.initial("1/3", {"a": (0, "x")})
        builder.initial("2/3", {"a": (0, "y")})
        system = builder.build()
        assert sorted(r.prob for r in system.runs) == [
            Fraction(1, 3),
            Fraction(2, 3),
        ]

    def test_probability_coercion_from_float_literal(self):
        builder = PPSBuilder(["a"])
        builder.initial(0.1, {"a": (0, "x")})
        builder.initial(0.9, {"a": (0, "y")})
        system = builder.build()
        assert sorted(r.prob for r in system.runs) == [
            Fraction(1, 10),
            Fraction(9, 10),
        ]

    def test_zero_probability_edge_rejected_at_build_time(self):
        builder = PPSBuilder(["a"])
        with pytest.raises(ValueError):
            builder.initial(0, {"a": (0, "x")})

    def test_missing_agent_state_rejected(self):
        builder = PPSBuilder(["a", "b"])
        with pytest.raises(InvalidSystemError):
            builder.initial(1, {"a": (0, "x")})  # no state for "b"

    def test_unknown_agent_state_rejected(self):
        builder = PPSBuilder(["a"])
        with pytest.raises(InvalidSystemError):
            builder.initial(1, {"a": (0, "x"), "ghost": (0, "y")})

    def test_chain_is_probability_one_child(self):
        builder = PPSBuilder(["a"])
        start = builder.initial(1, {"a": (0, "x")})
        start.chain({"a": (1, "y")}, actions={"a": "go"})
        system = builder.build()
        assert system.run_count() == 1
        assert system.runs[0].prob == 1

    def test_actions_recorded_on_edges(self):
        builder = PPSBuilder(["a"])
        start = builder.initial(1, {"a": (0, "x")})
        start.chain({"a": (1, "y")}, actions={"a": "go"})
        system = builder.build()
        assert system.runs[0].action_of("a", 0) == "go"

    def test_env_stored(self):
        builder = PPSBuilder(["a"])
        builder.initial(1, {"a": (0, "x")}, env="weather:rainy")
        system = builder.build()
        assert system.runs[0].env_state(0) == "weather:rainy"

    def test_build_twice_rejected(self):
        builder = PPSBuilder(["a"])
        builder.initial(1, {"a": (0, "x")})
        builder.build()
        with pytest.raises(InvalidSystemError):
            builder.build()

    def test_invalid_tree_raises_on_build(self):
        builder = PPSBuilder(["a"])
        builder.initial("1/2", {"a": (0, "x")})  # mass missing
        with pytest.raises(InvalidSystemError):
            builder.build()

    def test_handle_time_property(self):
        builder = PPSBuilder(["a"])
        start = builder.initial(1, {"a": (0, "x")})
        nxt = start.chain({"a": (1, "y")})
        assert start.time == 0
        assert nxt.time == 1

    def test_name_propagates(self):
        builder = PPSBuilder(["a"], name="my-system")
        builder.initial(1, {"a": (0, "x")})
        assert builder.build().name == "my-system"
