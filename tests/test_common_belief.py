"""Unit tests for graded belief operators and common p-belief."""

from fractions import Fraction

from repro import (
    TRUE,
    believes,
    common_belief,
    common_belief_points,
    env_fact,
    eventually,
    everyone_believes,
    points_satisfying,
)
from repro.apps.firing_squad import ALICE, BOB, fire_bob


class TestBelieves:
    def test_belief_in_true_at_any_level(self, two_coin_tree):
        b = believes("blind", TRUE, 1)
        assert len(points_satisfying(two_coin_tree, b)) == 8

    def test_graded_threshold(self, two_coin_tree):
        second = eventually(env_fact(lambda e: e == ("second", "h")))
        assert points_satisfying(
            two_coin_tree, believes("obs", second, "1/3")
        ) != set()
        # Nobody ever believes it to degree 1/2 before time 1.
        b_half = believes("obs", second, "1/2")
        assert all(t == 1 for _, t in points_satisfying(two_coin_tree, b_half))

    def test_label_mentions_level(self):
        assert ">=1/3" in believes("a", TRUE, "1/3").label


class TestEveryoneBelieves:
    def test_group_conjunction(self, two_coin_tree):
        second = eventually(env_fact(lambda e: e == ("second", "h")))
        group = everyone_believes(["obs", "blind"], second, "1/3")
        individual_obs = believes("obs", second, "1/3")
        individual_blind = believes("blind", second, "1/3")
        expected = points_satisfying(two_coin_tree, individual_obs) & (
            points_satisfying(two_coin_tree, individual_blind)
        )
        assert points_satisfying(two_coin_tree, group) == expected


class TestCommonBelief:
    def test_common_belief_of_true(self, two_coin_tree):
        points = common_belief_points(two_coin_tree, ["obs", "blind"], TRUE, 1)
        assert len(points) == 8

    def test_decreasing_in_level(self, firing_squad):
        will_fire = eventually(fire_bob())
        high = common_belief_points(firing_squad, [ALICE, BOB], will_fire, "0.99")
        low = common_belief_points(firing_squad, [ALICE, BOB], will_fire, "0.5")
        assert high <= low

    def test_firing_squad_attains_common_p_belief(self, firing_squad):
        # Over a lossy channel the agents attain common p-belief (for
        # moderate p) even though common knowledge is impossible.
        will_fire = eventually(fire_bob())
        points = common_belief_points(firing_squad, [ALICE, BOB], will_fire, "0.9")
        assert points  # non-empty

    def test_fact_wrapper_matches_point_computation(self, firing_squad):
        will_fire = eventually(fire_bob())
        fact = common_belief([ALICE, BOB], will_fire, "0.9")
        direct = common_belief_points(firing_squad, [ALICE, BOB], will_fire, "0.9")
        assert points_satisfying(firing_squad, fact) == direct

    def test_fixpoint_is_subset_of_first_iterate(self, firing_squad):
        will_fire = eventually(fire_bob())
        level = Fraction(9, 10)
        fixpoint = common_belief_points(firing_squad, [ALICE, BOB], will_fire, level)
        first = points_satisfying(
            firing_squad, everyone_believes([ALICE, BOB], will_fire, level)
        )
        assert fixpoint <= first
