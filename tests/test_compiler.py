"""Unit tests for the protocol-to-pps compiler."""

from fractions import Fraction

import pytest

from repro import CompilationError, does_, points_satisfying
from repro.protocols import (
    ENV,
    Config,
    Distribution,
    FunctionEnvironment,
    ProtocolSystem,
    compile_system,
    compile_under_adversaries,
)


def counter_transition(env_state, locals_map, joint_actions, env_action):
    """Locals count their own actions; env counts rounds."""
    new_locals = {
        agent: (local[0] + 1, local[1] + (joint_actions[agent],))
        for agent, local in locals_map.items()
    }
    return (env_state or 0) + 1, new_locals


def simple_system(**overrides) -> ProtocolSystem:
    defaults = dict(
        agents=["a"],
        protocols={"a": lambda local: Distribution.uniform(["l", "r"])},
        transition=counter_transition,
        initial=Distribution.point(Config(env=0, locals=((0, ()),))),
        horizon=2,
    )
    defaults.update(overrides)
    return ProtocolSystem(**defaults)


class TestCompilation:
    def test_tree_shape(self):
        pps = compile_system(simple_system())
        assert pps.run_count() == 4  # 2 choices x 2 rounds
        assert pps.max_time() == 2

    def test_probabilities_product(self):
        pps = compile_system(simple_system())
        assert all(run.prob == Fraction(1, 4) for run in pps.runs)

    def test_actions_recorded(self):
        pps = compile_system(simple_system())
        points = points_satisfying(pps, does_("a", "l"))
        assert points  # "l" performed somewhere
        assert all(t < 2 for _, t in points)

    def test_time_stamping(self):
        pps = compile_system(simple_system())
        for run in pps.runs:
            for t in run.times():
                stamped_time, _raw = run.local("a", t)
                assert stamped_time == t

    def test_deterministic_protocol_single_run(self):
        pps = compile_system(
            simple_system(protocols={"a": lambda local: "only"})
        )
        assert pps.run_count() == 1

    def test_horizon_zero_only_initial_states(self):
        pps = compile_system(simple_system(horizon=0))
        assert pps.max_time() == 0

    def test_final_predicate_stops_early(self):
        def final(env, locals_map, t):
            return locals_map["a"][1][-1:] == ("l",)  # stop after an "l"

        pps = compile_system(simple_system(final=final))
        # runs: l (stopped), rl (stopped), rr — lengths differ.
        lengths = sorted(run.length for run in pps.runs)
        assert lengths == [2, 3, 3]

    def test_environment_branching(self):
        env = FunctionEnvironment(
            lambda state, joint: Distribution.uniform(["fine", "noisy"])
        )
        pps = compile_system(simple_system(environment=env, horizon=1))
        assert pps.run_count() == 4  # 2 actions x 2 env actions

    def test_env_action_recorded_when_requested(self):
        env = FunctionEnvironment(
            lambda state, joint: Distribution.uniform(["fine", "noisy"])
        )
        pps = compile_system(
            simple_system(environment=env, horizon=1, record_env_action=True)
        )
        edge_envs = {
            run.nodes[1].via_action[ENV] for run in pps.runs
        }
        assert edge_envs == {"fine", "noisy"}

    def test_breadth_first_uids_are_depth_monotone(self):
        # Regression: the frontier was popped LIFO (depth-first), so
        # uids were not level-ordered despite the documented
        # breadth-first expansion.
        env = FunctionEnvironment(
            lambda state, joint: Distribution.uniform(["fine", "noisy"])
        )
        pps = compile_system(simple_system(environment=env, horizon=3))
        nodes = sorted(pps.nodes(), key=lambda node: node.uid)
        assert nodes[0].uid == 0 and nodes[0].is_root
        depths = [node.depth for node in nodes]
        assert depths == sorted(depths), "uids must be assigned level by level"
        # uids are consecutive: nothing skipped, nothing reused.
        assert [node.uid for node in nodes] == list(range(len(nodes)))

    def test_breadth_first_leaf_order_deterministic(self):
        # The frontier discipline decides uid numbering only; the DFS
        # run order (leaf order) is fixed by each node's children list
        # and must be identical across compilations.
        def final(env, locals_map, t):
            return locals_map["a"][1][-1:] == ("l",)

        one = compile_system(simple_system(final=final))
        two = compile_system(simple_system(final=final))
        leaves_one = [
            (run.length, tuple(run.state(t) for t in run.times()))
            for run in one.runs
        ]
        leaves_two = [
            (run.length, tuple(run.state(t) for t in run.times()))
            for run in two.runs
        ]
        assert leaves_one == leaves_two
        assert [run.prob for run in one.runs] == [run.prob for run in two.runs]
        # Early-terminated branches keep their DFS position: the "l"
        # branch of the first round still precedes both "r" extensions.
        assert sorted(run.length for run in one.runs) == [2, 3, 3]
        assert one.runs[0].length == 2

    def test_initial_distribution(self):
        initial = Distribution(
            {
                Config(env=0, locals=((0, ()),)): "1/3",
                Config(env=0, locals=((0, ("seed",)),)): "2/3",
            }
        )
        pps = compile_system(simple_system(initial=initial, horizon=0))
        assert sorted(run.prob for run in pps.runs) == [
            Fraction(1, 3),
            Fraction(2, 3),
        ]


class TestCompilationErrors:
    def test_missing_protocol(self):
        with pytest.raises(CompilationError):
            simple_system(protocols={})

    def test_reserved_agent_name(self):
        with pytest.raises(CompilationError):
            simple_system(agents=[ENV], protocols={ENV: lambda local: "x"})

    def test_negative_horizon(self):
        with pytest.raises(CompilationError):
            simple_system(horizon=-1)

    def test_transition_must_cover_all_agents(self):
        def bad_transition(env_state, locals_map, joint_actions, env_action):
            return env_state, {}

        system = simple_system(transition=bad_transition)
        with pytest.raises(CompilationError):
            compile_system(system)

    @pytest.mark.parametrize("memoize", [True, False])
    def test_transition_rejects_unknown_agent_keys(self, memoize):
        # Regression: extra keys in the returned mapping were silently
        # ignored (only missing ones raised), hiding typos like a
        # misspelled agent name in transition code.
        def typo_transition(env_state, locals_map, joint_actions, env_action):
            new_env, new_locals = counter_transition(
                env_state, locals_map, joint_actions, env_action
            )
            new_locals["agent-b"] = (0, ())  # no such agent
            return new_env, new_locals

        system = simple_system(transition=typo_transition)
        with pytest.raises(CompilationError, match="unknown agents.*'agent-b'"):
            compile_system(system, memoize=memoize)

    def test_missing_agent_reported_before_unknown(self):
        def swapped_transition(env_state, locals_map, joint_actions, env_action):
            return env_state, {"not-a": (0, ())}

        system = simple_system(transition=swapped_transition)
        with pytest.raises(CompilationError, match="omitted local states"):
            compile_system(system)


class TestAdversaryCompilation:
    def test_one_system_per_adversary(self):
        def make_system(adversary):
            seed = adversary.get("seed")
            return simple_system(
                initial=Distribution.point(Config(env=0, locals=((0, (seed,)),))),
                horizon=1,
            )

        systems = compile_under_adversaries(
            {"seed": ["x", "y"]}, make_system, name_prefix="adv"
        )
        assert len(systems) == 2
        names = {pps.name for pps in systems.values()}
        assert names == {"adv[seed='x']", "adv[seed='y']"}
