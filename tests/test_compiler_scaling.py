"""Compile-parity and interning tests for the scaled-up compiler.

The memoized construction (interned states + expansion templates,
PR 3) must be *observationally identical* to the unmemoized one: same
node count, same breadth-first uid sequence, same DFS leaf order, same
exact run measures.  These tests compare the two paths on random
protocol systems, on the message-passing apps, and on hand-written
systems engineered so that configurations recur heavily (the regime
the templates exist for).
"""

import pickle
from fractions import Fraction

import pytest

from repro.analysis.random_systems import (
    random_protocol_spec,
    rotor_spec,
    tree_signature,
)
from repro.apps.consensus import build_consensus
from repro.apps.coordinated_attack import build_coordinated_attack
from repro.core.engine import SystemIndex
from repro.core.pps import GlobalState, InternTable
from repro.protocols import (
    Config,
    Distribution,
    FunctionEnvironment,
    ProtocolSystem,
    compile_system,
)

PARITY_SEEDS = range(18)


def assert_compile_parity(memo, plain):
    assert memo.node_count() == plain.node_count()
    assert tree_signature(memo) == tree_signature(plain)
    # Leaf (run) order and exact measures.
    assert len(memo.runs) == len(plain.runs)
    for a, b in zip(memo.runs, plain.runs):
        assert a.prob == b.prob and isinstance(a.prob, Fraction)
        assert [n.uid for n in a.nodes] == [n.uid for n in b.nodes]
        assert [n.state for n in a.nodes] == [n.state for n in b.nodes]


class TestCompileParity:
    @pytest.mark.parametrize("seed", PARITY_SEEDS)
    def test_random_systems_memoized_vs_plain(self, seed):
        kwargs = dict(
            n_agents=1 + seed % 3,
            horizon=2 + seed % 2,
            n_actions=1 + seed % 3,
            mixed_level=(seed % 4) / 3,
        )
        memo = compile_system(random_protocol_spec(seed, **kwargs))
        plain = compile_system(random_protocol_spec(seed, **kwargs), memoize=False)
        assert_compile_parity(memo, plain)

    @pytest.mark.parametrize(
        "spec_kwargs",
        [
            dict(n_agents=3, modulus=2, horizon=3),
            dict(n_agents=4, modulus=3, horizon=4),
            dict(n_agents=2, modulus=5, horizon=5, coins=1),
        ],
    )
    def test_repeated_config_systems(self, spec_kwargs):
        memo = compile_system(rotor_spec(**spec_kwargs))
        plain = compile_system(rotor_spec(**spec_kwargs), memoize=False)
        assert_compile_parity(memo, plain)
        # The whole point: far fewer distinct configs than nodes.
        assert memo.intern.distinct_configs < memo.node_count() / 2

    def test_message_passing_apps(self):
        for memo, plain in [
            (
                build_consensus(n=2, loss="0.1"),
                build_consensus(n=2, loss="0.1", memoize=False),
            ),
            (
                build_coordinated_attack(loss="0.3", ack_rounds=3),
                build_coordinated_attack(loss="0.3", ack_rounds=3, memoize=False),
            ),
        ]:
            assert_compile_parity(memo, plain)

    def test_final_predicate_parity(self):
        def spec():
            return ProtocolSystem(
                agents=["a"],
                protocols={"a": lambda local: Distribution.uniform(["l", "r"])},
                transition=lambda env, locals_map, joint, env_action: (
                    env,
                    {"a": joint["a"]},
                ),
                initial=Distribution.point(Config(env=None, locals=("l",))),
                horizon=4,
                final=lambda env, locals_map, t: locals_map["a"] == "r",
            )

        assert_compile_parity(
            compile_system(spec()), compile_system(spec(), memoize=False)
        )

    def test_environment_branching_parity(self):
        def spec():
            return ProtocolSystem(
                agents=["a", "b"],
                protocols={
                    "a": lambda local: Distribution.uniform([0, 1]),
                    "b": lambda local: 0,
                },
                transition=lambda env, locals_map, joint, env_action: (
                    env_action,
                    {a: (locals_map[a] + joint[a]) % 2 for a in ("a", "b")},
                ),
                initial=Distribution.point(Config(env=0, locals=(0, 0))),
                environment=FunctionEnvironment(
                    lambda env, joint: Distribution.weighted((0, "2/3"), (1, "1/3"))
                ),
                horizon=3,
                record_env_action=True,
            )

        assert_compile_parity(
            compile_system(spec()), compile_system(spec(), memoize=False)
        )

    def test_engine_tables_agree_across_paths(self):
        """The intern-aware index construction matches the by-value one."""
        memo = compile_system(rotor_spec(n_agents=3, modulus=3, horizon=4))
        plain = compile_system(
            rotor_spec(n_agents=3, modulus=3, horizon=4), memoize=False
        )
        assert memo.intern is not None and plain.intern is None
        im, ip = SystemIndex.of(memo), SystemIndex.of(plain)
        for agent in memo.agents:
            assert im.local_states(agent) == ip.local_states(agent)
            for t in range(im.max_time + 1):
                assert dict(im.partition(agent, t)) == dict(ip.partition(agent, t))
            for local in im.local_states(agent):
                assert im.occurrence(agent, local) == ip.occurrence(agent, local)
            assert im.actions_of(agent) == ip.actions_of(agent)


class TestInterning:
    def test_equal_states_are_identical_objects(self):
        pps = compile_system(rotor_spec(n_agents=3, modulus=2, horizon=4))
        by_value = {}
        for node in pps.state_nodes():
            by_value.setdefault(node.state, set()).add(id(node.state))
            for local in node.state.locals:
                by_value.setdefault(("local", local), set()).add(id(local))
        assert all(len(ids) == 1 for ids in by_value.values())

    def test_messaging_states_are_interned(self):
        pps = build_consensus(n=2, loss="0.1")
        assert pps.intern is not None
        seen = {}
        for node in pps.state_nodes():
            seen.setdefault(node.state, set()).add(id(node.state))
        assert all(len(ids) == 1 for ids in seen.values())

    def test_plain_path_attaches_no_table(self):
        pps = compile_system(rotor_spec(horizon=2), memoize=False)
        assert pps.intern is None

    def test_cached_hash_not_pickled(self):
        # Regression (review finding): the cached __hash__ lives in
        # __dict__ and string hashes are salted per process, so a
        # pickled-through instance must drop it and recompute locally.
        for value in (
            GlobalState(env="e", locals=((0, "x"),)),
            Config(env="e", locals=("x",)),
        ):
            hash(value)  # populate the cache
            assert "_hash" in value.__dict__
            restored = pickle.loads(pickle.dumps(value))
            assert "_hash" not in restored.__dict__
            assert restored == value
            assert hash(restored) == hash(value)  # same-process: must agree

    def test_intern_table_counters(self):
        table = InternTable()
        a = table.config(("x", 1))
        b = table.config(("x", 1))
        assert a is b
        assert table.distinct_configs == 1
        s1 = table.stamped_state(a, 0, None, ("x",))
        s2 = table.stamped_state(b, 0, None, ("x",))
        assert s1 is s2
        assert table.distinct_states == 1
        assert table.distinct_locals == 1


class TestTemplateSharing:
    def test_via_mappings_equal_across_stamped_nodes(self):
        """Template-stamped siblings agree on via_action with the plain path."""
        memo = compile_system(rotor_spec(n_agents=2, modulus=2, horizon=3))
        plain = compile_system(
            rotor_spec(n_agents=2, modulus=2, horizon=3), memoize=False
        )
        for a, b in zip(memo.runs, plain.runs):
            for t in a.times():
                for agent in memo.agents:
                    assert a.action_of(agent, t) == b.action_of(agent, t)

    def test_memoized_is_default(self):
        pps = compile_system(rotor_spec(horizon=2))
        assert pps.intern is not None
