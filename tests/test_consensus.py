"""Integration tests for one-shot lossy-broadcast consensus."""

from fractions import Fraction

import pytest

from repro import (
    achieved_probability,
    expected_belief,
    is_proper,
    runs_satisfying,
)
from repro.apps.consensus import (
    agent_names,
    agreement,
    build_consensus,
    decides,
    decision_action,
    validity,
)


class TestStructure:
    def test_every_agent_decides_exactly_once(self):
        system = build_consensus()
        for name in agent_names(2):
            for run in system.runs:
                decisions = sum(
                    len(run.performs(name, decision_action(v))) for v in (0, 1)
                )
                assert decisions == 1

    def test_decisions_are_proper_actions(self):
        system = build_consensus()
        for value in (0, 1):
            assert is_proper(system, "agent-0", decision_action(value))

    def test_validity_always_holds(self):
        system = build_consensus()
        valid = runs_satisfying(system, validity(2))
        assert valid == frozenset(r.index for r in system.runs)


class TestAgreement:
    def test_reliable_channel_always_agrees(self):
        system = build_consensus(loss=0)
        agreeing = runs_satisfying(system, agreement(2))
        assert agreeing == frozenset(r.index for r in system.runs)

    def test_disagreement_possible_with_loss(self):
        system = build_consensus(loss="0.1")
        agreeing = runs_satisfying(system, agreement(2))
        assert agreeing != frozenset(r.index for r in system.runs)

    def test_agreement_given_decide_one(self):
        system = build_consensus(loss="0.1")
        value = achieved_probability(
            system, "agent-0", agreement(2), decision_action(1)
        )
        # Disagreement after deciding 1 requires the peer to hold 0 and
        # miss my 1 — computed exactly by the library; the expected
        # belief must agree (Theorem 6.2).
        assert value == expected_belief(
            system, "agent-0", agreement(2), decision_action(1)
        )
        assert Fraction(9, 10) < value < 1

    def test_agreement_given_decide_zero(self):
        system = build_consensus(loss="0.1")
        value = achieved_probability(
            system, "agent-0", agreement(2), decision_action(0)
        )
        # Deciding 0 means I saw no 1 anywhere; the peer disagrees iff
        # it holds a 1 (and then decides 1 regardless of my message).
        assert value == Fraction(10, 11)

    def test_agreement_improves_with_reliability(self):
        flaky = build_consensus(loss="0.5")
        solid = build_consensus(loss="0.05")
        for value in (0, 1):
            assert achieved_probability(
                flaky, "agent-0", agreement(2), decision_action(value)
            ) <= achieved_probability(
                solid, "agent-0", agreement(2), decision_action(value)
            )


class TestThreeAgents:
    def test_three_agent_system_compiles(self):
        system = build_consensus(n=3, loss="0.1")
        assert system.run_count() == 8 * 64  # 2^3 inputs x 2^6 messages

    def test_three_agent_agreement_constraint(self):
        system = build_consensus(n=3, loss="0.1")
        value = achieved_probability(
            system, "agent-0", agreement(3), decision_action(1)
        )
        assert 0 < value < 1
        assert value == expected_belief(
            system, "agent-0", agreement(3), decision_action(1)
        )


class TestValidation:
    def test_single_agent_rejected(self):
        with pytest.raises(ValueError):
            build_consensus(n=1)

    def test_biased_inputs(self):
        from repro import eventually

        system = build_consensus(one_probability="1/4")
        ones = runs_satisfying(
            system, eventually(decides("agent-0", 1) | decides("agent-0", 0))
        )
        assert ones == frozenset(r.index for r in system.runs)  # still decides
