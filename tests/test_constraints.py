"""Unit tests for probabilistic constraints (Definition 3.2)."""

from fractions import Fraction

import pytest

from repro import (
    ImproperActionError,
    ProbabilisticConstraint,
    achieved_probability,
)
from repro.apps.firing_squad import ALICE, FIRE, both_fire
from repro.apps.figure1 import phi_alpha, psi_not_alpha


class TestAchievedProbability:
    def test_firing_squad_value(self, firing_squad):
        assert achieved_probability(
            firing_squad, ALICE, both_fire(), FIRE
        ) == Fraction(99, 100)

    def test_figure1_psi_is_zero(self, figure1):
        assert achieved_probability(figure1, "i", psi_not_alpha(), "alpha") == 0

    def test_figure1_phi_is_one(self, figure1):
        assert achieved_probability(figure1, "i", phi_alpha(), "alpha") == 1

    def test_improper_action_rejected(self, firing_squad):
        with pytest.raises(ImproperActionError):
            achieved_probability(firing_squad, ALICE, both_fire(), "phantom")


class TestConstraintObject:
    def constraint(self, threshold="0.95") -> ProbabilisticConstraint:
        return ProbabilisticConstraint(
            agent=ALICE,
            action=FIRE,
            phi=both_fire(),
            threshold=threshold,
            name="spec",
        )

    def test_threshold_coerced_exactly(self):
        assert self.constraint().threshold == Fraction(19, 20)

    def test_threshold_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            self.constraint(threshold="3/2")

    def test_satisfied(self, firing_squad):
        assert self.constraint().satisfied(firing_squad)

    def test_violated_with_higher_threshold(self, firing_squad):
        assert not self.constraint(threshold="0.999").satisfied(firing_squad)

    def test_margin(self, firing_squad):
        assert self.constraint().margin(firing_squad) == Fraction(99, 100) - Fraction(
            19, 20
        )

    def test_threshold_met_measure_default_threshold(self, firing_squad):
        assert self.constraint().threshold_met_measure(firing_squad) == Fraction(
            991, 1000
        )

    def test_threshold_met_measure_custom_threshold(self, firing_squad):
        # At threshold 1 only the 'Yes' runs qualify: 0.891 of firing runs.
        assert self.constraint().threshold_met_measure(
            firing_squad, 1
        ) == Fraction(891, 1000)

    def test_threshold_met_event_subset_of_performing(self, firing_squad):
        constraint = self.constraint()
        met = constraint.threshold_met_event(firing_squad)
        assert met <= constraint.performing_event(firing_squad)

    def test_expected_belief_equals_actual(self, firing_squad):
        constraint = self.constraint()
        assert constraint.expected_belief(firing_squad) == constraint.actual(
            firing_squad
        )

    def test_independent(self, firing_squad):
        assert self.constraint().independent(firing_squad)

    def test_describe_mentions_status(self, firing_squad):
        text = self.constraint().describe(firing_squad)
        assert "SATISFIED" in text
        assert "99/100" in text

    def test_describe_violated(self, firing_squad):
        text = self.constraint(threshold="0.999").describe(firing_squad)
        assert "VIOLATED" in text
