"""Integration tests for the coordinated-attack system (experiment E11)."""

from fractions import Fraction

import pytest

from repro import (
    achieved_probability,
    expected_belief,
    expected_belief_decomposition,
    is_local_state_independent,
)
from repro.apps.coordinated_attack import (
    ATTACK,
    GENERAL_A,
    GENERAL_B,
    attack_a,
    attack_b,
    both_attack,
    build_coordinated_attack,
)


class TestSuccessProbability:
    def test_equals_delivery_probability(self):
        system = build_coordinated_attack(loss="0.1", ack_rounds=0)
        assert achieved_probability(
            system, GENERAL_A, both_attack(), ATTACK
        ) == Fraction(9, 10)

    @pytest.mark.parametrize("ack_rounds", [0, 1, 2, 3])
    def test_acks_do_not_change_success(self, ack_rounds):
        # The classical futility result: more acknowledgements do not
        # raise the probability of a coordinated attack.
        system = build_coordinated_attack(loss="0.1", ack_rounds=ack_rounds)
        assert achieved_probability(
            system, GENERAL_A, both_attack(), ATTACK
        ) == Fraction(9, 10)

    def test_loss_parameter(self):
        system = build_coordinated_attack(loss="1/3", ack_rounds=1)
        assert achieved_probability(
            system, GENERAL_A, both_attack(), ATTACK
        ) == Fraction(2, 3)


class TestBeliefRefinement:
    def test_fischer_zuck_average_belief(self):
        # The expected acting belief equals the success probability —
        # [20]'s observation, an instance of Theorem 6.2.
        for ack_rounds in (0, 1, 2):
            system = build_coordinated_attack(loss="0.1", ack_rounds=ack_rounds)
            assert expected_belief(
                system, GENERAL_A, both_attack(), ATTACK
            ) == Fraction(9, 10)

    def test_no_acks_single_belief_state(self):
        system = build_coordinated_attack(loss="0.1", ack_rounds=0)
        cells = expected_belief_decomposition(
            system, GENERAL_A, both_attack(), ATTACK
        )
        assert len(cells) == 1
        (cell,) = cells.values()
        assert cell.belief == Fraction(9, 10)

    def test_one_ack_splits_beliefs(self):
        system = build_coordinated_attack(loss="0.1", ack_rounds=1)
        cells = expected_belief_decomposition(
            system, GENERAL_A, both_attack(), ATTACK
        )
        beliefs = sorted(cell.belief for cell in cells.values())
        # Ack received -> certainty; no ack -> B attacked but ack lost,
        # or B never got the order: 9/100 / (9/100 + 1/10) = 9/19.
        assert beliefs == [Fraction(9, 19), Fraction(1)]

    def test_more_acks_spread_beliefs_further(self):
        shallow = build_coordinated_attack(loss="0.1", ack_rounds=1)
        deep = build_coordinated_attack(loss="0.1", ack_rounds=3)
        spread = lambda system: len(
            expected_belief_decomposition(system, GENERAL_A, both_attack(), ATTACK)
        )
        assert spread(deep) >= spread(shallow)


class TestStructure:
    def test_b_never_attacks_without_order(self):
        system = build_coordinated_attack(ack_rounds=1)
        for run in system.runs:
            if run.local(GENERAL_A, 0)[1].payload == 0:
                assert not run.performs(GENERAL_B, ATTACK)

    def test_attack_is_proper_and_independent(self):
        system = build_coordinated_attack(ack_rounds=2)
        assert is_local_state_independent(
            system, both_attack(), GENERAL_A, ATTACK
        )

    def test_negative_ack_rounds_rejected(self):
        with pytest.raises(ValueError):
            build_coordinated_attack(ack_rounds=-1)

    def test_order_probability_one_still_valid(self):
        system = build_coordinated_attack(order_probability=1, ack_rounds=0)
        assert achieved_probability(
            system, GENERAL_A, both_attack(), ATTACK
        ) == Fraction(9, 10)
