"""Unit tests for exact finite distributions."""

from fractions import Fraction

import pytest

from repro import InvalidSystemError
from repro.protocols import Distribution, product


class TestConstruction:
    def test_from_mapping(self):
        d = Distribution({"a": "1/3", "b": "2/3"})
        assert d.prob("a") == Fraction(1, 3)

    def test_from_pairs(self):
        d = Distribution([("a", "1/2"), ("b", "1/2")])
        assert set(d.support) == {"a", "b"}

    def test_weights_must_sum_to_one(self):
        with pytest.raises(InvalidSystemError):
            Distribution({"a": "1/2"})

    def test_zero_weight_rejected(self):
        with pytest.raises(InvalidSystemError):
            Distribution({"a": 0, "b": 1})

    def test_negative_weight_rejected(self):
        with pytest.raises(InvalidSystemError):
            Distribution({"a": "-1/2", "b": "3/2"})

    def test_duplicate_outcome_rejected(self):
        with pytest.raises(InvalidSystemError):
            Distribution([("a", "1/2"), ("a", "1/2")])

    def test_empty_rejected(self):
        with pytest.raises(InvalidSystemError):
            Distribution({})

    def test_point(self):
        d = Distribution.point("x")
        assert d.is_deterministic()
        assert d.prob("x") == 1

    def test_uniform(self):
        d = Distribution.uniform(["a", "b", "c"])
        assert d.prob("b") == Fraction(1, 3)

    def test_uniform_empty_rejected(self):
        with pytest.raises(InvalidSystemError):
            Distribution.uniform([])

    def test_bernoulli(self):
        d = Distribution.bernoulli("0.3")
        assert d.prob(True) == Fraction(3, 10)
        assert d.prob(False) == Fraction(7, 10)

    def test_bernoulli_degenerate_collapses(self):
        assert Distribution.bernoulli(0).is_deterministic()
        assert Distribution.bernoulli(1).is_deterministic()

    def test_bernoulli_custom_outcomes(self):
        d = Distribution.bernoulli("1/4", true="yes", false="no")
        assert d.prob("yes") == Fraction(1, 4)

    def test_bernoulli_out_of_range(self):
        with pytest.raises(InvalidSystemError):
            Distribution.bernoulli("3/2")

    def test_bernoulli_equal_outcomes_collapse_to_point(self):
        # Regression: an interior p with true == false raised
        # "duplicate outcome" instead of collapsing to a point mass.
        d = Distribution.bernoulli("1/3", true="x", false="x")
        assert d.is_deterministic()
        assert d.prob("x") == 1

    def test_bernoulli_equal_outcomes_out_of_range_still_rejected(self):
        with pytest.raises(InvalidSystemError):
            Distribution.bernoulli("3/2", true="x", false="x")

    def test_weighted(self):
        d = Distribution.weighted(("x", "1/4"), ("y", "3/4"))
        assert d.prob("y") == Fraction(3, 4)


class TestQueries:
    def test_prob_outside_support_is_zero(self):
        assert Distribution.point("x").prob("y") == 0

    def test_len_iter_contains(self):
        d = Distribution({"a": "1/2", "b": "1/2"})
        assert len(d) == 2
        assert set(d) == {"a", "b"}
        assert "a" in d and "c" not in d

    def test_equality_and_hash(self):
        d1 = Distribution({"a": "1/2", "b": "1/2"})
        d2 = Distribution({"b": "1/2", "a": "1/2"})
        assert d1 == d2
        assert hash(d1) == hash(d2)

    def test_expectation(self):
        d = Distribution({1: "1/4", 3: "3/4"})
        assert d.expectation(lambda x: Fraction(x)) == Fraction(10, 4)


class TestTransforms:
    def test_map_merges_images(self):
        d = Distribution({1: "1/4", 2: "1/4", 3: "1/2"})
        parity = d.map(lambda x: x % 2)
        assert parity.prob(1) == Fraction(3, 4)
        assert parity.prob(0) == Fraction(1, 4)

    def test_condition(self):
        d = Distribution({1: "1/4", 2: "1/4", 3: "1/2"})
        odd = d.condition(lambda x: x % 2 == 1)
        assert odd.prob(1) == Fraction(1, 3)
        assert odd.prob(3) == Fraction(2, 3)

    def test_condition_on_impossible_rejected(self):
        d = Distribution.point(1)
        with pytest.raises(InvalidSystemError):
            d.condition(lambda x: x == 2)

    def test_product_of_two(self):
        d = Distribution.bernoulli("1/2", true=1, false=0)
        joint = product([d, d])
        assert joint.prob((1, 0)) == Fraction(1, 4)
        assert len(joint) == 4

    def test_product_of_none_is_empty_tuple(self):
        joint = product([])
        assert joint.prob(()) == 1

    def test_product_preserves_total_mass(self):
        d1 = Distribution({1: "1/3", 2: "2/3"})
        d2 = Distribution({"x": "1/5", "y": "4/5"})
        joint = product([d1, d2])
        assert sum(w for _, w in joint.items()) == 1
