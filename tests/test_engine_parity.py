"""Engine parity: the indexed engine must agree exactly with the naive path.

The :mod:`repro.core.engine` index changes how every query is
evaluated but must never change *what* is computed: probabilities,
beliefs, knowledge partitions, and theorem-checker verdicts have to be
``Fraction``-equal to the preserved naive implementations in
:mod:`repro.core.naive` on arbitrary systems.  These property-style
tests hammer that on 50+ random protocol systems (plus the hand-built
fixtures), reusing the seeded generators of
:mod:`repro.analysis.random_systems`.
"""

from __future__ import annotations

import pytest

from repro import (
    SystemIndex,
    achieved_probability,
    belief,
    expected_belief,
    knowledge_partition,
    occurrence_event,
    performing_runs,
    probability,
    runs_satisfying,
    threshold_met_measure,
)
from repro.core.naive import (
    naive_achieved_probability,
    naive_belief,
    naive_expected_belief,
    naive_knowledge_partition,
    naive_occurrence_event,
    naive_performing_runs,
    naive_probability,
    naive_runs_satisfying,
    naive_threshold_met_measure,
)
from repro.analysis.random_systems import (
    proper_actions_of,
    random_protocol_system,
    random_run_fact,
    random_state_fact,
)
from repro.analysis.verify import verify_constraint
from parity import ParityConfig, assert_fraction_parity

# 50+ systems across deterministic, half-mixed, and fully mixed protocols.
PARITY_SEEDS = [(seed, seed % 3 * 0.5) for seed in range(54)]

# Engine parity is about evaluation *scheduling*, not the numeric tier
# (test_numeric_fastpath owns that axis): every seed runs serial vs a
# 3-shard schedule under exact arithmetic, and every ninth seed sweeps
# the full shard axis of the ISSUE's differential matrix.
ENGINE_CONFIGS = (ParityConfig(0, "exact"), ParityConfig(3, "exact"))
ENGINE_CONFIGS_WIDE = tuple(
    ParityConfig(shards, "exact") for shards in (0, 2, 3, 8)
)


def _engine_configs(seed: int):
    return ENGINE_CONFIGS_WIDE if seed % 9 == 0 else ENGINE_CONFIGS


def _system(seed: int, mixed: float):
    return random_protocol_system(seed, mixed_level=mixed)


@pytest.mark.parametrize("seed,mixed", PARITY_SEEDS)
def test_event_and_probability_parity(seed, mixed):
    from repro.core.facts import eventually

    phi = random_state_fact(seed + 1)
    psi = random_run_fact(seed + 2)
    run_fact = eventually(phi)

    def query(system, *, numeric):
        event = runs_satisfying(system, run_fact)
        return {
            "event": event,
            "psi-event": runs_satisfying(system, psi),
            "probability": probability(system, event),
        }

    def oracle(system):
        event = naive_runs_satisfying(system, run_fact)
        return {
            "event": event,
            "psi-event": naive_runs_satisfying(system, psi),
            "probability": naive_probability(system, event),
        }

    assert_fraction_parity(
        query,
        [lambda: _system(seed, mixed)],
        _engine_configs(seed),
        reference_fn=oracle,
    )


@pytest.mark.parametrize("seed,mixed", PARITY_SEEDS)
def test_belief_parity_at_every_local_state(seed, mixed):
    phi = random_state_fact(seed + 3)

    def query(system, *, numeric):
        return [
            (
                occurrence_event(system, agent, local),
                belief(system, agent, phi, local),
            )
            for agent in system.agents
            for local in sorted(system.local_states(agent), key=repr)
        ]

    def oracle(system):
        return [
            (
                naive_occurrence_event(system, agent, local),
                naive_belief(system, agent, phi, local),
            )
            for agent in system.agents
            for local in sorted(system.local_states(agent), key=repr)
        ]

    assert_fraction_parity(
        query,
        [lambda: _system(seed, mixed)],
        _engine_configs(seed),
        reference_fn=oracle,
    )


@pytest.mark.parametrize("seed,mixed", PARITY_SEEDS)
def test_action_and_constraint_parity(seed, mixed):
    phi = random_state_fact(seed + 4)
    thresholds = ("1/3", "1/2", "9/10")

    def query(system, *, numeric):
        return [
            (
                performing_runs(system, agent, action),
                achieved_probability(system, agent, phi, action),
                expected_belief(system, agent, phi, action),
                [
                    threshold_met_measure(system, agent, phi, action, threshold)
                    for threshold in thresholds
                ],
            )
            for agent in system.agents
            for action in proper_actions_of(system, agent)
        ]

    def oracle(system):
        return [
            (
                naive_performing_runs(system, agent, action),
                naive_achieved_probability(system, agent, phi, action),
                naive_expected_belief(system, agent, phi, action),
                [
                    naive_threshold_met_measure(
                        system, agent, phi, action, threshold
                    )
                    for threshold in thresholds
                ],
            )
            for agent in system.agents
            for action in proper_actions_of(system, agent)
        ]

    assert_fraction_parity(
        query,
        [lambda: _system(seed, mixed)],
        _engine_configs(seed),
        reference_fn=oracle,
    )


@pytest.mark.parametrize("seed,mixed", PARITY_SEEDS)
def test_knowledge_partition_parity(seed, mixed):
    def query(system, *, numeric):
        return [
            knowledge_partition(system, agent, t)
            for agent in system.agents
            for t in range(system.max_time() + 1)
        ]

    def oracle(system):
        return [
            naive_knowledge_partition(system, agent, t)
            for agent in system.agents
            for t in range(system.max_time() + 1)
        ]

    assert_fraction_parity(
        query,
        [lambda: _system(seed, mixed)],
        _engine_configs(seed),
        reference_fn=oracle,
    )


@pytest.mark.parametrize("seed", range(0, 54, 9))
def test_theorem_verdict_parity(seed):
    # The checkers route every premise and conclusion through the
    # engine; their verdicts must be identical to what the naive
    # quantities imply.  (Verified=True is already asserted by
    # test_properties; here we check the evidence values.)
    phi = random_state_fact(seed + 5)

    def query(system, *, numeric):
        agent = system.agents[0]
        action = proper_actions_of(system, agent)[0]
        checks = verify_constraint(system, agent, action, phi, "1/2")
        for name, check in checks.items():
            assert check.verified, f"{name} failed on random-{seed}"
        return {
            "achieved": checks["theorem-6.2"].details["achieved"],
            "expected-belief": checks["theorem-6.2"].details["expected-belief"],
        }

    def oracle(system):
        agent = system.agents[0]
        action = proper_actions_of(system, agent)[0]
        return {
            "achieved": naive_achieved_probability(system, agent, phi, action),
            "expected-belief": naive_expected_belief(system, agent, phi, action),
        }

    assert_fraction_parity(
        query,
        [lambda: _system(seed, (seed % 3) * 0.5)],
        ENGINE_CONFIGS_WIDE,
        reference_fn=oracle,
    )


class TestSystemIndexInternals:
    """Direct unit coverage of the bitmask kernel and tables."""

    def test_index_cached_on_system(self):
        system = random_protocol_system(0)
        assert SystemIndex.of(system) is SystemIndex.of(system)
        assert system.index() is SystemIndex.of(system)

    def test_mask_event_round_trip(self):
        system = random_protocol_system(1)
        index = SystemIndex.of(system)
        event = frozenset(range(0, index.run_count, 2))
        assert index.event_of(index.mask_of(event)) == event
        assert index.mask_of(index.event_of(0b1011)) == 0b1011

    def test_probability_kernel_matches_run_sums(self):
        system = random_protocol_system(2)
        index = SystemIndex.of(system)
        assert index.probability(index.all_mask) == 1
        assert index.probability(0) == 0
        # Contiguous (prefix-table) and scattered (popcount) paths.
        contiguous = (1 << min(3, index.run_count)) - 1
        scattered = contiguous & ~0b10
        for mask in (contiguous, scattered):
            expected = sum(
                (system.runs[i].prob for i in index.event_of(mask)),
                start=index.probability(0),
            )
            assert index.probability(mask) == expected

    def test_node_masks_are_contiguous_dfs_ranges(self):
        system = random_protocol_system(3)
        index = SystemIndex.of(system)
        for node in system.state_nodes():
            mask = index.node_mask(node)
            assert mask, "every node lies on at least one run"
            lo = (mask & -mask).bit_length() - 1
            hi = mask.bit_length()
            assert mask == (1 << hi) - (1 << lo)
            assert system.runs_through(node) == index.event_of(mask)

    def test_occurrence_table_matches_pps_scan(self):
        system = random_protocol_system(4)
        index = SystemIndex.of(system)
        for agent in system.agents:
            for local in system.local_states(agent):
                t = index.occurrence_time(agent, local)
                assert t == system.occurrence_time(agent, local)
                assert index.occurrence_mask(agent, local) == index.mask_of(
                    naive_occurrence_event(system, agent, local)
                )

    def test_fact_mask_memoized_by_structural_key(self):
        system = random_protocol_system(5)
        index = SystemIndex.of(system)
        phi = random_run_fact(99)
        first = index.runs_satisfying_mask(phi)
        assert phi.structural_key() in index._fact_masks
        assert index.runs_satisfying_mask(phi) == first

    def test_env_pseudo_agent_actions_survive_indexing(self):
        # Regression: via_action entries recorded under the reserved
        # environment name (record_env_action / messaging delivery
        # patterns) are not in pps.agents but must still be queryable
        # as run facts, exactly as in the pre-index implementation.
        from repro import performed, probability, runs_satisfying
        from repro.apps.firing_squad import build_firing_squad
        from repro.protocols.compiler import ENV

        system = build_firing_squad()
        env_actions = system.actions_of(ENV)
        assert env_actions, "firing squad records environment actions"
        for action in env_actions:
            fact = performed(ENV, action)
            event = runs_satisfying(system, fact)
            expected = frozenset(
                run.index
                for run in system.runs
                if run.performs(ENV, action)
            )
            assert event == expected and event
            assert probability(system, event) == sum(
                (system.runs[i].prob for i in expected),
                start=probability(system, frozenset()),
            )
