"""The exception hierarchy and the public API surface."""

import pytest

import repro
from repro.core.errors import (
    CompilationError,
    ConditioningOnNullEventError,
    FormulaError,
    ImproperActionError,
    IndependenceError,
    InvalidSystemError,
    NotStochasticError,
    ReproError,
    SynchronyViolationError,
    UnknownAgentError,
    UnknownLocalStateError,
    ZeroProbabilityError,
)


class TestErrorHierarchy:
    def test_everything_is_a_repro_error(self):
        for exc in (
            CompilationError,
            ConditioningOnNullEventError,
            FormulaError,
            ImproperActionError,
            IndependenceError,
            InvalidSystemError,
            NotStochasticError,
            SynchronyViolationError,
            UnknownAgentError,
            UnknownLocalStateError,
            ZeroProbabilityError,
        ):
            assert issubclass(exc, ReproError)

    def test_structural_errors_are_invalid_system(self):
        for exc in (NotStochasticError, SynchronyViolationError, ZeroProbabilityError):
            assert issubclass(exc, InvalidSystemError)

    def test_one_handler_catches_the_family(self):
        try:
            raise SynchronyViolationError("demo")
        except ReproError as caught:
            assert "demo" in str(caught)


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_core_names_reexported(self):
        for name in (
            "PPS",
            "PPSBuilder",
            "Fact",
            "does_",
            "performed",
            "belief",
            "belief_at",
            "at_action",
            "at_local_state",
            "achieved_probability",
            "expected_belief",
            "is_local_state_independent",
            "is_past_based",
            "is_proper",
            "check_theorem_4_2",
            "check_theorem_6_2",
            "check_theorem_7_1",
            "check_corollary_7_2",
            "pak_level",
            "analyze",
            "knows",
            "common_knowledge",
            "believes",
            "common_belief",
            "check_kop",
            "optimal_acting_states",
            "achievable_frontier",
        ):
            assert hasattr(repro, name), f"missing export: {name}"

    def test_all_is_consistent(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ lists missing {name}"

    def test_subpackages_importable(self):
        import repro.analysis
        import repro.apps
        import repro.logic
        import repro.messaging
        import repro.protocols

        assert repro.protocols.Distribution
        assert repro.messaging.MessagePassingSystem
        assert repro.logic.parse
        assert repro.analysis.paper_experiments
        assert repro.apps.firing_squad.build_firing_squad

    def test_app_modules_expose_builders(self):
        import repro.apps as apps

        builders = [
            apps.firing_squad.build_firing_squad,
            apps.figure1.build_figure1,
            apps.theorem52.build_theorem52,
            apps.coordinated_attack.build_coordinated_attack,
            apps.mutex.build_mutex,
            apps.consensus.build_consensus,
            apps.judge.build_judge,
            apps.aloha.build_aloha,
        ]
        assert all(callable(builder) for builder in builders)
